//! # gpu-resilience
//!
//! A reproduction of the Delta GPU resilience study (*"Story of Two GPUs:
//! Characterizing the Resilience of Hopper H100 and Ampere A100 GPUs"*,
//! SC 2025): the paper's characterization pipeline as a reusable library,
//! plus the mechanistic simulation substrate that regenerates every table
//! and figure of its evaluation. This crate is a facade re-exporting the
//! workspace; see `README.md` for the architecture and `DESIGN.md` for the
//! experiment index.
//!
//! The one-screen version — inject faults, render logs, re-extract and
//! analyze them:
//!
//! ```
//! use gpu_resilience::core::{PipelineBuilder, StudyConfig};
//! use gpu_resilience::faults::{Campaign, CampaignConfig};
//! use gpu_resilience::xid::Xid;
//!
//! // 30 simulated days on a six-node fleet, with full syslog text.
//! let out = Campaign::run(CampaignConfig::tiny(42));
//! assert!(!out.records.is_empty());
//!
//! // The pipeline re-extracts structured errors from the *text* and
//! // recovers the study's statistics (Table 1, Figures 5-7, ...).
//! let cfg = StudyConfig::ampere_study()
//!     .with_window(out.observation_hours(), out.fleet.node_count() as u32);
//! let (results, stats) = PipelineBuilder::new(cfg)
//!     .downtime(&out.downtime)
//!     .run_text(&out.text_logs);
//! assert_eq!(stats.malformed, 0);
//! assert!(results.table1_row(Xid::MmuError).unwrap().count > 0);
//! ```

pub mod cli;

pub use dr_availsim as availsim;
pub use dr_bench as bench;
pub use dr_cluster as cluster;
pub use dr_des as des;
pub use dr_faults as faults;
pub use dr_gpu as gpu;
pub use dr_logscan as logscan;
pub use dr_obs as obs;
pub use dr_par as par;
pub use dr_predict as predict;
pub use dr_report as report;
pub use dr_scenario as scenario;
pub use dr_slurm as slurm;
pub use dr_stats as stats;
pub use dr_xid as xid;
pub use resilience_core as core;
