//! Typed command-line options for `gpures`.
//!
//! The binary used to funnel every flag through one untyped
//! `BTreeMap<String, String>` bag: any `--typo` was silently ignored, a
//! missing value produced an ad-hoc string error, and the usage text was
//! maintained by hand in parallel with the parsing code. This module
//! replaces that with *declared* flag tables: each subcommand owns a
//! [`FlagSet`] listing exactly the flags it accepts, parsing rejects
//! unknown flags and missing values as [`DataError::Usage`], and the
//! per-subcommand usage line is generated from the same table the parser
//! reads — the help can no longer drift from the accepted surface.
//!
//! Flags shared across subcommands (`--workers`, `--chunk-bytes`,
//! `--metrics`, `--records`) are defined once as constants so their
//! spelling, metavar, and help text stay identical everywhere.

use dr_xid::DataError;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// One declared flag: `--name VALUE`.
#[derive(Clone, Copy, Debug)]
pub struct Flag {
    /// Flag name without the leading `--`.
    pub name: &'static str,
    /// Metavar shown in usage (`DIR`, `N`, `FILE`, ...).
    pub value: &'static str,
    /// One-line help.
    pub help: &'static str,
    /// Required flags missing at parse time are a usage error.
    pub required: bool,
}

impl Flag {
    pub const fn optional(name: &'static str, value: &'static str, help: &'static str) -> Self {
        Flag {
            name,
            value,
            help,
            required: false,
        }
    }

    pub const fn required(name: &'static str, value: &'static str, help: &'static str) -> Self {
        Flag {
            name,
            value,
            help,
            required: true,
        }
    }
}

/// `--workers N`: Stage I / sweep worker-pool override (shared).
pub const WORKERS: Flag = Flag::optional(
    "workers",
    "N",
    "worker pool width (positive; default: all cores, or DR_PAR_THREADS)",
);
/// `--chunk-bytes N`: streaming ingestion chunk size (shared).
pub const CHUNK_BYTES: Flag = Flag::optional(
    "chunk-bytes",
    "N",
    "streaming chunk size in bytes (positive; default: sized to the worker pool)",
);
/// `--metrics PATH`: export `gpures-metrics/v1` JSON (shared).
pub const METRICS: Flag = Flag::optional(
    "metrics",
    "PATH",
    "export per-stage spans/counters/gauges/histograms (gpures-metrics/v1 JSON)",
);
/// `--records PATH`: tee `ErrorRecord`s into a columnar store (shared).
pub const RECORDS: Flag = Flag::optional(
    "records",
    "PATH",
    "tee extracted ErrorRecords into a columnar store",
);
/// `--nodes N`: MTBE normalization population (shared by `analyze`/`watch`).
pub const NODES: Flag = Flag::optional("nodes", "N", "node population for MTBE normalization");
/// `--hours H`: observation window (shared by `analyze`/`watch`).
pub const HOURS: Flag = Flag::optional(
    "hours",
    "H",
    "observation window in hours (default 855 days)",
);
/// `--dt SECS`: coalescing window (shared by `analyze`/`watch`).
pub const DT: Flag = Flag::optional("dt", "SECS", "coalescing window (default 5)");

/// A subcommand's declared surface: its flags plus optional positional
/// arguments.
#[derive(Clone, Copy, Debug)]
pub struct FlagSet {
    /// Subcommand name (`campaign`, `sweep`, ...).
    pub cmd: &'static str,
    /// Trailing summary for the usage line (may be empty).
    pub summary: &'static str,
    pub flags: &'static [Flag],
    /// Positional metavar (e.g. `BATTERY...`); `None` rejects positionals.
    pub positional: Option<&'static str>,
    /// With `positional` set: whether at least one is required.
    pub positional_required: bool,
}

impl FlagSet {
    /// The generated one-line usage for this subcommand.
    pub fn usage_line(&self) -> String {
        let mut s = format!("gpures {}", self.cmd);
        if let Some(meta) = self.positional {
            s.push(' ');
            if self.positional_required {
                s.push_str(meta);
            } else {
                s.push_str(&format!("[{meta}]"));
            }
        }
        for f in self.flags {
            if f.required {
                s.push_str(&format!(" --{} {}", f.name, f.value));
            } else {
                s.push_str(&format!(" [--{} {}]", f.name, f.value));
            }
        }
        if !self.summary.is_empty() {
            s.push_str(&format!("   ({})", self.summary));
        }
        s
    }

    /// The full usage block: the line above plus per-flag help.
    pub fn usage(&self) -> String {
        let mut s = self.usage_line();
        for f in self.flags {
            s.push_str(&format!("\n  --{} {}  {}", f.name, f.value, f.help));
        }
        s
    }

    fn lookup(&self, name: &str) -> Option<&'static Flag> {
        self.flags.iter().find(|f| f.name == name)
    }

    /// Parse `args` (everything after the subcommand) against this
    /// table. Unknown flags, missing values, missing required flags, and
    /// unexpected positionals are all [`DataError::Usage`].
    pub fn parse(&self, args: &[String]) -> Result<Opts, DataError> {
        let usage_err = |option: String, message: String| DataError::Usage { option, message };
        let mut values = BTreeMap::new();
        let mut positionals = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let Some(flag) = self.lookup(name) else {
                    return Err(usage_err(
                        format!("--{name}"),
                        format!("unknown option for `gpures {}`", self.cmd),
                    ));
                };
                let Some(v) = it.next() else {
                    return Err(usage_err(
                        format!("--{name}"),
                        format!("expects a {} value", flag.value),
                    ));
                };
                if values.insert(flag.name.to_string(), v.clone()).is_some() {
                    return Err(usage_err(
                        format!("--{name}"),
                        "given more than once".to_string(),
                    ));
                }
            } else if self.positional.is_some() {
                positionals.push(a.clone());
            } else {
                return Err(usage_err(
                    a.clone(),
                    format!("`gpures {}` takes no positional arguments", self.cmd),
                ));
            }
        }
        for f in self.flags.iter().filter(|f| f.required) {
            if !values.contains_key(f.name) {
                return Err(usage_err(
                    format!("--{}", f.name),
                    "is required".to_string(),
                ));
            }
        }
        if self.positional_required && positionals.is_empty() {
            return Err(usage_err(
                self.positional.unwrap_or("ARG").to_string(),
                format!("`gpures {}` needs at least one", self.cmd),
            ));
        }
        Ok(Opts {
            values,
            positionals,
        })
    }
}

/// Parsed options with typed getters. Every getter that can fail returns
/// [`DataError::Usage`] naming the offending flag.
#[derive(Clone, Debug, Default)]
pub struct Opts {
    values: BTreeMap<String, String>,
    positionals: Vec<String>,
}

impl Opts {
    /// Positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    pub fn str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    pub fn path(&self, key: &str) -> Option<PathBuf> {
        self.str(key).map(PathBuf::from)
    }

    pub fn required_path(&self, key: &str) -> Result<PathBuf, DataError> {
        self.path(key).ok_or_else(|| DataError::Usage {
            option: format!("--{key}"),
            message: "is required".to_string(),
        })
    }

    /// Parse a numeric flag, falling back to `default` when absent.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, DataError> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| DataError::Usage {
                option: format!("--{key}"),
                message: format!("`{v}` is not a valid value"),
            }),
        }
    }

    /// An optional numeric flag that must be **positive** when given. An
    /// explicit `0` used to silently mean "use the default", which made
    /// `--chunk-bytes 0` look like a working configuration; it is a
    /// typed usage error carrying the hint instead.
    pub fn positive<T: std::str::FromStr + PartialEq + Default>(
        &self,
        key: &str,
        hint: &str,
    ) -> Result<Option<T>, DataError> {
        let Some(v) = self.str(key) else {
            return Ok(None);
        };
        let n: T = v.parse().map_err(|_| DataError::Usage {
            option: format!("--{key}"),
            message: format!("`{v}` is not a valid value"),
        })?;
        if n == T::default() {
            return Err(DataError::Usage {
                option: format!("--{key}"),
                message: hint.to_string(),
            });
        }
        Ok(Some(n))
    }

    /// An `on|off` toggle with a default.
    pub fn on_off(&self, key: &str, default: bool) -> Result<bool, DataError> {
        match self.str(key) {
            None => Ok(default),
            Some("on") => Ok(true),
            Some("off") => Ok(false),
            Some(v) => Err(DataError::Usage {
                option: format!("--{key}"),
                message: format!("`{v}` is not `on` or `off`"),
            }),
        }
    }

    /// A boolean flag written as `--key true` (also `1`/`yes`).
    pub fn truthy(&self, key: &str) -> bool {
        matches!(self.str(key), Some("true" | "1" | "yes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SET: FlagSet = FlagSet {
        cmd: "frob",
        summary: "frobnicate",
        flags: &[
            Flag::required("out", "DIR", "output directory"),
            WORKERS,
            CHUNK_BYTES,
        ],
        positional: None,
        positional_required: false,
    };

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_flags_and_missing_values_are_usage_errors() {
        let e = TEST_SET
            .parse(&args(&["--out", "x", "--typo", "3"]))
            .expect_err("unknown flag");
        assert_eq!(
            e.to_string(),
            "invalid value for --typo: unknown option for `gpures frob`"
        );
        let e = TEST_SET
            .parse(&args(&["--out"]))
            .expect_err("missing value");
        assert!(e.to_string().contains("expects a DIR value"), "{e}");
        let e = TEST_SET.parse(&args(&[])).expect_err("missing required");
        assert!(e.to_string().contains("--out: is required"), "{e}");
        let e = TEST_SET
            .parse(&args(&["--out", "x", "stray"]))
            .expect_err("positional rejected");
        assert!(e.to_string().contains("no positional arguments"), "{e}");
        let e = TEST_SET
            .parse(&args(&["--out", "a", "--out", "b"]))
            .expect_err("duplicate");
        assert!(e.to_string().contains("more than once"), "{e}");
    }

    #[test]
    fn typed_getters_round_trip_and_validate() {
        let o = TEST_SET
            .parse(&args(&["--out", "d", "--workers", "4"]))
            .expect("parses");
        assert_eq!(o.num::<usize>("workers", 1).expect("number"), 4);
        assert_eq!(o.num::<u64>("chunk-bytes", 9).expect("default"), 9);
        assert_eq!(o.required_path("out").expect("path"), PathBuf::from("d"));

        let o = TEST_SET
            .parse(&args(&["--out", "d", "--chunk-bytes", "0"]))
            .expect("parses");
        let e = o
            .positive::<u64>("chunk-bytes", "must be positive")
            .expect_err("zero rejected");
        assert!(e.to_string().contains("must be positive"), "{e}");
    }

    #[test]
    fn usage_is_generated_from_the_table() {
        let line = TEST_SET.usage_line();
        assert_eq!(
            line,
            "gpures frob --out DIR [--workers N] [--chunk-bytes N]   (frobnicate)"
        );
        let block = TEST_SET.usage();
        assert!(block.contains("--workers N  worker pool width"));
    }

    #[test]
    fn positionals_are_collected_in_order() {
        const POS: FlagSet = FlagSet {
            cmd: "sweep",
            summary: "",
            flags: &[Flag::required("out", "DIR", "artifact directory")],
            positional: Some("BATTERY..."),
            positional_required: true,
        };
        let o = POS
            .parse(&args(&["a.scn", "--out", "d", "b.scn"]))
            .expect("parses");
        assert_eq!(o.positionals(), &["a.scn".to_string(), "b.scn".to_string()]);
        let e = POS.parse(&args(&["--out", "d"])).expect_err("needs one");
        assert!(e.to_string().contains("at least one"), "{e}");
    }
}
