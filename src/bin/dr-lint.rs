//! `dr-lint` — run the workspace's static-analysis passes from the CLI.
//!
//! ```text
//! dr-lint [--root DIR] [--baseline FILE] [--json] [--update-baseline]
//!         [--explain LINT-ID] [--graph-dot]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error. The same
//! checks gate `cargo test` via `tests/lint_clean.rs`; this binary
//! exists for fast local iteration, for `--update-baseline` (which
//! rewrites the debt ledger after paying some of it down), for
//! `--explain` (what a lint id means and how to fix or waive it), and
//! for `--graph-dot` (the workspace call graph in Graphviz form).

use dr_lint::{load_workspace, passes, run, Baseline, Config, SymbolGraph};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dr-lint [--root DIR] [--baseline FILE] [--json] [--update-baseline] \
                     [--explain LINT-ID] [--graph-dot]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut json = false;
    let mut update = false;
    let mut graph_dot = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--json" => json = true,
            "--update-baseline" => update = true,
            "--graph-dot" => graph_dot = true,
            "--explain" => match it.next() {
                Some(id) => {
                    return match passes::explain(id) {
                        Some(text) => {
                            println!("{id}\n\n{text}");
                            ExitCode::SUCCESS
                        }
                        None => {
                            let known: Vec<&str> =
                                passes::all().iter().map(|p| p.id()).collect();
                            eprintln!(
                                "dr-lint: unknown lint id {id:?}; known ids: {}",
                                known.join(", ")
                            );
                            ExitCode::from(2)
                        }
                    };
                }
                None => return usage_error("--explain needs a lint id"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown option {other:?}")),
        }
    }

    if !root.is_dir() {
        eprintln!("dr-lint: root {:?} is not a directory", root.display());
        return ExitCode::from(2);
    }

    if graph_dot {
        return match load_workspace(&root) {
            Ok(ws) => {
                print!("{}", SymbolGraph::build(&ws).to_dot());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dr-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let baseline_path = baseline.unwrap_or_else(|| root.join("dr-lint.baseline"));
    let cfg = Config {
        root,
        baseline: Some(baseline_path.clone()),
    };
    let report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if report.files == 0 {
        eprintln!(
            "dr-lint: no .rs files under {:?} (expected src/ or crates/*/src/)",
            cfg.root.display()
        );
        return ExitCode::from(2);
    }

    if update {
        let ledger = Baseline::render(&report.groups);
        if let Err(e) = std::fs::write(&baseline_path, &ledger) {
            eprintln!("dr-lint: {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        let entries = report.groups.values().filter(|&&c| c > 0).count();
        println!(
            "dr-lint: wrote {} baseline entr{} to {}",
            entries,
            if entries == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if json {
        for d in &report.active {
            println!("{}", d.json());
        }
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("dr-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
