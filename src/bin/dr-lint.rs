//! `dr-lint` — run the workspace's static-analysis passes from the CLI.
//!
//! ```text
//! dr-lint [--root DIR] [--baseline FILE] [--json] [--update-baseline]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error. The same
//! checks gate `cargo test` via `tests/lint_clean.rs`; this binary
//! exists for fast local iteration and for `--update-baseline`, which
//! rewrites the debt ledger after paying some of it down.

use dr_lint::{run, Baseline, Config};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dr-lint [--root DIR] [--baseline FILE] [--json] [--update-baseline]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut json = false;
    let mut update = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--json" => json = true,
            "--update-baseline" => update = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown option {other:?}")),
        }
    }

    if !root.is_dir() {
        eprintln!("dr-lint: root {:?} is not a directory", root.display());
        return ExitCode::from(2);
    }

    let baseline_path = baseline.unwrap_or_else(|| root.join("dr-lint.baseline"));
    let cfg = Config {
        root,
        baseline: Some(baseline_path.clone()),
    };
    let report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if report.files == 0 {
        eprintln!(
            "dr-lint: no .rs files under {:?} (expected src/ or crates/*/src/)",
            cfg.root.display()
        );
        return ExitCode::from(2);
    }

    if update {
        let ledger = Baseline::render(&report.groups);
        if let Err(e) = std::fs::write(&baseline_path, &ledger) {
            eprintln!("dr-lint: {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        let entries = report.groups.values().filter(|&&c| c > 0).count();
        println!(
            "dr-lint: wrote {} baseline entr{} to {}",
            entries,
            if entries == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if json {
        for d in &report.active {
            println!("{}", d.json());
        }
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("dr-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
