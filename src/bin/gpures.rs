//! `gpures` — the command-line front end.
//!
//! ```text
//! gpures campaign  --out DIR [--shape tiny|ampere|h100] [--days N] [--seed S] [--text-nodes N] [--metrics FILE]
//! gpures analyze   --logs DIR [--jobs FILE] [--downtime FILE] [--nodes N] [--hours H] [--dt SECS] [--chunk-bytes N] [--workers N] [--prefetch on|off] [--dot DIR] [--metrics FILE]
//! gpures incidents
//! gpures project   [--gpus N] [--recovery-min M] [--runs R]
//! gpures monitor   [--log FILE] [--nodes N] [--every K]
//! ```
//!
//! `campaign` materializes a synthetic study on disk: per-node syslog
//! files, the job accounting table, and the repair intervals. The syslog
//! text is *streamed* to disk straight from the campaign's generator —
//! the corpus is never resident. `analyze` runs the full pipeline over
//! *any* directory of per-node syslog files — synthetic or real — which
//! is the adoption path for this library: point it at your cluster's
//! logs. Ingestion streams through a `DirSource` in bounded chunk waves
//! (`--chunk-bytes` pins the chunk size), so peak memory is independent
//! of corpus size. `--metrics FILE` attaches the write-only
//! observability sink and exports per-stage spans, counters, gauges, and
//! throughput histograms as `gpures-metrics/v1` JSON (results are
//! bit-identical with or without it).

use gpu_resilience::core::{
    extract_to_store, CoalesceConfig, DirSource, GeneratorSource, LogSource, PipelineBuilder,
    RecordStore, StudyConfig,
};
use gpu_resilience::faults::{all_scenarios, Campaign, CampaignConfig};
use gpu_resilience::obs::MetricsSink;
use gpu_resilience::report::{self, files, render_summary};
use gpu_resilience::slurm::{
    apply_errors, csv as jobs_csv, DrainWindows, JobLoadConfig, MaskingModel, Scheduler,
};
use gpu_resilience::xid::{Duration, Xid};
use rand::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "campaign" => cmd_campaign(&opts),
        "analyze" => cmd_analyze(&opts),
        "incidents" => cmd_incidents(),
        "project" => cmd_project(&opts),
        "monitor" => cmd_monitor(&opts),
        "bench" => cmd_bench(&opts),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  gpures campaign  --out DIR [--shape tiny|ampere|h100] [--days N] [--seed S] [--text-nodes N] [--records FILE] [--metrics FILE]
  gpures analyze   --logs DIR [--jobs FILE] [--downtime FILE] [--nodes N] [--hours H] [--dt SECS] [--chunk-bytes N] [--workers N] [--prefetch on|off] [--records FILE] [--dot DIR] [--metrics FILE]
  gpures analyze   --from-records FILE [--jobs FILE] [--downtime FILE] [--nodes N] [--hours H] [--dt SECS] [--dot DIR] [--metrics FILE]
  gpures incidents
  gpures project   [--gpus N] [--recovery-min M] [--runs R]
  gpures monitor   [--log FILE] [--nodes N] [--every K]   (FILE or stdin; live Table 1)
  gpures bench     [--out DIR] [--smoke true]   (throughput + overhead + streaming + lint + records -> BENCH_*.json)

  --metrics FILE exports per-stage spans/counters/gauges/histograms (gpures-metrics/v1 JSON)
  --chunk-bytes N pins the streaming ingestion chunk size (positive; default: sized to the worker pool)
  --workers N overrides the Stage I worker pool width (positive; default: all cores, or DR_PAR_THREADS)
  --prefetch on|off toggles the I/O-overlapped wave prefetch thread (default: on)
  --records FILE tees extracted ErrorRecords into a columnar store during the extract pass
  --from-records FILE replays a previous extraction from the store (no text re-parse)";

/// `--key value` option bag with typed getters.
struct Opts(BTreeMap<String, String>);

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut map = BTreeMap::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let key = k
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got {k:?}"))?;
        let v = it
            .next()
            .ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), v.clone());
    }
    Ok(Opts(map))
}

impl Opts {
    fn str(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(|s| s.as_str())
    }
    fn path(&self, key: &str) -> Option<PathBuf> {
        self.str(key).map(PathBuf::from)
    }
    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} value {v:?}")),
        }
    }
    fn required_path(&self, key: &str) -> Result<PathBuf, String> {
        self.path(key).ok_or_else(|| format!("--{key} is required"))
    }

    /// An optional numeric flag that must be **positive** when given.
    /// An explicit `0` used to silently mean "use the default", which
    /// made `--chunk-bytes 0` look like a working configuration; it is
    /// now a typed usage error carrying the hint.
    fn positive_num<T: std::str::FromStr + PartialEq + Default>(
        &self,
        key: &str,
        hint: &str,
    ) -> Result<Option<T>, String> {
        let Some(v) = self.str(key) else {
            return Ok(None);
        };
        let n: T = v.parse().map_err(|_| format!("bad --{key} value {v:?}"))?;
        if n == T::default() {
            return Err(gpu_resilience::xid::DataError::Usage {
                option: format!("--{key}"),
                message: hint.to_string(),
            }
            .to_string());
        }
        Ok(Some(n))
    }
}

/// Wrap a filesystem error with the offending path, via the shared
/// [`gpu_resilience::xid::DataError`] currency (so CLI messages read
/// `path: reason` like every other ingest error).
fn io_err(path: &Path, e: std::io::Error) -> String {
    gpu_resilience::xid::DataError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
    .to_string()
}

/// Read a small text artifact (CSV tables), error carrying the path.
fn read_file(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| io_err(path, e))
}

/// Write a text artifact, error carrying the path.
fn write_file(path: &Path, body: &str) -> Result<(), String> {
    std::fs::write(path, body).map_err(|e| io_err(path, e))
}

fn cmd_campaign(opts: &Opts) -> Result<(), String> {
    let out_dir = opts.required_path("out")?;
    let seed: u64 = opts.num("seed", 42)?;
    let shape = opts.str("shape").unwrap_or("tiny");
    let mut cfg = match shape {
        "tiny" => CampaignConfig::tiny(seed),
        "ampere" => CampaignConfig::ampere_study(seed),
        "h100" => CampaignConfig::h100_study(seed),
        other => return Err(format!("unknown --shape {other:?}")),
    };
    cfg.duration_days = opts.num("days", cfg.duration_days)?;
    cfg.text_nodes = opts.num("text-nodes", cfg.text_nodes.max(4))?;
    // The CLI streams text straight to disk; never materialize it.
    cfg.defer_text = true;

    let metrics_path = opts.path("metrics");
    let sink = if metrics_path.is_some() {
        MetricsSink::recording()
    } else {
        MetricsSink::disabled()
    };

    eprintln!(
        "running {shape} campaign: {} nodes, {:.0} days, text for {} nodes ...",
        cfg.shape.node_count(),
        cfg.duration_days,
        cfg.text_nodes
    );
    let out = Campaign::run_observed(cfg, &sink);

    // Workload + impact, so the accounting table reflects the errors.
    let drains = DrainWindows::from_events(
        out.events.iter().map(|e| (e.gpu.node, e.at)),
        Duration::from_hours(24),
    );
    let jobs_per_node_day = 25.0;
    let load = JobLoadConfig {
        total_jobs: (out.fleet.node_count() as f64
            * out.duration.as_hours_f64() / 24.0
            * jobs_per_node_day) as u64,
        duration_days: out.duration.as_hours_f64() / 24.0,
        ..JobLoadConfig::delta_study(seed ^ 0x10b5)
    };
    let mut schedule = Scheduler::new(load).run_observed(&out.fleet, &drains, &sink);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1133);
    apply_errors(&mut schedule.jobs, &out.events, &MaskingModel::default(), &mut rng);

    let log_dir = out_dir.join("logs");
    let written = {
        let mut text = GeneratorSource::from_campaign(&out);
        files::write_node_logs_source(&log_dir, &mut text).map_err(|e| e.to_string())?
    };
    write_file(&out_dir.join("jobs.csv"), &jobs_csv::to_csv(&schedule.jobs))?;
    write_file(
        &out_dir.join("downtime.csv"),
        &files::downtime_to_csv(&out.downtime),
    )?;

    println!(
        "wrote {} node logs ({} lines, {} bytes, streamed), {} jobs, {} downtime intervals to {}",
        written.files,
        written.lines,
        written.bytes,
        schedule.jobs.len(),
        out.downtime.len(),
        out_dir.display()
    );
    // Tee the corpus into a columnar record store: a real extract pass
    // over a fresh generator stream, so the store holds exactly what
    // Stage I produces (not the campaign's ground-truth records).
    if let Some(rec_path) = opts.path("records") {
        let (summary, _stats) = {
            let mut text = GeneratorSource::from_campaign(&out);
            extract_to_store(&mut text, None, &rec_path).map_err(|e| e.to_string())?
        };
        println!(
            "wrote record store {} ({} records, {} blocks, {} bytes)",
            rec_path.display(),
            summary.records,
            summary.blocks,
            summary.bytes
        );
    }

    println!(
        "analyze with:\n  gpures analyze --logs {} --jobs {} --downtime {} --nodes {} --hours {:.0}",
        log_dir.display(),
        out_dir.join("jobs.csv").display(),
        out_dir.join("downtime.csv").display(),
        out.fleet.node_count(),
        out.observation_hours()
    );
    write_metrics(metrics_path.as_deref(), &sink)?;
    Ok(())
}

/// Export the sink's `gpures-metrics/v1` document to `path`, if both a
/// path was given and the sink is recording.
fn write_metrics(path: Option<&Path>, sink: &MetricsSink) -> Result<(), String> {
    let (Some(path), Some(doc)) = (path, sink.export_json()) else {
        return Ok(());
    };
    std::fs::write(path, doc.render()).map_err(|e| e.to_string())?;
    eprintln!("metrics written to {}", path.display());
    Ok(())
}

fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    let jobs = match opts.path("jobs") {
        None => None,
        Some(p) => {
            let text = read_file(&p)?;
            Some(jobs_csv::from_csv(&text).map_err(|e| e.to_string())?)
        }
    };
    let downtime = match opts.path("downtime") {
        None => None,
        Some(p) => {
            let text = read_file(&p)?;
            Some(files::downtime_from_csv(&text).map_err(|e| e.to_string())?)
        }
    };

    let default_hours = 855.0 * 24.0;
    let hours: f64 = opts.num("hours", default_hours)?;
    let dt: u64 = opts.num("dt", 5)?;
    let chunk_bytes = opts.positive_num::<u64>(
        "chunk-bytes",
        "must be a positive byte count (omit the flag to size chunks to the worker pool)",
    )?;
    let workers = opts.positive_num::<usize>(
        "workers",
        "must be a positive worker count (omit the flag to use all cores)",
    )?;
    if let Some(w) = workers {
        gpu_resilience::par::set_worker_override(Some(w));
    }
    let prefetch = match opts.str("prefetch").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(format!("bad --prefetch value {other:?} (on|off)")),
    };

    let study = |nodes: u32| {
        StudyConfig {
            coalesce: CoalesceConfig::with_window_secs(dt),
            ..StudyConfig::ampere_study()
        }
        .with_window(hours, nodes)
    };

    let metrics_path = opts.path("metrics");
    let sink = if metrics_path.is_some() {
        MetricsSink::recording()
    } else {
        MetricsSink::disabled()
    };

    let results = if let Some(store_path) = opts.path("from-records") {
        // Replay path: the corpus was already extracted once; re-run
        // the analyses straight from the columnar store.
        if opts.str("logs").is_some() || opts.str("records").is_some() {
            return Err(gpu_resilience::xid::DataError::Usage {
                option: "--from-records".to_string(),
                message: "replay reads the store alone; drop --logs / --records".to_string(),
            }
            .to_string());
        }
        let store = RecordStore::open(&store_path).map_err(|e| e.to_string())?;
        let nodes: u32 = opts.num("nodes", store.nodes().len() as u32)?;
        eprintln!(
            "replaying {} records from {} ({} nodes, {} blocks) ...",
            store.record_count(),
            store_path.display(),
            store.nodes().len(),
            store.blocks().len()
        );
        let mut reader = store.reader(&store_path).map_err(|e| e.to_string())?;
        PipelineBuilder::new(study(nodes))
            .maybe_jobs(jobs.as_deref())
            .maybe_downtime(downtime.as_deref())
            .metrics(sink.clone())
            .run_record_source(&mut reader)
            .map_err(|e| e.to_string())?
    } else {
        let log_dir = opts.required_path("logs")?;
        // Streaming ingestion: the corpus is read incrementally in
        // chunk waves, never materialized whole.
        let mut source = DirSource::open(&log_dir).map_err(|e| e.to_string())?;
        if source.nodes().is_empty() {
            return Err(format!("no .log files in {}", log_dir.display()));
        }
        let nodes: u32 = opts.num("nodes", source.nodes().len() as u32)?;

        eprintln!(
            "analyzing {} node logs ({} bytes, streamed, {} workers, prefetch {}) ...",
            source.nodes().len(),
            source.total_bytes_hint().unwrap_or(0),
            gpu_resilience::par::max_workers(),
            if prefetch { "on" } else { "off" },
        );
        let records_path = opts.path("records");
        let mut builder = PipelineBuilder::new(study(nodes))
            .maybe_jobs(jobs.as_deref())
            .maybe_downtime(downtime.as_deref())
            .prefetch(prefetch)
            .metrics(sink.clone());
        if let Some(c) = chunk_bytes {
            builder = builder.chunk_bytes(c);
        }
        if let Some(p) = &records_path {
            builder = builder.record_store(p.clone());
        }
        let (results, stats) = builder.run_source(&mut source).map_err(|e| e.to_string())?;
        eprintln!(
            "extraction: {} lines, {} XID lines, {} unknown, {} malformed",
            stats.lines, stats.xid_lines, stats.unknown_xid, stats.malformed
        );
        if let Some(p) = &records_path {
            eprintln!("record store written to {}", p.display());
        }
        results
    };

    println!("{}", report::render_table1(&results).render());
    if let Some(ji) = &results.job_impact {
        println!("{}", report::render_table2(ji).render());
    }
    if let Some(t3) = &results.table3 {
        println!("{}", report::render_table3(t3).render());
    }
    println!("{}", render_summary(&results));

    if let Some(dot_dir) = opts.path("dot") {
        std::fs::create_dir_all(&dot_dir).map_err(|e| e.to_string())?;
        let figs: [(&str, String); 3] = [
            ("fig5.dot", report::render_fig5(&results.propagation)),
            ("fig6.dot", report::render_fig6(&results.propagation)),
            ("fig7.dot", report::render_fig7(&results.propagation)),
        ];
        for (name, body) in figs {
            std::fs::write(dot_dir.join(name), body).map_err(|e| e.to_string())?;
        }
        println!("propagation graphs written to {}", dot_dir.display());
    }
    write_metrics(metrics_path.as_deref(), &sink)?;
    Ok(())
}

fn cmd_incidents() -> Result<(), String> {
    for s in all_scenarios() {
        println!("{}\n", s.render());
    }
    Ok(())
}

fn cmd_project(opts: &Opts) -> Result<(), String> {
    use gpu_resilience::availsim::{simulate_mean, ProjectionConfig};
    let mut cfg = ProjectionConfig::paper_scenario(opts.num("seed", 1)?);
    cfg.job_gpus = opts.num("gpus", cfg.job_gpus)?;
    let recovery: f64 = opts.num("recovery-min", 40.0)?;
    let runs: u32 = opts.num("runs", 40)?;
    let r = simulate_mean(&cfg.with_recovery_minutes(recovery), runs);
    println!(
        "{} GPUs, {:.0}-minute recovery: overprovision {:.1}% (~{:.0} extra GPUs), \
         efficiency {:.1}%, {} restarts/month",
        cfg.job_gpus,
        recovery,
        r.required_overprovision * 100.0,
        r.required_overprovision * cfg.job_gpus as f64,
        r.efficiency * 100.0,
        r.restarts / runs as u64,
    );
    Ok(())
}

/// Streaming mode: feed syslog lines (a file or stdin) through the online
/// pipeline — incremental coalescing plus the constant-memory live
/// Table 1 — and print a status block every `--every` closed episodes.
/// This is the shape of the SRE monitor the paper's Section 4.3 calls for.
fn cmd_monitor(opts: &Opts) -> Result<(), String> {
    use gpu_resilience::core::{CoalesceConfig, OnlineStats, StreamCoalescer};
    use gpu_resilience::logscan::XidExtractor;
    use std::io::BufRead;

    let nodes: u32 = opts.num("nodes", 206)?;
    let every: u64 = opts.num("every", 500)?;
    let reader: Box<dyn BufRead> = match opts.path("log") {
        Some(p) => Box::new(std::io::BufReader::new(
            std::fs::File::open(&p).map_err(|e| format!("{}: {e}", p.display()))?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };

    let mut extractor = XidExtractor::new();
    let mut coalescer = StreamCoalescer::new(CoalesceConfig::default());
    let mut stats = OnlineStats::new(nodes);
    let mut closed_total = 0u64;
    let mut last_print = 0u64;

    let print_status = |stats: &OnlineStats, closed_total: u64, open: usize| {
        println!(
            "-- live Table 1 after {closed_total} coalesced errors ({open} bursts open, \
             {:.1} h observed) --",
            stats.observation_hours()
        );
        for row in stats.rows() {
            if row.count == 0 {
                continue;
            }
            println!(
                "  {:<22} count {:>8}  MTBE/node {:>12}  persistence mean {:>8.2}s  p50 {:>7.2}s  p95 {:>8.2}s",
                row.xid.abbrev(),
                row.count,
                row.mtbe_per_node_h
                    .map(|h| format!("{h:.1} h"))
                    .unwrap_or_else(|| "-".into()),
                row.persistence_mean_s,
                row.persistence_p50_s.unwrap_or(0.0),
                row.persistence_p95_s.unwrap_or(0.0),
            );
        }
    };

    for line in reader.lines() {
        let line = line.map_err(|e| e.to_string())?;
        let Some(record) = extractor.extract_line(&line) else {
            continue;
        };
        for episode in coalescer.push(&record) {
            stats.observe(&episode);
            closed_total += 1;
            // Long-persister alert: the tail the paper says to watch.
            if episode.persistence().as_secs_f64() > 600.0 {
                println!(
                    "ALERT long-persisting {} on {} ({:.0}s, {} lines) — reset recommended",
                    episode.xid,
                    episode.gpu,
                    episode.persistence().as_secs_f64(),
                    episode.merged
                );
            }
        }
        if closed_total >= last_print + every {
            last_print = closed_total;
            print_status(&stats, closed_total, coalescer.open_count());
        }
    }
    for episode in coalescer.finish() {
        stats.observe(&episode);
        closed_total += 1;
    }
    print_status(&stats, closed_total, 0);
    let s = extractor.stats();
    eprintln!(
        "scanned {} lines ({} XID lines, {} unknown, {} malformed)",
        s.lines, s.xid_lines, s.unknown_xid, s.malformed
    );
    Ok(())
}

/// The tracked Stage I throughput benchmark: writes `BENCH_stage1.json`
/// (single-thread optimized vs. baseline engine) and `BENCH_pipeline.json`
/// (sharded extract-and-coalesce worker scaling) to `--out` (default:
/// current directory). `--smoke true` shrinks the corpus for CI — the
/// numbers are meaningless but the full path and schema are exercised.
fn cmd_bench(opts: &Opts) -> Result<(), String> {
    use gpu_resilience::bench::stage1;

    let out_dir = opts.path("out").unwrap_or_else(|| PathBuf::from("."));
    let smoke = matches!(opts.str("smoke"), Some("true" | "1" | "yes"));
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;

    eprintln!(
        "benchmarking Stage I ({}) ...",
        if smoke { "smoke corpus" } else { "full corpus" }
    );
    let stage1_doc = stage1::stage1_report(smoke)?;
    let stage1_path = out_dir.join("BENCH_stage1.json");
    std::fs::write(&stage1_path, stage1_doc.render()).map_err(|e| e.to_string())?;
    if let Some(rows) = stage1_doc.get("workloads").and_then(|w| w.as_arr()) {
        for row in rows {
            let name = row.get("name").and_then(|v| v.as_str()).unwrap_or("?");
            let speedup = row.get("speedup").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let base = row
                .get("baseline")
                .and_then(|m| m.get("lines_per_s"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            let opt = row
                .get("optimized")
                .and_then(|m| m.get("lines_per_s"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            println!(
                "{name:<12} baseline {base:>12.0} lines/s   optimized {opt:>12.0} lines/s   speedup {speedup:.2}x"
            );
        }
    }

    eprintln!("benchmarking sharded pipeline ...");
    let pipe_doc = stage1::pipeline_report(smoke)?;
    let pipe_path = out_dir.join("BENCH_pipeline.json");
    std::fs::write(&pipe_path, pipe_doc.render()).map_err(|e| e.to_string())?;
    let scaling = pipe_doc.get("scaling").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let pool = pipe_doc.get("worker_pool").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let eff = pipe_doc
        .get("scaling_efficiency")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    println!(
        "pipeline     worker matrix scaling {scaling:.2}x over 1 worker \
         (efficiency {eff:.2}, pool {pool:.0})"
    );

    eprintln!("benchmarking observability overhead ...");
    let obs_doc = gpu_resilience::bench::obs::obs_report(smoke)?;
    let obs_path = out_dir.join("BENCH_obs.json");
    std::fs::write(&obs_path, obs_doc.render()).map_err(|e| e.to_string())?;
    let pct = obs_doc
        .get("overhead_pct")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    println!("observability recording-sink overhead {pct:.2}%");

    eprintln!("benchmarking streaming ingestion ...");
    let stream_doc = gpu_resilience::bench::stream::stream_report(smoke)?;
    let stream_path = out_dir.join("BENCH_stream.json");
    std::fs::write(&stream_path, stream_doc.render()).map_err(|e| e.to_string())?;
    if let Some(paths) = stream_doc.get("paths").and_then(|p| p.as_arr()) {
        for p in paths {
            let name = p.get("path").and_then(|v| v.as_str()).unwrap_or("?");
            let peak = p
                .get("peak_resident_bytes")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            let mb = p
                .get("measurement")
                .and_then(|m| m.get("mb_per_s"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            println!("{name:<20} {mb:>8.2} MB/s   peak resident {peak:>12.0} bytes");
        }
    }
    let gap_close = stream_doc
        .get("gap_close_pct")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let pf_speedup = stream_doc
        .get("prefetch_speedup")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    println!(
        "stream       prefetch {pf_speedup:.2}x over sync dir-stream \
         ({gap_close:.0}% of the in-memory gap closed)"
    );

    eprintln!("benchmarking record-store replay ...");
    let rec_doc = gpu_resilience::bench::records::records_report(smoke)?;
    let rec_path = out_dir.join("BENCH_records.json");
    std::fs::write(&rec_path, rec_doc.render()).map_err(|e| e.to_string())?;
    let replay = rec_doc
        .get("replay_speedup")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let overhead = rec_doc
        .get("write_overhead_pct")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let ratio = rec_doc
        .get("compression_ratio")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    println!(
        "records      replay {replay:.1}x over re-parse-from-text \
         (write overhead {overhead:.1}%, store {ratio:.1}x smaller than text)"
    );

    eprintln!("benchmarking dr-lint symbol-graph analysis ...");
    let lint_doc = gpu_resilience::bench::lint::lint_report(smoke, std::path::Path::new("."))?;
    let lint_path = out_dir.join("BENCH_lint.json");
    std::fs::write(&lint_path, lint_doc.render()).map_err(|e| e.to_string())?;
    let symbols = lint_doc.get("symbols").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let edges = lint_doc.get("call_edges").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let wall = lint_doc.get("wall_s").and_then(|v| v.as_f64()).unwrap_or(0.0);
    println!(
        "lint         {symbols:.0} symbols / {edges:.0} call edges analyzed in {:.1} ms",
        wall * 1e3
    );

    println!(
        "wrote {}, {}, {}, {}, {} and {}",
        stage1_path.display(),
        pipe_path.display(),
        obs_path.display(),
        stream_path.display(),
        rec_path.display(),
        lint_path.display()
    );
    Ok(())
}

/// Keep Xid linked in even in minimal builds (used by analyze output).
#[allow(dead_code)]
fn _assert_types(p: &Path) -> Option<Xid> {
    let _ = p;
    None
}
