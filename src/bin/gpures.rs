//! `gpures` — the command-line front end.
//!
//! Run `gpures` with no arguments for the generated usage; every
//! subcommand's flag surface is declared as a [`cli::FlagSet`] table and
//! the usage text is generated from the same tables the parser reads.
//!
//! `campaign` materializes a synthetic study on disk: per-node syslog
//! files, the job accounting table, and the repair intervals. The syslog
//! text is *streamed* to disk straight from the campaign's generator —
//! the corpus is never resident. `analyze` runs the full pipeline over
//! *any* directory of per-node syslog files — synthetic or real — which
//! is the adoption path for this library: point it at your cluster's
//! logs. Ingestion streams through a `DirSource` in bounded chunk waves
//! (`--chunk-bytes` pins the chunk size), so peak memory is independent
//! of corpus size. `sweep` runs a battery of declarative `.scn`
//! scenarios (see `scenarios/` and `DESIGN.md`) through the campaign →
//! analysis pipeline in parallel and writes one deterministic
//! cross-scenario comparison artifact. `--metrics` attaches the
//! write-only observability sink and exports per-stage spans, counters,
//! gauges, and throughput histograms as `gpures-metrics/v1` JSON
//! (results are bit-identical with or without it).

use gpu_resilience::cli::{self, Flag, FlagSet, CHUNK_BYTES, DT, HOURS, METRICS, NODES, RECORDS, WORKERS};
use gpu_resilience::core::{
    extract_to_store, CoalesceConfig, DirSource, GeneratorSource, LogSource, PipelineBuilder,
    Alert, RecordStore, StudyConfig, StudyResults, TailSource, WatchConfig, WatchSession,
};
use gpu_resilience::faults::{all_scenarios, Campaign, CampaignConfig};
use gpu_resilience::obs::MetricsSink;
use gpu_resilience::report::{self, files, render_summary};
use gpu_resilience::slurm::{
    apply_errors, csv as jobs_csv, DrainWindows, JobLoadConfig, MaskingModel, Scheduler,
};
use gpu_resilience::xid::{DataError, Duration};
use rand::prelude::*;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const CAMPAIGN: FlagSet = FlagSet {
    cmd: "campaign",
    summary: "materialize a synthetic study on disk",
    flags: &[
        Flag::required("out", "DIR", "output directory (logs/, jobs.csv, downtime.csv)"),
        Flag::optional("shape", "NAME", "fleet preset: tiny|ampere|h100 (default tiny)"),
        Flag::optional("days", "N", "campaign duration in days (default: the preset's)"),
        Flag::optional("seed", "S", "campaign seed (default 42)"),
        Flag::optional("text-nodes", "N", "how many nodes get full syslog text"),
        RECORDS,
        METRICS,
    ],
    positional: None,
    positional_required: false,
};

const ANALYZE: FlagSet = FlagSet {
    cmd: "analyze",
    summary: "full pipeline over per-node syslog files or a record store",
    flags: &[
        Flag::optional("logs", "DIR", "directory of per-node .log files (streamed)"),
        Flag::optional("from-records", "FILE", "replay a previous extraction (no text re-parse)"),
        Flag::optional("jobs", "FILE", "Slurm accounting CSV (enables Tables 2/3)"),
        Flag::optional("downtime", "FILE", "repair intervals CSV (enables MTTR/availability)"),
        NODES,
        HOURS,
        DT,
        CHUNK_BYTES,
        WORKERS,
        Flag::optional("prefetch", "on|off", "I/O-overlapped wave prefetch (default on)"),
        RECORDS,
        Flag::optional("dot", "DIR", "write Figure 5/6/7 propagation graphs as DOT"),
        METRICS,
    ],
    positional: None,
    positional_required: false,
};

const SWEEP: FlagSet = FlagSet {
    cmd: "sweep",
    summary: "run a .scn scenario battery, write one deterministic artifact",
    flags: &[
        Flag::required("out", "DIR", "directory for the sweep.json artifact"),
        WORKERS,
        Flag::optional("records", "DIR", "tee each run's ground-truth records into DIR"),
        Flag::optional("metrics", "DIR", "export each run's pipeline metrics into DIR"),
    ],
    positional: Some("BATTERY..."),
    positional_required: true,
};

const INCIDENTS: FlagSet = FlagSet {
    cmd: "incidents",
    summary: "replay the paper's scripted incident timelines",
    flags: &[],
    positional: None,
    positional_required: false,
};

const PROJECT: FlagSet = FlagSet {
    cmd: "project",
    summary: "availability projection for large jobs",
    flags: &[
        Flag::optional("gpus", "N", "job size in GPUs"),
        Flag::optional("recovery-min", "M", "recovery time per failure (default 40)"),
        Flag::optional("runs", "R", "simulation runs to average (default 40)"),
        Flag::optional("seed", "S", "simulation seed (default 1)"),
    ],
    positional: None,
    positional_required: false,
};

const MONITOR: FlagSet = FlagSet {
    cmd: "monitor",
    summary: "live Table 1 from a syslog stream (FILE or stdin)",
    flags: &[
        Flag::optional("log", "FILE", "syslog file to follow (default: stdin)"),
        Flag::optional("nodes", "N", "node population (default 206)"),
        Flag::optional("every", "K", "print a status block every K episodes (default 500)"),
    ],
    positional: None,
    positional_required: false,
};

const WATCH: FlagSet = FlagSet {
    cmd: "watch",
    summary: "live-tail per-node syslogs: rolling-window analytics + alerts",
    flags: &[
        Flag::required("logs", "DIR", "directory of per-node .log files to follow"),
        NODES,
        HOURS,
        DT,
        Flag::optional("follow", "on|off", "keep polling for growth (off: drain once, analyze)"),
        Flag::optional("checkpoint", "FILE", "tail position file (resumes if present, saved each poll)"),
        Flag::optional("lateness-secs", "S", "event-time watermark for out-of-order lines (default 120)"),
        Flag::optional("window-hours", "H", "rolling window for live metrics and alerts (default 24)"),
        Flag::optional("offender-threshold", "K", "windowed episodes marking an emerging offender (default 5)"),
        Flag::optional("storm-threshold", "K", "windowed XID-95 episodes marking storm onset (default 3)"),
        Flag::optional("snapshots", "DIR", "write a gpures-metrics/v1 snapshot here every poll"),
        Flag::optional("alerts", "FILE", "append alerts here as they fire"),
        Flag::optional("interval-secs", "S", "sleep between polls while following (default 2)"),
        Flag::optional("max-polls", "N", "stop following after N polls (default: unbounded)"),
        CHUNK_BYTES,
        METRICS,
    ],
    positional: None,
    positional_required: false,
};

const BENCH: FlagSet = FlagSet {
    cmd: "bench",
    summary: "tracked benchmarks -> BENCH_*.json",
    flags: &[
        Flag::optional("out", "DIR", "artifact directory (default .)"),
        Flag::optional("smoke", "true", "shrink corpora for CI; numbers are meaningless"),
    ],
    positional: None,
    positional_required: false,
};

const ALL_SETS: [&FlagSet; 8] = [
    &CAMPAIGN, &ANALYZE, &SWEEP, &INCIDENTS, &PROJECT, &MONITOR, &WATCH, &BENCH,
];

fn usage() -> String {
    let mut s = String::from("usage:\n");
    for set in ALL_SETS {
        s.push_str("  ");
        s.push_str(&set.usage_line());
        s.push('\n');
    }
    s.push_str(
        "\nrun a subcommand with a bad flag to see its per-flag help;\n\
         sweep BATTERY entries are .scn files, directories of them, or bundled names\n\
         (ampere_study, h100_study, tiny, gh200_heavy, mixed_generation, delta_10x)",
    );
    s
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let Some(set) = ALL_SETS.iter().find(|s| s.cmd == cmd.as_str()) else {
        eprintln!("error: unknown command {cmd:?}\n{}", usage());
        return ExitCode::FAILURE;
    };
    let opts = match set.parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", set.usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "campaign" => cmd_campaign(&opts),
        "analyze" => cmd_analyze(&opts),
        "sweep" => cmd_sweep(&opts),
        "incidents" => cmd_incidents(),
        "project" => cmd_project(&opts),
        "monitor" => cmd_monitor(&opts),
        "watch" => cmd_watch(&opts),
        "bench" => cmd_bench(&opts),
        _ => unreachable!("command validated against ALL_SETS"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Adapter from the typed option errors to the CLI's `String` error
/// plumbing (orphan rules forbid `From<DataError> for String`).
trait OrString<T> {
    fn s(self) -> Result<T, String>;
}

impl<T> OrString<T> for Result<T, DataError> {
    fn s(self) -> Result<T, String> {
        self.map_err(|e| e.to_string())
    }
}

/// Wrap a filesystem error with the offending path, via the shared
/// [`DataError`] currency (so CLI messages read `path: reason` like
/// every other ingest error).
fn io_err(path: &Path, e: std::io::Error) -> String {
    DataError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
    .to_string()
}

/// Read a small text artifact (CSV tables, .scn files), error carrying
/// the path.
fn read_file(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| io_err(path, e))
}

/// Write a text artifact, error carrying the path.
fn write_file(path: &Path, body: &str) -> Result<(), String> {
    std::fs::write(path, body).map_err(|e| io_err(path, e))
}

fn cmd_campaign(opts: &cli::Opts) -> Result<(), String> {
    let out_dir = opts.required_path("out").s()?;
    let seed: u64 = opts.num("seed", 42).s()?;
    let shape = opts.str("shape").unwrap_or("tiny");
    let mut cfg = match shape {
        "tiny" => CampaignConfig::tiny(seed),
        "ampere" => CampaignConfig::ampere_study(seed),
        "h100" => CampaignConfig::h100_study(seed),
        other => return Err(format!("unknown --shape {other:?}")),
    };
    cfg.duration_days = opts.num("days", cfg.duration_days).s()?;
    cfg.text.nodes = opts.num("text-nodes", cfg.text.nodes.max(4)).s()?;
    // The CLI streams text straight to disk; never materialize it.
    cfg.text.defer = true;

    let metrics_path = opts.path("metrics");
    let sink = if metrics_path.is_some() {
        MetricsSink::recording()
    } else {
        MetricsSink::disabled()
    };

    eprintln!(
        "running {shape} campaign: {} nodes, {:.0} days, text for {} nodes ...",
        cfg.shape.node_count(),
        cfg.duration_days,
        cfg.text.nodes
    );
    let out = Campaign::run_observed(cfg, &sink);

    // Workload + impact, so the accounting table reflects the errors.
    let drains = DrainWindows::from_events(
        out.events.iter().map(|e| (e.gpu.node, e.at)),
        Duration::from_hours(24),
    );
    let jobs_per_node_day = 25.0;
    let load = JobLoadConfig {
        total_jobs: (out.fleet.node_count() as f64
            * out.duration.as_hours_f64() / 24.0
            * jobs_per_node_day) as u64,
        duration_days: out.duration.as_hours_f64() / 24.0,
        ..JobLoadConfig::delta_study(seed ^ 0x10b5)
    };
    let mut schedule = Scheduler::new(load).run_observed(&out.fleet, &drains, &sink);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1133);
    apply_errors(&mut schedule.jobs, &out.events, &MaskingModel::default(), &mut rng);

    let log_dir = out_dir.join("logs");
    let written = {
        let mut text = GeneratorSource::from_campaign(&out);
        files::write_node_logs_source(&log_dir, &mut text).map_err(|e| e.to_string())?
    };
    write_file(&out_dir.join("jobs.csv"), &jobs_csv::to_csv(&schedule.jobs))?;
    write_file(
        &out_dir.join("downtime.csv"),
        &files::downtime_to_csv(&out.downtime),
    )?;

    println!(
        "wrote {} node logs ({} lines, {} bytes, streamed), {} jobs, {} downtime intervals to {}",
        written.files,
        written.lines,
        written.bytes,
        schedule.jobs.len(),
        out.downtime.len(),
        out_dir.display()
    );
    // Tee the corpus into a columnar record store: a real extract pass
    // over a fresh generator stream, so the store holds exactly what
    // Stage I produces (not the campaign's ground-truth records).
    if let Some(rec_path) = opts.path("records") {
        let (summary, _stats) = {
            let mut text = GeneratorSource::from_campaign(&out);
            extract_to_store(&mut text, None, &rec_path).map_err(|e| e.to_string())?
        };
        println!(
            "wrote record store {} ({} records, {} blocks, {} bytes)",
            rec_path.display(),
            summary.records,
            summary.blocks,
            summary.bytes
        );
    }

    println!(
        "analyze with:\n  gpures analyze --logs {} --jobs {} --downtime {} --nodes {} --hours {:.0}",
        log_dir.display(),
        out_dir.join("jobs.csv").display(),
        out_dir.join("downtime.csv").display(),
        out.fleet.node_count(),
        out.observation_hours()
    );
    write_metrics(metrics_path.as_deref(), &sink)?;
    Ok(())
}

/// Export the sink's `gpures-metrics/v1` document to `path`, if both a
/// path was given and the sink is recording.
fn write_metrics(path: Option<&Path>, sink: &MetricsSink) -> Result<(), String> {
    let (Some(path), Some(doc)) = (path, sink.export_json()) else {
        return Ok(());
    };
    std::fs::write(path, doc.render()).map_err(|e| e.to_string())?;
    eprintln!("metrics written to {}", path.display());
    Ok(())
}

fn cmd_analyze(opts: &cli::Opts) -> Result<(), String> {
    let jobs = match opts.path("jobs") {
        None => None,
        Some(p) => {
            let text = read_file(&p)?;
            Some(jobs_csv::from_csv(&text).map_err(|e| e.to_string())?)
        }
    };
    let downtime = match opts.path("downtime") {
        None => None,
        Some(p) => {
            let text = read_file(&p)?;
            Some(files::downtime_from_csv(&text).map_err(|e| e.to_string())?)
        }
    };

    let default_hours = 855.0 * 24.0;
    let hours: f64 = opts.num("hours", default_hours).s()?;
    let dt: u64 = opts.num("dt", 5).s()?;
    let chunk_bytes = opts
        .positive::<u64>(
            "chunk-bytes",
            "must be a positive byte count (omit the flag to size chunks to the worker pool)",
        )
        .s()?;
    let workers = opts
        .positive::<usize>(
            "workers",
            "must be a positive worker count (omit the flag to use all cores)",
        )
        .s()?;
    if let Some(w) = workers {
        gpu_resilience::par::set_worker_override(Some(w));
    }
    let prefetch = opts.on_off("prefetch", true).s()?;

    let study = |nodes: u32| {
        StudyConfig {
            coalesce: CoalesceConfig::with_window_secs(dt),
            ..StudyConfig::ampere_study()
        }
        .with_window(hours, nodes)
    };

    let metrics_path = opts.path("metrics");
    let sink = if metrics_path.is_some() {
        MetricsSink::recording()
    } else {
        MetricsSink::disabled()
    };

    let results = if let Some(store_path) = opts.path("from-records") {
        // Replay path: the corpus was already extracted once; re-run
        // the analyses straight from the columnar store.
        if opts.str("logs").is_some() || opts.str("records").is_some() {
            return Err(DataError::Usage {
                option: "--from-records".to_string(),
                message: "replay reads the store alone; drop --logs / --records".to_string(),
            }
            .to_string());
        }
        let store = RecordStore::open(&store_path).map_err(|e| e.to_string())?;
        let nodes: u32 = opts.num("nodes", store.nodes().len() as u32).s()?;
        eprintln!(
            "replaying {} records from {} ({} nodes, {} blocks) ...",
            store.record_count(),
            store_path.display(),
            store.nodes().len(),
            store.blocks().len()
        );
        let mut reader = store.reader(&store_path).map_err(|e| e.to_string())?;
        PipelineBuilder::new(study(nodes))
            .maybe_jobs(jobs.as_deref())
            .maybe_downtime(downtime.as_deref())
            .metrics(sink.clone())
            .run_record_source(&mut reader)
            .map_err(|e| e.to_string())?
    } else {
        let log_dir = opts.required_path("logs").s()?;
        // Streaming ingestion: the corpus is read incrementally in
        // chunk waves, never materialized whole.
        let mut source = DirSource::open(&log_dir).map_err(|e| e.to_string())?;
        if source.nodes().is_empty() {
            return Err(format!("no .log files in {}", log_dir.display()));
        }
        let nodes: u32 = opts.num("nodes", source.nodes().len() as u32).s()?;

        eprintln!(
            "analyzing {} node logs ({} bytes, streamed, {} workers, prefetch {}) ...",
            source.nodes().len(),
            source.total_bytes_hint().unwrap_or(0),
            gpu_resilience::par::max_workers(),
            if prefetch { "on" } else { "off" },
        );
        let records_path = opts.path("records");
        let mut builder = PipelineBuilder::new(study(nodes))
            .maybe_jobs(jobs.as_deref())
            .maybe_downtime(downtime.as_deref())
            .prefetch(prefetch)
            .metrics(sink.clone());
        if let Some(c) = chunk_bytes {
            builder = builder.chunk_bytes(c);
        }
        if let Some(p) = &records_path {
            builder = builder.record_store(p.clone());
        }
        let (results, stats) = builder.run_source(&mut source).map_err(|e| e.to_string())?;
        eprintln!(
            "extraction: {} lines, {} XID lines, {} unknown, {} malformed",
            stats.lines, stats.xid_lines, stats.unknown_xid, stats.malformed
        );
        if let Some(p) = &records_path {
            eprintln!("record store written to {}", p.display());
        }
        results
    };

    print_results(&results);

    if let Some(dot_dir) = opts.path("dot") {
        std::fs::create_dir_all(&dot_dir).map_err(|e| e.to_string())?;
        let figs: [(&str, String); 3] = [
            ("fig5.dot", report::render_fig5(&results.propagation)),
            ("fig6.dot", report::render_fig6(&results.propagation)),
            ("fig7.dot", report::render_fig7(&results.propagation)),
        ];
        for (name, body) in figs {
            std::fs::write(dot_dir.join(name), body).map_err(|e| e.to_string())?;
        }
        println!("propagation graphs written to {}", dot_dir.display());
    }
    write_metrics(metrics_path.as_deref(), &sink)?;
    Ok(())
}

/// Print a study's stdout report: Table 1, Tables 2/3 when jobs were
/// joined, then the summary block. Shared by `analyze` and the `watch`
/// drain path so a drained watch prints byte-for-byte what `analyze`
/// prints on the same corpus.
fn print_results(results: &StudyResults) {
    println!("{}", report::render_table1(results).render());
    if let Some(ji) = &results.job_impact {
        println!("{}", report::render_table2(ji).render());
    }
    if let Some(t3) = &results.table3 {
        println!("{}", report::render_table3(t3).render());
    }
    println!("{}", render_summary(results));
}

/// Resolve one `sweep` battery argument into `(label, source)` pairs:
/// a `.scn` file, a directory of them (sorted by name), or a bundled
/// scenario name.
fn battery_sources(arg: &str) -> Result<Vec<(String, String)>, String> {
    let p = Path::new(arg);
    if p.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(p)
            .map_err(|e| io_err(p, e))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|q| q.extension().map(|x| x == "scn").unwrap_or(false))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(DataError::Usage {
                option: p.display().to_string(),
                message: "directory contains no .scn files".to_string(),
            }
            .to_string());
        }
        files
            .into_iter()
            .map(|f| Ok((f.display().to_string(), read_file(&f)?)))
            .collect()
    } else if p.is_file() {
        Ok(vec![(p.display().to_string(), read_file(p)?)])
    } else if let Some(src) = gpu_resilience::scenario::preset_source(arg) {
        Ok(vec![(format!("bundled `{arg}`"), src.to_string())])
    } else {
        Err(DataError::Usage {
            option: arg.to_string(),
            message: "matches no .scn file, directory of them, or bundled scenario name"
                .to_string(),
        }
        .to_string())
    }
}

/// `gpures sweep`: parse the battery (all file I/O happens here — the
/// driver library never reads disk), run every `(scenario, seed)` pair
/// in parallel, write the deterministic `sweep.json` artifact, and print
/// a per-run summary from the artifact itself so stdout and the JSON
/// cannot disagree. Exits nonzero if any reference-checked scenario
/// misses its paper tolerances.
fn cmd_sweep(opts: &cli::Opts) -> Result<(), String> {
    use gpu_resilience::obs::json::Json;
    use gpu_resilience::report::sweep::{run_battery, SweepOptions};
    use gpu_resilience::scenario::Scenario;

    let out_dir = opts.required_path("out").s()?;
    if let Some(w) = opts
        .positive::<usize>(
            "workers",
            "must be a positive worker count (omit the flag to use all cores)",
        )
        .s()?
    {
        gpu_resilience::par::set_worker_override(Some(w));
    }

    let mut battery: Vec<Scenario> = Vec::new();
    for arg in opts.positionals() {
        for (label, src) in battery_sources(arg)? {
            battery.push(Scenario::parse(&src).map_err(|e| format!("{label}: {e}"))?);
        }
    }
    let runs: usize = battery.iter().map(|s| s.seeds.len()).sum();
    eprintln!(
        "sweeping {} scenarios ({} runs, {} workers) ...",
        battery.len(),
        runs,
        gpu_resilience::par::max_workers()
    );

    let sweep_opts = SweepOptions {
        records_dir: opts.path("records"),
        metrics_dir: opts.path("metrics"),
    };
    let doc = run_battery(&battery, &sweep_opts).map_err(|e| e.to_string())?;

    std::fs::create_dir_all(&out_dir).map_err(|e| io_err(&out_dir, e))?;
    let artifact = out_dir.join("sweep.json");
    write_file(&artifact, &doc.render())?;

    let f = |row: &Json, key: &str| row.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
    if let Some(rows) = doc.get("rows").and_then(Json::as_arr) {
        for row in rows {
            let name = row.get("scenario").and_then(Json::as_str).unwrap_or("?");
            let verdict = match row.get("expect").and_then(|e| e.get("pass")) {
                Some(Json::Bool(true)) => "pass",
                Some(Json::Bool(false)) => "FAIL",
                _ => "-",
            };
            println!(
                "{name:<18} seed {:<6} {:>5} nodes {:>6} GPUs {:>8} events  MTBE/node {:>10}  {verdict}",
                f(row, "seed"),
                f(row, "nodes"),
                f(row, "gpus"),
                f(row, "events"),
                row.get("mtbe_node_h")
                    .and_then(Json::as_f64)
                    .map(|h| format!("{h:.1} h"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    let summary = doc.get("summary");
    let checked = summary.and_then(|s| s.get("checked")).and_then(Json::as_f64).unwrap_or(0.0);
    let passed = summary.and_then(|s| s.get("passed")).and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "{} runs, {checked:.0} reference-checked, {passed:.0} passed; artifact {}",
        doc.get("runs").and_then(Json::as_f64).unwrap_or(0.0),
        artifact.display()
    );
    if passed < checked {
        let failed = summary
            .and_then(|s| s.get("failed"))
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(Json::as_str)
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_default();
        return Err(format!("paper-tolerance check failed for: {failed}"));
    }
    Ok(())
}

fn cmd_incidents() -> Result<(), String> {
    for s in all_scenarios() {
        println!("{}\n", s.render());
    }
    Ok(())
}

fn cmd_project(opts: &cli::Opts) -> Result<(), String> {
    use gpu_resilience::availsim::{simulate_mean, ProjectionConfig};
    let mut cfg = ProjectionConfig::paper_scenario(opts.num("seed", 1).s()?);
    cfg.job_gpus = opts.num("gpus", cfg.job_gpus).s()?;
    let recovery: f64 = opts.num("recovery-min", 40.0).s()?;
    let runs: u32 = opts.num("runs", 40).s()?;
    let r = simulate_mean(&cfg.with_recovery_minutes(recovery), runs);
    println!(
        "{} GPUs, {:.0}-minute recovery: overprovision {:.1}% (~{:.0} extra GPUs), \
         efficiency {:.1}%, {} restarts/month",
        cfg.job_gpus,
        recovery,
        r.required_overprovision * 100.0,
        r.required_overprovision * cfg.job_gpus as f64,
        r.efficiency * 100.0,
        r.restarts / runs as u64,
    );
    Ok(())
}

/// Streaming mode: feed syslog lines (a file or stdin) through the online
/// pipeline — incremental coalescing plus the constant-memory live
/// Table 1 — and print a status block every `--every` closed episodes.
/// This is the shape of the SRE monitor the paper's Section 4.3 calls for.
fn cmd_monitor(opts: &cli::Opts) -> Result<(), String> {
    use gpu_resilience::core::{CoalesceConfig, OnlineStats, StreamCoalescer};
    use gpu_resilience::logscan::XidExtractor;
    use std::io::BufRead;

    let nodes: u32 = opts.num("nodes", 206).s()?;
    let every: u64 = opts.num("every", 500).s()?;
    let reader: Box<dyn BufRead> = match opts.path("log") {
        Some(p) => Box::new(std::io::BufReader::new(
            std::fs::File::open(&p).map_err(|e| format!("{}: {e}", p.display()))?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };

    let mut extractor = XidExtractor::new();
    let mut coalescer = StreamCoalescer::new(CoalesceConfig::default());
    let mut stats = OnlineStats::new(nodes);
    let mut closed_total = 0u64;
    let mut last_print = 0u64;

    let print_status = |stats: &OnlineStats, closed_total: u64, open: usize| {
        println!(
            "-- live Table 1 after {closed_total} coalesced errors ({open} bursts open, \
             {:.1} h observed) --",
            stats.observation_hours()
        );
        for row in stats.rows() {
            if row.count == 0 {
                continue;
            }
            println!(
                "  {:<22} count {:>8}  MTBE/node {:>12}  persistence mean {:>8.2}s  p50 {:>7.2}s  p95 {:>8.2}s",
                row.xid.abbrev(),
                row.count,
                row.mtbe_per_node_h
                    .map(|h| format!("{h:.1} h"))
                    .unwrap_or_else(|| "-".into()),
                row.persistence_mean_s,
                row.persistence_p50_s.unwrap_or(0.0),
                row.persistence_p95_s.unwrap_or(0.0),
            );
        }
    };

    for line in reader.lines() {
        let line = line.map_err(|e| e.to_string())?;
        let Some(record) = extractor.extract_line(&line) else {
            continue;
        };
        for episode in coalescer.push(&record) {
            stats.observe(&episode);
            closed_total += 1;
            // Long-persister alert: the tail the paper says to watch.
            if episode.persistence().as_secs_f64() > 600.0 {
                println!(
                    "ALERT long-persisting {} on {} ({:.0}s, {} lines) — reset recommended",
                    episode.xid,
                    episode.gpu,
                    episode.persistence().as_secs_f64(),
                    episode.merged
                );
            }
        }
        if closed_total >= last_print + every {
            last_print = closed_total;
            print_status(&stats, closed_total, coalescer.open_count());
        }
    }
    for episode in coalescer.finish() {
        stats.observe(&episode);
        closed_total += 1;
    }
    print_status(&stats, closed_total, 0);
    let s = extractor.stats();
    eprintln!(
        "scanned {} lines ({} XID lines, {} unknown, {} malformed)",
        s.lines, s.xid_lines, s.unknown_xid, s.malformed
    );
    Ok(())
}

/// Echo alerts to stderr and, when `--alerts FILE` was given, append
/// them there — one rendered alert per line, in firing order.
fn emit_alerts(alerts: &[Alert], path: Option<&Path>) -> Result<(), String> {
    for a in alerts {
        eprintln!("ALERT {a}");
    }
    let Some(p) = path else {
        return Ok(());
    };
    if alerts.is_empty() {
        return Ok(());
    }
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(p)
        .map_err(|e| io_err(p, e))?;
    for a in alerts {
        writeln!(f, "{a}").map_err(|e| io_err(p, e))?;
    }
    Ok(())
}

/// Publish the session's rolling-window view as last-value gauges on the
/// sink, so every exported `gpures-metrics/v1` document carries the live
/// state alongside the per-stage counters. Gauges are event-time
/// quantities: re-exporting without new input re-publishes identical
/// values.
fn publish_watch_gauges(session: &WatchSession, sink: &MetricsSink) {
    use gpu_resilience::obs::Stage;
    let s = session.snapshot();
    sink.gauge_set(Stage::Stats, "watch_window_errors", s.windowed_mtbe.count as f64);
    sink.gauge_set(
        Stage::Stats,
        "watch_window_mtbe_node_h",
        s.windowed_mtbe.mtbe_per_node_h.unwrap_or(f64::INFINITY),
    );
    sink.gauge_set(Stage::Stats, "watch_active_offenders", s.offenders.len() as f64);
    sink.gauge_set(
        Stage::Stats,
        "watch_top_offender_count",
        s.offenders.first().map(|o| o.count as f64).unwrap_or(0.0),
    );
    sink.gauge_set(
        Stage::Propagation,
        "watch_multi_gpu_nodes",
        s.propagation.multi_gpu_nodes as f64,
    );
    sink.gauge_set(Stage::Coalesce, "watch_open_episodes", s.open_episodes as f64);
    sink.gauge_set(Stage::Coalesce, "watch_pending_records", s.pending as f64);
    sink.gauge_set(Stage::Coalesce, "watch_late_dropped", s.stats.late_dropped as f64);
    sink.gauge_set(Stage::Stats, "watch_alerts_total", s.alerts_total as f64);
}

/// Live mode: follow growing/rotating per-node syslogs through the
/// incremental pipeline — tail → extract → event-time watermark →
/// streaming coalesce → rolling-window accumulators — and raise
/// deterministic threshold alerts. With `--follow off` the corpus is
/// drained once and the final report printed exactly like `analyze`;
/// everything downstream of ingestion is keyed on event time, so a
/// drained watch and a batch analyze agree bit-for-bit.
fn cmd_watch(opts: &cli::Opts) -> Result<(), String> {
    let log_dir = opts.required_path("logs").s()?;
    let follow = opts.on_off("follow", true).s()?;
    let hours: f64 = opts.num("hours", 855.0 * 24.0).s()?;
    let dt: u64 = opts.num("dt", 5).s()?;
    let lateness: u64 = opts.num("lateness-secs", 120).s()?;
    let window_hours: f64 = opts.num("window-hours", 24.0).s()?;
    let offender_threshold: u64 = opts.num("offender-threshold", 5).s()?;
    let storm_threshold: u64 = opts.num("storm-threshold", 3).s()?;
    let interval: u64 = opts.num("interval-secs", 2).s()?;
    let max_polls: u64 = opts.num("max-polls", 0).s()?;
    let chunk_bytes = opts
        .positive::<u64>(
            "chunk-bytes",
            "must be a positive byte count (omit the flag for the default)",
        )
        .s()?;
    let ckpt = opts.path("checkpoint");
    let snapshots_dir = opts.path("snapshots");
    let alerts_path = opts.path("alerts");
    let metrics_path = opts.path("metrics");

    let mut source = match &ckpt {
        Some(c) => TailSource::open_with_checkpoint(&log_dir, c).map_err(|e| e.to_string())?,
        None => TailSource::open(&log_dir).map_err(|e| e.to_string())?,
    };
    if source.nodes().is_empty() {
        return Err(format!("no .log files in {}", log_dir.display()));
    }
    let nodes: u32 = opts.num("nodes", source.nodes().len() as u32).s()?;

    let study = StudyConfig {
        coalesce: CoalesceConfig::with_window_secs(dt),
        ..StudyConfig::ampere_study()
    }
    .with_window(hours, nodes);
    let mut cfg = WatchConfig {
        study,
        lateness: Duration::from_secs(lateness),
        window: Duration::from_secs_f64(window_hours * 3600.0),
        offender_threshold,
        storm_threshold,
        ..WatchConfig::default()
    };
    if let Some(c) = chunk_bytes {
        cfg.chunk_bytes = c;
    }

    let recording = metrics_path.is_some() || snapshots_dir.is_some();
    let sink = if recording {
        MetricsSink::recording()
    } else {
        MetricsSink::disabled()
    };
    if let Some(d) = &snapshots_dir {
        std::fs::create_dir_all(d).map_err(|e| io_err(d, e))?;
    }
    eprintln!(
        "watching {} node logs in {} ({}, lateness {lateness}s, window {window_hours}h) ...",
        source.nodes().len(),
        log_dir.display(),
        if follow { "following" } else { "drain once" },
    );

    let mut session = WatchSession::new(cfg);
    let mut polls: u64 = 0;
    loop {
        let delta = session.run_observed(&mut source, &sink).map_err(|e| e.to_string())?;
        polls += 1;

        emit_alerts(&session.take_new_alerts(), alerts_path.as_deref())?;
        if let Some(c) = &ckpt {
            source.save_checkpoint(c).map_err(|e| e.to_string())?;
        }
        if recording {
            publish_watch_gauges(&session, &sink);
        }
        if let Some(d) = &snapshots_dir {
            if let Some(doc) = sink.export_json() {
                let path = d.join(format!("snapshot_{polls:06}.json"));
                std::fs::write(&path, doc.render()).map_err(|e| io_err(&path, e))?;
            }
        }
        if delta.records > 0 || delta.episodes > 0 {
            let s = session.stats();
            eprintln!(
                "poll {polls}: +{} lines, +{} records, +{} episodes (total {} episodes, {} pending, {} late-dropped)",
                delta.lines,
                delta.records,
                delta.episodes,
                s.episodes,
                session.snapshot().pending,
                s.late_dropped
            );
        }

        if !follow || (max_polls > 0 && polls >= max_polls) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_secs(interval));
    }

    // Close the remaining open episodes so end-of-stream threshold
    // crossings surface before the final report.
    session.drain();
    emit_alerts(&session.take_new_alerts(), alerts_path.as_deref())?;
    let stats = session.stats();
    let results = session.finish_observed(&sink);
    print_results(&results);
    eprintln!(
        "watched {} polls: {} lines, {} records, {} released, {} late-dropped",
        stats.polls, stats.lines, stats.records, stats.released, stats.late_dropped
    );
    if stats.late_dropped > 0 {
        eprintln!(
            "warning: {} records arrived beyond --lateness-secs {lateness} and were dropped; \
             the report differs from a batch analyze",
            stats.late_dropped
        );
    }
    write_metrics(metrics_path.as_deref(), &sink)?;
    Ok(())
}

/// The tracked benchmark suite: writes `BENCH_stage1.json`,
/// `BENCH_pipeline.json`, `BENCH_obs.json`, `BENCH_stream.json`,
/// `BENCH_records.json`, `BENCH_lint.json`, `BENCH_watch.json` and
/// `BENCH_sweep.json` to `--out` (default: current directory). `--smoke true` shrinks the
/// corpora for CI — the numbers are meaningless but the full path and
/// schema are exercised.
fn cmd_bench(opts: &cli::Opts) -> Result<(), String> {
    use gpu_resilience::bench::stage1;

    let out_dir = opts.path("out").unwrap_or_else(|| PathBuf::from("."));
    let smoke = opts.truthy("smoke");
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;

    eprintln!(
        "benchmarking Stage I ({}) ...",
        if smoke { "smoke corpus" } else { "full corpus" }
    );
    let stage1_doc = stage1::stage1_report(smoke)?;
    let stage1_path = out_dir.join("BENCH_stage1.json");
    std::fs::write(&stage1_path, stage1_doc.render()).map_err(|e| e.to_string())?;
    if let Some(rows) = stage1_doc.get("workloads").and_then(|w| w.as_arr()) {
        for row in rows {
            let name = row.get("name").and_then(|v| v.as_str()).unwrap_or("?");
            let speedup = row.get("speedup").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let base = row
                .get("baseline")
                .and_then(|m| m.get("lines_per_s"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            let opt = row
                .get("optimized")
                .and_then(|m| m.get("lines_per_s"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            println!(
                "{name:<12} baseline {base:>12.0} lines/s   optimized {opt:>12.0} lines/s   speedup {speedup:.2}x"
            );
        }
    }

    eprintln!("benchmarking sharded pipeline ...");
    let pipe_doc = stage1::pipeline_report(smoke)?;
    let pipe_path = out_dir.join("BENCH_pipeline.json");
    std::fs::write(&pipe_path, pipe_doc.render()).map_err(|e| e.to_string())?;
    let scaling = pipe_doc.get("scaling").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let pool = pipe_doc.get("worker_pool").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let eff = pipe_doc
        .get("scaling_efficiency")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    println!(
        "pipeline     worker matrix scaling {scaling:.2}x over 1 worker \
         (efficiency {eff:.2}, pool {pool:.0})"
    );

    eprintln!("benchmarking observability overhead ...");
    let obs_doc = gpu_resilience::bench::obs::obs_report(smoke)?;
    let obs_path = out_dir.join("BENCH_obs.json");
    std::fs::write(&obs_path, obs_doc.render()).map_err(|e| e.to_string())?;
    let pct = obs_doc
        .get("overhead_pct")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    println!("observability recording-sink overhead {pct:.2}%");

    eprintln!("benchmarking streaming ingestion ...");
    let stream_doc = gpu_resilience::bench::stream::stream_report(smoke)?;
    let stream_path = out_dir.join("BENCH_stream.json");
    std::fs::write(&stream_path, stream_doc.render()).map_err(|e| e.to_string())?;
    if let Some(paths) = stream_doc.get("paths").and_then(|p| p.as_arr()) {
        for p in paths {
            let name = p.get("path").and_then(|v| v.as_str()).unwrap_or("?");
            let peak = p
                .get("peak_resident_bytes")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            let mb = p
                .get("measurement")
                .and_then(|m| m.get("mb_per_s"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            println!("{name:<20} {mb:>8.2} MB/s   peak resident {peak:>12.0} bytes");
        }
    }
    let gap_close = stream_doc
        .get("gap_close_pct")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let pf_speedup = stream_doc
        .get("prefetch_speedup")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    println!(
        "stream       prefetch {pf_speedup:.2}x over sync dir-stream \
         ({gap_close:.0}% of the in-memory gap closed)"
    );

    eprintln!("benchmarking record-store replay ...");
    let rec_doc = gpu_resilience::bench::records::records_report(smoke)?;
    let rec_path = out_dir.join("BENCH_records.json");
    std::fs::write(&rec_path, rec_doc.render()).map_err(|e| e.to_string())?;
    let replay = rec_doc
        .get("replay_speedup")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let overhead = rec_doc
        .get("write_overhead_pct")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let ratio = rec_doc
        .get("compression_ratio")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    println!(
        "records      replay {replay:.1}x over re-parse-from-text \
         (write overhead {overhead:.1}%, store {ratio:.1}x smaller than text)"
    );

    eprintln!("benchmarking dr-lint symbol-graph analysis ...");
    let lint_doc = gpu_resilience::bench::lint::lint_report(smoke, std::path::Path::new("."))?;
    let lint_path = out_dir.join("BENCH_lint.json");
    std::fs::write(&lint_path, lint_doc.render()).map_err(|e| e.to_string())?;
    let symbols = lint_doc.get("symbols").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let edges = lint_doc.get("call_edges").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let wall = lint_doc.get("wall_s").and_then(|v| v.as_f64()).unwrap_or(0.0);
    println!(
        "lint         {symbols:.0} symbols / {edges:.0} call edges analyzed in {:.1} ms",
        wall * 1e3
    );

    eprintln!("benchmarking live watch path ...");
    let watch_doc = gpu_resilience::bench::watch::watch_report(smoke)?;
    let watch_path = out_dir.join("BENCH_watch.json");
    std::fs::write(&watch_path, watch_doc.render()).map_err(|e| e.to_string())?;
    let ingest = watch_doc
        .get("ingest_lines_per_s")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let snap_us = watch_doc
        .get("snapshot_latency_us")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    println!("watch        ingest {ingest:>12.0} lines/s   snapshot {snap_us:.1} us");

    eprintln!("benchmarking scenario sweep ...");
    let sweep_doc = gpu_resilience::bench::sweep::sweep_report(smoke)?;
    let sweep_path = out_dir.join("BENCH_sweep.json");
    std::fs::write(&sweep_path, sweep_doc.render()).map_err(|e| e.to_string())?;
    let par_speedup = sweep_doc
        .get("parallel_speedup")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let sweep_runs = sweep_doc.get("runs").and_then(|v| v.as_f64()).unwrap_or(0.0);
    println!(
        "sweep        {sweep_runs:.0}-run battery, parallel {par_speedup:.2}x over 1 worker"
    );

    println!(
        "wrote {}, {}, {}, {}, {}, {}, {} and {}",
        stage1_path.display(),
        pipe_path.display(),
        obs_path.display(),
        stream_path.display(),
        rec_path.display(),
        lint_path.display(),
        watch_path.display(),
        sweep_path.display()
    );
    Ok(())
}
