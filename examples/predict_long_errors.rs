//! The paper's proposed preventive-action model, built and evaluated
//! (Section 4.3: "develop an ML model (e.g., a Bayesian model) to predict
//! the onset of these long persisting errors for preventive actions").
//!
//! Pipeline: run the Ampere campaign → coalesce episodes → extract
//! onset-time features (early re-log rate, error type, per-GPU history) →
//! train naive Bayes and logistic regression on the first 60 % of the
//! timeline → evaluate on the held-out future, including the operational
//! GPU-hours-saved metric.
//!
//! ```sh
//! cargo run --release --example predict_long_errors
//! ```

use gpu_resilience::core::{coalesce, CoalesceConfig};
use gpu_resilience::faults::{Campaign, CampaignConfig};
use gpu_resilience::predict::logistic::LogisticConfig;
use gpu_resilience::predict::{
    build_dataset, evaluate, ChronoSplit, FeatureConfig, LogisticModel, NaiveBayes,
};

fn main() {
    let out = Campaign::run(CampaignConfig::ampere_study(31));
    let episodes = coalesce(&out.records, CoalesceConfig::default());
    let cfg = FeatureConfig::default();
    let dataset = build_dataset(&out.records, &episodes, cfg);
    println!(
        "dataset: {} episodes, {:.2}% long persisters (>{:.0}s)",
        dataset.len(),
        dataset.positive_rate() * 100.0,
        cfg.long_threshold_s
    );

    let split = ChronoSplit::new(&dataset, 0.6);
    println!(
        "chronological split: {} train / {} test\n",
        split.train.len(),
        split.test.len()
    );

    let nb = NaiveBayes::fit(split.train);
    let lr = LogisticModel::fit(split.train, LogisticConfig::default());

    let detection_s = cfg.onset_window_s;
    let reset_cost_h = 0.3; // the measured mean service time
    println!("threshold sweep (decision threshold on P(long)):");
    for threshold in [0.3, 0.5, 0.7, 0.9] {
        let rn = evaluate(&nb, split.test, threshold, detection_s, reset_cost_h);
        let rl = evaluate(&lr, split.test, threshold, detection_s, reset_cost_h);
        println!("  t={threshold:.1}");
        println!("    {}", rn.render("naive Bayes "));
        println!("    {}", rl.render("logistic    "));
    }

    // The headline: at the operating point, how much of the Section 4.3
    // tail loss would preventive resets recover?
    let total_tail_h: f64 = split
        .test
        .iter()
        .filter(|s| s.label)
        .map(|s| s.persistence_s / 3_600.0)
        .sum();
    let best = [0.3, 0.5, 0.7, 0.9]
        .iter()
        .flat_map(|&t| {
            [
                evaluate(&nb, split.test, t, detection_s, reset_cost_h),
                evaluate(&lr, split.test, t, detection_s, reset_cost_h),
            ]
        })
        .max_by(|a, b| a.gpu_hours_saved.total_cmp(&b.gpu_hours_saved))
        .expect("non-empty sweep");
    println!(
        "\nlong-persister hours in the test window: {total_tail_h:.0}; \
         the best operating point recovers {:.0} ({:.0}%)",
        best.gpu_hours_saved,
        100.0 * best.gpu_hours_saved / total_tail_h.max(1e-9)
    );
    println!(
        "note: the paper suggests \"e.g., a Bayesian model\"; on this data the \
         naive-Bayes variant is crippled by the ~2% base rate and strongly \
         correlated history features (it either stays silent or fires rarely), \
         while the class-weighted logistic model is operationally useful — \
         worth knowing before building the real monitor."
    );
}
