//! The flagship reproduction: the full 855-day Ampere study.
//!
//! Regenerates every table and figure of the paper's evaluation from a
//! synthetic campaign calibrated to Delta's fleet:
//!
//! * Table 1 — error counts, MTBE, persistence distributions
//! * Table 2 — job-failure probability per XID (1.44 M simulated jobs)
//! * Table 3 — job-size/elapsed-time distribution
//! * Figures 5–7 — propagation graphs (Graphviz DOT)
//! * Figure 9 — elapsed-time, error-vs-duration, and unavailability
//!   distributions
//! * Sections 4.3, 5.4, 5.5 — lost GPU hours, availability, and the
//!   counterfactual analysis
//!
//! Finishes with the paper-vs-measured comparison registry. Run with
//! `--release` (the campaign materializes ~10 M log records):
//!
//! ```sh
//! cargo run --release --example delta_study                  # full report
//! cargo run --release --example delta_study -- --markdown    # EXPERIMENTS.md body
//! cargo run --release --example delta_study -- --outdir DIR  # CSV + DOT artifacts
//! ```

use gpu_resilience::core::{PipelineBuilder, StudyConfig};
use gpu_resilience::faults::{Campaign, CampaignConfig};
use gpu_resilience::report::{self, ampere_comparison};
use gpu_resilience::slurm::{apply_errors, DrainWindows, JobLoadConfig, MaskingModel, Scheduler};
use gpu_resilience::xid::Duration;
use rand::prelude::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let outdir = args
        .iter()
        .position(|a| a == "--outdir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let t0 = Instant::now();

    // ---- 1. The fault campaign: 855 days, 206 Ampere nodes ---------------
    let campaign_cfg = CampaignConfig::ampere_study(2024);
    let out = Campaign::run(campaign_cfg);
    eprintln!(
        "[{:6.1?}] campaign: {} raw records, {} events, {} downtime intervals",
        t0.elapsed(),
        out.records.len(),
        out.events.len(),
        out.downtime.len()
    );

    // ---- 2. The workload: 1,445,119 GPU jobs ------------------------------
    // Nodes drain for 24 h after any error-state event (SRE practice).
    // Uncontained-storm error states do NOT drain: the paper's monitoring
    // gap (a storm once ran 17 days unnoticed) means jobs kept landing on
    // the storming node.
    let drains = DrainWindows::from_events(
        out.events
            .iter()
            .filter(|e| {
                use gpu_resilience::gpu::device::Consequence::*;
                matches!(e.consequence, GpuErrorState | GpuLost)
                    && e.xid != gpu_resilience::xid::Xid::UncontainedEcc
            })
            .map(|e| (e.gpu.node, e.at)),
        Duration::from_hours(24),
    );
    let scheduler = Scheduler::new(JobLoadConfig::delta_study(7));
    let mut schedule = scheduler.run(&out.fleet, &drains);
    eprintln!(
        "[{:6.1?}] schedule: {} jobs, utilization {:.1}%",
        t0.elapsed(),
        schedule.jobs.len(),
        schedule.utilization(out.fleet.gpu_count(), out.duration) * 100.0
    );

    // ---- 3. Apply errors to jobs (the ground-truth outcome) ---------------
    let mut rng = StdRng::seed_from_u64(99);
    let impact = apply_errors(
        &mut schedule.jobs,
        &out.events,
        &MaskingModel::default(),
        &mut rng,
    );
    eprintln!(
        "[{:6.1?}] impact: {} exposed events, {} GPU-failed jobs",
        t0.elapsed(),
        impact.exposed_events,
        impact.gpu_failed_jobs
    );

    // ---- 4. The analysis pipeline -----------------------------------------
    let cfg = StudyConfig::ampere_study();
    let results = PipelineBuilder::new(cfg)
        .jobs(&schedule.jobs)
        .downtime(&out.downtime)
        .run_records(&out.records);
    eprintln!(
        "[{:6.1?}] pipeline: {} coalesced errors",
        t0.elapsed(),
        results.coalesced.len()
    );

    // ---- 5. Render everything ----------------------------------------------
    let comparison = ampere_comparison(&results);
    if markdown {
        println!("{}", comparison.render_markdown());
        return;
    }

    println!("{}", report::render_table1(&results).render());
    if let Some(ji) = &results.job_impact {
        println!("{}", report::render_table2(ji).render());
    }
    if let Some(t3) = &results.table3 {
        println!("{}", report::render_table3(t3).render());
    }
    println!("{}", report::render_fig5(&results.propagation));
    println!("{}", report::render_fig6(&results.propagation));
    println!("{}", report::render_fig7(&results.propagation));
    if let Some(ji) = &results.job_impact {
        println!("{}", report::render_fig9a(ji));
        println!("{}", report::render_fig9b(ji));
    }
    println!("{}", report::render_summary(&results));

    println!("== Paper vs measured ==");
    println!("{}", comparison.render());

    if let Some(dir) = outdir {
        std::fs::create_dir_all(&dir).expect("create outdir");
        let write = |name: &str, body: String| {
            std::fs::write(dir.join(name), body).expect("write artifact");
        };
        write("table1.csv", report::render_table1(&results).to_csv());
        if let Some(ji) = &results.job_impact {
            write("table2.csv", report::render_table2(ji).to_csv());
        }
        if let Some(t3) = &results.table3 {
            write("table3.csv", report::render_table3(t3).to_csv());
        }
        write("fig5.dot", report::render_fig5(&results.propagation));
        write("fig6.dot", report::render_fig6(&results.propagation));
        write("fig7.dot", report::render_fig7(&results.propagation));
        write("comparison.md", comparison.render_markdown());
        eprintln!("artifacts written to {}", dir.display());
    }
    eprintln!("[{:6.1?}] done", t0.elapsed());
}
