//! Section 6: emerging errors in the H100 (GH200) extension fleet.
//!
//! Runs the H100 early-deployment campaign (80 GH200 nodes, ~8 months,
//! low utilization) and compares the recovered counts against the paper's
//! Section 6 observations: 18 MMU errors, 10 DBEs, 5 RRFs with *no*
//! successful row-remap events, 9 contained ECC errors, 70 XID 136
//! events, and a per-node MTBE of ~4,114 hours.
//!
//! ```sh
//! cargo run --release --example h100_early
//! ```

use gpu_resilience::core::{StudyConfig, StudyResults};
use gpu_resilience::faults::{Campaign, CampaignConfig};
use gpu_resilience::report::{self, h100_comparison};
use gpu_resilience::xid::Xid;

fn main() {
    let out = Campaign::run(CampaignConfig::h100_study(616));
    println!(
        "H100 campaign: {} raw records, {} events over {:.0} days on {} nodes\n",
        out.records.len(),
        out.events.len(),
        out.duration.as_hours_f64() / 24.0,
        out.fleet.node_count()
    );

    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);
    let results = StudyResults::from_records(&out.records, None, Some(&out.downtime), cfg);

    println!("{}", report::render_table1(&results).render());

    let x136 = results
        .coalesced
        .iter()
        .filter(|e| e.xid == Xid::Xid136)
        .count();
    println!("XID 136 events (undocumented, most frequent H100 error): {x136}");
    let rre = results.table1_row(Xid::RowRemapEvent).map(|r| r.count).unwrap_or(0);
    let rrf = results.table1_row(Xid::RowRemapFailure).map(|r| r.count).unwrap_or(0);
    println!(
        "row remapping: {rre} RREs vs {rrf} RRFs — \
         {}",
        if rre == 0 && rrf > 0 {
            "unusual: failures without successful remaps indicate exhausted \
             remappable rows (potential H100 memory issues, Section 6)"
        } else {
            "remap inventory not yet exhausted"
        }
    );
    if let (_, Some(node_mtbe)) = results.overall_mtbe_h {
        println!(
            "per-node MTBE: {node_mtbe:.0} h (paper: 4,114 h; high due to low \
             early-deployment utilization)\n"
        );
    }

    println!("== Paper (Section 6) vs measured ==");
    println!("{}", h100_comparison(&results).render());
}
