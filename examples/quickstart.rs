//! Quickstart: inject faults into a small fleet, run the analysis
//! pipeline end to end (including text extraction), and print the
//! recovered statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpu_resilience::core::{PipelineBuilder, StudyConfig};
use gpu_resilience::faults::{Campaign, CampaignConfig};
use gpu_resilience::report;

fn main() {
    // 1. Simulate 30 days of faults on a six-node fleet. The campaign
    //    emits raw duplicated log records AND full syslog text for every
    //    node (the tiny config enables text on all six nodes).
    let campaign = CampaignConfig::tiny(42);
    let out = Campaign::run(campaign);
    println!(
        "campaign: {} raw log records, {} ground-truth events, {} text lines",
        out.records.len(),
        out.events.len(),
        out.text_logs.iter().map(|(_, l)| l.len()).sum::<usize>(),
    );

    // 2. Run the full pipeline from the *text* logs: regex extraction,
    //    Algorithm 1 coalescing, statistics, propagation analysis.
    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);
    let (results, extract_stats) = PipelineBuilder::new(cfg)
        .downtime(&out.downtime)
        .run_text(&out.text_logs);
    println!(
        "extraction: {} lines scanned, {} NVRM XID lines, {} noise/malformed",
        extract_stats.lines,
        extract_stats.xid_lines,
        extract_stats.lines - extract_stats.xid_lines,
    );
    println!();

    // 3. Print what the paper's Table 1 would look like for this fleet.
    println!("{}", report::render_table1(&results).render());
    println!("{}", report::render_summary(&results));

    // 4. Propagation graphs (Graphviz DOT, printable with `dot -Tpng`).
    println!("{}", report::render_fig5(&results.propagation));
}
