//! Section 5.4/5.5 projection: overprovisioning required by a large
//! synchronous job under the measured failure/recovery distributions.
//!
//! Sweeps recovery time (40 min → 5 min) and node availability
//! (99.5 % → 99.9 %) for the paper's 800-GPU, one-month scenario.
//!
//! ```sh
//! cargo run --release --example overprovisioning
//! ```

use gpu_resilience::availsim::{
    availability_sweep, recovery_sweep, simulate_mean, ProjectionConfig,
};
use gpu_resilience::report::{Align, Table};

fn main() {
    let base = ProjectionConfig::paper_scenario(1234);
    let runs = 60;

    // Headline points.
    let r40 = simulate_mean(&base, runs);
    let r5 = simulate_mean(&base.with_recovery_minutes(5.0), runs);
    println!("== Section 5.4: 800-GPU, 1-month training job ==");
    println!(
        "recovery 40 min: overprovision {:.1}% (paper: 20%), efficiency {:.1}%, \
         ~{:.0} extra GPUs",
        r40.required_overprovision * 100.0,
        r40.efficiency * 100.0,
        r40.required_overprovision * base.job_gpus as f64
    );
    println!(
        "recovery  5 min: overprovision {:.1}% (paper: 5%), efficiency {:.1}%, \
         ~{:.0} extra GPUs",
        r5.required_overprovision * 100.0,
        r5.efficiency * 100.0,
        r5.required_overprovision * base.job_gpus as f64
    );
    println!(
        "reduction from faster recovery: {:.1}x (paper: 4x)\n",
        r40.required_overprovision / r5.required_overprovision
    );

    // Recovery-time sweep.
    let mut t = Table::new(vec![
        "recovery (min)",
        "restarts/month",
        "stall (h)",
        "efficiency %",
        "overprovision %",
    ])
    .aligns(vec![Align::Right; 5])
    .title("Recovery-time sweep (99.5% node availability)");
    for row in recovery_sweep(&base, &[5.0, 10.0, 20.0, 30.0, 40.0, 60.0], runs) {
        t.row(vec![
            format!("{:.0}", row.recovery_min),
            format!("{}", row.result.restarts / runs as u64),
            format!("{:.1}", row.result.stall_h),
            format!("{:.1}", row.result.efficiency * 100.0),
            format!("{:.1}", row.result.required_overprovision * 100.0),
        ]);
    }
    println!("{}", t.render());

    // Availability sweep (Section 5.5's what-if).
    let mut t = Table::new(vec![
        "node availability %",
        "rate factor",
        "efficiency %",
        "overprovision %",
    ])
    .aligns(vec![Align::Right; 4])
    .title("Availability sweep (40-minute recovery)");
    for row in availability_sweep(&base, &[1.0, 0.7, 0.5, 67.0 / 223.0, 0.15], runs) {
        t.row(vec![
            format!("{:.2}", row.availability * 100.0),
            format!("{:.2}", row.rate_factor),
            format!("{:.1}", row.result.efficiency * 100.0),
            format!("{:.1}", row.result.required_overprovision * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Improving availability 99.5% -> 99.9% cuts overprovisioning ~4x \
         (Section 5.5), independent of the recovery-time lever."
    );
}
