//! Replay the paper's incident narratives (Figure 1 and Figure 8) through
//! the mechanistic device models, printing the timestamped traces.
//!
//! ```sh
//! cargo run --example incident_replay
//! ```

use gpu_resilience::faults::all_scenarios;

fn main() {
    for scenario in all_scenarios() {
        println!("{}", scenario.render());
        println!();
    }
}
