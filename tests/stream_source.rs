//! Tier-1 streaming contract: every `LogSource` path — in-memory,
//! campaign generator, and a campaign→disk→`DirSource` round trip —
//! must produce bit-identical `StudyResults` at every chunk size and
//! worker count, and the disk path must do it in bounded memory.

use gpu_resilience::core::{
    DirSource, GeneratorSource, InMemorySource, PipelineBuilder, StudyConfig, StudyResults,
};
use gpu_resilience::faults::{Campaign, CampaignConfig, CampaignOutput};
use gpu_resilience::obs::json::Json;
use gpu_resilience::obs::MetricsSink;
use gpu_resilience::report::files;
use std::path::PathBuf;
use std::sync::Mutex;

/// `dr_par::set_worker_override` is process-global; tests that set it
/// must not interleave within this binary.
static WORKER_LOCK: Mutex<()> = Mutex::new(());

fn campaign() -> CampaignOutput {
    // Three days of the tiny fleet: a ~3 MB corpus — big enough to span
    // many chunk waves at every tested chunk size, small enough that the
    // 25-run identity matrix below stays fast.
    let cfg = CampaignConfig {
        duration_days: 3.0,
        ..CampaignConfig::tiny(97)
    };
    Campaign::run(cfg)
}

fn study_config(out: &CampaignOutput) -> StudyConfig {
    StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32)
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gpures-stream-{tag}-{}", std::process::id()))
}

/// Render `StudyResults` + stats for exact comparison: the full Debug
/// output prints floats with round-trip precision, so a single bit of
/// drift anywhere in the bundle fails the assertion.
fn fingerprint(r: &(StudyResults, gpu_resilience::logscan::ExtractStats)) -> String {
    format!("{:?} | {:?}", r.0, r.1)
}

#[test]
fn every_source_is_bit_identical_across_chunk_sizes_and_workers() {
    let _workers = WORKER_LOCK.lock().expect("worker lock");
    let out = campaign();
    assert!(
        !out.text_logs.is_empty(),
        "tiny campaign must materialize text logs for the reference path"
    );
    let cfg = study_config(&out);

    // The reference: the materialized in-memory path at default chunking.
    let reference = fingerprint(&PipelineBuilder::new(cfg).run_text(&out.text_logs));

    // Campaign → disk round trip through the streaming writer.
    let dir = scratch_dir("roundtrip");
    let written = {
        let mut gen = GeneratorSource::from_campaign(&out);
        files::write_node_logs_source(&dir, &mut gen).expect("streamed write")
    };
    assert_eq!(
        written.lines,
        out.text_logs.iter().map(|(_, l)| l.len() as u64).sum::<u64>(),
        "generator must emit exactly the materialized corpus"
    );

    for workers in [1usize, 8] {
        gpu_resilience::par::set_worker_override(Some(workers));
        for chunk in [None, Some(512u64), Some(4096), Some(1 << 20)] {
            let mut builder = PipelineBuilder::new(cfg);
            if let Some(c) = chunk {
                builder = builder.chunk_bytes(c);
            }

            let mut mem = InMemorySource::new(&out.text_logs);
            let r_mem = builder.run_source(&mut mem).expect("in-memory");

            let mut gen = GeneratorSource::from_campaign(&out);
            let r_gen = builder.run_source(&mut gen).expect("generator");

            let mut disk = DirSource::open(&dir).expect("reopen log dir");
            let r_disk = builder.run_source(&mut disk).expect("dir source");

            let tag = format!("workers={workers} chunk={chunk:?}");
            assert_eq!(fingerprint(&r_mem), reference, "in-memory diverged ({tag})");
            assert_eq!(fingerprint(&r_gen), reference, "generator diverged ({tag})");
            assert_eq!(fingerprint(&r_disk), reference, "dir source diverged ({tag})");
        }
    }
    gpu_resilience::par::set_worker_override(None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefetch_is_bit_identical_across_workers_and_sources() {
    let _workers = WORKER_LOCK.lock().expect("worker lock");
    let out = campaign();
    let cfg = study_config(&out);

    // Reference: synchronous path, default chunking, default workers.
    let reference = fingerprint(&PipelineBuilder::new(cfg).run_text(&out.text_logs));

    let dir = scratch_dir("prefetch-identity");
    let mut gen = GeneratorSource::from_campaign(&out);
    files::write_node_logs_source(&dir, &mut gen).expect("streamed write");

    // workers=1 with prefetch on is the degenerate-pool edge case: the
    // I/O thread still runs, the extract pool is a single worker.
    for workers in [1usize, 8] {
        gpu_resilience::par::set_worker_override(Some(workers));
        for prefetch in [false, true] {
            for chunk in [None, Some(2048u64)] {
                let mut builder = PipelineBuilder::new(cfg).prefetch(prefetch);
                if let Some(c) = chunk {
                    builder = builder.chunk_bytes(c);
                }
                let tag = format!("workers={workers} prefetch={prefetch} chunk={chunk:?}");

                let mut mem = InMemorySource::new(&out.text_logs);
                let r_mem = builder.run_source(&mut mem).expect("in-memory");
                assert_eq!(fingerprint(&r_mem), reference, "in-memory diverged ({tag})");

                let mut disk = DirSource::open(&dir).expect("reopen log dir");
                let r_disk = builder.run_source(&mut disk).expect("dir source");
                assert_eq!(fingerprint(&r_disk), reference, "dir source diverged ({tag})");
            }
        }
    }
    gpu_resilience::par::set_worker_override(None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefetch_peak_resident_stays_within_two_wave_budgets() {
    let _workers = WORKER_LOCK.lock().expect("worker lock");
    let out = campaign();
    let cfg = study_config(&out);
    let dir = scratch_dir("prefetch-bounded");
    let mut gen = GeneratorSource::from_campaign(&out);
    let written = files::write_node_logs_source(&dir, &mut gen).expect("streamed write");

    const CHUNK: u64 = 2048;
    const WORKERS: usize = 8;
    gpu_resilience::par::set_worker_override(Some(WORKERS));
    let sink = MetricsSink::recording();
    let mut disk = DirSource::open(&dir).expect("open log dir");
    let _ = PipelineBuilder::new(cfg)
        .chunk_bytes(CHUNK)
        .prefetch(true)
        .metrics(sink.clone())
        .run_source(&mut disk)
        .expect("prefetched streamed analysis");
    gpu_resilience::par::set_worker_override(None);
    std::fs::remove_dir_all(&dir).ok();

    let doc = sink.export_json().expect("recording sink exports");
    let stages = doc.get("stages").and_then(Json::as_arr).expect("stages");
    let peak = stages
        .iter()
        .find(|s| s.get("stage").and_then(Json::as_str) == Some("extract"))
        .and_then(|s| s.get("gauges"))
        .and_then(|g| g.get("peak_resident_bytes"))
        .and_then(Json::as_f64)
        .expect("peak_resident_bytes gauge");

    // The double-buffer bound: consumer-held wave + producer-staged wave,
    // each at most `workers × chunk` of target plus one chunk-and-a-line
    // of overshoot. The corpus must dwarf the bound, or it proves nothing.
    let wave_budget = (WORKERS as u64 * CHUNK) as f64;
    let bound = 2.0 * (wave_budget + CHUNK as f64 + 4096.0);
    assert!(
        written.bytes as f64 > 2.0 * bound,
        "corpus ({} bytes) too small to demonstrate the 2-wave bound",
        written.bytes
    );
    assert!(
        peak > 0.0 && peak <= bound,
        "prefetch peak resident bytes {peak} exceeds the 2-wave bound {bound}"
    );
}

#[test]
fn dir_source_streams_in_bounded_memory() {
    let _workers = WORKER_LOCK.lock().expect("worker lock");
    let out = campaign();
    let cfg = study_config(&out);
    let dir = scratch_dir("bounded");
    let mut gen = GeneratorSource::from_campaign(&out);
    let written = files::write_node_logs_source(&dir, &mut gen).expect("streamed write");

    const CHUNK: u64 = 2048;
    const WORKERS: usize = 8;
    gpu_resilience::par::set_worker_override(Some(WORKERS));
    let sink = MetricsSink::recording();
    let mut disk = DirSource::open(&dir).expect("open log dir");
    let _ = PipelineBuilder::new(cfg)
        .chunk_bytes(CHUNK)
        .metrics(sink.clone())
        .run_source(&mut disk)
        .expect("streamed analysis");
    gpu_resilience::par::set_worker_override(None);
    std::fs::remove_dir_all(&dir).ok();

    let doc = sink.export_json().expect("recording sink exports");
    let stages = doc.get("stages").and_then(Json::as_arr).expect("stages");
    let peak = stages
        .iter()
        .find(|s| s.get("stage").and_then(Json::as_str) == Some("extract"))
        .and_then(|s| s.get("gauges"))
        .and_then(|g| g.get("peak_resident_bytes"))
        .and_then(Json::as_f64)
        .expect("peak_resident_bytes gauge");

    // One wave is at most `workers × chunk` bytes of *target*; chunks
    // overshoot by at most one line, so grant one extra chunk per worker
    // plus a line of slack. The corpus itself must be much larger, or
    // the bound proves nothing.
    let wave_bound = (2 * WORKERS) as f64 * CHUNK as f64 + 4096.0;
    assert!(
        written.bytes as f64 > 2.0 * wave_bound,
        "corpus ({} bytes) too small to demonstrate bounding",
        written.bytes
    );
    assert!(
        peak > 0.0 && peak <= wave_bound,
        "peak resident bytes {peak} exceeds the wave bound {wave_bound}"
    );
}

#[test]
fn dir_source_surfaces_io_errors_with_path_context() {
    let missing = scratch_dir("missing");
    let msg = match DirSource::open(&missing) {
        Ok(_) => panic!("missing directory must fail"),
        Err(e) => e.to_string(),
    };
    assert!(
        msg.contains("gpures-stream-missing"),
        "error must name the offending path, got: {msg}"
    );
}

#[test]
fn deferred_campaign_text_streams_without_materializing() {
    let mut cfg = CampaignConfig {
        duration_days: 3.0,
        ..CampaignConfig::tiny(97)
    };
    cfg.text.defer = true;
    let deferred = Campaign::run(cfg);
    assert!(
        deferred.text_logs.is_empty(),
        "defer_text must skip materialization"
    );

    let materialized = campaign();
    let mut gen = GeneratorSource::from_campaign(&deferred);
    let streamed = gpu_resilience::core::collect_source(&mut gen).expect("infallible");
    assert_eq!(
        streamed, materialized.text_logs,
        "deferred campaign must stream the exact corpus the eager one materializes"
    );
}
