//! Full-scale paper-number reproduction (release mode; run explicitly):
//!
//! ```sh
//! cargo test --release --test paper_numbers -- --ignored
//! ```
//!
//! Runs the complete 855-day Ampere campaign plus the 1.44 M-job workload
//! and asserts that no compared quantity lands outside its tolerance band
//! (`Verdict::Mismatch`). The smaller non-ignored test below checks the
//! projection headlines, which are cheap.

use gpu_resilience::availsim::{simulate_mean, ProjectionConfig};
use gpu_resilience::core::{StudyConfig, StudyResults};
use gpu_resilience::faults::{Campaign, CampaignConfig};
use gpu_resilience::report::{ampere_comparison, h100_comparison, Verdict};
use gpu_resilience::slurm::{apply_errors, DrainWindows, JobLoadConfig, MaskingModel, Scheduler};
use gpu_resilience::xid::{Duration, Xid};
use rand::prelude::*;

#[test]
#[ignore = "full 855-day study; run with --release --ignored"]
fn full_ampere_study_has_no_mismatches() {
    let out = Campaign::run(CampaignConfig::ampere_study(2024));
    let drains = DrainWindows::from_events(
        out.events
            .iter()
            .filter(|e| {
                use gpu_resilience::gpu::device::Consequence::*;
                matches!(e.consequence, GpuErrorState | GpuLost)
                    && e.xid != Xid::UncontainedEcc
            })
            .map(|e| (e.gpu.node, e.at)),
        Duration::from_hours(24),
    );
    let mut schedule = Scheduler::new(JobLoadConfig::delta_study(7)).run(&out.fleet, &drains);
    let mut rng = StdRng::seed_from_u64(99);
    apply_errors(&mut schedule.jobs, &out.events, &MaskingModel::default(), &mut rng);

    let results = StudyResults::from_records(
        &out.records,
        Some(&schedule.jobs),
        Some(&out.downtime),
        StudyConfig::ampere_study(),
    );
    let cmp = ampere_comparison(&results);
    let mismatched: Vec<_> = cmp
        .items
        .iter()
        .filter(|e| e.verdict() == Verdict::Mismatch)
        .collect();
    assert!(
        mismatched.is_empty(),
        "mismatches:\n{}",
        mismatched
            .iter()
            .map(|e| format!("{} {}: paper {} vs measured {}", e.experiment, e.metric, e.paper, e.measured))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The vast majority should be tight matches, not just "close".
    assert!(
        cmp.matches() * 10 >= cmp.items.len() * 9,
        "only {} of {} matched",
        cmp.matches(),
        cmp.items.len()
    );
}

#[test]
#[ignore = "full H100 campaign; run with --release --ignored"]
fn h100_section6_has_no_mismatches() {
    let out = Campaign::run(CampaignConfig::h100_study(616));
    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);
    let results = StudyResults::from_records(&out.records, None, Some(&out.downtime), cfg);
    let cmp = h100_comparison(&results);
    assert_eq!(
        cmp.mismatches(),
        0,
        "H100 mismatches:\n{}",
        cmp.render()
    );
    // Section 6's signature observation: RRFs without RREs.
    let rre = results.table1_row(Xid::RowRemapEvent).map(|r| r.count).unwrap_or(0);
    let rrf = results.table1_row(Xid::RowRemapFailure).map(|r| r.count).unwrap_or(0);
    assert!(rrf > 0, "expected RRFs on the defective H100 parts");
    assert!(rre <= rrf, "H100 fleet should fail remaps, not succeed them");
}

#[test]
fn projection_headlines_match_section_5_4() {
    let base = ProjectionConfig::paper_scenario(42);
    let r40 = simulate_mean(&base, 30);
    let r5 = simulate_mean(&base.with_recovery_minutes(5.0), 30);
    // ~20 % and ~5 %, a ~4x reduction.
    assert!(
        (0.12..0.30).contains(&r40.required_overprovision),
        "40-min point {}",
        r40.required_overprovision
    );
    assert!(
        (0.02..0.10).contains(&r5.required_overprovision),
        "5-min point {}",
        r5.required_overprovision
    );
    let better = simulate_mean(&base.with_rate_factor(67.0 / 223.0), 30);
    assert!(
        r40.required_overprovision / better.required_overprovision > 2.5,
        "availability improvement cut: {} -> {}",
        r40.required_overprovision,
        better.required_overprovision
    );
}
