//! Cross-crate integration: campaign → logs → extraction → pipeline.
//!
//! These tests exercise the whole stack at a small scale (full fleet
//! shapes but shortened campaigns) and assert *internal consistency*:
//! what the pipeline recovers must agree with the campaign's ground
//! truth. Paper-number comparisons live in the `paper_numbers` test and
//! the `delta_study` example.

use gpu_resilience::core::{coalesce, CoalesceConfig, PipelineBuilder, StudyConfig, StudyResults};
use gpu_resilience::faults::{Campaign, CampaignConfig};
use gpu_resilience::xid::Xid;

fn tiny_output() -> gpu_resilience::faults::CampaignOutput {
    Campaign::run(CampaignConfig::tiny(1234))
}

#[test]
fn recovered_counts_match_ground_truth_events() {
    let out = tiny_output();
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    // The pipeline's coalesced errors must reproduce the campaign's
    // ground-truth episode counts exactly: the generator emits bursts
    // whose internal gaps stay below Δt and whose episodes are separated
    // by more than Δt (or differ in message detail).
    for xid in Xid::ALL {
        let truth = out.events.iter().filter(|e| e.xid == xid).count();
        let recovered = coalesced.iter().filter(|e| e.xid == xid).count();
        let diff = truth.abs_diff(recovered);
        // Allow a whisker of slack: independent episodes can collide in
        // time and detail by chance.
        assert!(
            diff <= 1 + truth / 50,
            "{xid}: ground truth {truth}, recovered {recovered}"
        );
    }
}

#[test]
fn recovered_persistence_matches_ground_truth() {
    let out = tiny_output();
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    let truth_sum: f64 = out.events.iter().map(|e| e.persistence.as_secs_f64()).sum();
    let recovered_sum: f64 = coalesced.iter().map(|e| e.persistence().as_secs_f64()).sum();
    let rel = (truth_sum - recovered_sum).abs() / truth_sum.max(1.0);
    assert!(
        rel < 0.05,
        "persistence sums diverge: truth {truth_sum}, recovered {recovered_sum}"
    );
}

#[test]
fn text_path_agrees_with_record_path() {
    // The text-enabled node subset must yield identical analysis results
    // whether the pipeline starts from raw text or structured records.
    let out = tiny_output();
    assert!(!out.text_logs.is_empty());
    let text_nodes: std::collections::HashSet<_> =
        out.text_logs.iter().map(|(n, _)| *n).collect();
    let subset: Vec<_> = out
        .records
        .iter()
        .filter(|r| text_nodes.contains(&r.gpu.node))
        .cloned()
        .collect();

    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);
    let (from_text, stats) = PipelineBuilder::new(cfg).run_text(&out.text_logs);
    let from_records = StudyResults::from_records(&subset, None, None, cfg);

    assert_eq!(stats.xid_lines as usize, subset.len());
    assert_eq!(stats.malformed, 0, "rendered lines must re-parse");
    assert_eq!(from_text.coalesced.len(), from_records.coalesced.len());
    for xid in Xid::ALL {
        assert_eq!(
            from_text.table1_row(xid).map(|r| r.count),
            from_records.table1_row(xid).map(|r| r.count),
            "{xid}"
        );
    }
}

#[test]
fn coalescing_window_ablation_is_stable() {
    // Section 3.2: varying Δt from 5 to 20 s does not notably change the
    // result — by construction bursts are much tighter than inter-episode
    // gaps. Verify on generated data.
    let out = tiny_output();
    let base = coalesce(&out.records, CoalesceConfig::with_window_secs(5)).len();
    for secs in [10, 20] {
        let n = coalesce(&out.records, CoalesceConfig::with_window_secs(secs)).len();
        let rel = (base as f64 - n as f64).abs() / base as f64;
        assert!(
            rel < 0.05,
            "Δt={secs}s changes coalesced count by {:.1}% ({base} -> {n})",
            rel * 100.0
        );
    }
}

#[test]
fn recovered_persistence_distribution_matches_the_calibrated_model() {
    // Distribution-level check: the per-XID persistence durations the
    // pipeline recovers from raw log text must be statistically
    // indistinguishable (two-sample KS) from fresh draws of the calibrated
    // persistence model — i.e. the burst emitter + coalescer round-trip
    // preserves the distribution, not just its quantiles.
    use gpu_resilience::faults::PersistenceModel;
    use gpu_resilience::stats::ks_two_sample;
    use rand::prelude::*;

    let out = Campaign::run(CampaignConfig::tiny(4242));
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    let mmu: Vec<f64> = coalesced
        .iter()
        .filter(|e| e.xid == Xid::MmuError)
        .map(|e| e.persistence().as_secs_f64())
        .collect();
    assert!(mmu.len() > 50, "need a meaningful MMU sample: {}", mmu.len());

    let model = PersistenceModel::calibrate(2.85, 2.80, 5.80);
    let mut rng = StdRng::seed_from_u64(7);
    let reference: Vec<f64> = (0..mmu.len()).map(|_| model.sample(&mut rng).as_secs_f64()).collect();

    let r = ks_two_sample(&mmu, &reference).expect("non-empty");
    assert!(
        !r.rejects_same_distribution(0.001),
        "KS D={:.3}, p={:.4}: recovered persistence diverged from the model",
        r.statistic,
        r.p_value
    );
}

#[test]
fn downtime_intervals_cover_error_state_events() {
    use gpu_resilience::gpu::device::Consequence;
    let out = tiny_output();
    // Every repair interval must follow some error-state/lost event on
    // the same GPU.
    for d in &out.downtime {
        let caused = out.events.iter().any(|e| {
            e.gpu == d.gpu
                && e.at <= d.start
                && matches!(
                    e.consequence,
                    Consequence::GpuErrorState | Consequence::GpuLost
                )
        });
        assert!(caused, "repair of {} at {:?} has no cause", d.gpu, d.start);
    }
}

#[test]
fn fleet_health_is_consistent_at_campaign_end() {
    let out = tiny_output();
    // GPUs left unhealthy must have a more recent unrepaired error than
    // any repair.
    for node in out.fleet.nodes() {
        for gpu in &node.gpus {
            if !gpu.health().is_ok() {
                let has_recent_error = out.events.iter().any(|e| e.gpu == gpu.id());
                assert!(has_recent_error, "{} unhealthy without errors", gpu.id());
            }
        }
    }
}
