//! End-to-end tests of the `gpures` binary: campaign-to-disk, file-based
//! analysis, the streaming monitor, incidents, and the projection command.

use gpu_resilience::obs::json::Json;
use std::path::PathBuf;
use std::process::Command;

fn gpures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gpures"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpures-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn read_metrics(path: &PathBuf) -> Json {
    let text = std::fs::read_to_string(path).expect("metrics file written");
    let doc = Json::parse(&text).expect("metrics parse");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-metrics/v1")
    );
    doc
}

fn stage_names(doc: &Json) -> Vec<String> {
    doc.get("stages")
        .and_then(Json::as_arr)
        .map(|stages| {
            stages
                .iter()
                .filter_map(|s| s.get("stage").and_then(Json::as_str))
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn campaign_analyze_round_trip() {
    let dir = temp_dir("roundtrip");

    let out = gpures()
        .args(["campaign", "--out"])
        .arg(&dir)
        .args(["--shape", "tiny", "--seed", "5", "--days", "10", "--metrics"])
        .arg(dir.join("campaign-metrics.json"))
        .output()
        .expect("run campaign");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("jobs.csv").exists());
    assert!(dir.join("downtime.csv").exists());
    assert!(dir.join("logs").read_dir().unwrap().count() >= 4);
    let metrics = read_metrics(&dir.join("campaign-metrics.json"));
    assert!(stage_names(&metrics).contains(&"campaign".to_string()));
    assert!(stage_names(&metrics).contains(&"schedule".to_string()));

    let dot_dir = dir.join("dot");
    let out = gpures()
        .args(["analyze", "--logs"])
        .arg(dir.join("logs"))
        .arg("--jobs")
        .arg(dir.join("jobs.csv"))
        .arg("--downtime")
        .arg(dir.join("downtime.csv"))
        .args(["--nodes", "6", "--hours", "240", "--dot"])
        .arg(&dot_dir)
        .arg("--metrics")
        .arg(dir.join("analyze-metrics.json"))
        .output()
        .expect("run analyze");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"), "missing Table 1:\n{stdout}");
    assert!(stdout.contains("Table 2"));
    assert!(stdout.contains("Study summary"));
    assert!(dot_dir.join("fig5.dot").exists());
    let metrics = read_metrics(&dir.join("analyze-metrics.json"));
    for want in ["extract", "coalesce", "stats", "job_impact"] {
        assert!(
            stage_names(&metrics).contains(&want.to_string()),
            "stage {want} missing from analyze metrics"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn monitor_streams_a_log_file() {
    let dir = temp_dir("monitor");
    let out = gpures()
        .args(["campaign", "--out"])
        .arg(&dir)
        .args(["--shape", "tiny", "--seed", "6", "--days", "8"])
        .output()
        .expect("run campaign");
    assert!(out.status.success());

    // Pick the largest node log and stream it.
    let log = std::fs::read_dir(dir.join("logs"))
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .max_by_key(|p| p.metadata().map(|m| m.len()).unwrap_or(0))
        .expect("a log file");
    let out = gpures()
        .args(["monitor", "--log"])
        .arg(&log)
        .args(["--nodes", "6", "--every", "50"])
        .output()
        .expect("run monitor");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("live Table 1"), "no live table:\n{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("scanned"), "no scan summary:\n{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn incidents_and_project_commands() {
    let out = gpures().arg("incidents").output().expect("run incidents");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 1"));
    assert!(stdout.contains("17-day"));

    let out = gpures()
        .args(["project", "--gpus", "800", "--recovery-min", "40", "--runs", "10"])
        .output()
        .expect("run project");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("overprovision"), "{stdout}");
}

#[test]
fn degenerate_stream_flags_are_usage_errors() {
    let dir = temp_dir("degenerate");
    // `--chunk-bytes 0` once silently disabled chunking; it must now
    // fail fast with a usage hint, before any log I/O happens.
    let out = gpures()
        .args(["analyze", "--logs"])
        .arg(&dir)
        .args(["--chunk-bytes", "0"])
        .output()
        .expect("run analyze");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--chunk-bytes") && stderr.contains("positive"),
        "expected a usage hint naming the flag, got:\n{stderr}"
    );

    let out = gpures()
        .args(["analyze", "--logs"])
        .arg(&dir)
        .args(["--workers", "0"])
        .output()
        .expect("run analyze");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--workers") && stderr.contains("positive"),
        "expected a usage hint naming the flag, got:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn record_store_write_and_replay_round_trip() {
    let dir = temp_dir("records");
    let out = gpures()
        .args(["campaign", "--out"])
        .arg(&dir)
        .args(["--shape", "tiny", "--seed", "9", "--days", "6", "--records"])
        .arg(dir.join("campaign.grcs"))
        .output()
        .expect("run campaign");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("campaign.grcs").exists());

    // Text analysis with the store tee.
    let store = dir.join("records.grcs");
    let text = gpures()
        .args(["analyze", "--logs"])
        .arg(dir.join("logs"))
        .args(["--nodes", "6", "--hours", "144", "--records"])
        .arg(&store)
        .output()
        .expect("run analyze with tee");
    assert!(text.status.success(), "{}", String::from_utf8_lossy(&text.stderr));
    assert!(String::from_utf8_lossy(&text.stderr).contains("record store written"));

    // Replay must print byte-identical tables from the store alone.
    let replay = gpures()
        .args(["analyze", "--from-records"])
        .arg(&store)
        .args(["--nodes", "6", "--hours", "144"])
        .output()
        .expect("run replay");
    assert!(
        replay.status.success(),
        "{}",
        String::from_utf8_lossy(&replay.stderr)
    );
    assert!(String::from_utf8_lossy(&replay.stderr).contains("replaying"));
    assert_eq!(
        String::from_utf8_lossy(&text.stdout),
        String::from_utf8_lossy(&replay.stdout),
        "replayed tables must match the text-path tables byte for byte"
    );

    // Mixing replay with text-path flags is a usage error.
    let out = gpures()
        .args(["analyze", "--from-records"])
        .arg(&store)
        .arg("--logs")
        .arg(dir.join("logs"))
        .output()
        .expect("run bad mix");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--from-records"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_runs_a_user_battery_and_reports_scn_errors_with_positions() {
    let dir = temp_dir("sweep");
    let scn = dir.join("smoke.scn");
    std::fs::write(
        &scn,
        "scenario \"smoke\"\nfleet tiny\nduration_days = 12\nseeds = [3]\nrates ampere_delta\n",
    )
    .expect("write scn");
    let out = gpures()
        .arg("sweep")
        .arg(&scn)
        .arg("--out")
        .arg(&dir)
        .output()
        .expect("run sweep");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("smoke"), "row summary missing:\n{stdout}");
    let doc = Json::parse(&std::fs::read_to_string(dir.join("sweep.json")).expect("artifact"))
        .expect("artifact parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-sweep/v1")
    );
    assert_eq!(doc.get("runs").and_then(Json::as_u64), Some(1));

    // A malformed battery file fails naming the file and the position.
    let bad = dir.join("bad.scn");
    std::fs::write(&bad, "scenario \"bad\"\nfleet tiny\nbogus = 3\n").expect("write scn");
    let out = gpures()
        .arg("sweep")
        .arg(&bad)
        .arg("--out")
        .arg(&dir)
        .output()
        .expect("run bad sweep");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bad.scn") && stderr.contains("3:1"),
        "expected file + line:col in the error, got:\n{stderr}"
    );

    // Unknown flags print the generated per-subcommand usage.
    let out = gpures()
        .args(["sweep", "tiny", "--nope", "x", "--out"])
        .arg(&dir)
        .output()
        .expect("run unknown flag");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown option") && stderr.contains("gpures sweep BATTERY..."),
        "expected the sweep usage block, got:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = gpures().output().expect("run bare");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = gpures().arg("frobnicate").output().expect("run unknown");
    assert!(!out.status.success());

    let out = gpures()
        .args(["analyze", "--logs", "/nonexistent-dir-xyz"])
        .output()
        .expect("run bad analyze");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}
