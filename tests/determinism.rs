//! Reproducibility: identical seeds must give bit-identical results
//! through the whole stack, and different seeds must differ.

use gpu_resilience::availsim::{simulate, ProjectionConfig};
use gpu_resilience::core::{PipelineBuilder, StudyConfig};
use gpu_resilience::faults::{Campaign, CampaignConfig};
use gpu_resilience::slurm::{DrainWindows, JobLoadConfig, Scheduler};

#[test]
fn campaign_is_bit_reproducible() {
    let a = Campaign::run(CampaignConfig::tiny(77));
    let b = Campaign::run(CampaignConfig::tiny(77));
    assert_eq!(a.records, b.records);
    assert_eq!(a.events.len(), b.events.len());
    assert!(a.events.iter().zip(&b.events).all(|(x, y)| x == y));
    assert_eq!(a.downtime, b.downtime);
    assert_eq!(a.text_logs, b.text_logs);
}

#[test]
fn pipeline_is_deterministic_including_parallel_extraction() {
    // The text path fans extraction across threads; results must still be
    // identical run to run (dr-par restores input order).
    let out = Campaign::run(CampaignConfig::tiny(78));
    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);
    let builder = PipelineBuilder::new(cfg);
    let (r1, s1) = builder.run_text(&out.text_logs);
    let (r2, s2) = builder.run_text(&out.text_logs);
    assert_eq!(s1, s2);
    assert_eq!(r1.coalesced, r2.coalesced);
    assert_eq!(r1.overall_mtbe_h, r2.overall_mtbe_h);
}

#[test]
fn scheduler_is_deterministic() {
    let out = Campaign::run(CampaignConfig::tiny(79));
    let drains = DrainWindows::default();
    let s1 = Scheduler::new(JobLoadConfig::tiny(3)).run(&out.fleet, &drains);
    let s2 = Scheduler::new(JobLoadConfig::tiny(3)).run(&out.fleet, &drains);
    assert_eq!(s1.jobs.len(), s2.jobs.len());
    for (a, b) in s1.jobs.iter().zip(&s2.jobs) {
        assert_eq!(a.start, b.start);
        assert_eq!(a.gpus, b.gpus);
        assert_eq!(a.exit_code, b.exit_code);
    }
}

#[test]
fn single_thread_and_multi_thread_runs_are_bit_identical() {
    // The whole text pipeline must give the same bits whether dr-par runs
    // serially or fanned out: worker count is a performance knob, never a
    // results knob. (Process-wide override — keep both runs in this test.)
    let out = Campaign::run(CampaignConfig::tiny(80));
    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);

    let builder = PipelineBuilder::new(cfg);
    gpu_resilience::par::set_worker_override(Some(1));
    let (r1, s1) = builder.run_text(&out.text_logs);
    gpu_resilience::par::set_worker_override(Some(8));
    let (rn, sn) = builder.run_text(&out.text_logs);
    gpu_resilience::par::set_worker_override(None);

    assert_eq!(s1, sn);
    assert_eq!(r1.coalesced, rn.coalesced);
    assert_eq!(r1.overall_mtbe_h, rn.overall_mtbe_h);
    assert_eq!(format!("{:?}", r1.table1), format!("{:?}", rn.table1));
}

#[test]
fn chunked_extraction_is_invariant_to_chunk_size_and_workers() {
    // The sharded Stage I path must be a pure performance knob: any chunk
    // size, any worker count, same bits. This is the end-to-end version of
    // the core crate's unit tests, through the public pipeline entry.
    let out = Campaign::run(CampaignConfig::tiny(81));
    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);

    let (reference, ref_stats) = PipelineBuilder::new(cfg).run_text(&out.text_logs);
    for target in [Some(1), Some(4 * 1024), Some(u64::MAX), None] {
        for workers in [Some(1), Some(8)] {
            let mut builder = PipelineBuilder::new(cfg);
            if let Some(t) = target {
                builder = builder.chunk_bytes(t);
            }
            gpu_resilience::par::set_worker_override(workers);
            let (r, s) = builder.run_text(&out.text_logs);
            gpu_resilience::par::set_worker_override(None);
            assert_eq!(s, ref_stats, "stats drift at {target:?}/{workers:?}");
            assert_eq!(
                r.coalesced, reference.coalesced,
                "coalesced drift at {target:?}/{workers:?}"
            );
            assert_eq!(format!("{:?}", r.table1), format!("{:?}", reference.table1));
        }
    }
}

#[test]
fn projection_is_deterministic() {
    let cfg = ProjectionConfig::paper_scenario(5);
    assert_eq!(simulate(&cfg), simulate(&cfg));
}

#[test]
fn seeds_actually_matter() {
    let a = Campaign::run(CampaignConfig::tiny(1));
    let b = Campaign::run(CampaignConfig::tiny(2));
    assert_ne!(a.records.len(), 0);
    assert_ne!(a.records, b.records);
}
