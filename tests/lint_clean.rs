//! Tier-1 gate: the workspace must be lint-clean against its baseline.
//!
//! This is the same check `cargo run --bin dr-lint` performs, wired into
//! `cargo test -q` so the determinism / panic-freedom / XID-taxonomy /
//! unit-hygiene invariants are enforced with no CI changes.

use dr_lint::{run, Config};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let cfg = Config {
        root: root.clone(),
        baseline: Some(root.join("dr-lint.baseline")),
    };
    let report = run(&cfg).expect("dr-lint runs");
    assert!(report.files > 50, "walked only {} files — wrong root?", report.files);
    assert!(
        report.is_clean(),
        "dr-lint found non-baselined violations:\n{}",
        report.render_human()
    );
}

#[test]
fn interprocedural_passes_run_and_prove_entry_points_panic_free() {
    // The symbol graph must actually cover the workspace (hundreds of
    // fns, thousands of name-approximated edges) and the three
    // graph-based passes must report zero active findings: the
    // `run_source` / `run_observed` closures are panic-free, no
    // nondeterminism taints `StudyResults`, and every cross-crate `use`
    // respects the declared layer DAG.
    let root = workspace_root();
    let cfg = Config {
        root: root.clone(),
        baseline: Some(root.join("dr-lint.baseline")),
    };
    let report = run(&cfg).expect("dr-lint runs");
    assert!(
        report.symbols > 300,
        "call graph covers only {} symbols — parser regression?",
        report.symbols
    );
    assert!(
        report.call_edges > 1000,
        "call graph has only {} edges — resolution regression?",
        report.call_edges
    );
    for pass in ["panic-reachability", "determinism-taint", "layer-dag"] {
        let active: Vec<_> = report.active.iter().filter(|d| d.lint == pass).collect();
        assert!(active.is_empty(), "{pass} findings: {active:?}");
        let baselined: usize = report
            .groups
            .iter()
            .filter(|((lint, _), _)| lint == pass)
            .map(|(_, c)| c)
            .sum();
        assert_eq!(
            baselined, 0,
            "{pass} must hold with zero baselined debt, found {baselined}"
        );
    }
}

#[test]
fn baseline_has_no_stale_surplus() {
    // The ledger must describe real debt: every baselined (lint, path)
    // group must still exist in the tree with a non-zero count, so paid
    // debt is actually ratcheted out instead of lingering as headroom.
    let root = workspace_root();
    let cfg = Config {
        root: root.clone(),
        baseline: Some(root.join("dr-lint.baseline")),
    };
    let report = run(&cfg).expect("dr-lint runs");
    let ledger = std::fs::read_to_string(root.join("dr-lint.baseline")).unwrap_or_default();
    for line in ledger.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(lint), Some(count), Some(path)) = (parts.next(), parts.next(), parts.next())
        else {
            panic!("malformed baseline line: {line}");
        };
        let allowed: usize = count.parse().expect("baseline count parses");
        let actual = report
            .groups
            .get(&(lint.to_string(), path.trim().to_string()))
            .copied()
            .unwrap_or(0);
        assert!(
            actual > 0,
            "stale baseline entry `{line}`: no such violations remain — \
             run `cargo run --bin dr-lint -- --update-baseline`"
        );
        assert!(
            actual <= allowed,
            "baseline entry `{line}` is over budget ({actual} found)"
        );
    }
}
