//! Tier-1 gate: the workspace must be lint-clean against its baseline.
//!
//! This is the same check `cargo run --bin dr-lint` performs, wired into
//! `cargo test -q` so the determinism / panic-freedom / XID-taxonomy /
//! unit-hygiene invariants are enforced with no CI changes.

use dr_lint::{run, Config};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let cfg = Config {
        root: root.clone(),
        baseline: Some(root.join("dr-lint.baseline")),
    };
    let report = run(&cfg).expect("dr-lint runs");
    assert!(report.files > 50, "walked only {} files — wrong root?", report.files);
    assert!(
        report.is_clean(),
        "dr-lint found non-baselined violations:\n{}",
        report.render_human()
    );
}

#[test]
fn baseline_has_no_stale_surplus() {
    // The ledger must describe real debt: every baselined (lint, path)
    // group must still exist in the tree with a non-zero count, so paid
    // debt is actually ratcheted out instead of lingering as headroom.
    let root = workspace_root();
    let cfg = Config {
        root: root.clone(),
        baseline: Some(root.join("dr-lint.baseline")),
    };
    let report = run(&cfg).expect("dr-lint runs");
    let ledger = std::fs::read_to_string(root.join("dr-lint.baseline")).unwrap_or_default();
    for line in ledger.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(lint), Some(count), Some(path)) = (parts.next(), parts.next(), parts.next())
        else {
            panic!("malformed baseline line: {line}");
        };
        let allowed: usize = count.parse().expect("baseline count parses");
        let actual = report
            .groups
            .get(&(lint.to_string(), path.trim().to_string()))
            .copied()
            .unwrap_or(0);
        assert!(
            actual > 0,
            "stale baseline entry `{line}`: no such violations remain — \
             run `cargo run --bin dr-lint -- --update-baseline`"
        );
        assert!(
            actual <= allowed,
            "baseline entry `{line}` is over budget ({actual} found)"
        );
    }
}
