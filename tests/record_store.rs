//! Tier-1 record-store contract: the columnar `ErrorRecord` store
//! written during the extract pass must replay into `StudyResults`
//! bit-identical to the text path — at every chunk size and worker
//! count — and a damaged store must surface as a typed `DataError`,
//! never a panic.

use gpu_resilience::core::{
    extract_to_store, GeneratorSource, InMemorySource, PipelineBuilder, RecordSource, RecordStore,
    StudyConfig,
};
use gpu_resilience::faults::{Campaign, CampaignConfig, CampaignOutput};
use gpu_resilience::obs::json::Json;
use gpu_resilience::obs::MetricsSink;
use gpu_resilience::xid::ErrorRecord;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// `dr_par::set_worker_override` is process-global; tests that set it
/// must not interleave within this binary.
static WORKER_LOCK: Mutex<()> = Mutex::new(());

fn campaign() -> CampaignOutput {
    // Three days of the tiny fleet — the same corpus the streaming
    // identity matrix uses, so text-path and record-path coverage agree.
    let cfg = CampaignConfig {
        duration_days: 3.0,
        ..CampaignConfig::tiny(97)
    };
    Campaign::run(cfg)
}

fn study_config(out: &CampaignOutput) -> StudyConfig {
    StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpures-records-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Write the campaign's record store via the standalone extract pass.
fn build_store(out: &CampaignOutput, path: &Path) {
    let mut gen = GeneratorSource::from_campaign(out);
    let (summary, _) = extract_to_store(&mut gen, None, path).expect("extract to store");
    assert!(summary.records > 0, "campaign extracted no records");
}

/// Drain a `RecordSource` into `(node index, record)` pairs.
fn drain(source: &mut dyn RecordSource) -> Vec<(usize, ErrorRecord)> {
    let mut got = Vec::new();
    while let Some(batch) = source.next_batch().expect("batch decodes") {
        got.extend(batch.records.into_iter().map(|r| (batch.node, r)));
    }
    got
}

#[test]
fn record_replay_is_bit_identical_across_chunk_sizes_and_workers() {
    let _workers = WORKER_LOCK.lock().expect("worker lock");
    let out = campaign();
    let cfg = study_config(&out);
    // The reference: the materialized text path at default chunking.
    // `run_record_source` returns no ExtractStats (nothing was parsed),
    // so the fingerprint is the StudyResults bundle alone.
    let reference = format!("{:?}", PipelineBuilder::new(cfg).run_text(&out.text_logs).0);

    let dir = scratch_dir("matrix");
    for workers in [1usize, 8] {
        gpu_resilience::par::set_worker_override(Some(workers));
        for chunk in [512u64, 1 << 20] {
            let tag = format!("workers={workers} chunk={chunk}");
            let store_path = dir.join(format!("w{workers}-c{chunk}.grcs"));

            // Text run with the store tee: results must be unchanged.
            let builder = PipelineBuilder::new(cfg)
                .chunk_bytes(chunk)
                .record_store(&store_path);
            let mut mem = InMemorySource::new(&out.text_logs);
            let (teed, _) = builder.run_source(&mut mem).expect("text path with tee");
            assert_eq!(
                format!("{teed:?}"),
                reference,
                "record-store tee changed the text path ({tag})"
            );

            // Replay: same StudyResults, bit for bit, from the store.
            let store = RecordStore::open(&store_path).expect("store opens");
            assert!(store.record_count() > 0, "store is empty ({tag})");
            let mut reader = store.reader(&store_path).expect("reader");
            let replayed = PipelineBuilder::new(cfg)
                .run_record_source(&mut reader)
                .expect("record replay");
            assert_eq!(
                format!("{replayed:?}"),
                reference,
                "record replay diverged from the text path ({tag})"
            );
        }
    }
    gpu_resilience::par::set_worker_override(None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn record_replay_records_peak_gauge_without_changing_results() {
    let _workers = WORKER_LOCK.lock().expect("worker lock");
    let out = campaign();
    let cfg = study_config(&out);
    let dir = scratch_dir("metrics");
    let store_path = dir.join("records.grcs");
    build_store(&out, &store_path);
    let store = RecordStore::open(&store_path).expect("store opens");

    let mut silent = store.reader(&store_path).expect("reader");
    let baseline = PipelineBuilder::new(cfg)
        .run_record_source(&mut silent)
        .expect("silent replay");

    let sink = MetricsSink::recording();
    let mut observed = store.reader(&store_path).expect("reader");
    let with_metrics = PipelineBuilder::new(cfg)
        .metrics(sink.clone())
        .run_record_source(&mut observed)
        .expect("observed replay");
    assert_eq!(
        format!("{with_metrics:?}"),
        format!("{baseline:?}"),
        "attaching a metrics sink must never change replay results"
    );

    let doc = sink.export_json().expect("recording sink exports");
    let stages = doc.get("stages").and_then(Json::as_arr).expect("stages");
    let peak = stages
        .iter()
        .find(|s| s.get("stage").and_then(Json::as_str) == Some("extract"))
        .and_then(|s| s.get("gauges"))
        .and_then(|g| g.get("peak_resident_bytes"))
        .and_then(Json::as_f64)
        .expect("peak_resident_bytes gauge");
    // Resident memory is one decoded block's payload, not the store.
    let largest_block = store.blocks().iter().map(|b| b.len).max().unwrap_or(0);
    assert!(
        peak > 0.0 && peak <= largest_block as f64,
        "replay peak resident bytes {peak} exceeds the largest block ({largest_block} bytes)"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn node_filter_replays_one_node_and_skips_the_rest_unread() {
    let out = campaign();
    let dir = scratch_dir("filter");
    let store_path = dir.join("records.grcs");
    build_store(&out, &store_path);
    let store = RecordStore::open(&store_path).expect("store opens");
    assert!(store.nodes().len() > 1, "need multiple nodes to filter");
    let target = store.nodes()[0];

    let full = drain(&mut store.reader(&store_path).expect("reader"));
    let expect: Vec<&ErrorRecord> = full
        .iter()
        .filter(|(n, _)| store.nodes()[*n] == target)
        .map(|(_, r)| r)
        .collect();
    assert!(!expect.is_empty(), "target node produced no records");

    let mut reader = store
        .reader(&store_path)
        .expect("reader")
        .select_nodes(&[target]);
    let got = drain(&mut reader);
    assert!(got.iter().all(|(n, _)| store.nodes()[*n] == target));
    let got: Vec<&ErrorRecord> = got.iter().map(|(_, r)| r).collect();
    assert_eq!(got, expect, "node filter changed the record stream");

    // The footer index lets every other node's blocks go unread.
    let other_blocks = store
        .blocks()
        .iter()
        .filter(|b| store.nodes()[b.node_idx] != target)
        .count() as u64;
    assert!(other_blocks > 0);
    assert_eq!(
        reader.blocks_skipped(),
        other_blocks,
        "foreign blocks must be skipped via the index, not decoded"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_stores_fail_typed_not_panicking() {
    let out = campaign();
    let dir = scratch_dir("damage");
    let store_path = dir.join("records.grcs");
    build_store(&out, &store_path);
    let healthy = std::fs::read(&store_path).expect("read store back");

    // Truncation at half length: open() must fail with a Store error
    // that names the file.
    let half = dir.join("truncated.grcs");
    std::fs::write(&half, &healthy[..healthy.len() / 2]).expect("write truncated");
    let msg = RecordStore::open(&half).expect_err("truncated store").to_string();
    assert!(
        msg.contains("record store") && msg.contains("truncated.grcs"),
        "error must be typed and name the path, got: {msg}"
    );

    // Empty file: typed error, not a slice panic.
    let empty = dir.join("empty.grcs");
    std::fs::write(&empty, b"").expect("write empty");
    let msg = RecordStore::open(&empty).expect_err("empty store").to_string();
    assert!(msg.contains("record store"), "got: {msg}");

    // A bit flip in a block payload passes open() (the footer is intact)
    // but must be caught by the block checksum during replay.
    let mut flipped = healthy.clone();
    flipped[64] ^= 0x40;
    let bad = dir.join("bitflip.grcs");
    std::fs::write(&bad, &flipped).expect("write corrupted");
    let store = RecordStore::open(&bad).expect("footer is intact");
    let mut reader = store.reader(&bad).expect("reader");
    let mut err = None;
    loop {
        match reader.next_batch() {
            Ok(Some(_)) => continue,
            Ok(None) => break,
            Err(e) => {
                err = Some(e.to_string());
                break;
            }
        }
    }
    let msg = err.expect("bit flip must not decode cleanly");
    assert!(
        msg.contains("checksum"),
        "corruption must be reported as a checksum mismatch, got: {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
