//! Tier-1 coverage of the live path: `TailSource` following growing
//! files, checkpoint resume, event-time alert determinism, and the
//! headline acceptance property — `gpures watch` drained over a
//! completed corpus prints byte-for-byte what `gpures analyze` prints
//! on the same logs.

use gpu_resilience::core::{
    PipelineBuilder, StudyConfig, TailSource, WatchConfig, WatchSession,
};
use gpu_resilience::obs::MetricsSink;
use gpu_resilience::xid::{
    syslog, Duration, ErrorDetail, ErrorRecord, GpuId, NodeId, Timestamp, Xid,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::Command;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpures-watch-live-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

/// One driver-shaped syslog line for an error at `secs` on `node`.
fn line(secs: u64, node: u32, slot: usize, xid: Xid) -> String {
    syslog::format_line(
        &ErrorRecord::new(
            Timestamp::from_secs(secs),
            GpuId::at_slot(NodeId(node), slot),
            xid,
            ErrorDetail::new(1, 2),
        ),
        77,
    )
}

fn append(path: &Path, lines: &[String]) {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open log for append");
    for l in lines {
        writeln!(f, "{l}").expect("append line");
    }
}

const DAY: u64 = 86_400;

/// The shared two-node corpus: a coalescing burst, a second GPU on the
/// same node (propagation), and enough per-GPU repeats to cross the
/// offender threshold used by the alert tests.
fn corpus() -> (Vec<String>, Vec<String>) {
    let node1: Vec<String> = (0..6)
        .map(|k| line(DAY + 3_600 * k, 1, 0, Xid::MmuError))
        .chain([
            line(DAY + 3_600 * 5 + 2, 1, 0, Xid::MmuError), // coalesces
            line(DAY + 3_600 * 7, 1, 1, Xid::NvlinkError),
        ])
        .collect();
    let node2 = vec![
        line(DAY + 1_800, 2, 0, Xid::FallenOffBus),
        line(DAY + 40_000, 2, 0, Xid::UncontainedEcc),
        line(DAY + 41_000, 2, 1, Xid::UncontainedEcc),
        line(DAY + 42_000, 2, 2, Xid::UncontainedEcc),
    ];
    (node1, node2)
}

fn watch_config() -> WatchConfig {
    WatchConfig {
        study: StudyConfig::ampere_study().with_window(72.0, 2),
        offender_threshold: 4,
        storm_threshold: 3,
        ..WatchConfig::default()
    }
}

#[test]
fn tail_session_follows_appends_and_converges_to_batch() {
    let dir = tmp_dir("follow");
    let (node1, node2) = corpus();

    // First halves on disk, then the session catches up, then the files
    // grow — exactly the live deployment shape.
    append(&dir.join("gpub001.log"), &node1[..4]);
    append(&dir.join("gpub002.log"), &node2[..2]);

    let mut source = TailSource::open(&dir).expect("open tail");
    let sink = MetricsSink::disabled();
    let mut session = WatchSession::new(watch_config());
    let d1 = session.run_observed(&mut source, &sink).expect("poll 1");
    assert_eq!(d1.lines, 6);
    assert_eq!(d1.records, 6);

    append(&dir.join("gpub001.log"), &node1[4..]);
    append(&dir.join("gpub002.log"), &node2[2..]);
    let d2 = session.run_observed(&mut source, &sink).expect("poll 2");
    assert_eq!(d2.lines, 6);
    assert_eq!(session.stats().records, 12);
    assert_eq!(session.stats().late_dropped, 0);

    let live = session.finish_observed(&sink);

    let logs = vec![(NodeId(1), node1), (NodeId(2), node2)];
    let (batch, _) = PipelineBuilder::new(watch_config().study).run_text(&logs);
    assert_eq!(
        format!("{live:?}"),
        format!("{batch:?}"),
        "a grown-then-drained tail must match the batch pipeline bit-for-bit"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_resume_skips_already_consumed_lines() {
    let dir = tmp_dir("ckpt");
    let ckpt = dir.join("tail.ckpt");
    let (node1, _) = corpus();
    append(&dir.join("gpub001.log"), &node1);

    let sink = MetricsSink::disabled();
    {
        let mut source = TailSource::open(&dir).expect("open tail");
        let mut session = WatchSession::new(watch_config());
        let d = session.run_observed(&mut source, &sink).expect("drain");
        assert_eq!(d.lines, node1.len() as u64);
        source.save_checkpoint(&ckpt).expect("save checkpoint");
    }

    // A fresh process resuming from the checkpoint sees nothing new...
    let mut source = TailSource::open_with_checkpoint(&dir, &ckpt).expect("resume");
    let mut session = WatchSession::new(watch_config());
    let d = session.run_observed(&mut source, &sink).expect("poll");
    assert_eq!(d.lines, 0, "checkpoint must skip consumed bytes");

    // ... until the file actually grows.
    append(&dir.join("gpub001.log"), &[line(2 * DAY, 1, 3, Xid::MmuError)]);
    let d = session.run_observed(&mut source, &sink).expect("poll 2");
    assert_eq!(d.lines, 1);
    assert_eq!(d.records, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn alerts_are_identical_across_poll_cadences_and_chunk_sizes() {
    let dir = tmp_dir("alerts");
    let (node1, node2) = corpus();
    append(&dir.join("gpub001.log"), &node1);
    append(&dir.join("gpub002.log"), &node2);

    let sink = MetricsSink::disabled();
    let run = |chunk_bytes: u64| {
        let mut cfg = watch_config();
        cfg.chunk_bytes = chunk_bytes;
        let mut source = TailSource::open(&dir).expect("open tail");
        let mut session = WatchSession::new(cfg);
        // Poll repeatedly: later polls are no-ops on a static corpus,
        // which must not perturb event-time state.
        for _ in 0..3 {
            session.run_observed(&mut source, &sink).expect("poll");
        }
        session.drain();
        let alerts: Vec<String> = session.alerts().iter().map(|a| a.to_string()).collect();
        (alerts, session.finish_observed(&sink))
    };

    let (alerts_big, results_big) = run(1 << 20);
    let (alerts_small, results_small) = run(96); // a few lines per chunk
    assert_eq!(
        alerts_big, alerts_small,
        "alerts are event-time keyed: chunking must not change them"
    );
    assert_eq!(format!("{results_big:?}"), format!("{results_small:?}"));

    // The corpus is built to cross both thresholds exactly once each.
    assert!(
        alerts_big.iter().any(|a| a.contains("emerging offender")),
        "alerts: {alerts_big:?}"
    );
    assert!(
        alerts_big.iter().any(|a| a.contains("XID-95 storm onset")),
        "alerts: {alerts_big:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watermark_holds_back_recent_lines_until_flush() {
    let dir = tmp_dir("watermark");
    // Two records 10 s apart with a 2-minute lateness: after one poll
    // both sit inside the watermark, pending release.
    append(
        &dir.join("gpub001.log"),
        &[
            line(DAY, 1, 0, Xid::MmuError),
            line(DAY + 10, 1, 1, Xid::NvlinkError),
        ],
    );
    let mut cfg = watch_config();
    cfg.lateness = Duration::from_secs(120);
    let sink = MetricsSink::disabled();
    let mut source = TailSource::open(&dir).expect("open tail");
    let mut session = WatchSession::new(cfg);
    let d = session.run_observed(&mut source, &sink).expect("poll");
    assert_eq!(d.records, 2);
    assert_eq!(d.released, 0, "records newer than the watermark stay pending");
    assert_eq!(session.snapshot().pending, 2);

    // finish_observed flushes the buffer; nothing is lost.
    let results = session.finish_observed(&sink);
    assert_eq!(results.coalesced.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance property, end to end through the binary: over a
/// completed campaign corpus, `gpures watch --follow off` must print
/// byte-for-byte what `gpures analyze` prints, and the checkpoint +
/// snapshot + alert plumbing must produce their artifacts.
#[test]
fn watch_cli_drain_matches_analyze_stdout() {
    let dir = tmp_dir("cli");
    let corpus_dir = dir.join("campaign");
    let gpures = env!("CARGO_BIN_EXE_gpures");

    let out = Command::new(gpures)
        .args(["campaign", "--shape", "tiny", "--days", "10", "--seed", "3", "--out"])
        .arg(&corpus_dir)
        .output()
        .expect("run gpures campaign");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let logs = corpus_dir.join("logs");

    let analyze = Command::new(gpures)
        .args(["analyze", "--logs"])
        .arg(&logs)
        .output()
        .expect("run gpures analyze");
    assert!(
        analyze.status.success(),
        "{}",
        String::from_utf8_lossy(&analyze.stderr)
    );

    let ckpt = dir.join("tail.ckpt");
    let snaps = dir.join("snaps");
    let alerts = dir.join("alerts.log");
    let watch = Command::new(gpures)
        .args(["watch", "--follow", "off", "--logs"])
        .arg(&logs)
        .arg("--checkpoint")
        .arg(&ckpt)
        .arg("--snapshots")
        .arg(&snaps)
        .arg("--alerts")
        .arg(&alerts)
        .output()
        .expect("run gpures watch");
    assert!(
        watch.status.success(),
        "{}",
        String::from_utf8_lossy(&watch.stderr)
    );

    assert_eq!(
        String::from_utf8_lossy(&analyze.stdout),
        String::from_utf8_lossy(&watch.stdout),
        "watch --follow off must print exactly the analyze report"
    );
    let stderr = String::from_utf8_lossy(&watch.stderr);
    assert!(stderr.contains("0 late-dropped"), "stderr: {stderr}");

    assert!(ckpt.is_file(), "checkpoint written");
    assert!(
        snaps.join("snapshot_000001.json").is_file(),
        "snapshot written"
    );
    // A second drain from the checkpoint consumes nothing new.
    let resume = Command::new(gpures)
        .args(["watch", "--follow", "off", "--logs"])
        .arg(&logs)
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .expect("re-run gpures watch");
    assert!(resume.status.success());
    let stderr = String::from_utf8_lossy(&resume.stderr);
    assert!(
        stderr.contains("0 lines, 0 records"),
        "resumed drain must be empty: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a sweep battery argument that matches nothing
/// must exit nonzero with a typed usage error naming the path.
#[test]
fn sweep_rejects_empty_battery_dirs_with_a_usage_error() {
    let dir = tmp_dir("sweep-usage");
    let empty = dir.join("empty_battery");
    std::fs::create_dir_all(&empty).expect("mkdir");

    let gpures = env!("CARGO_BIN_EXE_gpures");
    let out = Command::new(gpures)
        .args(["sweep", "--out"])
        .arg(dir.join("out"))
        .arg(&empty)
        .output()
        .expect("run gpures sweep");
    assert!(!out.status.success(), "empty battery dir must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid value") && stderr.contains("no .scn files"),
        "stderr must carry the typed usage error: {stderr}"
    );
    assert!(
        stderr.contains(&empty.display().to_string()),
        "stderr must name the offending path: {stderr}"
    );

    let out = Command::new(gpures)
        .args(["sweep", "--out"])
        .arg(dir.join("out"))
        .arg(dir.join("missing/*.scn"))
        .output()
        .expect("run gpures sweep");
    assert!(!out.status.success(), "unmatched glob must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("matches no .scn file") && stderr.contains("missing/*.scn"),
        "stderr must name the unmatched pattern: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
