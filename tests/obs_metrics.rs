//! Observability contract: attaching a metrics sink must not perturb
//! results by a single bit, the exported document must follow the
//! `gpures-metrics/v1` schema, and every `PipelineBuilder` entry point
//! (`run_text`, `run_source` over each engine and chunking) must agree.

use gpu_resilience::core::{PipelineBuilder, Stage1Engine, StudyConfig};
use gpu_resilience::faults::{Campaign, CampaignConfig};
use gpu_resilience::obs::json::Json;
use gpu_resilience::obs::MetricsSink;

fn workload() -> (Vec<(gpu_resilience::xid::NodeId, Vec<String>)>, StudyConfig) {
    let out = Campaign::run(CampaignConfig::tiny(321));
    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);
    (out.text_logs, cfg)
}

#[test]
fn results_are_bit_identical_with_metrics_on_and_off() {
    let (logs, cfg) = workload();
    let builder = PipelineBuilder::new(cfg);
    let (r_off, s_off) = builder.run_text(&logs);
    let sink = MetricsSink::recording();
    let (r_on, s_on) = builder.clone().metrics(sink.clone()).run_text(&logs);

    assert_eq!(s_off, s_on, "extraction stats must not change");
    assert_eq!(r_off.coalesced, r_on.coalesced, "episodes must not change");
    assert_eq!(r_off.overall_mtbe_h, r_on.overall_mtbe_h);
    // Field-by-field bit identity via the full Debug rendering: floats
    // print with enough precision that any drift shows up.
    assert_eq!(
        format!("{r_off:?}"),
        format!("{r_on:?}"),
        "StudyResults must be bit-identical with metrics on"
    );
    // And the sink did actually record something.
    assert!(sink.export_json().is_some());
}

#[test]
fn exported_metrics_follow_the_v1_schema() {
    let (logs, cfg) = workload();
    let sink = MetricsSink::recording();
    let _ = PipelineBuilder::new(cfg)
        .metrics(sink.clone())
        .run_text(&logs);
    let doc = sink.export_json().expect("recording sink exports");

    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-metrics/v1")
    );
    let stages = doc.get("stages").and_then(Json::as_arr).expect("stages");
    let names: Vec<&str> = stages
        .iter()
        .filter_map(|s| s.get("stage").and_then(Json::as_str))
        .collect();
    for want in ["shard", "extract", "coalesce", "stats", "propagation"] {
        assert!(names.contains(&want), "missing stage {want:?} in {names:?}");
    }
    for stage in stages {
        assert!(
            stage.get("wall_s").and_then(Json::as_f64).expect("wall_s") >= 0.0
        );
    }
    let extract = stages
        .iter()
        .find(|s| s.get("stage").and_then(Json::as_str) == Some("extract"))
        .expect("extract stage");
    let counters = extract.get("counters").expect("extract counters");
    assert!(counters.get("lines").and_then(Json::as_u64).expect("lines") > 0);
    assert!(counters.get("bytes").and_then(Json::as_u64).expect("bytes") > 0);
    let rates = extract.get("rates").expect("extract rates");
    assert!(rates.get("lines_per_s").and_then(Json::as_f64).expect("rate") > 0.0);
    let spans = extract.get("spans").and_then(Json::as_arr).expect("spans");
    assert!(spans
        .iter()
        .any(|s| s.get("name").and_then(Json::as_str) == Some("total")));
    // Per-chunk throughput histogram from `SpanGuard::rate`.
    let hists = extract.get("histograms").and_then(Json::as_arr).expect("hists");
    assert!(hists
        .iter()
        .any(|h| h.get("name").and_then(Json::as_str) == Some("chunk_mb_per_s")));
    // The document round-trips through the writer/parser pair.
    assert_eq!(Json::parse(&doc.render()).expect("parses"), doc);
}

#[test]
fn run_source_agrees_with_run_text_across_engines_and_chunkings() {
    use gpu_resilience::core::InMemorySource;

    let out = Campaign::run(CampaignConfig::tiny(654));
    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);
    let jobs = gpu_resilience::slurm::Scheduler::new(gpu_resilience::slurm::JobLoadConfig::tiny(3))
        .run(&out.fleet, &gpu_resilience::slurm::DrainWindows::default())
        .jobs;

    let builders = [
        (
            "default",
            PipelineBuilder::new(cfg).jobs(&jobs).downtime(&out.downtime),
        ),
        ("chunked-4k", PipelineBuilder::new(cfg).chunk_bytes(4096)),
        (
            "baseline-engine",
            PipelineBuilder::new(cfg).engine(Stage1Engine::Baseline),
        ),
    ];
    for (name, builder) in builders {
        let (r_text, s_text) = builder.run_text(&out.text_logs);
        let mut source = InMemorySource::new(&out.text_logs);
        let (r_src, s_src) = builder
            .run_source(&mut source)
            .expect("in-memory source is infallible");
        assert_eq!(s_text, s_src, "{name}: stats diverge");
        assert_eq!(r_text.coalesced, r_src.coalesced, "{name}: episodes diverge");
        assert_eq!(
            format!("{r_text:?}"),
            format!("{r_src:?}"),
            "{name}: results diverge"
        );
    }
}
