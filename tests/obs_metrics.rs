//! Observability contract: attaching a metrics sink must not perturb
//! results by a single bit, the exported document must follow the
//! `gpures-metrics/v1` schema, and the `PipelineBuilder` must reproduce
//! every legacy entry point it deprecates.

use gpu_resilience::core::{PipelineBuilder, Stage1Engine, StudyConfig};
use gpu_resilience::faults::{Campaign, CampaignConfig};
use gpu_resilience::obs::json::Json;
use gpu_resilience::obs::MetricsSink;

fn workload() -> (Vec<(gpu_resilience::xid::NodeId, Vec<String>)>, StudyConfig) {
    let out = Campaign::run(CampaignConfig::tiny(321));
    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);
    (out.text_logs, cfg)
}

#[test]
fn results_are_bit_identical_with_metrics_on_and_off() {
    let (logs, cfg) = workload();
    let builder = PipelineBuilder::new(cfg);
    let (r_off, s_off) = builder.run_text(&logs);
    let sink = MetricsSink::recording();
    let (r_on, s_on) = builder.clone().metrics(sink.clone()).run_text(&logs);

    assert_eq!(s_off, s_on, "extraction stats must not change");
    assert_eq!(r_off.coalesced, r_on.coalesced, "episodes must not change");
    assert_eq!(r_off.overall_mtbe_h, r_on.overall_mtbe_h);
    // Field-by-field bit identity via the full Debug rendering: floats
    // print with enough precision that any drift shows up.
    assert_eq!(
        format!("{r_off:?}"),
        format!("{r_on:?}"),
        "StudyResults must be bit-identical with metrics on"
    );
    // And the sink did actually record something.
    assert!(sink.export_json().is_some());
}

#[test]
fn exported_metrics_follow_the_v1_schema() {
    let (logs, cfg) = workload();
    let sink = MetricsSink::recording();
    let _ = PipelineBuilder::new(cfg)
        .metrics(sink.clone())
        .run_text(&logs);
    let doc = sink.export_json().expect("recording sink exports");

    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-metrics/v1")
    );
    let stages = doc.get("stages").and_then(Json::as_arr).expect("stages");
    let names: Vec<&str> = stages
        .iter()
        .filter_map(|s| s.get("stage").and_then(Json::as_str))
        .collect();
    for want in ["shard", "extract", "coalesce", "stats", "propagation"] {
        assert!(names.contains(&want), "missing stage {want:?} in {names:?}");
    }
    for stage in stages {
        assert!(
            stage.get("wall_s").and_then(Json::as_f64).expect("wall_s") >= 0.0
        );
    }
    let extract = stages
        .iter()
        .find(|s| s.get("stage").and_then(Json::as_str) == Some("extract"))
        .expect("extract stage");
    let counters = extract.get("counters").expect("extract counters");
    assert!(counters.get("lines").and_then(Json::as_u64).expect("lines") > 0);
    assert!(counters.get("bytes").and_then(Json::as_u64).expect("bytes") > 0);
    let rates = extract.get("rates").expect("extract rates");
    assert!(rates.get("lines_per_s").and_then(Json::as_f64).expect("rate") > 0.0);
    let spans = extract.get("spans").and_then(Json::as_arr).expect("spans");
    assert!(spans
        .iter()
        .any(|s| s.get("name").and_then(Json::as_str) == Some("total")));
    // Per-chunk throughput histogram from `SpanGuard::rate`.
    let hists = extract.get("histograms").and_then(Json::as_arr).expect("hists");
    assert!(hists
        .iter()
        .any(|h| h.get("name").and_then(Json::as_str) == Some("chunk_mb_per_s")));
    // The document round-trips through the writer/parser pair.
    assert_eq!(Json::parse(&doc.render()).expect("parses"), doc);
}

#[test]
#[allow(deprecated)]
fn builder_reproduces_every_deprecated_entry_point() {
    use gpu_resilience::core::StudyResults;

    let out = Campaign::run(CampaignConfig::tiny(654));
    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);
    let jobs = gpu_resilience::slurm::Scheduler::new(gpu_resilience::slurm::JobLoadConfig::tiny(3))
        .run(&out.fleet, &gpu_resilience::slurm::DrainWindows::default())
        .jobs;

    let cases: Vec<(&str, (StudyResults, _), (StudyResults, _))> = vec![
        (
            "from_text_logs",
            StudyResults::from_text_logs(&out.text_logs, Some(&jobs), Some(&out.downtime), cfg),
            PipelineBuilder::new(cfg)
                .jobs(&jobs)
                .downtime(&out.downtime)
                .run_text(&out.text_logs),
        ),
        (
            "from_text_logs_chunked",
            StudyResults::from_text_logs_chunked(&out.text_logs, None, None, cfg, Some(4096)),
            PipelineBuilder::new(cfg)
                .chunk_bytes(4096)
                .run_text(&out.text_logs),
        ),
        (
            "from_text_logs_baseline",
            StudyResults::from_text_logs_baseline(&out.text_logs, None, None, cfg),
            PipelineBuilder::new(cfg)
                .engine(Stage1Engine::Baseline)
                .run_text(&out.text_logs),
        ),
    ];
    for (name, (r_old, s_old), (r_new, s_new)) in cases {
        assert_eq!(s_old, s_new, "{name}: stats diverge");
        assert_eq!(r_old.coalesced, r_new.coalesced, "{name}: episodes diverge");
        assert_eq!(
            format!("{r_old:?}"),
            format!("{r_new:?}"),
            "{name}: results diverge"
        );
    }
}
