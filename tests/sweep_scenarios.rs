//! Tier-1 gate for the scenario DSL and the `gpures sweep` driver:
//! the artifact must be byte-identical across worker counts (the
//! headline determinism invariant extended to the fleet-campaign
//! driver), the tee side outputs must land, and the bundled reference
//! batteries must stay loadable. The full-scale 10×-Delta smoke is
//! `#[ignore]`d: correct but too heavy for every `cargo test`.

use gpu_resilience::obs::json::Json;
use gpu_resilience::report::sweep::{run_battery, SweepOptions};
use gpu_resilience::scenario::Scenario;

/// A small two-scenario battery exercising multi-seed fan-out, class
/// multipliers, and the jobs block — big enough that worker scheduling
/// could plausibly reorder something, small enough for tier 1.
fn small_battery() -> Vec<Scenario> {
    let a = "scenario \"det_a\"\n\
             fleet tiny\n\
             duration_days = 20\n\
             seeds = [7, 8, 9]\n\
             rates ampere_delta\n\
             rates.gsp_hang *= 1.5\n";
    let b = "scenario \"det_b\"\n\
             fleet { a100x4 = 3, gh200 = 2 }\n\
             duration_days = 15\n\
             seeds = [11]\n\
             rates h100_delta\n\
             jobs { per_node_day = 12 }\n";
    vec![
        Scenario::parse(a).expect("det_a parses"),
        Scenario::parse(b).expect("det_b parses"),
    ]
}

#[test]
fn sweep_artifact_is_byte_identical_across_worker_counts() {
    let battery = small_battery();
    // Sequential on purpose: the worker override is process-global, so
    // both runs live in one test rather than racing across test threads.
    gpu_resilience::par::set_worker_override(Some(1));
    let serial = run_battery(&battery, &SweepOptions::default()).expect("serial sweep");
    gpu_resilience::par::set_worker_override(Some(8));
    let wide = run_battery(&battery, &SweepOptions::default()).expect("8-worker sweep");
    gpu_resilience::par::set_worker_override(None);

    let serial_text = serial.render();
    assert_eq!(
        serial_text,
        wide.render(),
        "sweep.json must not depend on the worker count"
    );
    // The artifact must not smuggle in anything wall-clock shaped.
    for key in ["wall", "elapsed", "timestamp", "workers"] {
        assert!(
            !serial_text.contains(key),
            "artifact leaks `{key}` — that breaks byte-reproducibility"
        );
    }

    // Rows come back sorted by (scenario, seed) regardless of
    // completion order: det_a seeds 7/8/9 then det_b seed 11.
    let rows = serial.get("rows").and_then(Json::as_arr).expect("rows");
    let order: Vec<(String, u64)> = rows
        .iter()
        .map(|r| {
            (
                r.get("scenario").and_then(Json::as_str).expect("name").to_string(),
                r.get("seed").and_then(Json::as_u64).expect("seed"),
            )
        })
        .collect();
    assert_eq!(
        order,
        vec![
            ("det_a".to_string(), 7),
            ("det_a".to_string(), 8),
            ("det_a".to_string(), 9),
            ("det_b".to_string(), 11),
        ]
    );
}

#[test]
fn sweep_tees_write_per_run_records_and_metrics() {
    let battery = small_battery();
    let tmp = std::env::temp_dir().join("gpures_sweep_tee_test");
    let _ = std::fs::remove_dir_all(&tmp);
    let opts = SweepOptions {
        records_dir: Some(tmp.join("records")),
        metrics_dir: Some(tmp.join("metrics")),
    };
    let doc = run_battery(&battery, &opts).expect("sweep with tees");
    assert_eq!(doc.get("runs").and_then(Json::as_u64), Some(4));

    for name in ["det_a_7", "det_a_8", "det_a_9", "det_b_11"] {
        let store = tmp.join("records").join(format!("{name}.records"));
        assert!(store.is_file(), "missing records tee {}", store.display());
        let metrics = tmp.join("metrics").join(format!("{name}.json"));
        assert!(metrics.is_file(), "missing metrics tee {}", metrics.display());
        let parsed = Json::parse(
            &std::fs::read_to_string(&metrics).expect("metrics tee readable"),
        )
        .expect("metrics tee is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("gpures-metrics/v1")
        );
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn teed_record_store_replays_bit_identical_to_its_run() {
    // The whole point of `--records DIR` is forensic replay: the teed
    // store must reproduce the run that wrote it, bit for bit. Re-derive
    // det_a seed 7 with the driver's own recipe (compile the seed, run
    // the campaign, normalize the study window to the campaign) and
    // check the store replay against the in-memory ground truth.
    use gpu_resilience::core::{PipelineBuilder, RecordStore, StudyConfig};
    use gpu_resilience::faults::Campaign;

    let battery = small_battery();
    let tmp = std::env::temp_dir().join("gpures_sweep_replay_test");
    let _ = std::fs::remove_dir_all(&tmp);
    let opts = SweepOptions {
        records_dir: Some(tmp.clone()),
        metrics_dir: None,
    };
    run_battery(&battery, &opts).expect("sweep with records tee");

    let sc = &battery[0];
    assert_eq!(sc.name, "det_a");
    let cfg = sc.compile_seed(7);
    let nodes = cfg.shape.node_count();
    let out = Campaign::run(cfg);
    let study =
        StudyConfig::ampere_study().with_window(out.observation_hours(), nodes);
    let direct = PipelineBuilder::new(study)
        .downtime(&out.downtime)
        .run_records(&out.records);

    let path = tmp.join("det_a_7.records");
    let store = RecordStore::open(&path).expect("teed store opens");
    let mut reader = store.reader(&path).expect("store reader");
    let replayed = PipelineBuilder::new(study)
        .downtime(&out.downtime)
        .run_record_source(&mut reader)
        .expect("store replay");
    assert_eq!(
        format!("{direct:?}"),
        format!("{replayed:?}"),
        "teed record store must replay bit-identical to its run"
    );
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn bundled_reference_battery_passes_paper_tolerances() {
    // The two reference scenarios compile from their .scn sources alone
    // and the driver marks both as paper-tolerance passes. This is the
    // acceptance gate for the DSL → campaign → pipeline → comparison
    // path; the tiny preset rides along as an unchecked scenario.
    let battery: Vec<Scenario> = ["ampere_study", "h100_study"]
        .iter()
        .map(|n| gpu_resilience::scenario::preset(n).expect("bundled preset parses"))
        .collect();
    let doc = run_battery(&battery, &SweepOptions::default()).expect("reference sweep");
    let summary = doc.get("summary").expect("summary");
    assert_eq!(summary.get("checked").and_then(Json::as_u64), Some(2));
    assert_eq!(
        summary.get("passed").and_then(Json::as_u64),
        Some(2),
        "reference scenarios must stay inside the paper tolerances: {}",
        doc.render()
    );
}

/// Full-scale smoke: the 10×-Delta battery is a 2,860-node /
/// 11,680-GPU fleet — `cargo test -- --ignored` territory.
#[test]
#[ignore = "10x-scale fleet; run explicitly with cargo test -- --ignored"]
fn delta_10x_battery_runs_at_ten_thousand_gpu_scale() {
    let sc = gpu_resilience::scenario::preset("delta_10x").expect("bundled preset parses");
    let doc = run_battery(&[sc], &SweepOptions::default()).expect("10x sweep");
    let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
    assert_eq!(rows.len(), 1);
    let gpus = rows[0].get("gpus").and_then(Json::as_u64).expect("gpus");
    assert!(gpus >= 10_000, "delta_10x must model a 10,000+-GPU fleet, got {gpus}");
    assert!(
        rows[0].get("events").and_then(Json::as_u64).expect("events") > 0,
        "a 10x fleet at 10x rates must produce events"
    );
}
