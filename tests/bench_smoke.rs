//! Tier-1 smoke of the tracked Stage I benchmark: the full `gpures bench`
//! path on the shrunken corpus, its artifact schema, and — crucially —
//! that the numbers it reports are attached to *correct* extractions: the
//! record counts in `BENCH_stage1.json` and the coalesced counts in
//! `BENCH_pipeline.json` / `BENCH_stream.json` / `BENCH_records.json`
//! must match an independent reference run through the non-fast-path
//! pipeline.

use gpu_resilience::bench::json::Json;
use gpu_resilience::bench::stage1::{self, dense_workload, noisy_workload, Workload};
use gpu_resilience::core::{coalesce, CoalesceConfig};
use gpu_resilience::logscan::BaselineExtractor;
use gpu_resilience::xid::record::sort_records;
use gpu_resilience::xid::ErrorRecord;
use std::path::PathBuf;
use std::process::Command;

/// Reference Stage I: serial baseline extraction, one scanner per node.
fn reference_records(w: &Workload) -> Vec<ErrorRecord> {
    let mut all = Vec::new();
    for (_, lines) in &w.logs {
        let mut ex = BaselineExtractor::new();
        all.extend(ex.extract_all(lines.iter().map(|s| s.as_str())));
    }
    all
}

#[test]
fn stage1_report_counts_match_nonfast_reference() {
    let doc = stage1::stage1_report(true).expect("smoke report builds");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-bench-stage1/v1")
    );
    assert_eq!(doc.get("smoke"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("threads").and_then(Json::as_u64), Some(1));

    let rows = doc.get("workloads").and_then(Json::as_arr).expect("rows");
    assert_eq!(rows.len(), 2, "dense + noisy");
    // Regenerate the exact smoke corpora and count through the baseline.
    let expected = [dense_workload(2, 400), noisy_workload(2, 400)];
    for (row, w) in rows.iter().zip(&expected) {
        assert_eq!(row.get("name").and_then(Json::as_str), Some(w.name));
        assert_eq!(row.get("lines").and_then(Json::as_u64), Some(w.lines));
        let reported = row.get("records").and_then(Json::as_u64).expect("records");
        let reference = reference_records(w).len() as u64;
        assert_eq!(reported, reference, "workload {}", w.name);
        assert!(reference > 0, "smoke corpus must contain XID records");
        for engine in ["baseline", "optimized"] {
            let m = row.get(engine).expect("measurement present");
            assert_eq!(m.get("records").and_then(Json::as_u64), Some(reference));
            assert!(m.get("lines_per_s").and_then(Json::as_f64).expect("rate") > 0.0);
            assert!(m.get("reps").and_then(Json::as_u64).expect("reps") >= 1);
        }
    }
}

#[test]
fn pipeline_report_counts_match_batch_route() {
    let doc = stage1::pipeline_report(true).expect("smoke report builds");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-bench-pipeline/v2")
    );

    // Same corpus as the smoke pipeline report, through the batch route.
    let w = noisy_workload(3, 400);
    let mut records = reference_records(&w);
    sort_records(&mut records);
    let reference = coalesce(&records, CoalesceConfig::default()).len() as u64;
    assert!(reference > 0);

    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
    assert_eq!(
        runs.len(),
        stage1::WORKER_MATRIX.len(),
        "one run per worker-matrix entry"
    );
    for run in runs {
        assert_eq!(
            run.get("coalesced").and_then(Json::as_u64),
            Some(reference),
            "every worker count must coalesce identically to the batch route"
        );
        assert!(run.get("workers").and_then(Json::as_u64).expect("workers") >= 1);
        assert!(
            run.get("scaling_efficiency")
                .and_then(Json::as_f64)
                .expect("per-run scaling_efficiency")
                > 0.0
        );
    }
    assert!(doc.get("scaling_efficiency").and_then(Json::as_f64).is_some());
    // Host metadata: scaling rows are only comparable across machines
    // when the artifact says how much parallelism the host actually had.
    assert!(
        doc.get("available_parallelism")
            .and_then(Json::as_u64)
            .expect("available_parallelism recorded")
            >= 1
    );
}

/// The committed `BENCH_pipeline.json` artifact must come from a real
/// worker-matrix sweep: a non-smoke report with fewer than two runs has
/// a vacuous scaling number and fails tier-1 here.
#[test]
fn committed_pipeline_artifact_has_a_worker_matrix() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_pipeline.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return; // artifact not generated yet (fresh checkout)
    };
    let doc = Json::parse(&text).expect("committed artifact parses");
    let smoke = doc.get("smoke") == Some(&Json::Bool(true));
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
    if !smoke {
        assert!(
            runs.len() >= 2,
            "non-smoke BENCH_pipeline.json must sweep a worker matrix \
             (got {} run(s))",
            runs.len()
        );
    }
}

#[test]
fn obs_overhead_report_cross_checks_outputs() {
    let doc = gpu_resilience::bench::obs::obs_report(true).expect("smoke report builds");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-bench-obs/v1")
    );
    // The smoke corpus is the noisy workload at 3 nodes / 400 lines each;
    // the report's coalesced count must match the batch reference.
    let w = noisy_workload(3, 400);
    let mut records = reference_records(&w);
    sort_records(&mut records);
    let reference = coalesce(&records, CoalesceConfig::default()).len() as u64;
    assert_eq!(doc.get("coalesced").and_then(Json::as_u64), Some(reference));
    for engine in ["disabled", "recording"] {
        let m = doc.get(engine).expect("measurement present");
        assert!(m.get("lines_per_s").and_then(Json::as_f64).expect("rate") > 0.0);
    }
    assert!(doc.get("overhead_pct").and_then(Json::as_f64).is_some());
}

#[test]
fn stream_report_cross_checks_both_paths() {
    let doc = gpu_resilience::bench::stream::stream_report(true).expect("smoke report builds");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-bench-stream/v2")
    );
    // Same smoke corpus as the pipeline report, through the batch route.
    let w = noisy_workload(3, 400);
    let mut records = reference_records(&w);
    sort_records(&mut records);
    let reference = coalesce(&records, CoalesceConfig::default()).len() as u64;
    assert!(reference > 0);

    let paths = doc.get("paths").and_then(Json::as_arr).expect("paths");
    assert_eq!(
        paths.len(),
        3,
        "in-memory + dir-stream + dir-stream-prefetch"
    );
    assert!(doc.get("prefetch_speedup").and_then(Json::as_f64).is_some());
    assert!(doc.get("gap_close_pct").and_then(Json::as_f64).is_some());
    for p in paths {
        assert_eq!(
            p.get("coalesced").and_then(Json::as_u64),
            Some(reference),
            "both ingestion paths must coalesce identically to the batch route"
        );
        assert!(
            p.get("peak_resident_bytes")
                .and_then(Json::as_f64)
                .expect("peak gauge")
                > 0.0
        );
        let m = p.get("measurement").expect("measurement present");
        assert!(m.get("lines_per_s").and_then(Json::as_f64).expect("rate") > 0.0);
    }
}

#[test]
fn records_report_cross_checks_replay_against_batch_route() {
    let doc = gpu_resilience::bench::records::records_report(true).expect("smoke report builds");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-bench-records/v1")
    );
    // Same smoke corpus as the stream report, through the batch route.
    // The `dt5` variant runs at the default Δt=5 s window, so its
    // coalesced count must match the batch reference exactly.
    let w = noisy_workload(3, 400);
    let mut records = reference_records(&w);
    sort_records(&mut records);
    let reference = coalesce(&records, CoalesceConfig::default()).len() as u64;
    assert!(reference > 0);

    let store = doc.get("store").expect("store section");
    assert_eq!(
        store.get("records").and_then(Json::as_u64),
        Some(reference_records(&w).len() as u64),
        "the store must capture exactly the extracted record stream"
    );
    let variants = doc.get("variants").and_then(Json::as_arr).expect("variants");
    assert_eq!(
        variants.len(),
        gpu_resilience::bench::records::REPLAY_VARIANTS.len()
    );
    let dt5 = variants
        .iter()
        .find(|v| v.get("name").and_then(Json::as_str) == Some("dt5"))
        .expect("dt5 variant");
    assert_eq!(
        dt5.get("coalesced").and_then(Json::as_u64),
        Some(reference),
        "the default-window replay must coalesce identically to the batch route"
    );
    assert!(doc.get("replay_speedup").and_then(Json::as_f64).is_some());
    assert!(doc
        .get("write")
        .and_then(|w| w.get("write_overhead_pct"))
        .and_then(Json::as_f64)
        .is_some());
}

/// The committed `BENCH_records.json` must carry a real (non-smoke)
/// replay measurement and hold the ≥20× ratchet the optimisation
/// claims; a smoke artifact or a regressed speedup fails tier-1 here.
#[test]
fn committed_records_artifact_meets_the_replay_ratchet() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_records.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return; // artifact not generated yet (fresh checkout)
    };
    let doc = Json::parse(&text).expect("committed artifact parses");
    if doc.get("smoke") == Some(&Json::Bool(true)) {
        return;
    }
    let speedup = doc
        .get("replay_speedup")
        .and_then(Json::as_f64)
        .expect("replay_speedup");
    assert!(
        speedup >= 20.0,
        "committed BENCH_records.json replay speedup {speedup}x is below the 20x ratchet"
    );
}

#[test]
fn lint_report_reflects_a_clean_workspace_graph() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let doc = gpu_resilience::bench::lint::lint_report(true, &root).expect("smoke report builds");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-bench-lint/v1")
    );
    assert!(doc.get("files").and_then(Json::as_u64).expect("files") > 50);
    assert!(doc.get("symbols").and_then(Json::as_u64).expect("symbols") > 300);
    assert!(doc.get("call_edges").and_then(Json::as_u64).expect("edges") > 1000);
    assert!(doc.get("wall_s").and_then(Json::as_f64).expect("wall") >= 0.0);
    // The committed tree is lint-clean, and the three interprocedural
    // passes in particular must hold with zero findings.
    assert_eq!(doc.get("active_findings").and_then(Json::as_u64), Some(0));
    let by_pass = doc.get("findings_by_pass").expect("per-pass map");
    for pass in ["panic-reachability", "determinism-taint", "layer-dag"] {
        assert_eq!(by_pass.get(pass).and_then(Json::as_u64), Some(0), "{pass}");
    }
    assert_eq!(Json::parse(&doc.render()).expect("parses"), doc);
}

#[test]
fn sweep_report_measures_the_real_battery_driver() {
    let doc = gpu_resilience::bench::sweep::sweep_report(true).expect("smoke sweep bench");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-bench-sweep/v1")
    );
    assert_eq!(doc.get("smoke"), Some(&Json::Bool(true)));
    assert!(doc.get("runs").and_then(Json::as_u64).expect("runs") >= 2);
    assert!(doc.get("serial_s").and_then(Json::as_f64).expect("serial") > 0.0);
    assert!(doc.get("parallel_s").and_then(Json::as_f64).expect("parallel") > 0.0);
    assert!(
        doc.get("parallel_speedup").and_then(Json::as_f64).expect("speedup") > 0.0,
        "speedup may be ~1 on a 1-core box but must be measured"
    );
    assert_eq!(Json::parse(&doc.render()).expect("parses"), doc);
}

#[test]
fn watch_report_drains_the_live_path_without_drops() {
    let doc = gpu_resilience::bench::watch::watch_report(true).expect("smoke watch bench");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gpures-bench-watch/v1")
    );
    assert_eq!(doc.get("smoke"), Some(&Json::Bool(true)));
    assert!(doc.get("lines").and_then(Json::as_u64).expect("lines") > 0);
    assert!(doc.get("records").and_then(Json::as_u64).expect("records") > 0);
    assert!(doc.get("episodes").and_then(Json::as_u64).expect("episodes") > 0);
    // The bench itself cross-checks live vs batch episode counts; a
    // late-drop would mean the generator emitted out-of-order beyond
    // the watermark, which must never happen on a generated corpus.
    assert_eq!(doc.get("late_dropped").and_then(Json::as_u64), Some(0));
    assert!(
        doc.get("ingest_lines_per_s")
            .and_then(Json::as_f64)
            .expect("throughput")
            > 0.0
    );
    assert!(
        doc.get("snapshot_latency_us")
            .and_then(Json::as_f64)
            .expect("latency")
            >= 0.0
    );
    assert_eq!(Json::parse(&doc.render()).expect("parses"), doc);
}

/// The committed `BENCH_watch.json` must carry a real (non-smoke)
/// measurement with zero late drops and a live ingest rate that keeps
/// comfortable headroom over a fleet's actual syslog volume.
#[test]
fn committed_watch_artifact_meets_the_ingest_ratchet() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_watch.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return; // artifact not generated yet (fresh checkout)
    };
    let doc = Json::parse(&text).expect("committed artifact parses");
    assert_eq!(
        doc.get("late_dropped").and_then(Json::as_u64),
        Some(0),
        "committed BENCH_watch.json must drain without late drops"
    );
    if doc.get("smoke") == Some(&Json::Bool(true)) {
        return;
    }
    let rate = doc
        .get("ingest_lines_per_s")
        .and_then(Json::as_f64)
        .expect("ingest_lines_per_s");
    assert!(
        rate >= 100_000.0,
        "committed BENCH_watch.json ingest rate {rate} lines/s is below the 100k ratchet"
    );
}

#[test]
fn bench_cli_writes_parseable_artifacts() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("gpures-bench-smoke-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let out = Command::new(env!("CARGO_BIN_EXE_gpures"))
        .args(["bench", "--smoke", "true", "--out"])
        .arg(&dir)
        .output()
        .expect("run gpures bench");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("speedup"), "missing summary line:\n{stdout}");

    for (file, schema) in [
        ("BENCH_stage1.json", "gpures-bench-stage1/v1"),
        ("BENCH_pipeline.json", "gpures-bench-pipeline/v2"),
        ("BENCH_obs.json", "gpures-bench-obs/v1"),
        ("BENCH_stream.json", "gpures-bench-stream/v2"),
        ("BENCH_records.json", "gpures-bench-records/v1"),
        ("BENCH_lint.json", "gpures-bench-lint/v1"),
        ("BENCH_watch.json", "gpures-bench-watch/v1"),
        ("BENCH_sweep.json", "gpures-bench-sweep/v1"),
    ] {
        let text = std::fs::read_to_string(dir.join(file)).expect(file);
        let doc = Json::parse(&text).expect("artifact parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(schema));
        assert_eq!(doc.get("smoke"), Some(&Json::Bool(true)));
    }
    std::fs::remove_dir_all(&dir).ok();
}
