//! Integration: campaign events × scheduler × impact × Table 2 recovery.
//!
//! The chain under test: the campaign produces ground-truth error events;
//! the scheduler places jobs; `apply_errors` decides which jobs die; and
//! the analysis pipeline must then *re-discover* the error→failure
//! associations from timestamps alone (the ±20 s join), without access to
//! the ground truth.

use gpu_resilience::core::{StudyConfig, StudyResults};
use gpu_resilience::faults::{Campaign, CampaignConfig};
use gpu_resilience::slurm::{
    apply_errors, DrainWindows, JobLoadConfig, JobState, MaskingModel, Scheduler,
};
use gpu_resilience::xid::{Duration, Xid};
use rand::prelude::*;

struct World {
    out: gpu_resilience::faults::CampaignOutput,
    jobs: Vec<gpu_resilience::slurm::JobRecord>,
    results: StudyResults,
}

fn build_world(seed: u64) -> World {
    let out = Campaign::run(CampaignConfig::tiny(seed));
    let drains = DrainWindows::from_events(
        out.events.iter().map(|e| (e.gpu.node, e.at)),
        Duration::from_hours(24),
    );
    let mut schedule = Scheduler::new(JobLoadConfig::tiny(seed ^ 0xabc)).run(&out.fleet, &drains);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdef);
    apply_errors(&mut schedule.jobs, &out.events, &MaskingModel::default(), &mut rng);
    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);
    let results =
        StudyResults::from_records(&out.records, Some(&schedule.jobs), Some(&out.downtime), cfg);
    World {
        out,
        jobs: schedule.jobs,
        results,
    }
}

#[test]
fn classifier_rediscovers_gpu_killed_jobs() {
    let w = build_world(5);
    let truly_gpu_failed = w
        .jobs
        .iter()
        .filter(|j| j.state == JobState::GpuFailed)
        .count() as f64;
    let ji = w.results.job_impact.as_ref().expect("job impact present");
    // The timestamp-join classifier must find nearly all true GPU kills
    // (it can also pick up coincidental user failures, so >=).
    assert!(
        ji.gpu_failed_total as f64 >= truly_gpu_failed * 0.95,
        "classifier found {} of {truly_gpu_failed}",
        ji.gpu_failed_total
    );
    // And not wildly more (coincidences are rare).
    assert!(
        (ji.gpu_failed_total as f64) < truly_gpu_failed * 1.3 + 10.0,
        "classifier found {} of {truly_gpu_failed}",
        ji.gpu_failed_total
    );
}

#[test]
fn gsp_failure_probability_is_total() {
    // Every job that encounters a GSP timeout in its kill window dies
    // (Table 2: 100 %).
    for seed in [5, 6, 7] {
        let w = build_world(seed);
        let ji = w.results.job_impact.as_ref().expect("job impact");
        let gsp = ji
            .table2
            .iter()
            .find(|r| r.xid == Xid::GspRpcTimeout)
            .expect("GSP row");
        if gsp.jobs_encountering > 0 {
            assert!(
                gsp.failure_probability() > 0.85,
                "GSP failure probability {}",
                gsp.failure_probability()
            );
            return;
        }
    }
    panic!("no GSP exposures in any seed");
}

#[test]
fn killed_jobs_die_within_the_join_window() {
    let w = build_world(9);
    for job in w.jobs.iter().filter(|j| j.state == JobState::GpuFailed) {
        let near_error = w.out.events.iter().any(|e| {
            job.gpus.contains(&e.gpu)
                && e.at <= job.end
                && job.end - e.at <= Duration::from_secs(20)
        });
        assert!(near_error, "job {} died without a nearby error", job.id);
    }
}

#[test]
fn table3_recovers_the_workload_mixture() {
    let w = build_world(11);
    let t3 = w.results.table3.as_ref().expect("table3");
    let total: u64 = t3.iter().map(|r| r.count).sum();
    assert_eq!(total, w.jobs.len() as u64);
    // Dominant buckets in proportion.
    assert!((t3[0].share - 0.6986).abs() < 0.03, "1-GPU share {}", t3[0].share);
    assert!((t3[1].share - 0.2731).abs() < 0.03);
    // Walltime cap honored.
    for row in t3 {
        assert!(row.elapsed_p99_min <= 2_880.5);
    }
}

#[test]
fn success_rate_reflects_user_failures_plus_gpu_failures() {
    let w = build_world(13);
    let ji = w.results.job_impact.as_ref().expect("job impact");
    // ~25 % user failures plus a small GPU-failed increment.
    assert!(ji.success_rate > 0.66 && ji.success_rate < 0.80,
        "success rate {}", ji.success_rate);
    assert!(ji.lost_gpu_hours >= 0.0);
}

#[test]
fn downtime_and_availability_are_reported() {
    let w = build_world(17);
    let d = w.results.downtime.as_ref().expect("downtime stats");
    assert!(d.incidents > 0);
    assert!(d.mean_service_h > 0.0 && d.mean_service_h < 5.0);
    let a = w.results.availability.expect("availability");
    assert!(a > 0.9 && a < 1.0, "availability {a}");
}
