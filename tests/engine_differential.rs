//! Tier-1 differential gate for the fold-based analysis core: a
//! [`StudyResults`] produced by folding the corpus through the
//! incremental `StudyEngine` must be **Debug-fingerprint-identical** to
//! the pre-refactor batch output — the batch analysis functions applied
//! to the same coalesced errors, assembled exactly as the old
//! `from_coalesced_observed` did — on every existing source type (text,
//! generator, record store) and at 1 and 8 workers.

use gpu_resilience::core::stats::{category_mtbe, overall_mtbe};
use gpu_resilience::core::{
    availability, counterfactual, lost_gpu_hours, table1, GeneratorSource, InMemoryRecordSource,
    PipelineBuilder, StudyConfig, StudyResults,
};
use gpu_resilience::core::downtime::downtime_stats;
use gpu_resilience::core::job_impact::{analyze_jobs, table3};
use gpu_resilience::core::propagation::analyze;
use gpu_resilience::faults::{Campaign, CampaignConfig, DowntimeInterval};
use gpu_resilience::slurm::{DrainWindows, JobLoadConfig, JobRecord, Scheduler};
use gpu_resilience::xid::{ErrorRecord, NodeId};

/// The pre-refactor batch pipeline, reconstructed verbatim from the
/// retired `from_coalesced_observed` body: every section computed by its
/// batch function, fields assembled in the same order. This is the
/// oracle the folded engine must reproduce bit for bit.
fn batch_oracle(
    coalesced: Vec<gpu_resilience::core::CoalescedError>,
    jobs: Option<&[JobRecord]>,
    downtime: Option<&[DowntimeInterval]>,
    config: StudyConfig,
) -> StudyResults {
    let t1 = table1(&coalesced, config.observation_hours, config.node_count);
    let overall = overall_mtbe(&coalesced, config.observation_hours, config.node_count);
    let cat = category_mtbe(&coalesced, config.observation_hours, config.node_count);
    let lost = lost_gpu_hours(&coalesced);
    let prop = analyze(&coalesced, config.propagation_window);

    let dt = downtime.map(downtime_stats);
    let mttr = dt.as_ref().map(|d| d.mean_service_h).unwrap_or(0.3);
    let cf = counterfactual(&coalesced, config.observation_hours, config.node_count, mttr);
    let avail = match (&dt, overall.1) {
        (Some(d), Some(mtbe)) => Some(availability(mtbe, d.mean_service_h)),
        _ => None,
    };

    let ji = jobs.map(|j| analyze_jobs(j, &coalesced, config.job_impact));
    let t3 = jobs.map(table3);

    StudyResults {
        config,
        table1: t1,
        overall_mtbe_h: overall,
        category_mtbe: cat,
        lost_hours: lost,
        propagation: prop,
        counterfactual: cf,
        job_impact: ji,
        table3: t3,
        downtime: dt,
        availability: avail,
        coalesced,
    }
}

struct Fixture {
    out: gpu_resilience::faults::CampaignOutput,
    jobs: Vec<JobRecord>,
    cfg: StudyConfig,
}

fn fixture(seed: u64) -> Fixture {
    let out = Campaign::run(CampaignConfig::tiny(seed));
    let drains = DrainWindows::default();
    let jobs = Scheduler::new(JobLoadConfig::tiny(seed ^ 0x5eed))
        .run(&out.fleet, &drains)
        .jobs;
    let cfg = StudyConfig::ampere_study()
        .with_window(out.observation_hours(), out.fleet.node_count() as u32);
    Fixture { out, jobs, cfg }
}

fn assert_fold_matches_batch(results: &StudyResults, jobs: &[JobRecord], downtime: &[DowntimeInterval], label: &str) {
    let oracle = batch_oracle(
        results.coalesced.clone(),
        Some(jobs),
        Some(downtime),
        results.config,
    );
    assert_eq!(
        format!("{results:?}"),
        format!("{oracle:?}"),
        "folded engine diverges from the batch oracle on the {label} source"
    );
}

#[test]
fn folded_engine_matches_batch_on_text_source_at_1_and_8_workers() {
    let f = fixture(91);
    let builder = PipelineBuilder::new(f.cfg).jobs(&f.jobs).downtime(&f.out.downtime);
    for workers in [1usize, 8] {
        gpu_resilience::par::set_worker_override(Some(workers));
        let (results, _) = builder.run_text(&f.out.text_logs);
        gpu_resilience::par::set_worker_override(None);
        assert_fold_matches_batch(&results, &f.jobs, &f.out.downtime, "text");
    }
}

#[test]
fn folded_engine_matches_batch_on_generator_source_at_1_and_8_workers() {
    let f = fixture(92);
    let builder = PipelineBuilder::new(f.cfg).jobs(&f.jobs).downtime(&f.out.downtime);
    for workers in [1usize, 8] {
        gpu_resilience::par::set_worker_override(Some(workers));
        let mut source = GeneratorSource::from_campaign(&f.out);
        let (results, _) = builder.run_source(&mut source).expect("generator source");
        gpu_resilience::par::set_worker_override(None);
        assert_fold_matches_batch(&results, &f.jobs, &f.out.downtime, "generator");
    }
}

#[test]
fn folded_engine_matches_batch_on_record_store_source_at_1_and_8_workers() {
    let f = fixture(93);
    // Per-node record streams, as extraction (and therefore the store)
    // would persist them: grouped by node, time order preserved.
    let nodes: Vec<NodeId> = f.out.fleet.nodes().iter().map(|n| n.id).collect();
    let per_node: Vec<Vec<ErrorRecord>> = nodes
        .iter()
        .map(|&id| {
            f.out
                .records
                .iter()
                .filter(|r| r.gpu.node == id)
                .cloned()
                .collect()
        })
        .collect();
    let builder = PipelineBuilder::new(f.cfg).jobs(&f.jobs).downtime(&f.out.downtime);
    for workers in [1usize, 8] {
        gpu_resilience::par::set_worker_override(Some(workers));
        let mut source = InMemoryRecordSource::new(&nodes, &per_node);
        let results = builder.run_record_source(&mut source).expect("record source");
        gpu_resilience::par::set_worker_override(None);
        assert_fold_matches_batch(&results, &f.jobs, &f.out.downtime, "record-store");
    }
}

#[test]
fn folded_engine_matches_batch_without_jobs_or_downtime() {
    // The optional sections (job impact, downtime, availability) must
    // stay absent exactly as in the batch assembly.
    let f = fixture(94);
    let (results, _) = PipelineBuilder::new(f.cfg).run_text(&f.out.text_logs);
    let oracle = batch_oracle(results.coalesced.clone(), None, None, results.config);
    assert_eq!(format!("{results:?}"), format!("{oracle:?}"));
    assert!(results.job_impact.is_none());
    assert!(results.availability.is_none());
}
