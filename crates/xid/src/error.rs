//! The shared error type for the data-ingest path.
//!
//! Parsing and ingest errors used to be ad hoc — `RegexError` in
//! `dr-logscan`, `CsvError` in `dr-slurm`, bare `String`s in
//! `dr-report` — which forced every boundary crossing through
//! `map_err(|e| e.to_string())`. [`DataError`] is the common currency:
//! it lives in the taxonomy crate (the bottom of the dependency stack,
//! visible to everyone), implements [`std::error::Error`], and the
//! producing crates provide `From` conversions at their boundaries so
//! `?` composes across crates.

use std::fmt;

/// Any error produced while parsing or ingesting study data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataError {
    /// A pattern failed to compile (Stage I regex construction).
    Pattern {
        /// Byte offset of the problem inside the pattern.
        offset: usize,
        message: String,
    },
    /// A CSV artifact failed to parse.
    Csv {
        /// Which artifact (e.g. `"jobs"`, `"downtime"`).
        artifact: &'static str,
        /// 1-based line number of the offending row.
        line: usize,
        message: String,
    },
    /// A filesystem artifact could not be read or written.
    Io { path: String, message: String },
    /// A columnar record store is truncated, corrupt, or malformed.
    Store { path: String, message: String },
    /// A caller supplied a degenerate option value (e.g. `--chunk-bytes 0`).
    Usage {
        /// The offending option, as the user spelled it.
        option: String,
        /// What was wrong and what to do instead.
        message: String,
    },
    /// A `.scn` scenario failed to parse or compile (dr-scenario).
    Scenario {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        message: String,
    },
    /// A live-tailed log file could not be followed (stat, seek, or
    /// read failure while watching a growing/rotating file).
    Tail { path: String, message: String },
    /// A tail checkpoint file is unreadable or malformed.
    Checkpoint { path: String, message: String },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Pattern { offset, message } => {
                write!(f, "pattern error at offset {offset}: {message}")
            }
            DataError::Csv {
                artifact,
                line,
                message,
            } => write!(f, "{artifact} csv line {line}: {message}"),
            DataError::Io { path, message } => write!(f, "{path}: {message}"),
            DataError::Store { path, message } => {
                write!(f, "record store {path}: {message}")
            }
            DataError::Usage { option, message } => {
                write!(f, "invalid value for {option}: {message}")
            }
            DataError::Scenario { line, col, message } => {
                write!(f, "scenario line {line}:{col}: {message}")
            }
            DataError::Tail { path, message } => {
                write!(f, "tailing {path}: {message}")
            }
            DataError::Checkpoint { path, message } => {
                write!(f, "checkpoint {path}: {message}")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_artifact_and_location() {
        let e = DataError::Csv {
            artifact: "downtime",
            line: 7,
            message: "bad xid".to_string(),
        };
        assert_eq!(e.to_string(), "downtime csv line 7: bad xid");
        let e = DataError::Pattern {
            offset: 3,
            message: "unbalanced paren".to_string(),
        };
        assert!(e.to_string().contains("offset 3"));
    }

    #[test]
    fn store_and_usage_errors_name_their_subject() {
        let e = DataError::Store {
            path: "records.bin".to_string(),
            message: "footer checksum mismatch".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "record store records.bin: footer checksum mismatch"
        );
        let e = DataError::Usage {
            option: "--chunk-bytes".to_string(),
            message: "must be positive (omit the flag for the default)".to_string(),
        };
        assert!(e.to_string().contains("--chunk-bytes"));
        assert!(e.to_string().contains("must be positive"));
    }

    #[test]
    fn scenario_errors_carry_line_and_column() {
        let e = DataError::Scenario {
            line: 12,
            col: 5,
            message: "unknown key `duration_weeks`".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "scenario line 12:5: unknown key `duration_weeks`"
        );
    }

    #[test]
    fn tail_and_checkpoint_errors_name_their_file() {
        let e = DataError::Tail {
            path: "logs/node3.log".to_string(),
            message: "rotated mid-read".to_string(),
        };
        assert_eq!(e.to_string(), "tailing logs/node3.log: rotated mid-read");
        let e = DataError::Checkpoint {
            path: "watch.ckpt".to_string(),
            message: "line 2: expected `<ino> <offset> <path>`".to_string(),
        };
        assert!(e.to_string().starts_with("checkpoint watch.ckpt:"));
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&DataError::Io {
            path: "logs/".to_string(),
            message: "missing".to_string(),
        });
    }
}
