//! # dr-xid — NVIDIA XID error taxonomy and log record model
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: the set of XID error codes studied in the paper
//! (*Characterizing GPU Resilience and Impact on AI/HPC Systems*, Table 1),
//! their categories and recovery actions, GPU/node identity, wall-clock
//! timestamps, and the structured [`ErrorRecord`] that flows from the fault
//! simulator into the analysis pipeline.
//!
//! It also renders records as NVRM-style syslog text lines
//! (see [`syslog`]) so that Stage I of the pipeline — regex extraction from
//! raw text — is exercised exactly as it would be on production logs.

pub mod colenc;
pub mod error;
pub mod ids;
pub mod record;
pub mod syslog;
pub mod time;
pub mod xid;

pub use error::DataError;
pub use ids::{GpuId, NodeId, PciAddr};
pub use record::{ErrorDetail, ErrorRecord};
pub use time::{Duration, Timestamp};
pub use xid::{ErrorCategory, RecoveryAction, Xid};
