//! NVRM-style syslog line rendering.
//!
//! The fault campaign emits *text* log lines in the same shape the NVIDIA
//! kernel driver writes to the system log, e.g.:
//!
//! ```text
//! Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 79, pid=2731, GPU has fallen off the bus.
//! ```
//!
//! Stage I of the analysis pipeline (in `dr-logscan`) then re-extracts
//! structured [`ErrorRecord`]s from this text with regular expressions,
//! reproducing the paper's data-collection stage faithfully.

use crate::record::{ErrorDetail, ErrorRecord};
use crate::xid::Xid;

/// Render the message body for `xid` with the record's detail fields
/// interpolated where the real driver interpolates engine/link/bank/row
/// information.
pub fn message_body(xid: Xid, d: ErrorDetail) -> String {
    match xid {
        Xid::GraphicsEngineException => {
            format!("Graphics Exception: ESR 0x{:x}=0x1000e", d.qualifier)
        }
        Xid::MmuError => format!(
            "MMU Fault: ENGINE GRAPHICS GPCCLIENT_T1_{} faulted @ 0x7f_{:08x}",
            d.unit, d.qualifier
        ),
        Xid::ResetChannelVerifError => {
            format!("Reset Channel Verification Error on channel {}", d.unit)
        }
        Xid::DoubleBitEcc => format!(
            "An uncorrectable double bit error (DBE) has been detected on bank {} row 0x{:x}",
            d.unit, d.qualifier
        ),
        Xid::RowRemapEvent => format!(
            "Row Remapper: remapping row 0x{:x} in bank {}",
            d.qualifier, d.unit
        ),
        Xid::RowRemapFailure => format!(
            "Row Remapper: Failed to remap row 0x{:x} in bank {}",
            d.qualifier, d.unit
        ),
        Xid::NvlinkError => format!(
            "NVLink: fatal error detected on link {} (0x{:x}, 0x0)",
            d.unit, d.qualifier
        ),
        Xid::FallenOffBus => "GPU has fallen off the bus.".to_string(),
        Xid::ContainedEcc => format!("Contained: SM (0x{:x}). RST: No, D-RST: No", d.unit),
        Xid::UncontainedEcc => format!(
            "Uncontained: LTC TAG (0x{:x},0x{:x}). RST: Yes, D-RST: No",
            d.unit, d.qualifier
        ),
        Xid::GspRpcTimeout => format!(
            "Timeout after 6s of waiting for RPC response from GPU{} GSP! Expected function {}",
            d.unit, d.qualifier
        ),
        Xid::GspError => format!(
            "GSP task {} raised fatal error 0x{:x}, halting GSP core",
            d.unit, d.qualifier
        ),
        Xid::PmuSpiError => format!(
            "PMU communication error: SPI RPC read failure (addr 0x{:x})",
            d.qualifier
        ),
        Xid::Xid136 => format!("Event 136 reported on engine {}", d.unit),
    }
}

/// Render one complete syslog line for an error record.
///
/// `pid` is the process id the driver attributes the error to (0 renders
/// as `pid='<unknown>'`, which the real driver also does for errors that
/// are not attributable to a process).
pub fn format_line(rec: &ErrorRecord, pid: u32) -> String {
    let pid_part = if pid == 0 {
        "pid='<unknown>'".to_string()
    } else {
        format!("pid={pid}")
    };
    format!(
        "{} {} kernel: NVRM: Xid (PCI:{}): {}, {}, {}",
        rec.at.syslog(),
        rec.gpu.node.hostname(),
        rec.gpu.pci,
        rec.xid.code(),
        pid_part,
        message_body(rec.xid, rec.detail),
    )
}

/// Render a line of unrelated system noise (non-NVRM), used by the campaign
/// to make extraction non-trivial: real logs are overwhelmingly noise.
pub fn format_noise_line(at: crate::time::Timestamp, host: crate::ids::NodeId, kind: u8) -> String {
    let body = match kind % 5 {
        0 => "systemd[1]: Started Session 4221 of user jdoe.",
        1 => "kernel: perf: interrupt took too long (2501 > 2500), lowering kernel.perf_event_max_sample_rate",
        2 => "slurmd[2201]: launch task StepId=118392.0 request from UID:4242",
        3 => "kernel: EXT4-fs (nvme0n1p2): mounted filesystem with ordered data mode.",
        _ => "sshd[9911]: Accepted publickey for ops from 10.0.3.7 port 51212",
    };
    format!("{} {} {}", at.syslog(), host.hostname(), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GpuId, NodeId};
    use crate::time::{Duration, Timestamp};

    fn rec(xid: Xid, detail: ErrorDetail) -> ErrorRecord {
        ErrorRecord::new(
            Timestamp::EPOCH + Duration::from_secs(86_400 + 3 * 3600 + 240 + 5),
            GpuId::at_slot(NodeId(42), 5),
            xid,
            detail,
        )
    }

    #[test]
    fn fallen_off_bus_line_matches_driver_shape() {
        let line = format_line(&rec(Xid::FallenOffBus, ErrorDetail::NONE), 2731);
        assert_eq!(
            line,
            "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:90:00): 79, \
             pid=2731, GPU has fallen off the bus."
        );
    }

    #[test]
    fn unknown_pid_renders_like_driver() {
        let line = format_line(&rec(Xid::GspRpcTimeout, ErrorDetail::new(0, 76)), 0);
        assert!(line.contains("pid='<unknown>'"));
        assert!(line.contains("Expected function 76"));
    }

    #[test]
    fn detail_fields_appear_in_message() {
        let line = format_line(&rec(Xid::NvlinkError, ErrorDetail::new(3, 0x10000)), 100);
        assert!(line.contains("link 3"));
        assert!(line.contains("0x10000"));
        let line = format_line(&rec(Xid::RowRemapEvent, ErrorDetail::new(7, 0x1a2)), 100);
        assert!(line.contains("row 0x1a2 in bank 7"));
    }

    #[test]
    fn every_xid_renders_with_its_code() {
        for x in Xid::ALL {
            let line = format_line(&rec(x, ErrorDetail::new(1, 2)), 1);
            assert!(
                line.contains(&format!("): {},", x.code())),
                "line missing code: {line}"
            );
        }
    }

    #[test]
    fn noise_lines_are_not_nvrm() {
        for k in 0..5 {
            let line = format_noise_line(Timestamp::EPOCH, NodeId(1), k);
            assert!(!line.contains("NVRM"));
        }
    }
}
