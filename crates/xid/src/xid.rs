//! The XID error codes characterized by the study (Table 1), plus the two
//! job-induced software XIDs the paper explicitly excludes and the emerging
//! H100-only XID 136 (Section 6).

use core::fmt;

/// NVIDIA XID error codes selected by the study.
///
/// Discriminant values equal the numeric XID code reported by the NVRM
/// driver, so `Xid::GspRpcTimeout as u16 == 119`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u16)]
pub enum Xid {
    /// XID 13 — general GPU software error; job-induced, excluded from the
    /// resilience characterization but still present in raw logs.
    GraphicsEngineException = 13,
    /// XID 31 — GPU memory management unit (MMU) error.
    MmuError = 31,
    /// XID 43 — reset channel verification error; job-induced, excluded.
    ResetChannelVerifError = 43,
    /// XID 48 — double-bit ECC memory error (DBE).
    DoubleBitEcc = 48,
    /// XID 63 — row-remapping event (RRE): a faulty row was replaced by a
    /// spare (also reported as ECC page retirement on pre-Ampere parts).
    RowRemapEvent = 63,
    /// XID 64 — row-remapping failure (RRF): spares exhausted for the bank.
    RowRemapFailure = 64,
    /// XID 74 — NVLink interconnect error.
    NvlinkError = 74,
    /// XID 79 — GPU has fallen off the bus (unreachable over PCI-E/SXM).
    FallenOffBus = 79,
    /// XID 94 — contained uncorrectable ECC error (containment succeeded).
    ContainedEcc = 94,
    /// XID 95 — uncontained uncorrectable ECC error (containment failed).
    UncontainedEcc = 95,
    /// XID 119 — GSP (GPU System Processor) RPC timeout.
    GspRpcTimeout = 119,
    /// XID 120 — GSP fatal error (the GSP core itself raised an error,
    /// as opposed to the driver timing out waiting on it).
    GspError = 120,
    /// XID 122 — PMU SPI RPC read failure (communication with the PMU).
    PmuSpiError = 122,
    /// XID 136 — undocumented event observed on H100 GPUs (Section 6).
    Xid136 = 136,
}

impl Xid {
    /// All codes in ascending numeric order.
    pub const ALL: [Xid; 14] = [
        Xid::GraphicsEngineException,
        Xid::MmuError,
        Xid::ResetChannelVerifError,
        Xid::DoubleBitEcc,
        Xid::RowRemapEvent,
        Xid::RowRemapFailure,
        Xid::NvlinkError,
        Xid::FallenOffBus,
        Xid::ContainedEcc,
        Xid::UncontainedEcc,
        Xid::GspRpcTimeout,
        Xid::GspError,
        Xid::PmuSpiError,
        Xid::Xid136,
    ];

    /// The codes characterized in Table 1 (Ampere study), in the table's
    /// row order.
    pub const TABLE1: [Xid; 10] = [
        Xid::MmuError,
        Xid::DoubleBitEcc,
        Xid::RowRemapEvent,
        Xid::RowRemapFailure,
        Xid::NvlinkError,
        Xid::FallenOffBus,
        Xid::ContainedEcc,
        Xid::UncontainedEcc,
        Xid::GspRpcTimeout,
        Xid::PmuSpiError,
    ];

    /// Numeric XID code.
    #[inline]
    pub const fn code(self) -> u16 {
        self as u16
    }

    /// Parse a numeric code back into an [`Xid`].
    pub fn from_code(code: u16) -> Option<Xid> {
        Xid::ALL.iter().copied().find(|x| x.code() == code)
    }

    /// Error category per Section 2.2.
    pub const fn category(self) -> ErrorCategory {
        match self {
            Xid::GraphicsEngineException | Xid::ResetChannelVerifError => ErrorCategory::Software,
            Xid::MmuError
            | Xid::FallenOffBus
            | Xid::GspRpcTimeout
            | Xid::GspError
            | Xid::PmuSpiError => ErrorCategory::Hardware,
            Xid::NvlinkError => ErrorCategory::Interconnect,
            Xid::DoubleBitEcc
            | Xid::RowRemapEvent
            | Xid::RowRemapFailure
            | Xid::ContainedEcc
            | Xid::UncontainedEcc => ErrorCategory::Memory,
            // Cause unknown per the paper; treated as hardware for grouping.
            Xid::Xid136 => ErrorCategory::Hardware,
        }
    }

    /// Recovery action per Table 1's "Recovery Action" column.
    pub const fn recovery(self) -> RecoveryAction {
        match self {
            Xid::GraphicsEngineException | Xid::ResetChannelVerifError => RecoveryAction::None,
            Xid::MmuError => RecoveryAction::None,
            Xid::DoubleBitEcc => RecoveryAction::GpuResetIfRemapFailed,
            Xid::RowRemapEvent => RecoveryAction::GpuReset,
            Xid::RowRemapFailure => RecoveryAction::GpuReset,
            Xid::NvlinkError
            | Xid::FallenOffBus
            | Xid::UncontainedEcc
            | Xid::GspRpcTimeout
            | Xid::GspError => RecoveryAction::GpuResetOrSre,
            Xid::ContainedEcc | Xid::PmuSpiError | Xid::Xid136 => RecoveryAction::Unspecified,
        }
    }

    /// Whether the study includes this code in the resilience
    /// characterization (Section 2.2 excludes the job-induced XIDs 13/43).
    pub const fn is_characterized(self) -> bool {
        !matches!(
            self,
            Xid::GraphicsEngineException | Xid::ResetChannelVerifError
        )
    }

    /// Short event abbreviation as used in Table 1.
    pub const fn abbrev(self) -> &'static str {
        match self {
            Xid::GraphicsEngineException => "SW Err.",
            Xid::MmuError => "MMU Error",
            Xid::ResetChannelVerifError => "Reset Chan.",
            Xid::DoubleBitEcc => "DBE",
            Xid::RowRemapEvent => "RRE",
            Xid::RowRemapFailure => "RRF",
            Xid::NvlinkError => "NVLink Error",
            Xid::FallenOffBus => "Fallen Off the Bus",
            Xid::ContainedEcc => "Contained Mem. Err.",
            Xid::UncontainedEcc => "Uncontained Mem. Err.",
            Xid::GspRpcTimeout => "GSP Error",
            Xid::GspError => "GSP Fatal Error",
            Xid::PmuSpiError => "PMU SPI Error",
            Xid::Xid136 => "XID 136",
        }
    }

    /// The human-readable message body the NVRM driver logs for this code.
    /// Used when rendering synthetic syslog lines.
    pub const fn driver_message(self) -> &'static str {
        match self {
            Xid::GraphicsEngineException => "Graphics Exception: ESR 0x505648=0x1000e",
            Xid::MmuError => "MMU Fault: ENGINE GRAPHICS GPCCLIENT_T1_0 faulted",
            Xid::ResetChannelVerifError => "Reset Channel Verification Error",
            Xid::DoubleBitEcc => "An uncorrectable double bit error (DBE) has been detected",
            Xid::RowRemapEvent => "Row Remapper: remapping row in bank",
            Xid::RowRemapFailure => "Row Remapper: Failed to remap row in bank",
            Xid::NvlinkError => "NVLink: fatal error detected on link",
            Xid::FallenOffBus => "GPU has fallen off the bus.",
            Xid::ContainedEcc => "Contained: SM (0x1). RST: No, D-RST: No",
            Xid::UncontainedEcc => "Uncontained: LTC TAG (0x2,0x0). RST: Yes, D-RST: No",
            Xid::GspRpcTimeout => {
                "Timeout after 6s of waiting for RPC response from GPU0 GSP! Expected function 76"
            }
            Xid::GspError => "GSP task fatal error, halting GSP core",
            Xid::PmuSpiError => "PMU communication error: SPI RPC read failure",
            Xid::Xid136 => "Event 136 reported",
        }
    }
}

impl fmt::Display for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XID {} ({})", self.code(), self.abbrev())
    }
}

/// Error categories used throughout Section 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorCategory {
    /// GPU peripheral/processing hardware: MMU, GSP, PMU/SPI, bus.
    Hardware,
    /// GPU-to-GPU NVLink fabric.
    Interconnect,
    /// GPU HBM/ECC memory subsystem.
    Memory,
    /// Job-induced software errors (excluded from characterization).
    Software,
}

impl fmt::Display for ErrorCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorCategory::Hardware => "Hardware",
            ErrorCategory::Interconnect => "Interconnect",
            ErrorCategory::Memory => "Memory",
            ErrorCategory::Software => "Software",
        })
    }
}

/// Operator action required to clear an error (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryAction {
    /// No dedicated recovery; error may clear on its own or with the job.
    None,
    /// A GPU reset is needed.
    GpuReset,
    /// GPU reset needed only if the row-remapping flow failed.
    GpuResetIfRemapFailed,
    /// GPU reset or site-reliability-engineer intervention required.
    GpuResetOrSre,
    /// The vendor manual does not specify a recovery action.
    Unspecified,
}

impl RecoveryAction {
    /// Whether clearing the error requires operator involvement in the
    /// worst case (used by the downtime model).
    pub const fn needs_operator(self) -> bool {
        matches!(self, RecoveryAction::GpuResetOrSre)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_nvidia_numbers() {
        assert_eq!(Xid::MmuError.code(), 31);
        assert_eq!(Xid::DoubleBitEcc.code(), 48);
        assert_eq!(Xid::RowRemapEvent.code(), 63);
        assert_eq!(Xid::RowRemapFailure.code(), 64);
        assert_eq!(Xid::NvlinkError.code(), 74);
        assert_eq!(Xid::FallenOffBus.code(), 79);
        assert_eq!(Xid::ContainedEcc.code(), 94);
        assert_eq!(Xid::UncontainedEcc.code(), 95);
        assert_eq!(Xid::GspRpcTimeout.code(), 119);
        assert_eq!(Xid::GspError.code(), 120);
        assert_eq!(Xid::PmuSpiError.code(), 122);
    }

    #[test]
    fn from_code_round_trips() {
        for x in Xid::ALL {
            assert_eq!(Xid::from_code(x.code()), Some(x));
        }
        assert_eq!(Xid::from_code(7), None);
    }

    #[test]
    fn categories_match_section_2_2() {
        use ErrorCategory::*;
        assert_eq!(Xid::MmuError.category(), Hardware);
        assert_eq!(Xid::GspRpcTimeout.category(), Hardware);
        assert_eq!(Xid::GspError.category(), Hardware);
        assert_eq!(Xid::PmuSpiError.category(), Hardware);
        assert_eq!(Xid::FallenOffBus.category(), Hardware);
        assert_eq!(Xid::NvlinkError.category(), Interconnect);
        assert_eq!(Xid::DoubleBitEcc.category(), Memory);
        assert_eq!(Xid::UncontainedEcc.category(), Memory);
        assert_eq!(Xid::GraphicsEngineException.category(), Software);
    }

    #[test]
    fn job_induced_xids_are_excluded() {
        assert!(!Xid::GraphicsEngineException.is_characterized());
        assert!(!Xid::ResetChannelVerifError.is_characterized());
        assert!(Xid::TABLE1.iter().all(|x| x.is_characterized()));
    }

    #[test]
    fn table1_has_ten_rows_in_order() {
        assert_eq!(Xid::TABLE1.len(), 10);
        assert_eq!(Xid::TABLE1[0], Xid::MmuError);
        assert_eq!(Xid::TABLE1[9], Xid::PmuSpiError);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Xid::GspRpcTimeout.to_string(), "XID 119 (GSP Error)");
    }
}
