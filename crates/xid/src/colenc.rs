//! Columnar encoding primitives for the binary `ErrorRecord` store.
//!
//! The store file format itself (header, blocks, footer index) lives in
//! `resilience_core::store`; this module owns the *byte-level codec* so
//! encode/decode sit next to the taxonomy they serialize:
//!
//! - LEB128 varints and zigzag transforms for delta-encoded timestamps,
//! - an FNV-1a 64-bit checksum (pure arithmetic — no lookup tables, so
//!   the checksum path stays trivially panic-free),
//! - fixed 8-byte [`GpuId`] dictionary entries,
//! - [`RecordDict`] interning for `GpuId`/`Xid` dictionary codes, and
//! - [`encode_block`]/[`decode_block`] for the struct-of-arrays block
//!   payload: varint count, then a timestamp column (first value
//!   absolute, the rest zigzag-encoded deltas so non-monotonic streams
//!   round-trip exactly), then gpu-index, xid-index, unit, and
//!   qualifier columns.
//!
//! Decoding is total: every malformed input maps to
//! [`DataError::Store`] naming the file, never a panic.

use std::collections::BTreeMap;

use crate::error::DataError;
use crate::ids::{GpuId, NodeId, PciAddr};
use crate::record::{ErrorDetail, ErrorRecord};
use crate::time::Timestamp;
use crate::xid::Xid;

/// Size of one fixed-width `GpuId` dictionary entry.
pub const GPU_ENTRY_BYTES: usize = 8;

/// Append `v` as an LEB128 varint (1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Read one LEB128 varint at `*pos`, advancing it. `None` on truncation
/// or a value that does not fit in 64 bits.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut out: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let b = *buf.get(*pos)?;
        *pos = pos.checked_add(1)?;
        if shift >= 64 {
            return None;
        }
        let low = (b & 0x7f) as u64;
        if shift == 63 && low > 1 {
            return None; // would overflow the top bit
        }
        out |= low << shift;
        if b & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
    }
}

/// Zigzag-map a signed delta onto an unsigned varint-friendly value
/// (small magnitudes of either sign encode small).
#[inline]
pub const fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

/// Inverse of [`zigzag`].
#[inline]
pub const fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// FNV-1a 64-bit hash, used as the block/footer checksum.
///
/// Chosen over CRC-32 deliberately: it needs no lookup table, so the
/// checksum stays free of array indexing on the panic-checked read path.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append a fixed 8-byte `GpuId` entry: node u32 LE, domain u16 LE,
/// bus, device.
pub fn encode_gpu(g: GpuId, out: &mut Vec<u8>) {
    out.extend_from_slice(&g.node.0.to_le_bytes());
    out.extend_from_slice(&g.pci.domain.to_le_bytes());
    out.push(g.pci.bus);
    out.push(g.pci.device);
}

/// Decode one 8-byte `GpuId` entry; `None` if `bytes` is short.
pub fn decode_gpu(bytes: &[u8]) -> Option<GpuId> {
    let node = u32::from_le_bytes([*bytes.first()?, *bytes.get(1)?, *bytes.get(2)?, *bytes.get(3)?]);
    let domain = u16::from_le_bytes([*bytes.get(4)?, *bytes.get(5)?]);
    let bus = *bytes.get(6)?;
    let device = *bytes.get(7)?;
    Some(GpuId::new(NodeId(node), PciAddr::new(domain, bus, device)))
}

/// Interning dictionaries for the values a block column references by
/// index. Shared across every block of a store file; the complete
/// tables are serialized once into the footer.
#[derive(Debug, Default, Clone)]
pub struct RecordDict {
    gpus: Vec<GpuId>,
    gpu_index: BTreeMap<GpuId, u64>,
    xids: Vec<Xid>,
    xid_index: BTreeMap<u16, u64>,
}

impl RecordDict {
    pub fn new() -> Self {
        RecordDict::default()
    }

    /// Dictionary code for `gpu`, interning it on first sight.
    pub fn gpu_code(&mut self, gpu: GpuId) -> u64 {
        if let Some(&i) = self.gpu_index.get(&gpu) {
            return i;
        }
        let i = self.gpus.len() as u64;
        self.gpus.push(gpu);
        self.gpu_index.insert(gpu, i);
        i
    }

    /// Dictionary code for `xid`, interning it on first sight.
    pub fn xid_code(&mut self, xid: Xid) -> u64 {
        if let Some(&i) = self.xid_index.get(&xid.code()) {
            return i;
        }
        let i = self.xids.len() as u64;
        self.xids.push(xid);
        self.xid_index.insert(xid.code(), i);
        i
    }

    /// The interned `GpuId` table, in code order.
    pub fn gpus(&self) -> &[GpuId] {
        &self.gpus
    }

    /// The interned `Xid` table, in code order.
    pub fn xids(&self) -> &[Xid] {
        &self.xids
    }
}

fn store_err(path: &str, message: impl Into<String>) -> DataError {
    DataError::Store {
        path: path.to_string(),
        message: message.into(),
    }
}

/// Encode one block of records (all from one node, in stream order) as
/// a struct-of-arrays payload, interning dictionary entries in `dict`.
pub fn encode_block(records: &[ErrorRecord], dict: &mut RecordDict) -> Vec<u8> {
    // count + worst-case 10-byte varints for five columns.
    let mut out = Vec::with_capacity(8 + records.len() * 16);
    write_varint(&mut out, records.len() as u64);

    // Timestamp column: first value absolute, then zigzag deltas.
    // Wrapping arithmetic over u64-as-i64 round-trips *any* sequence,
    // including the rare non-monotonic batch the merge fallback handles.
    let mut prev: u64 = 0;
    for (i, r) in records.iter().enumerate() {
        let us = r.at.as_micros();
        if i == 0 {
            write_varint(&mut out, us);
        } else {
            write_varint(&mut out, zigzag(us.wrapping_sub(prev) as i64));
        }
        prev = us;
    }
    for r in records {
        write_varint(&mut out, dict.gpu_code(r.gpu));
    }
    for r in records {
        write_varint(&mut out, dict.xid_code(r.xid));
    }
    for r in records {
        write_varint(&mut out, r.detail.unit as u64);
    }
    for r in records {
        write_varint(&mut out, r.detail.qualifier as u64);
    }
    out
}

/// Decode a block payload back into records, resolving dictionary
/// codes against the footer tables. `path` names the store file for
/// error context. Every malformed payload — truncated column, trailing
/// garbage, out-of-range code — is a typed [`DataError::Store`].
pub fn decode_block(
    payload: &[u8],
    gpus: &[GpuId],
    xids: &[Xid],
    path: &str,
) -> Result<Vec<ErrorRecord>, DataError> {
    let mut pos = 0usize;
    let mut next = |col: &str| -> Result<u64, DataError> {
        read_varint(payload, &mut pos)
            .ok_or_else(|| store_err(path, format!("truncated block ({col} column)")))
    };

    let count = next("count")?;
    let count = usize::try_from(count)
        .ok()
        .filter(|&c| c <= payload.len())
        .ok_or_else(|| store_err(path, format!("implausible block record count {count}")))?;

    let mut times = Vec::with_capacity(count);
    let mut prev: u64 = 0;
    for i in 0..count {
        let us = if i == 0 {
            next("timestamp")?
        } else {
            prev.wrapping_add(unzigzag(next("timestamp")?) as u64)
        };
        prev = us;
        times.push(Timestamp::from_micros(us));
    }

    let mut records = Vec::with_capacity(count);
    for &at in &times {
        let code = next("gpu")?;
        let gpu = usize::try_from(code)
            .ok()
            .and_then(|c| gpus.get(c))
            .copied()
            .ok_or_else(|| store_err(path, format!("gpu dictionary code {code} out of range")))?;
        records.push(ErrorRecord::new(at, gpu, Xid::DoubleBitEcc, ErrorDetail::NONE));
    }
    for r in records.iter_mut() {
        let code = next("xid")?;
        r.xid = usize::try_from(code)
            .ok()
            .and_then(|c| xids.get(c))
            .copied()
            .ok_or_else(|| store_err(path, format!("xid dictionary code {code} out of range")))?;
    }
    for r in records.iter_mut() {
        let unit = next("unit")?;
        r.detail.unit = u16::try_from(unit)
            .map_err(|_| store_err(path, format!("unit value {unit} exceeds u16")))?;
    }
    for r in records.iter_mut() {
        let q = next("qualifier")?;
        r.detail.qualifier = u32::try_from(q)
            .map_err(|_| store_err(path, format!("qualifier value {q} exceeds u32")))?;
    }

    if pos != payload.len() {
        return Err(store_err(
            path,
            format!("{} trailing bytes after block payload", payload.len() - pos),
        ));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(us: u64, node: u32, slot: usize, xid: Xid, unit: u16, q: u32) -> ErrorRecord {
        ErrorRecord::new(
            Timestamp::from_micros(us),
            GpuId::at_slot(NodeId(node), slot),
            xid,
            ErrorDetail::new(unit, q),
        )
    }

    #[test]
    fn varint_round_trips_boundary_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None); // continuation, no next byte
        let mut pos = 0;
        assert_eq!(read_varint(&[], &mut pos), None);
        // 11 continuation bytes: more than 64 bits of payload.
        let mut pos = 0;
        assert_eq!(read_varint(&[0xff; 11], &mut pos), None);
        // 10th byte carrying more than the single remaining bit.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips_signed_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes of either sign must encode small.
        assert!(zigzag(-3) < 8);
        assert!(zigzag(3) < 8);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn gpu_entry_round_trips() {
        let g = GpuId::new(NodeId(7001), PciAddr::new(0xabcd, 0xb7, 0x03));
        let mut buf = Vec::new();
        encode_gpu(g, &mut buf);
        assert_eq!(buf.len(), GPU_ENTRY_BYTES);
        assert_eq!(decode_gpu(&buf), Some(g));
        assert_eq!(decode_gpu(&buf[..7]), None);
    }

    #[test]
    fn block_round_trips_including_non_monotonic_order() {
        let records = vec![
            rec(5_000_000, 1, 0, Xid::DoubleBitEcc, 3, 9),
            rec(5_000_250, 1, 1, Xid::NvlinkError, 2, 0),
            // Out-of-order on purpose: the store must preserve stream
            // order exactly, not silently sort.
            rec(4_999_000, 1, 0, Xid::FallenOffBus, 0, 0),
            rec(4_999_000, 1, 0, Xid::FallenOffBus, 0, 0),
        ];
        let mut dict = RecordDict::new();
        let payload = encode_block(&records, &mut dict);
        let back = decode_block(&payload, dict.gpus(), dict.xids(), "t").expect("decode");
        assert_eq!(back, records);
    }

    #[test]
    fn decode_rejects_truncated_and_trailing_payloads() {
        let records = vec![rec(1, 0, 0, Xid::RowRemapEvent, 1, 2)];
        let mut dict = RecordDict::new();
        let payload = encode_block(&records, &mut dict);

        for cut in 0..payload.len() {
            let err = decode_block(&payload[..cut], dict.gpus(), dict.xids(), "t")
                .expect_err("truncated payload must fail");
            assert!(matches!(err, DataError::Store { .. }), "cut={cut}: {err}");
        }
        let mut trailing = payload.clone();
        trailing.push(0);
        let err = decode_block(&trailing, dict.gpus(), dict.xids(), "t").expect_err("trailing");
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn decode_rejects_out_of_range_dictionary_codes() {
        let records = vec![rec(1, 0, 0, Xid::RowRemapEvent, 1, 2)];
        let mut dict = RecordDict::new();
        let payload = encode_block(&records, &mut dict);
        // Decode against empty dictionaries: gpu code 0 is now dangling.
        let err = decode_block(&payload, &[], dict.xids(), "t").expect_err("bad gpu code");
        assert!(err.to_string().contains("gpu dictionary"), "{err}");
        let err = decode_block(&payload, dict.gpus(), &[], "t").expect_err("bad xid code");
        assert!(err.to_string().contains("xid dictionary"), "{err}");
    }

    #[test]
    fn empty_block_is_one_byte_and_round_trips() {
        let mut dict = RecordDict::new();
        let payload = encode_block(&[], &mut dict);
        assert_eq!(payload, vec![0]);
        let back = decode_block(&payload, &[], &[], "t").expect("decode");
        assert!(back.is_empty());
    }

    proptest! {
        /// Satellite: encode→decode is the identity on arbitrary record
        /// batches — any timestamps (any order), any slot/node mix, any
        /// detail values, any Xid drawn from the taxonomy.
        #[test]
        fn arbitrary_batches_round_trip(
            us in prop::collection::vec(0u64..1_u64 << 62, 0..200),
            nodes in prop::collection::vec(0u32..5, 0..200),
            slots in prop::collection::vec(0usize..8, 0..200),
            xid_idx in prop::collection::vec(0usize..Xid::ALL.len(), 0..200),
            units in prop::collection::vec(0u16..u16::MAX, 0..200),
            quals in prop::collection::vec(0u32..u32::MAX, 0..200),
        ) {
            let n = us.len()
                .min(nodes.len())
                .min(slots.len())
                .min(xid_idx.len())
                .min(units.len())
                .min(quals.len());
            let records: Vec<ErrorRecord> = (0..n)
                .map(|i| rec(us[i], nodes[i], slots[i], Xid::ALL[xid_idx[i]], units[i], quals[i]))
                .collect();
            let mut dict = RecordDict::new();
            let payload = encode_block(&records, &mut dict);
            let back = decode_block(&payload, dict.gpus(), dict.xids(), "prop")
                .expect("round trip");
            prop_assert_eq!(back, records);
        }
    }
}
