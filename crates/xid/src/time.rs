//! Wall-clock timestamps for log records.
//!
//! The study spans 855 days (January 2022 – May 2024). Timestamps are
//! microseconds since the campaign epoch, fixed at **2022-01-01 00:00:00
//! UTC**, which keeps arithmetic exact and rendering (syslog / ISO-8601)
//! deterministic without pulling in a date-time dependency.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Seconds in one hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds in one day.
pub const SECS_PER_DAY: u64 = 86_400;

/// Unix seconds of the campaign epoch, 2022-01-01T00:00:00Z.
pub const EPOCH_UNIX_SECS: i64 = 1_640_995_200;

/// A span of time, microsecond resolution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    pub const ZERO: Duration = Duration(0);

    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * MICROS_PER_SEC)
    }
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        Duration::from_secs(m * 60)
    }
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        Duration::from_secs(h * SECS_PER_HOUR)
    }
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        Duration::from_secs(d * SECS_PER_DAY)
    }
    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * MICROS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / SECS_PER_HOUR as f64
    }
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, rhs: Duration) -> Duration {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A wall-clock instant: microseconds since the campaign epoch
/// (2022-01-01T00:00:00Z).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The campaign epoch itself.
    pub const EPOCH: Timestamp = Timestamp(0);

    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * MICROS_PER_SEC)
    }
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`; panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0 - earlier.0)
    }

    /// Time elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn saturating_since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Subtract a duration, saturating at the epoch.
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.as_micros()))
    }

    /// Unix seconds of this instant.
    #[inline]
    pub fn unix_secs(self) -> i64 {
        EPOCH_UNIX_SECS + (self.0 / MICROS_PER_SEC) as i64
    }

    /// Build a timestamp from a UTC civil date-time.
    ///
    /// Returns `None` for dates before the campaign epoch (2022-01-01).
    pub fn from_civil(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Option<Timestamp> {
        let days = days_from_civil(year, month, day) - EPOCH_UNIX_SECS / SECS_PER_DAY as i64;
        if days < 0 {
            return None;
        }
        let secs = days as u64 * SECS_PER_DAY
            + hour as u64 * SECS_PER_HOUR
            + minute as u64 * 60
            + second as u64;
        Some(Timestamp::from_secs(secs))
    }

    /// Broken-down UTC civil time.
    pub fn civil(self) -> CivilTime {
        let total_secs = self.0 / MICROS_PER_SEC;
        let days = (total_secs / SECS_PER_DAY) as i64;
        let secs_of_day = total_secs % SECS_PER_DAY;
        // Days since Unix epoch = days since our epoch + days(1970..2022).
        let (y, m, d) = civil_from_days(days + EPOCH_UNIX_SECS / SECS_PER_DAY as i64);
        CivilTime {
            year: y,
            month: m,
            day: d,
            hour: (secs_of_day / SECS_PER_HOUR) as u8,
            minute: ((secs_of_day % SECS_PER_HOUR) / 60) as u8,
            second: (secs_of_day % 60) as u8,
            micros: (self.0 % MICROS_PER_SEC) as u32,
        }
    }

    /// Render in classic syslog style: `Jan  2 03:04:05`.
    pub fn syslog(self) -> String {
        let c = self.civil();
        // `civil` yields month in 1..=12; "???" is a dead fallback.
        let month = MONTH_ABBREV
            .get((c.month as usize).saturating_sub(1))
            .copied()
            .unwrap_or("???");
        format!(
            "{month} {:>2} {:02}:{:02}:{:02}",
            c.day, c.hour, c.minute, c.second
        )
    }

    /// Render as ISO-8601 with microseconds: `2022-01-02T03:04:05.000006Z`.
    pub fn iso8601(self) -> String {
        let c = self.civil();
        format!(
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}.{:06}Z",
            c.year, c.month, c.day, c.hour, c.minute, c.second, c.micros
        )
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.iso8601())
    }
}

/// Broken-down UTC time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CivilTime {
    pub year: i32,
    pub month: u8,
    pub day: u8,
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
    pub micros: u32,
}

const MONTH_ABBREV: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Month abbreviation lookup for syslog parsing (`"Jan"` → 1).
pub fn month_from_abbrev(abbrev: &str) -> Option<u8> {
    MONTH_ABBREV
        .iter()
        .position(|&m| m == abbrev)
        .map(|i| (i + 1) as u8)
}

/// Convert a (year, month, day) civil date to days since the Unix epoch
/// (Howard Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = m as i64;
    let d = d as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Convert days since the Unix epoch to (year, month, day).
///
/// Howard Hinnant's `civil_from_days` algorithm, exact for the proleptic
/// Gregorian calendar.
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    ((y + if m <= 2 { 1 } else { 0 }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_jan_1_2022() {
        let c = Timestamp::EPOCH.civil();
        assert_eq!((c.year, c.month, c.day), (2022, 1, 1));
        assert_eq!((c.hour, c.minute, c.second), (0, 0, 0));
    }

    #[test]
    fn civil_round_trips_through_known_dates() {
        // 2022-03-01 (after a non-leap February).
        let t = Timestamp::from_secs(59 * SECS_PER_DAY);
        let c = t.civil();
        assert_eq!((c.year, c.month, c.day), (2022, 3, 1));
        // 2024-02-29 (leap day), day index 789 from 2022-01-01.
        let t = Timestamp::from_secs(789 * SECS_PER_DAY);
        let c = t.civil();
        assert_eq!((c.year, c.month, c.day), (2024, 2, 29));
    }

    #[test]
    fn campaign_end_is_may_2024() {
        // 855 days after 2022-01-01 lands in May 2024 as the paper states.
        let t = Timestamp::from_secs(854 * SECS_PER_DAY);
        let c = t.civil();
        assert_eq!((c.year, c.month), (2024, 5));
    }

    #[test]
    fn syslog_format_pads_day() {
        let t = Timestamp::from_secs(SECS_PER_DAY + 3 * SECS_PER_HOUR + 4 * 60 + 5);
        assert_eq!(t.syslog(), "Jan  2 03:04:05");
    }

    #[test]
    fn iso8601_includes_micros() {
        let t = Timestamp::from_micros(6) + Duration::from_days(1);
        assert_eq!(t.iso8601(), "2022-01-02T00:00:00.000006Z");
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_secs(90);
        assert_eq!(d.as_secs_f64(), 90.0);
        assert_eq!((d + Duration::from_secs(10)).as_secs_f64(), 100.0);
        assert_eq!(d.saturating_sub(Duration::from_hours(1)), Duration::ZERO);
        assert_eq!(Duration::from_hours(2).as_hours_f64(), 2.0);
    }

    #[test]
    fn timestamp_ordering_and_since() {
        let a = Timestamp::from_secs(10);
        let b = Timestamp::from_secs(25);
        assert!(a < b);
        assert_eq!(b.since(a).as_secs_f64(), 15.0);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn unix_secs_matches_known_value() {
        assert_eq!(Timestamp::EPOCH.unix_secs(), 1_640_995_200);
    }

    #[test]
    fn from_civil_round_trips() {
        for &(y, mo, d, h, mi, s) in &[
            (2022, 1, 1, 0, 0, 0),
            (2022, 12, 31, 23, 59, 59),
            (2024, 2, 29, 12, 30, 15),
            (2024, 5, 4, 6, 7, 8),
        ] {
            let t = Timestamp::from_civil(y, mo, d, h, mi, s).unwrap();
            let c = t.civil();
            assert_eq!(
                (c.year, c.month, c.day, c.hour, c.minute, c.second),
                (y, mo, d, h, mi, s)
            );
        }
    }

    #[test]
    fn from_civil_rejects_pre_epoch() {
        assert_eq!(Timestamp::from_civil(2021, 12, 31, 23, 0, 0), None);
    }

    #[test]
    fn month_abbrev_lookup() {
        assert_eq!(month_from_abbrev("Jan"), Some(1));
        assert_eq!(month_from_abbrev("Dec"), Some(12));
        assert_eq!(month_from_abbrev("Foo"), None);
    }
}
