//! Structured error records.
//!
//! An [`ErrorRecord`] is the unit the analysis pipeline operates on after
//! Stage I extraction: one logged XID occurrence with its timestamp, the
//! emitting GPU, and enough message detail to decide whether two log lines
//! are "identical" for coalescing purposes (Algorithm 1 coalesces entries
//! with identical message text from the same GPU).

use crate::ids::GpuId;
use crate::time::Timestamp;
use crate::xid::Xid;

/// Message-level detail that distinguishes otherwise-identical XID lines.
///
/// Algorithm 1 treats two log lines as the same error only if the message
/// text matches; the detail fields below are exactly what varies inside the
/// message body of each XID type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ErrorDetail {
    /// NVLink link index (XID 74), DRAM bank (XID 48/63/64/94/95), MMU
    /// engine id (XID 31), or GSP RPC function number (XID 119).
    pub unit: u16,
    /// Secondary qualifier: DRAM row, MMU fault address page, etc.
    pub qualifier: u32,
}

impl ErrorDetail {
    pub const NONE: ErrorDetail = ErrorDetail {
        unit: 0,
        qualifier: 0,
    };

    pub const fn new(unit: u16, qualifier: u32) -> Self {
        ErrorDetail { unit, qualifier }
    }
}

/// One logged XID occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ErrorRecord {
    /// Wall-clock time the driver logged the line.
    pub at: Timestamp,
    /// The GPU that reported the error (node + PCI address).
    pub gpu: GpuId,
    /// The XID code.
    pub xid: Xid,
    /// Message-body detail used for identity comparison.
    pub detail: ErrorDetail,
}

impl ErrorRecord {
    pub const fn new(at: Timestamp, gpu: GpuId, xid: Xid, detail: ErrorDetail) -> Self {
        ErrorRecord {
            at,
            gpu,
            xid,
            detail,
        }
    }

    /// Identity key for coalescing: same GPU + same XID + same message
    /// detail. Timestamps are deliberately excluded.
    #[inline]
    pub fn identity(&self) -> (GpuId, Xid, ErrorDetail) {
        (self.gpu, self.xid, self.detail)
    }

    /// Whether `other` is "the same error" in Algorithm 1's sense.
    #[inline]
    pub fn same_error(&self, other: &ErrorRecord) -> bool {
        self.identity() == other.identity()
    }
}

/// Sort records by (time, gpu, xid) — the canonical log order used by the
/// pipeline. Stable across runs because all fields are totally ordered.
pub fn sort_records(records: &mut [ErrorRecord]) {
    records.sort_by(|a, b| {
        a.at.cmp(&b.at)
            .then_with(|| a.gpu.cmp(&b.gpu))
            .then_with(|| a.xid.cmp(&b.xid))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::time::Duration;

    fn rec(secs: u64, node: u32, xid: Xid) -> ErrorRecord {
        ErrorRecord::new(
            Timestamp::EPOCH + Duration::from_secs(secs),
            GpuId::at_slot(NodeId(node), 0),
            xid,
            ErrorDetail::NONE,
        )
    }

    #[test]
    fn identity_ignores_time() {
        let a = rec(1, 1, Xid::GspRpcTimeout);
        let b = rec(500, 1, Xid::GspRpcTimeout);
        assert!(a.same_error(&b));
    }

    #[test]
    fn identity_distinguishes_gpu_xid_and_detail() {
        let a = rec(1, 1, Xid::GspRpcTimeout);
        assert!(!a.same_error(&rec(1, 2, Xid::GspRpcTimeout)));
        assert!(!a.same_error(&rec(1, 1, Xid::MmuError)));
        let mut c = a;
        c.detail = ErrorDetail::new(3, 0);
        assert!(!a.same_error(&c));
    }

    #[test]
    fn sort_is_time_major() {
        let mut v = vec![rec(5, 1, Xid::MmuError), rec(1, 9, Xid::NvlinkError)];
        sort_records(&mut v);
        assert_eq!(v[0].xid, Xid::NvlinkError);
        assert_eq!(v[1].xid, Xid::MmuError);
    }
}
