//! Node and GPU identity.
//!
//! The paper identifies GPU devices by their **node ID and PCI Express bus
//! address** (Section 3.2, footnote 6); we model both.

use core::fmt;
use core::str::FromStr;

/// Compute-node identifier within the cluster.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Hostname-like rendering used in syslog lines, e.g. `gpub042`.
    pub fn hostname(self) -> String {
        format!("gpub{:03}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hostname())
    }
}

/// PCI Express address of a GPU: `domain:bus:device` (function is always 0
/// for the GPUs modeled here), rendered like `0000:C1:00`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct PciAddr {
    pub domain: u16,
    pub bus: u8,
    pub device: u8,
}

impl PciAddr {
    pub const fn new(domain: u16, bus: u8, device: u8) -> Self {
        PciAddr {
            domain,
            bus,
            device,
        }
    }

    /// Conventional PCI bus numbers for GPU slot `idx` on a multi-GPU node.
    ///
    /// Mirrors the bus layout of SXM baseboards where GPUs sit on
    /// distinct root ports (0x07, 0x0f, 0x47, 0x4e, 0x87, 0x90, 0xb7, 0xbd).
    pub fn for_slot(idx: usize) -> Self {
        const BUSES: [u8; 8] = [0x07, 0x0f, 0x47, 0x4e, 0x87, 0x90, 0xb7, 0xbd];
        PciAddr::new(0, BUSES[idx % BUSES.len()], 0)
    }
}

impl fmt::Display for PciAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04x}:{:02x}:{:02x}",
            self.domain, self.bus, self.device
        )
    }
}

/// Error produced when parsing a [`PciAddr`] from text fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParsePciError;

impl fmt::Display for ParsePciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid PCI address (expected dddd:bb:dd hex triple)")
    }
}

impl std::error::Error for ParsePciError {}

impl FromStr for PciAddr {
    type Err = ParsePciError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let domain = parts.next().ok_or(ParsePciError)?;
        let bus = parts.next().ok_or(ParsePciError)?;
        let device = parts.next().ok_or(ParsePciError)?;
        if parts.next().is_some() {
            return Err(ParsePciError);
        }
        Ok(PciAddr {
            domain: u16::from_str_radix(domain, 16).map_err(|_| ParsePciError)?,
            bus: u8::from_str_radix(bus, 16).map_err(|_| ParsePciError)?,
            device: u8::from_str_radix(device, 16).map_err(|_| ParsePciError)?,
        })
    }
}

/// A GPU device identity: the node it lives in plus its PCI address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct GpuId {
    pub node: NodeId,
    pub pci: PciAddr,
}

impl GpuId {
    pub const fn new(node: NodeId, pci: PciAddr) -> Self {
        GpuId { node, pci }
    }

    /// GPU at slot `idx` of node `node` using the conventional bus layout.
    pub fn at_slot(node: NodeId, idx: usize) -> Self {
        GpuId::new(node, PciAddr::for_slot(idx))
    }

    /// Whether two GPUs share a node (used by inter-GPU propagation).
    #[inline]
    pub fn same_node(self, other: GpuId) -> bool {
        self.node == other.node
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.node, self.pci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pci_display_and_parse_round_trip() {
        let a = PciAddr::new(0, 0xc1, 0);
        assert_eq!(a.to_string(), "0000:c1:00");
        assert_eq!("0000:c1:00".parse::<PciAddr>(), Ok(a));
        assert_eq!("0000:C1:00".parse::<PciAddr>(), Ok(a));
    }

    #[test]
    fn pci_parse_rejects_garbage() {
        assert!("".parse::<PciAddr>().is_err());
        assert!("0000:c1".parse::<PciAddr>().is_err());
        assert!("0000:c1:00:0".parse::<PciAddr>().is_err());
        assert!("zz:c1:00".parse::<PciAddr>().is_err());
    }

    #[test]
    fn slots_are_distinct_within_8_way_node() {
        let addrs: Vec<_> = (0..8).map(PciAddr::for_slot).collect();
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(addrs[i], addrs[j]);
            }
        }
    }

    #[test]
    fn gpu_identity_and_same_node() {
        let a = GpuId::at_slot(NodeId(3), 0);
        let b = GpuId::at_slot(NodeId(3), 1);
        let c = GpuId::at_slot(NodeId(4), 0);
        assert!(a.same_node(b));
        assert!(!a.same_node(c));
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "gpub003/0000:07:00");
    }
}
