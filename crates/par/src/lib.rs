//! # dr-par — data-parallel helpers on std scoped threads
//!
//! A deliberately small "rayon-lite": the analysis pipeline shards work by
//! node (the paper processes 202 GB of per-node syslogs), which is embarrass-
//! ingly parallel, so all we need is chunked parallel map/fold with dynamic
//! load balancing. Work distribution uses an atomic chunk cursor (work
//! stealing at chunk granularity); results are collected per worker and
//! stitched back in input order, so every function here is **deterministic**:
//! output order never depends on thread scheduling.
//!
//! Worker-count precedence: [`set_worker_override`] (programmatic) beats
//! the `DR_PAR_THREADS` environment variable, which beats
//! `std::thread::available_parallelism`. `DR_PAR_THREADS=1` is the
//! canonical way to compare a run against its serial execution.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-count override; 0 means "not set".
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Programmatically pin the worker count for all subsequent parallel
/// calls (process-wide). `None` restores the default resolution order
/// (`DR_PAR_THREADS`, then available parallelism).
pub fn set_worker_override(n: Option<usize>) {
    WORKER_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The configured worker count before capping by work size, if any.
fn configured_workers() -> Option<usize> {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::env::var("DR_PAR_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0),
        n => Some(n),
    }
}

/// The worker count parallel calls will use given abundant work — the
/// override / environment / available-parallelism resolution, before
/// capping by work size. Lets callers size their work decomposition
/// (e.g. a byte-balanced shard plan) to the pool.
pub fn max_workers() -> usize {
    worker_count(usize::MAX)
}

/// Number of worker threads to use: the override / environment /
/// available parallelism, capped by the amount of work so tiny inputs
/// don't spawn idle threads.
fn worker_count(work_items: usize) -> usize {
    let hw = configured_workers().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    hw.min(work_items).max(1)
}

/// Parallel map preserving input order.
///
/// `f` runs on worker threads; items are claimed in blocks via an atomic
/// cursor so stragglers don't serialize the tail.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    // Block size balances cursor contention against load balance.
    let block = (items.len() / (worker_count(items.len()) * 8)).max(1);
    let chunk_results = par_blocks(items, block, |start, slice| {
        (start, slice.iter().map(&f).collect::<Vec<U>>())
    });
    let mut out = Vec::with_capacity(items.len());
    for (_, mut v) in chunk_results {
        out.append(&mut v);
    }
    out
}

/// Parallel map over fixed-size chunks, preserving chunk order.
/// `f` receives `(chunk_index, chunk)`.
pub fn par_chunks_map<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let results = par_blocks(items, chunk_size, |start, slice| {
        (start / chunk_size, f(start / chunk_size, slice))
    });
    results.into_iter().map(|(_, u)| u).collect()
}

/// Parallel fold: map each item with `fold` into a per-worker accumulator
/// (seeded by `identity`), then reduce the accumulators with `merge`.
///
/// `merge` is applied in worker-index order, so the result is deterministic
/// whenever `merge` is associative (it need not be commutative).
pub fn par_fold<T, A, Fo, Me, Id>(items: &[T], identity: Id, fold: Fo, merge: Me) -> A
where
    T: Sync,
    A: Send,
    Id: Fn() -> A + Sync,
    Fo: Fn(A, &T) -> A + Sync,
    Me: Fn(A, A) -> A,
{
    let block = (items.len() / (worker_count(items.len()) * 8)).max(1);
    let partials = par_blocks(items, block, |start, slice| {
        (start, slice.iter().fold(identity(), |acc, it| fold(acc, it)))
    });
    partials
        .into_iter()
        .map(|(_, a)| a)
        .fold(identity(), merge)
}

/// Core primitive: split `items` into contiguous blocks of `block` items,
/// process each block with `f` on a pool of scoped threads, and return the
/// results sorted by block start offset.
fn par_blocks<T, R, F>(items: &[T], block: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + StartOrdered,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let nblocks = items.len().div_ceil(block);
    let workers = worker_count(nblocks);
    if workers == 1 {
        // Fast path: no thread spawn for serial execution.
        return (0..nblocks)
            .map(|b| {
                let start = b * block;
                let end = (start + block).min(items.len());
                f(start, &items[start..end])
            })
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        if b >= nblocks {
                            break;
                        }
                        let start = b * block;
                        let end = (start + block).min(items.len());
                        local.push(f(start, &items[start..end]));
                    }
                    local
                })
            })
            .collect();
        per_worker = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect();
    });

    let mut all: Vec<R> = per_worker.into_iter().flatten().collect();
    all.sort_by_key(|r| r.start_key());
    all
}

/// Results that carry their block start offset for order restoration.
trait StartOrdered {
    fn start_key(&self) -> usize;
}

impl<U> StartOrdered for (usize, U) {
    fn start_key(&self) -> usize {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out = par_map(&input, |&x| x * 2);
        assert_eq!(out.len(), input.len());
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn par_chunks_map_indices_and_sizes() {
        let input: Vec<u32> = (0..103).collect();
        let lens = par_chunks_map(&input, 10, |idx, chunk| (idx, chunk.len()));
        assert_eq!(lens.len(), 11);
        for (i, &(idx, len)) in lens.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(len, if i == 10 { 3 } else { 10 });
        }
    }

    #[test]
    fn par_fold_sums() {
        let input: Vec<u64> = (1..=1_000).collect();
        let sum = par_fold(&input, || 0u64, |acc, &x| acc + x, |a, b| a + b);
        assert_eq!(sum, 500_500);
    }

    #[test]
    fn par_fold_non_commutative_merge_is_ordered() {
        // Concatenation is associative but not commutative; parallel fold
        // must still produce the in-order result.
        let input: Vec<u32> = (0..500).collect();
        let s = par_fold(
            &input,
            String::new,
            |mut acc, &x| {
                acc.push_str(&x.to_string());
                acc.push(',');
                acc
            },
            |mut a, b| {
                a.push_str(&b);
                a
            },
        );
        let expected: String = input.iter().map(|x| format!("{x},")).collect();
        assert_eq!(s, expected);
    }

    proptest! {
        /// par_map agrees with sequential map for arbitrary inputs.
        #[test]
        fn par_map_matches_serial(xs in prop::collection::vec(any::<i32>(), 0..2_000)) {
            let par: Vec<i64> = par_map(&xs, |&x| x as i64 * 3 - 1);
            let ser: Vec<i64> = xs.iter().map(|&x| x as i64 * 3 - 1).collect();
            prop_assert_eq!(par, ser);
        }

        /// par_fold agrees with sequential fold for summation.
        #[test]
        fn par_fold_matches_serial(xs in prop::collection::vec(any::<i32>(), 0..2_000)) {
            let par = par_fold(&xs, || 0i64, |a, &x| a + x as i64, |a, b| a + b);
            let ser: i64 = xs.iter().map(|&x| x as i64).sum();
            prop_assert_eq!(par, ser);
        }
    }
}
