//! Stress tests for the atomic chunk cursor: many workers fighting over
//! tiny blocks must neither drop nor duplicate work, and the stitched
//! output must be independent of the worker count.
//!
//! Runs as its own integration binary so the process-wide worker override
//! cannot interfere with other tests.

use dr_par::{par_fold, par_map, set_worker_override};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn cursor_contention_neither_drops_nor_duplicates() {
    // Oversubscribe aggressively: far more workers than cores, with
    // single-item blocks, so the fetch_add cursor is under maximum
    // contention. Every item must be processed exactly once.
    let n = 50_000u64;
    let input: Vec<u64> = (0..n).collect();
    let calls = AtomicU64::new(0);
    for workers in [2, 3, 7, 16, 61] {
        set_worker_override(Some(workers));
        calls.store(0, Ordering::Relaxed);
        let out = par_map(&input, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        });
        assert_eq!(calls.load(Ordering::Relaxed), n, "workers={workers}");
        assert_eq!(out.len(), input.len(), "workers={workers}");
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
    }
    set_worker_override(None);
}

#[test]
fn fold_under_contention_is_exact() {
    // Integer sums are order-independent, so any drop/duplicate under
    // contention shows up as a wrong total.
    let input: Vec<u64> = (1..=100_000).collect();
    let expected: u64 = input.iter().sum();
    for workers in [2, 5, 32] {
        set_worker_override(Some(workers));
        let sum = par_fold(&input, || 0u64, |a, &x| a + x, |a, b| a + b);
        assert_eq!(sum, expected, "workers={workers}");
    }
    set_worker_override(None);
}

#[test]
fn output_is_bit_identical_across_worker_counts() {
    // Non-commutative merge (string concatenation): the stitched result
    // must match the serial one for every worker count, byte for byte.
    let input: Vec<u32> = (0..4_000).collect();
    let run = || {
        par_fold(
            &input,
            String::new,
            |mut acc, &x| {
                acc.push_str(&x.to_string());
                acc.push(';');
                acc
            },
            |mut a, b| {
                a.push_str(&b);
                a
            },
        )
    };
    set_worker_override(Some(1));
    let serial = run();
    for workers in [2, 4, 13, 48] {
        set_worker_override(Some(workers));
        assert_eq!(run(), serial, "workers={workers}");
    }
    set_worker_override(None);
}

#[test]
fn override_beats_environment() {
    // The programmatic override must win over DR_PAR_THREADS; this also
    // exercises the env-var parse path in the same process.
    std::env::set_var("DR_PAR_THREADS", "2");
    set_worker_override(Some(4));
    let out = par_map(&(0..1_000u32).collect::<Vec<_>>(), |&x| x + 1);
    assert_eq!(out.len(), 1_000);
    set_worker_override(None);
    // With the override cleared, the env var applies (smoke check only —
    // worker count is not observable from here, but the path must not
    // panic or change results).
    let out = par_map(&(0..1_000u32).collect::<Vec<_>>(), |&x| x + 1);
    assert_eq!(out[999], 1_000);
    std::env::remove_var("DR_PAR_THREADS");
}
