//! The discrete-event projection run.

use crate::model::ProjectionConfig;
use dr_stats::dist::Sampler;
use dr_stats::Exp;
use rand::prelude::*;

/// Outcome of one projection run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProjectionResult {
    /// Node failures drawn over the horizon.
    pub failures: u64,
    /// Restarts actually performed (failures inside a recovery absorb).
    pub restarts: u64,
    /// Hours the job spent stalled (recovering / replaying lost work).
    pub stall_h: f64,
    /// Fraction of the horizon spent making progress.
    pub efficiency: f64,
    /// Peak number of nodes simultaneously down.
    pub peak_down_nodes: u32,
    /// Extra capacity needed to replace down nodes (fraction of job size).
    pub spare_fraction: f64,
    /// Extra capacity needed to make up lost work in the same window.
    pub work_fraction: f64,
    /// Total required overprovisioning (spares + lost-work make-up).
    pub required_overprovision: f64,
}

/// Run the projection once.
pub fn simulate(cfg: &ProjectionConfig) -> ProjectionResult {
    assert!(cfg.horizon_h > 0.0 && cfg.fleet_failures_per_hour >= 0.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Failure times over the horizon.
    let mut times: Vec<f64> = Vec::new();
    if cfg.fleet_failures_per_hour > 0.0 {
        let gap = Exp::new(cfg.fleet_failures_per_hour);
        let mut t = 0.0;
        loop {
            t += gap.sample(&mut rng);
            if t >= cfg.horizon_h {
                break;
            }
            times.push(t);
        }
    }

    // Consolidated whole-job restarts.
    let loss_per_restart = cfg.recovery_h + cfg.checkpoint_interval_h / 2.0;
    let mut stall_h = 0.0;
    let mut restarts = 0u64;
    let mut recovering_until = f64::NEG_INFINITY;
    for &t in &times {
        if t < recovering_until {
            continue; // absorbed by the ongoing recovery
        }
        restarts += 1;
        let end = (t + loss_per_restart).min(cfg.horizon_h);
        stall_h += end - t;
        recovering_until = t + loss_per_restart;
    }

    // Peak concurrently-down nodes (sweep the +1/-1 edge list).
    let mut edges: Vec<(f64, i32)> = Vec::with_capacity(times.len() * 2);
    for &t in &times {
        edges.push((t, 1));
        edges.push((t + cfg.node_return_h, -1));
    }
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
    let mut down = 0i32;
    let mut peak = 0i32;
    for (_, d) in edges {
        down += d;
        peak = peak.max(down);
    }

    let efficiency = 1.0 - stall_h / cfg.horizon_h;
    let work_fraction = if efficiency > 0.0 {
        (1.0 - efficiency) / efficiency
    } else {
        f64::INFINITY
    };
    let spare_fraction =
        (peak as f64 * cfg.gpus_per_node as f64) / cfg.job_gpus as f64;

    ProjectionResult {
        failures: times.len() as u64,
        restarts,
        stall_h,
        efficiency,
        peak_down_nodes: peak as u32,
        spare_fraction,
        work_fraction,
        required_overprovision: spare_fraction + work_fraction,
    }
}

/// Average the projection over `runs` seeds (the stall fraction of a
/// single month is noisy).
pub fn simulate_mean(cfg: &ProjectionConfig, runs: u32) -> ProjectionResult {
    assert!(runs > 0);
    let mut acc: Option<ProjectionResult> = None;
    let mut peak_max = 0u32;
    for k in 0..runs {
        let mut c = *cfg;
        c.seed = cfg.seed.wrapping_add(k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let r = simulate(&c);
        peak_max = peak_max.max(r.peak_down_nodes);
        acc = Some(match acc {
            None => r,
            Some(a) => ProjectionResult {
                failures: a.failures + r.failures,
                restarts: a.restarts + r.restarts,
                stall_h: a.stall_h + r.stall_h,
                efficiency: a.efficiency + r.efficiency,
                peak_down_nodes: peak_max,
                spare_fraction: a.spare_fraction + r.spare_fraction,
                work_fraction: a.work_fraction + r.work_fraction,
                required_overprovision: a.required_overprovision + r.required_overprovision,
            },
        });
    }
    let mut a = acc.expect("at least one run");
    let n = runs as f64;
    a.stall_h /= n;
    a.efficiency /= n;
    a.spare_fraction /= n;
    a.work_fraction /= n;
    a.required_overprovision /= n;
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::analytic_overprovision;

    #[test]
    fn no_failures_no_overprovision() {
        let mut cfg = ProjectionConfig::paper_scenario(1);
        cfg.fleet_failures_per_hour = 0.0;
        let r = simulate(&cfg);
        assert_eq!(r.failures, 0);
        assert_eq!(r.required_overprovision, 0.0);
        assert_eq!(r.efficiency, 1.0);
    }

    #[test]
    fn simulation_matches_analytic_model() {
        let cfg = ProjectionConfig::paper_scenario(7);
        let r = simulate_mean(&cfg, 40);
        let analytic = analytic_overprovision(&cfg);
        assert!(
            (r.work_fraction - analytic).abs() / analytic < 0.15,
            "sim {} vs analytic {analytic}",
            r.work_fraction
        );
    }

    #[test]
    fn paper_headline_numbers() {
        let cfg = ProjectionConfig::paper_scenario(11);
        let r40 = simulate_mean(&cfg, 40);
        let r5 = simulate_mean(&cfg.with_recovery_minutes(5.0), 40);
        assert!(
            (0.12..0.30).contains(&r40.required_overprovision),
            "40-min overprovision {}",
            r40.required_overprovision
        );
        assert!(
            (0.02..0.10).contains(&r5.required_overprovision),
            "5-min overprovision {}",
            r5.required_overprovision
        );
        assert!(r40.required_overprovision > 2.5 * r5.required_overprovision);
    }

    #[test]
    fn restarts_consolidate() {
        let mut cfg = ProjectionConfig::paper_scenario(3);
        cfg.fleet_failures_per_hour = 50.0; // storm: recoveries overlap
        let r = simulate(&cfg);
        assert!(r.restarts < r.failures);
        assert!(r.efficiency >= 0.0);
        assert!(r.stall_h <= cfg.horizon_h + 1e-9);
    }

    #[test]
    fn determinism() {
        let cfg = ProjectionConfig::paper_scenario(9);
        assert_eq!(simulate(&cfg), simulate(&cfg));
    }

    #[test]
    fn peak_down_counts_overlaps() {
        let mut cfg = ProjectionConfig::paper_scenario(13);
        cfg.node_return_h = 10_000.0; // nothing comes back within the month
        let r = simulate(&cfg);
        assert_eq!(r.peak_down_nodes as u64, r.failures);
    }
}
