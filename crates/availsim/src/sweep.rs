//! Parameter sweeps (the Section 5.4/5.5 projection experiments).

use crate::model::ProjectionConfig;
use crate::sim::{simulate_mean, ProjectionResult};

/// One sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepRow {
    /// Recovery time in minutes.
    pub recovery_min: f64,
    /// Rate factor relative to the base scenario (1.0 = 99.5 %-era rates).
    pub rate_factor: f64,
    /// Equivalent node availability for this rate factor, given the base
    /// scenario corresponds to 99.5 % (MTBE 67 h, MTTR 0.3 h).
    pub availability: f64,
    pub result: ProjectionResult,
}

/// Availability implied by scaling the 67 h baseline MTBE by `1/factor`.
fn availability_for_factor(rate_factor: f64) -> f64 {
    let mtbe = 67.0 / rate_factor;
    mtbe / (mtbe + 0.3)
}

/// Sweep recovery time at the base failure rate (Section 5.4:
/// 40 min → 20 % down to 5 min → 5 %).
pub fn recovery_sweep(base: &ProjectionConfig, minutes: &[f64], runs: u32) -> Vec<SweepRow> {
    minutes
        .iter()
        .map(|&m| SweepRow {
            recovery_min: m,
            rate_factor: 1.0,
            availability: availability_for_factor(1.0),
            result: simulate_mean(&base.with_recovery_minutes(m), runs),
        })
        .collect()
}

/// Sweep the failure rate (availability what-if, Section 5.5: improving
/// node availability from 99.5 % to 99.9 % cuts overprovisioning ~4×).
pub fn availability_sweep(base: &ProjectionConfig, factors: &[f64], runs: u32) -> Vec<SweepRow> {
    factors
        .iter()
        .map(|&f| SweepRow {
            recovery_min: base.recovery_h * 60.0,
            rate_factor: f,
            availability: availability_for_factor(f),
            result: simulate_mean(&base.with_rate_factor(f), runs),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_sweep_is_monotone() {
        let base = ProjectionConfig::paper_scenario(21);
        let rows = recovery_sweep(&base, &[5.0, 10.0, 20.0, 40.0], 20);
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(
                w[0].result.required_overprovision <= w[1].result.required_overprovision + 0.02,
                "sweep not monotone: {w:?}"
            );
        }
    }

    #[test]
    fn availability_sweep_maps_factors() {
        let base = ProjectionConfig::paper_scenario(22);
        let rows = availability_sweep(&base, &[1.0, 67.0 / 223.0], 20);
        // Factor 1.0 corresponds to the measured 99.5 %.
        assert!((rows[0].availability - 0.9955).abs() < 0.001);
        // The hardened rate corresponds to ~99.9 %.
        assert!(rows[1].availability > 0.9985);
        // Overprovisioning drops substantially.
        assert!(
            rows[0].result.required_overprovision
                > 2.0 * rows[1].result.required_overprovision
        );
    }
}
