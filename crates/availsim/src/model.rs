//! Projection configuration and the closed-form sanity model.

/// Scenario parameters for one projection run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProjectionConfig {
    /// GPUs the job occupies (800 in the paper's scenario).
    pub job_gpus: u32,
    /// GPUs per node (4 for Delta's A100 nodes).
    pub gpus_per_node: u32,
    /// Job duration in hours (1 month ≈ 720 h).
    pub horizon_h: f64,
    /// Fleet-wide node failure rate per hour. The paper's scenario quotes
    /// "a 1 % chance of a single GPU failure per hour"; we expose the
    /// fleet-level Poisson rate directly so the sweep can tie it to the
    /// measured node MTBE (rate = nodes / MTBE for the pessimistic
    /// every-error-interrupts assumption, or a derated fraction for
    /// restart-worthy failures only).
    pub fleet_failures_per_hour: f64,
    /// Recovery time per failure: checkpoint load + rescheduling (hours).
    pub recovery_h: f64,
    /// Checkpoint interval: work since the last checkpoint is lost on a
    /// failure (mean loss = interval / 2).
    pub checkpoint_interval_h: f64,
    /// How long a failed node stays down before rejoining the pool.
    pub node_return_h: f64,
    pub seed: u64,
}

impl ProjectionConfig {
    /// The paper's headline scenario: 800 GPUs, one month, 40-minute
    /// recovery. The failure rate is calibrated so the projection lands
    /// on the paper's reported ~20 % overprovisioning (and ~5 % at a
    /// five-minute recovery) — the paper's own rate parameter is
    /// under-specified, so we pin it to its reported outputs and sweep
    /// around it.
    pub fn paper_scenario(seed: u64) -> Self {
        ProjectionConfig {
            job_gpus: 800,
            gpus_per_node: 4,
            horizon_h: 720.0,
            fleet_failures_per_hour: 0.26,
            recovery_h: 40.0 / 60.0,
            checkpoint_interval_h: 13.0 / 60.0,
            node_return_h: 1.0,
            seed,
        }
    }

    /// Same scenario with a different recovery time (minutes).
    pub fn with_recovery_minutes(mut self, recovery_min: f64) -> Self {
        self.recovery_h = recovery_min / 60.0;
        self
    }

    /// Scale the failure rate by a factor (availability what-ifs: moving
    /// node MTBE from 67 h to 223 h scales the rate by 67/223).
    pub fn with_rate_factor(mut self, factor: f64) -> Self {
        self.fleet_failures_per_hour *= factor;
        self
    }

    /// Number of nodes the job occupies.
    pub fn job_nodes(&self) -> u32 {
        self.job_gpus.div_ceil(self.gpus_per_node)
    }
}

/// Closed-form approximation of the work-loss overprovisioning for the
/// consolidated-restart model:
///
/// effective loss per restart = recovery + checkpoint_interval / 2, and
/// restarts occur at rate λ/(1 + λ·loss) (failures inside a recovery are
/// absorbed), giving a stall fraction `λ·loss / (1 + λ·loss)` and a
/// required extra-capacity fraction `stall / (1 − stall)`.
pub fn analytic_overprovision(cfg: &ProjectionConfig) -> f64 {
    let loss = cfg.recovery_h + cfg.checkpoint_interval_h / 2.0;
    let lam = cfg.fleet_failures_per_hour;
    let stall = lam * loss / (1.0 + lam * loss);
    stall / (1.0 - stall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_shape() {
        let cfg = ProjectionConfig::paper_scenario(1);
        assert_eq!(cfg.job_nodes(), 200);
        // ~20 % at 40 min recovery.
        let op40 = analytic_overprovision(&cfg);
        assert!((op40 - 0.20).abs() < 0.05, "40-min overprovision {op40}");
        // ~5 % at 5 min recovery.
        let op5 = analytic_overprovision(&cfg.with_recovery_minutes(5.0));
        assert!((op5 - 0.05).abs() < 0.02, "5-min overprovision {op5}");
        // The improvement is roughly 4x.
        assert!(op40 / op5 > 3.0 && op40 / op5 < 6.5);
    }

    #[test]
    fn better_availability_cuts_overprovision() {
        let base = ProjectionConfig::paper_scenario(1);
        let improved = base.with_rate_factor(67.0 / 223.0);
        let ratio = analytic_overprovision(&base) / analytic_overprovision(&improved);
        assert!(ratio > 2.5 && ratio < 5.0, "reduction ratio {ratio}");
    }

    #[test]
    fn overprovision_monotone_in_recovery_and_rate() {
        let cfg = ProjectionConfig::paper_scenario(1);
        let a = analytic_overprovision(&cfg.with_recovery_minutes(5.0));
        let b = analytic_overprovision(&cfg.with_recovery_minutes(20.0));
        let c = analytic_overprovision(&cfg.with_recovery_minutes(60.0));
        assert!(a < b && b < c);
        let d = analytic_overprovision(&cfg.with_rate_factor(2.0));
        assert!(d > analytic_overprovision(&cfg));
    }
}
