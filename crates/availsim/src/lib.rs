//! # dr-availsim — availability projection for large synchronous jobs
//!
//! Section 5.4 projects the measured failure/recovery distributions onto a
//! hypothetical job occupying the whole system (e.g. an 800-GPU,
//! one-month training run). The paper's own description — "a discrete
//! time event simulation with node failure probabilities derived from our
//! prior analysis", parameterizing recovery time and sweeping it — is
//! what this crate implements:
//!
//! * node failures arrive as a Poisson process over the job's node pool;
//! * every failure forces a **whole-job restart from checkpoint**: the
//!   job loses the recovery time (checkpoint load, rescheduling) plus the
//!   work since the last checkpoint; failures landing inside an ongoing
//!   recovery are absorbed by it (the restart picks up a consistent
//!   state);
//! * failed nodes are unavailable while they reboot, so a spare pool must
//!   cover the peak number of concurrently-down nodes for the job to keep
//!   its full width.
//!
//! The **required overprovisioning** is the extra capacity (as a fraction
//! of the job's size) needed to (a) physically replace down nodes and
//! (b) make up the lost work within the same wall-clock window. With the
//! paper's scenario (800 GPUs, 1 month) this reproduces the headline
//! shape: ~20 % at a 40-minute recovery, dropping ~4× when recovery
//! shrinks to 5 minutes or when node availability improves from 99.5 %
//! to 99.9 %.

pub mod checkpoint;
pub mod model;
pub mod sim;
pub mod sweep;

pub use checkpoint::{checkpoint_sweep, daly_interval_h, young_interval_h, CheckpointPoint};
pub use model::{analytic_overprovision, ProjectionConfig};
pub use sim::{simulate, simulate_mean, ProjectionResult};
pub use sweep::{availability_sweep, recovery_sweep, SweepRow};
