//! Checkpoint-interval optimization.
//!
//! Section 5 weighs checkpointing as the job-level recovery strategy and
//! notes overheads "up to 40 %". The right interval is a classic tradeoff:
//! checkpoint too often and the overhead dominates; too rarely and every
//! failure replays a long stretch of lost work. This module provides
//!
//! * the **Young** and **Daly** closed-form optima,
//! * the analytic waste/efficiency model they derive from, and
//! * a sweep that validates the closed forms against this crate's
//!   discrete-event projection (the simulator charges exactly the
//!   recovery + half-interval rework the model assumes).

use crate::model::ProjectionConfig;
use crate::sim::simulate_mean;

/// Young's first-order optimum: `τ = sqrt(2 · C · MTBF)`.
///
/// `checkpoint_cost_h` is the time one checkpoint takes; `mtbf_h` the mean
/// time between *job-interrupting* failures.
pub fn young_interval_h(checkpoint_cost_h: f64, mtbf_h: f64) -> f64 {
    assert!(checkpoint_cost_h > 0.0 && mtbf_h > 0.0);
    (2.0 * checkpoint_cost_h * mtbf_h).sqrt()
}

/// Daly's higher-order refinement of Young's formula (accurate when the
/// checkpoint cost is not vanishingly small relative to the MTBF).
pub fn daly_interval_h(checkpoint_cost_h: f64, mtbf_h: f64) -> f64 {
    assert!(checkpoint_cost_h > 0.0 && mtbf_h > 0.0);
    let c = checkpoint_cost_h;
    let m = mtbf_h;
    if c < 2.0 * m {
        let x = (c / (2.0 * m)).sqrt();
        (2.0 * c * m).sqrt() * (1.0 + x / 3.0 + (c / (2.0 * m)) / 9.0) - c
    } else {
        m
    }
}

/// Analytic fraction of wall-clock lost to checkpointing + failure rework
/// for interval `tau_h`, under the **consolidated-restart** discipline the
/// DES in this crate simulates (failures during a recovery are absorbed):
///
/// `waste = 1 − (1 − C/(τ+C)) / (1 + (R + τ/2)/MTBF)`
///
/// For `τ, R ≪ MTBF` this reduces to Young's familiar
/// `C/τ + (τ/2 + R)/MTBF`, whose minimizer is [`young_interval_h`].
pub fn analytic_waste(tau_h: f64, checkpoint_cost_h: f64, recovery_h: f64, mtbf_h: f64) -> f64 {
    assert!(tau_h > 0.0);
    let overhead = checkpoint_cost_h / (tau_h + checkpoint_cost_h);
    let rework = (recovery_h + tau_h / 2.0) / mtbf_h;
    (1.0 - (1.0 - overhead) / (1.0 + rework)).clamp(0.0, 1.0)
}

/// One point of a checkpoint-interval sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointPoint {
    pub interval_h: f64,
    /// Analytic efficiency (1 − waste).
    pub analytic_efficiency: f64,
    /// Simulated efficiency from the DES projection.
    pub simulated_efficiency: f64,
}

/// Sweep checkpoint intervals for the given projection scenario.
///
/// `checkpoint_cost_h` enters the analytic model as overhead and the
/// simulation indirectly: the DES charges `recovery + interval/2` per
/// restart, and we add the `C/(τ+C)` overhead on top of its efficiency so
/// both sides of the comparison price the same three costs.
pub fn checkpoint_sweep(
    base: &ProjectionConfig,
    checkpoint_cost_h: f64,
    intervals_h: &[f64],
    runs: u32,
) -> Vec<CheckpointPoint> {
    let mtbf_h = 1.0 / base.fleet_failures_per_hour.max(1e-12);
    intervals_h
        .iter()
        .map(|&tau| {
            let mut cfg = *base;
            cfg.checkpoint_interval_h = tau;
            let sim = simulate_mean(&cfg, runs);
            let overhead = checkpoint_cost_h / (tau + checkpoint_cost_h);
            CheckpointPoint {
                interval_h: tau,
                analytic_efficiency: 1.0
                    - analytic_waste(tau, checkpoint_cost_h, cfg.recovery_h, mtbf_h),
                simulated_efficiency: (sim.efficiency * (1.0 - overhead)).max(0.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_formula_known_value() {
        // C = 6 min, MTBF = 3.85 h (the paper-scenario rate 0.26/h):
        // τ* = sqrt(2 · 0.1 · 3.85) ≈ 0.877 h.
        let t = young_interval_h(0.1, 1.0 / 0.26);
        assert!((t - 0.877).abs() < 0.01, "tau {t}");
    }

    #[test]
    fn daly_refines_young_upward_for_costly_checkpoints() {
        let (c, m) = (0.2, 4.0);
        let young = young_interval_h(c, m);
        let daly = daly_interval_h(c, m);
        // Daly's correction is positive before subtracting C.
        assert!(daly + c > young, "daly {daly} vs young {young}");
        // And degenerate regime caps at MTBF.
        assert_eq!(daly_interval_h(10.0, 2.0), 2.0);
    }

    #[test]
    fn analytic_waste_is_u_shaped_around_the_optimum() {
        let (c, r, m) = (0.1, 0.2, 4.0);
        let opt = young_interval_h(c, m);
        let at_opt = analytic_waste(opt, c, r, m);
        assert!(analytic_waste(opt / 8.0, c, r, m) > at_opt);
        assert!(analytic_waste(opt * 8.0, c, r, m) > at_opt);
    }

    #[test]
    fn simulation_agrees_with_analytic_model_near_the_optimum() {
        let base = ProjectionConfig::paper_scenario(77);
        let c = 0.05; // 3-minute checkpoints
        let intervals = [0.1, 0.3, 0.9, 2.7];
        let sweep = checkpoint_sweep(&base, c, &intervals, 30);
        for p in &sweep {
            let diff = (p.analytic_efficiency - p.simulated_efficiency).abs();
            assert!(
                diff < 0.04,
                "interval {}: analytic {:.3} vs simulated {:.3}",
                p.interval_h,
                p.analytic_efficiency,
                p.simulated_efficiency
            );
        }
        // The best simulated point is near the Young optimum.
        let mtbf = 1.0 / base.fleet_failures_per_hour;
        let opt = young_interval_h(c, mtbf);
        let best = sweep
            .iter()
            .max_by(|a, b| a.simulated_efficiency.total_cmp(&b.simulated_efficiency))
            .expect("non-empty");
        let ratio = best.interval_h / opt;
        assert!(
            (0.2..5.0).contains(&ratio),
            "best simulated interval {} vs Young {}",
            best.interval_h,
            opt
        );
    }
}
