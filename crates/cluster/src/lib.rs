//! # dr-cluster — Delta-like cluster topology
//!
//! Delta (Section 2.1, Figure 2) couples 132 CPU-only nodes with 286
//! GPU-accelerated nodes in four configurations totaling 1,168 GPUs:
//!
//! | configuration | nodes | GPUs |
//! |---------------|-------|------|
//! | 4-way A40     | 100   | 400  |
//! | 4-way A100    | 100   | 400  |
//! | 8-way A100    | 6     | 48   |
//! | GH200 (H100)  | 80    | 320  |
//!
//! The 206 Ampere nodes (848 Ampere GPUs) are the Table 1 population; the
//! H100 fleet is analyzed separately (Section 6). This crate builds the
//! fleet of mechanistic [`dr_gpu::Gpu`] devices, defines the NVLink
//! peer topology used by inter-GPU propagation, and models per-architecture
//! utilization (Section 2.4).

pub mod fleet;
pub mod node;
pub mod utilization;

pub use fleet::{DeltaShape, Fleet};
pub use node::{Node, NodeKind};
pub use utilization::UtilizationModel;

/// CPU-only nodes in Delta (not part of the GPU fleet model, but used by
/// the job-statistics comparison in Section 5.2).
pub const CPU_ONLY_NODES: u32 = 132;
