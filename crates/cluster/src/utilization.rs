//! Per-architecture GPU utilization model (Section 2.4).
//!
//! Delta's A100s run at ~51 % mean utilization, A40s ~40 %, while the
//! recently deployed H100s idle at ~20 % with some GPUs never scheduled.
//! Utilization matters to the resilience analysis in two places: whether
//! an NVLink error hits an *active* job (Section 4.1 observation iv), and
//! the Section 6 note that H100's high MTBE partly reflects low usage.

use dr_gpu::GpuArch;
use rand::Rng;

/// Mean utilization per architecture with sampling helpers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UtilizationModel {
    pub a40_mean: f64,
    pub a100_mean: f64,
    pub h100_mean: f64,
    /// Fraction of H100 GPUs never scheduled during early deployment.
    pub h100_idle_fraction: f64,
}

impl Default for UtilizationModel {
    fn default() -> Self {
        UtilizationModel {
            a40_mean: 0.40,
            a100_mean: 0.51,
            h100_mean: 0.20,
            h100_idle_fraction: 0.15,
        }
    }
}

impl UtilizationModel {
    /// Mean utilization of `arch`.
    pub fn mean(&self, arch: GpuArch) -> f64 {
        match arch {
            GpuArch::A40 => self.a40_mean,
            GpuArch::A100 => self.a100_mean,
            GpuArch::H100 => self.h100_mean,
        }
    }

    /// Draw an instantaneous utilization for one GPU of `arch`:
    /// a triangular-ish distribution around the mean, clamped to [0, 1],
    /// with the H100 never-scheduled population pinned at zero.
    pub fn sample<R: Rng + ?Sized>(&self, arch: GpuArch, rng: &mut R) -> f64 {
        if arch == GpuArch::H100 && rng.gen::<f64>() < self.h100_idle_fraction {
            return 0.0;
        }
        let mean = self.mean(arch);
        // Sum of two uniforms: triangular around the mean, width ±0.3.
        let jitter = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * 0.3;
        (mean + jitter).clamp(0.0, 1.0)
    }

    /// Probability that a given error moment intersects active use of the
    /// GPU (used to decide whether an NVLink error touches a job at all).
    pub fn busy_probability(&self, arch: GpuArch) -> f64 {
        match arch {
            GpuArch::H100 => self.mean(arch) * (1.0 - self.h100_idle_fraction),
            _ => self.mean(arch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn means_match_section_2_4() {
        let u = UtilizationModel::default();
        assert_eq!(u.mean(GpuArch::A100), 0.51);
        assert_eq!(u.mean(GpuArch::A40), 0.40);
        assert_eq!(u.mean(GpuArch::H100), 0.20);
    }

    #[test]
    fn samples_are_bounded_and_center_on_mean() {
        let u = UtilizationModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        for arch in GpuArch::ALL {
            let samples: Vec<f64> = (0..20_000).map(|_| u.sample(arch, &mut rng)).collect();
            assert!(samples.iter().all(|&s| (0.0..=1.0).contains(&s)));
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let expected = match arch {
                GpuArch::H100 => u.h100_mean * (1.0 - u.h100_idle_fraction),
                _ => u.mean(arch),
            };
            assert!(
                (mean - expected).abs() < 0.02,
                "{arch}: sampled {mean}, expected {expected}"
            );
        }
    }

    #[test]
    fn some_h100s_are_fully_idle() {
        let u = UtilizationModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let zeros = (0..5_000)
            .filter(|_| u.sample(GpuArch::H100, &mut rng) == 0.0)
            .count();
        let frac = zeros as f64 / 5_000.0;
        // At least the pinned-idle population is exactly zero (clamping of
        // low jitter draws can add a few more).
        assert!(frac >= u.h100_idle_fraction - 0.03, "idle {frac}");
        assert!(frac < 0.5, "idle {frac}");
    }

    #[test]
    fn busy_probability_ranks_architectures() {
        let u = UtilizationModel::default();
        assert!(u.busy_probability(GpuArch::A100) > u.busy_probability(GpuArch::A40));
        assert!(u.busy_probability(GpuArch::A40) > u.busy_probability(GpuArch::H100));
    }
}
