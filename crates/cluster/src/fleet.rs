//! The GPU fleet: all GPU nodes of the cluster, indexable by node and GPU.

use crate::node::{Node, NodeKind};
use dr_gpu::{Gpu, GpuArch, RasTuning};
use dr_xid::{GpuId, NodeId};
// dr-lint: allow(determinism): hot-path O(1) device lookup; never iterated
use std::collections::HashMap;

/// How many nodes of each kind to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaShape {
    pub a40x4: u32,
    pub a100x4: u32,
    pub a100x8: u32,
    pub gh200: u32,
}

impl DeltaShape {
    /// The production Delta shape (Section 2.1): 286 GPU nodes, 1,168 GPUs.
    pub const fn delta() -> Self {
        DeltaShape {
            a40x4: 100,
            a100x4: 100,
            a100x8: 6,
            gh200: 80,
        }
    }

    /// Only the Ampere population of Table 1: 206 nodes, 848 GPUs.
    pub const fn delta_ampere() -> Self {
        DeltaShape {
            gh200: 0,
            ..DeltaShape::delta()
        }
    }

    /// Only the H100 extension fleet of Section 6: 80 nodes, 320 GPUs.
    pub const fn delta_h100() -> Self {
        DeltaShape {
            a40x4: 0,
            a100x4: 0,
            a100x8: 0,
            gh200: 80,
        }
    }

    /// A small shape for tests and the quickstart example.
    pub const fn tiny() -> Self {
        DeltaShape {
            a40x4: 2,
            a100x4: 2,
            a100x8: 1,
            gh200: 1,
        }
    }

    pub const fn node_count(&self) -> u32 {
        self.a40x4 + self.a100x4 + self.a100x8 + self.gh200
    }

    pub const fn gpu_count(&self) -> u32 {
        self.a40x4 * 4 + self.a100x4 * 4 + self.a100x8 * 8 + self.gh200 * 4
    }
}

/// The fleet of GPU nodes.
#[derive(Clone, Debug)]
pub struct Fleet {
    nodes: Vec<Node>,
    /// GpuId -> (node index, slot) for O(1) device lookup. Only ever
    /// queried by key, so iteration order cannot leak into results.
    // dr-lint: allow(determinism): keyed get/insert only, never iterated
    index: HashMap<GpuId, (usize, usize)>,
}

impl Fleet {
    /// Build a fleet of the given shape. Node ids are assigned densely in
    /// kind order: A40x4, A100x4, A100x8, GH200.
    pub fn build(shape: DeltaShape, tuning: RasTuning) -> Self {
        let mut nodes = Vec::with_capacity(shape.node_count() as usize);
        let mut next_id = 0u32;
        let mut push = |nodes: &mut Vec<Node>, kind: NodeKind, count: u32| {
            for _ in 0..count {
                nodes.push(Node::new(NodeId(next_id), kind, tuning));
                next_id += 1;
            }
        };
        push(&mut nodes, NodeKind::A40x4, shape.a40x4);
        push(&mut nodes, NodeKind::A100x4, shape.a100x4);
        push(&mut nodes, NodeKind::A100x8, shape.a100x8);
        push(&mut nodes, NodeKind::Gh200, shape.gh200);

        // dr-lint: allow(determinism): keyed get/insert only, never iterated
        let mut index = HashMap::new();
        for (ni, node) in nodes.iter().enumerate() {
            for (si, gpu) in node.gpus.iter().enumerate() {
                index.insert(gpu.id(), (ni, si));
            }
        }
        Fleet { nodes, index }
    }

    /// The production Delta fleet.
    pub fn delta(tuning: RasTuning) -> Self {
        Fleet::build(DeltaShape::delta(), tuning)
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn gpu_count(&self) -> usize {
        self.index.len()
    }

    /// Count of nodes whose GPUs are Ampere parts (the Table 1 population).
    pub fn ampere_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_ampere()).count()
    }

    /// Count of Ampere GPUs.
    pub fn ampere_gpu_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_ampere())
            .map(|n| n.gpus.len())
            .sum()
    }

    /// All GPU ids, fleet order.
    pub fn gpu_ids(&self) -> Vec<GpuId> {
        self.nodes.iter().flat_map(|n| n.gpu_ids()).collect()
    }

    /// GPU ids restricted to one architecture.
    pub fn gpu_ids_of(&self, arch: GpuArch) -> Vec<GpuId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.arch() == arch)
            .flat_map(|n| n.gpu_ids())
            .collect()
    }

    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Immutable device lookup.
    pub fn gpu(&self, id: GpuId) -> Option<&Gpu> {
        let &(ni, si) = self.index.get(&id)?;
        Some(&self.nodes[ni].gpus[si])
    }

    /// Mutable device lookup (used by the campaign to inject faults and by
    /// the defect seeder to swap in spare-exhausted parts).
    pub fn gpu_mut(&mut self, id: GpuId) -> Option<&mut Gpu> {
        let &(ni, si) = self.index.get(&id)?;
        Some(&mut self.nodes[ni].gpus[si])
    }

    /// NVLink peers of `gpu` (empty if unknown).
    pub fn nvlink_peers(&self, gpu: GpuId) -> Vec<GpuId> {
        match self.index.get(&gpu) {
            Some(&(ni, si)) => self.nodes[ni].nvlink_peers(si),
            None => Vec::new(),
        }
    }

    /// The node kind hosting `gpu`.
    pub fn kind_of(&self, gpu: GpuId) -> Option<NodeKind> {
        self.index.get(&gpu).map(|&(ni, _)| self.nodes[ni].kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_shape_matches_paper() {
        let s = DeltaShape::delta();
        assert_eq!(s.node_count(), 286);
        assert_eq!(s.gpu_count(), 1_168);
        let a = DeltaShape::delta_ampere();
        assert_eq!(a.node_count(), 206);
        assert_eq!(a.gpu_count(), 848);
        let h = DeltaShape::delta_h100();
        assert_eq!(h.gpu_count(), 320);
    }

    #[test]
    fn built_fleet_matches_shape() {
        let f = Fleet::delta(RasTuning::default());
        assert_eq!(f.node_count(), 286);
        assert_eq!(f.gpu_count(), 1_168);
        assert_eq!(f.ampere_node_count(), 206);
        assert_eq!(f.ampere_gpu_count(), 848);
        assert_eq!(f.gpu_ids_of(GpuArch::H100).len(), 320);
        assert_eq!(f.gpu_ids_of(GpuArch::A40).len(), 400);
    }

    #[test]
    fn lookup_round_trips() {
        let f = Fleet::build(DeltaShape::tiny(), RasTuning::default());
        for id in f.gpu_ids() {
            assert_eq!(f.gpu(id).unwrap().id(), id);
        }
        let bogus = GpuId::at_slot(NodeId(9_999), 0);
        assert!(f.gpu(bogus).is_none());
        assert!(f.nvlink_peers(bogus).is_empty());
    }

    #[test]
    fn gpu_mut_allows_defect_seeding() {
        let mut f = Fleet::build(DeltaShape::tiny(), RasTuning::default());
        let victim = f.gpu_ids_of(GpuArch::A100)[0];
        let arch = f.gpu(victim).unwrap().arch();
        *f.gpu_mut(victim).unwrap() = Gpu::defective(victim, arch, RasTuning::default(), 0);
        assert_eq!(f.gpu(victim).unwrap().memory.spares_left(0), Some(0));
    }

    #[test]
    fn node_ids_are_dense_and_unique() {
        let f = Fleet::build(DeltaShape::tiny(), RasTuning::default());
        let mut ids: Vec<u32> = f.nodes().iter().map(|n| n.id.0).collect();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert_eq!(ids, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn peers_use_node_topology() {
        let f = Fleet::build(DeltaShape::tiny(), RasTuning::default());
        let eight_way = f
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::A100x8)
            .unwrap();
        let g0 = eight_way.gpu_ids()[0];
        assert_eq!(f.nvlink_peers(g0).len(), 7);
    }
}
