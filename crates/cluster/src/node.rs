//! GPU node configurations.

use dr_gpu::{Gpu, GpuArch, RasTuning};
use dr_xid::{GpuId, NodeId};

/// The four GPU node configurations deployed in Delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKind {
    /// 4-way NVIDIA A40 (NVLink bridge pairs).
    A40x4,
    /// 4-way NVIDIA A100 (direct NVLink mesh).
    A100x4,
    /// 8-way NVIDIA A100 (NVSwitch fabric).
    A100x8,
    /// GH200 superchip node with 4 H100 GPUs.
    Gh200,
}

impl NodeKind {
    pub const ALL: [NodeKind; 4] = [
        NodeKind::A40x4,
        NodeKind::A100x4,
        NodeKind::A100x8,
        NodeKind::Gh200,
    ];

    /// GPUs per node of this kind.
    pub const fn gpu_count(self) -> usize {
        match self {
            NodeKind::A40x4 | NodeKind::A100x4 | NodeKind::Gh200 => 4,
            NodeKind::A100x8 => 8,
        }
    }

    /// GPU architecture installed in this node kind.
    pub const fn arch(self) -> GpuArch {
        match self {
            NodeKind::A40x4 => GpuArch::A40,
            NodeKind::A100x4 | NodeKind::A100x8 => GpuArch::A100,
            NodeKind::Gh200 => GpuArch::H100,
        }
    }

    /// Whether this node belongs to the Ampere (Table 1) population.
    pub const fn is_ampere(self) -> bool {
        self.arch().is_ampere()
    }
}

/// One GPU node: identity, kind, and its GPU devices.
#[derive(Clone, Debug)]
pub struct Node {
    pub id: NodeId,
    pub kind: NodeKind,
    pub gpus: Vec<Gpu>,
}

impl Node {
    /// Build a node with healthy GPUs.
    pub fn new(id: NodeId, kind: NodeKind, tuning: RasTuning) -> Self {
        let arch = kind.arch();
        let gpus = (0..kind.gpu_count())
            .map(|slot| Gpu::new(GpuId::at_slot(id, slot), arch, tuning))
            .collect();
        Node { id, kind, gpus }
    }

    /// The GpuIds of this node's devices in slot order.
    pub fn gpu_ids(&self) -> Vec<GpuId> {
        self.gpus.iter().map(|g| g.id()).collect()
    }

    /// NVLink peers of the GPU at `slot`.
    ///
    /// A40 nodes connect GPUs in bridge pairs (0–1, 2–3); A100/H100 nodes
    /// have an all-to-all fabric (direct mesh or NVSwitch).
    pub fn nvlink_peers(&self, slot: usize) -> Vec<GpuId> {
        match self.kind {
            NodeKind::A40x4 => {
                let partner = slot ^ 1;
                self.gpus
                    .get(partner)
                    .map(|g| vec![g.id()])
                    .unwrap_or_default()
            }
            _ => self
                .gpus
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != slot)
                .map(|(_, g)| g.id())
                .collect(),
        }
    }

    /// Slot index of `gpu` within this node, if present.
    pub fn slot_of(&self, gpu: GpuId) -> Option<usize> {
        self.gpus.iter().position(|g| g.id() == gpu)
    }

    /// Whether every GPU in the node is healthy.
    pub fn all_healthy(&self) -> bool {
        self.gpus.iter().all(|g| g.health().is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(kind: NodeKind) -> Node {
        Node::new(NodeId(7), kind, RasTuning::default())
    }

    #[test]
    fn gpu_counts_match_delta_configs() {
        assert_eq!(NodeKind::A40x4.gpu_count(), 4);
        assert_eq!(NodeKind::A100x4.gpu_count(), 4);
        assert_eq!(NodeKind::A100x8.gpu_count(), 8);
        assert_eq!(NodeKind::Gh200.gpu_count(), 4);
    }

    #[test]
    fn arch_mapping() {
        assert_eq!(NodeKind::A40x4.arch(), GpuArch::A40);
        assert_eq!(NodeKind::A100x8.arch(), GpuArch::A100);
        assert_eq!(NodeKind::Gh200.arch(), GpuArch::H100);
        assert!(NodeKind::A100x4.is_ampere());
        assert!(!NodeKind::Gh200.is_ampere());
    }

    #[test]
    fn gpus_have_distinct_ids_on_same_node() {
        let n = node(NodeKind::A100x8);
        let ids = n.gpu_ids();
        assert_eq!(ids.len(), 8);
        for i in 0..ids.len() {
            assert_eq!(ids[i].node, NodeId(7));
            for j in (i + 1)..ids.len() {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn a40_peers_are_bridge_pairs() {
        let n = node(NodeKind::A40x4);
        let ids = n.gpu_ids();
        assert_eq!(n.nvlink_peers(0), vec![ids[1]]);
        assert_eq!(n.nvlink_peers(1), vec![ids[0]]);
        assert_eq!(n.nvlink_peers(2), vec![ids[3]]);
        assert_eq!(n.nvlink_peers(3), vec![ids[2]]);
    }

    #[test]
    fn a100_peers_are_all_to_all() {
        let n = node(NodeKind::A100x8);
        let peers = n.nvlink_peers(3);
        assert_eq!(peers.len(), 7);
        assert!(!peers.contains(&n.gpu_ids()[3]));
    }

    #[test]
    fn slot_lookup() {
        let n = node(NodeKind::A100x4);
        let ids = n.gpu_ids();
        assert_eq!(n.slot_of(ids[2]), Some(2));
        let other = GpuId::at_slot(NodeId(99), 0);
        assert_eq!(n.slot_of(other), None);
    }

    #[test]
    fn fresh_node_is_healthy() {
        assert!(node(NodeKind::Gh200).all_healthy());
    }
}
