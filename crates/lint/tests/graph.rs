//! Integration fixtures for the workspace symbol graph: item parsing
//! and call-edge construction on the Rust shapes that historically
//! desync token-level analyzers — generics, where clauses, trait impls,
//! nested modules, and closures.

use dr_lint::{SourceFile, SymbolGraph, Workspace};

fn graph_of(files: &[(&str, &str)]) -> (Workspace, SymbolGraph) {
    let ws = Workspace::from_files(
        files
            .iter()
            .map(|(p, s)| SourceFile::new(*p, *s))
            .collect(),
    );
    let g = SymbolGraph::build(&ws);
    (ws, g)
}

fn names(g: &SymbolGraph) -> Vec<String> {
    g.symbols.iter().map(|s| s.qualified()).collect()
}

fn has_edge(g: &SymbolGraph, from: &str, to: &str) -> bool {
    let fs = g.find(None, from);
    let ts = g.find(None, to);
    fs.iter()
        .any(|&f| g.calls[f].iter().any(|c| ts.contains(c)))
}

#[test]
fn generic_fns_and_where_clauses_parse_with_bodies() {
    let src = "pub fn pick<T: Clone, F>(items: &[T], f: F) -> Option<T>\n\
               where\n\
               \x20   F: Fn(&T) -> bool,\n\
               {\n\
               \x20   items.iter().find(|x| f(x)).cloned()\n\
               }\n\
               fn caller(v: &[u32]) { let _ = pick(v, |x| *x > 1); }\n";
    let (_, g) = graph_of(&[("crates/demo/src/lib.rs", src)]);
    assert_eq!(names(&g), vec!["pick", "caller"]);
    assert!(has_edge(&g, "caller", "pick"));
}

#[test]
fn trait_impl_methods_are_owned_by_the_implementing_type() {
    let src = "pub struct Reader;\n\
               impl Iterator for Reader {\n\
               \x20   type Item = u32;\n\
               \x20   fn next(&mut self) -> Option<u32> { helper() }\n\
               }\n\
               impl Reader {\n\
               \x20   pub fn fresh() -> Reader { Reader }\n\
               }\n\
               fn helper() -> Option<u32> { None }\n";
    let (_, g) = graph_of(&[("crates/demo/src/lib.rs", src)]);
    let qualified = names(&g);
    assert!(qualified.contains(&"Reader::next".to_string()), "{qualified:?}");
    assert!(qualified.contains(&"Reader::fresh".to_string()), "{qualified:?}");
    assert!(has_edge(&g, "next", "helper"));
}

#[test]
fn nested_modules_scope_symbols_without_leaking() {
    let src = "mod outer {\n\
               \x20   pub mod inner {\n\
               \x20       pub fn deep() {}\n\
               \x20   }\n\
               \x20   pub fn mid() { inner::deep(); }\n\
               }\n\
               pub fn top() { outer::mid(); }\n";
    let (_, g) = graph_of(&[("crates/demo/src/lib.rs", src)]);
    assert_eq!(g.symbols.len(), 3, "{:?}", names(&g));
    assert!(has_edge(&g, "mid", "deep"));
    assert!(has_edge(&g, "top", "mid"));
    // Module braces must not desync ownership: none of these are methods.
    assert!(g.symbols.iter().all(|s| s.owner.is_none()));
}

#[test]
fn closures_stay_inside_their_enclosing_fn() {
    // The closure body belongs to `map_all`; its calls are attributed to
    // the enclosing fn, and no phantom symbol is created for it.
    let src = "fn map_all(v: &[u32]) -> Vec<u32> {\n\
               \x20   v.iter().map(|x| transform(*x)).collect()\n\
               }\n\
               fn transform(x: u32) -> u32 { x }\n";
    let (_, g) = graph_of(&[("crates/demo/src/lib.rs", src)]);
    assert_eq!(g.symbols.len(), 2);
    assert!(has_edge(&g, "map_all", "transform"));
}

#[test]
fn local_bindings_shadow_fn_items_in_the_value_namespace() {
    // `let start = …; start + 1` must NOT edge to the fn `start`.
    let src = "fn start() -> u32 { 7 }\n\
               fn caller() -> u32 { let start = 1; start + 1 }\n\
               fn qualified_caller() -> u32 { self::start() }\n";
    let (_, g) = graph_of(&[("crates/demo/src/lib.rs", src)]);
    assert!(!has_edge(&g, "caller", "start"));
    assert!(has_edge(&g, "qualified_caller", "start"));
}

#[test]
fn test_region_fns_are_not_symbols() {
    let src = "pub fn real() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn fake() { super::real(); }\n\
               }\n";
    let (_, g) = graph_of(&[("crates/demo/src/lib.rs", src)]);
    assert_eq!(names(&g), vec!["real"]);
}

#[test]
fn dot_export_names_every_symbol() {
    let src = "pub struct Engine;\n\
               impl Engine { pub fn run(&self) { tick(); } }\n\
               fn tick() {}\n";
    let (_, g) = graph_of(&[("crates/demo/src/lib.rs", src)]);
    let dot = g.to_dot();
    assert!(dot.starts_with("digraph calls {"));
    assert!(dot.contains("Engine::run"));
    assert!(dot.contains("tick"));
    assert!(dot.trim_end().ends_with('}'));
}

#[test]
fn reachability_renders_full_call_paths() {
    let src = "pub struct PipelineBuilder;\n\
               impl PipelineBuilder { pub fn run_source(&self) { a(); } }\n\
               fn a() { b(); }\n\
               fn b() {}\n";
    let (_, g) = graph_of(&[("crates/demo/src/lib.rs", src)]);
    let roots = g.find(Some("PipelineBuilder"), "run_source");
    assert_eq!(roots.len(), 1);
    let parents = g.reachable_from(&roots);
    let b = g.find(None, "b");
    assert_eq!(b.len(), 1);
    let b0 = b.first().copied().unwrap_or_default();
    assert!(parents.contains_key(&b0));
    assert_eq!(
        g.path_to(&parents, b0),
        "PipelineBuilder::run_source → a → b"
    );
}

#[test]
fn cross_crate_edges_respect_declared_dependencies() {
    // dr-obs does not depend on dr-slurm, so a same-named fn there
    // must not absorb the call; dr-stats is a declared dependency.
    let stats = "pub fn shared() {}\n";
    let slurm = "pub fn shared() {}\n";
    let obs = "pub fn compute() { shared(); }\n";
    let (_, g) = graph_of(&[
        ("crates/stats/src/lib.rs", stats),
        ("crates/slurm/src/lib.rs", slurm),
        ("crates/obs/src/lib.rs", obs),
    ]);
    let compute = g.find(None, "compute");
    assert_eq!(compute.len(), 1);
    let c0 = compute.first().copied().unwrap_or_default();
    let callees: Vec<&str> = g.calls[c0]
        .iter()
        .map(|&i| g.symbols[i].path.as_str())
        .collect();
    assert_eq!(callees, vec!["crates/stats/src/lib.rs"]);
}
