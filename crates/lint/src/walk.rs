//! Workspace file discovery: `src/` and every `crates/*/src/`,
//! excluding test/bench/example/fixture trees. Paths come back sorted so
//! runs are deterministic — the linter holds itself to the invariant it
//! enforces.

use std::path::{Path, PathBuf};

const SKIP_DIRS: [&str; 5] = ["target", "tests", "benches", "examples", "fixtures"];

/// All lintable `.rs` files under `root`, sorted, as absolute paths.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    collect(&root.join("src"), &mut out)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = read_dir(&crates)?
            .into_iter()
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect(&dir.join("src"), &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

/// All shipped `.scn` scenario files under `root/scenarios/`, sorted.
/// These feed the `scenario-hygiene` pass only — they are not Rust
/// sources and never enter the token-level passes.
pub fn scenario_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let dir = root.join("scenarios");
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut out: Vec<PathBuf> = read_dir(&dir)?
        .into_iter()
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "scn"))
        .collect();
    out.sort();
    Ok(out)
}

/// The workspace-relative, `/`-separated form of `path`.
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn read_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    for path in read_dir(dir)? {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/w");
        let p = Path::new("/w/crates/xid/src/lib.rs");
        assert_eq!(relative_path(root, p), "crates/xid/src/lib.rs");
    }

    #[test]
    fn missing_src_dir_is_empty_not_an_error() {
        let out = workspace_sources(Path::new("/nonexistent-dr-lint-root")).expect("ok");
        assert!(out.is_empty());
    }
}
