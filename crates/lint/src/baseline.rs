//! The checked-in debt ledger with ratchet semantics.
//!
//! Format: one entry per line, `<lint-id> <count> <path>`, `#` comments.
//! A (lint, path) group whose current violation count is **at or below**
//! its baselined count is suppressed; a group that **grows** fails the
//! whole group, so new debt cannot hide behind old debt. Shrinking debt
//! is rewarded: `dr-lint --update-baseline` rewrites the ledger to the
//! current (lower) counts.

use crate::diag::Diagnostic;
use std::collections::BTreeMap;
use std::path::Path;

/// Parsed baseline: allowed violation count per (lint id, path).
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Parse the ledger text. Unparseable lines are hard errors — a
    /// silently ignored entry would un-suppress someone's debt.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (lint, count, path) = match (parts.next(), parts.next(), parts.next()) {
                (Some(l), Some(c), Some(p)) => (l, c, p.trim()),
                _ => return Err(format!("baseline line {}: expected `<lint> <count> <path>`", n + 1)),
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count {count:?}", n + 1))?;
            entries.insert((lint.to_string(), path.to_string()), count);
        }
        Ok(Baseline { entries })
    }

    /// Load from disk; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    pub fn allowed(&self, lint: &str, path: &str) -> usize {
        self.entries
            .get(&(lint.to_string(), path.to_string()))
            .copied()
            .unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render a ledger for the given current violation counts.
    pub fn render(groups: &BTreeMap<(String, String), usize>) -> String {
        let mut out = String::from(
            "# dr-lint baseline — pre-existing debt, ratcheted.\n\
             # Format: <lint-id> <count> <path>. Counts may only shrink;\n\
             # regenerate with `cargo run --bin dr-lint -- --update-baseline`.\n",
        );
        for ((lint, path), count) in groups {
            if *count > 0 {
                out.push_str(&format!("{lint} {count} {path}\n"));
            }
        }
        out
    }
}

/// A (lint, path) group that exceeded its baselined count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverBaseline {
    pub lint: String,
    pub path: String,
    pub allowed: usize,
    pub actual: usize,
}

/// Result of filtering diagnostics through the baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Diagnostics that remain actionable (their group is over budget).
    pub active: Vec<Diagnostic>,
    /// Count of diagnostics swallowed by in-budget groups.
    pub suppressed: usize,
    pub over: Vec<OverBaseline>,
}

/// Apply ratchet semantics: suppress whole groups at/below budget, keep
/// whole groups above it.
pub fn apply(baseline: &Baseline, diags: Vec<Diagnostic>) -> BaselineOutcome {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in &diags {
        *counts.entry((d.lint.to_string(), d.path.clone())).or_default() += 1;
    }
    let mut out = BaselineOutcome::default();
    for ((lint, path), actual) in &counts {
        let allowed = baseline.allowed(lint, path);
        if *actual > allowed {
            out.over.push(OverBaseline {
                lint: lint.clone(),
                path: path.clone(),
                allowed,
                actual: *actual,
            });
        }
    }
    for d in diags {
        let allowed = baseline.allowed(d.lint, &d.path);
        let actual = counts[&(d.lint.to_string(), d.path.clone())];
        if actual > allowed {
            out.active.push(d);
        } else {
            out.suppressed += 1;
        }
    }
    out
}

/// Current violation counts per (lint, path) — the input to
/// [`Baseline::render`].
pub fn group_counts(diags: &[Diagnostic]) -> BTreeMap<(String, String), usize> {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in diags {
        *counts.entry((d.lint.to_string(), d.path.clone())).or_default() += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn d(lint: &'static str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            lint,
            severity: Severity::Warning,
            path: path.into(),
            line,
            col: 1,
            message: "m".into(),
        }
    }

    #[test]
    fn parse_round_trip() {
        let b = Baseline::parse("# c\npanic-freedom 19 crates/logscan/src/regex.rs\n").expect("parses");
        assert_eq!(b.allowed("panic-freedom", "crates/logscan/src/regex.rs"), 19);
        assert_eq!(b.allowed("panic-freedom", "other.rs"), 0);
    }

    #[test]
    fn bad_lines_are_errors() {
        assert!(Baseline::parse("panic-freedom nineteen x.rs").is_err());
        assert!(Baseline::parse("just-two-fields 3").is_err());
    }

    #[test]
    fn in_budget_groups_are_suppressed() {
        let b = Baseline::parse("p 2 a.rs").expect("parses");
        let out = apply(&b, vec![d("p", "a.rs", 1), d("p", "a.rs", 2)]);
        assert!(out.active.is_empty());
        assert_eq!(out.suppressed, 2);
        assert!(out.over.is_empty());
    }

    #[test]
    fn shrunk_debt_still_passes() {
        let b = Baseline::parse("p 5 a.rs").expect("parses");
        let out = apply(&b, vec![d("p", "a.rs", 1)]);
        assert!(out.active.is_empty());
    }

    #[test]
    fn grown_debt_fails_the_whole_group() {
        let b = Baseline::parse("p 1 a.rs").expect("parses");
        let out = apply(&b, vec![d("p", "a.rs", 1), d("p", "a.rs", 9)]);
        assert_eq!(out.active.len(), 2);
        assert_eq!(out.over.len(), 1);
        assert_eq!(out.over[0].allowed, 1);
        assert_eq!(out.over[0].actual, 2);
    }

    #[test]
    fn groups_are_independent() {
        let b = Baseline::parse("p 1 a.rs").expect("parses");
        let out = apply(&b, vec![d("p", "a.rs", 1), d("q", "a.rs", 1)]);
        assert_eq!(out.active.len(), 1);
        assert_eq!(out.active[0].lint, "q");
    }

    #[test]
    fn render_skips_zero_groups() {
        let mut g = BTreeMap::new();
        g.insert(("p".to_string(), "a.rs".to_string()), 2);
        g.insert(("p".to_string(), "b.rs".to_string()), 0);
        let text = Baseline::render(&g);
        assert!(text.contains("p 2 a.rs"));
        assert!(!text.contains("b.rs"));
    }
}
