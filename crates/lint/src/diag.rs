//! Structured lint diagnostics with human and JSON rendering.

use std::fmt;

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: lint id, severity, `path:line:col`, and a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub lint: &'static str,
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl Diagnostic {
    /// `error[determinism] crates/foo/src/lib.rs:10:5: message`.
    pub fn human(&self) -> String {
        format!(
            "{}[{}] {}:{}:{}: {}",
            self.severity, self.lint, self.path, self.line, self.col, self.message
        )
    }

    /// One JSON object per diagnostic (JSON-lines friendly).
    pub fn json(&self) -> String {
        format!(
            "{{\"lint\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(self.lint),
            self.severity,
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }

    /// Sort key: file order, then position, then lint id.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.path.clone(), self.line, self.col, self.lint)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            lint: "determinism",
            severity: Severity::Error,
            path: "crates/foo/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "uses \"HashMap\"".into(),
        }
    }

    #[test]
    fn human_format() {
        assert_eq!(
            diag().human(),
            "error[determinism] crates/foo/src/lib.rs:3:9: uses \"HashMap\""
        );
    }

    #[test]
    fn json_escapes_quotes() {
        let j = diag().json();
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("uses \\\"HashMap\\\""));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
