//! Workspace symbol table and conservative call-approximation graph.
//!
//! Edges are name-based: any identifier inside a function body that
//! matches a known function name becomes a call edge. That deliberately
//! over-approximates through method calls (`engine.step()` edges to
//! every in-scope `step`) and function pointers (`map(parse_line)`
//! edges to `parse_line`) — for panic-reachability, over-approximation
//! is the sound direction. Two restrictions keep the fan-out honest:
//!
//! * a `Qualifier::name` call only edges to symbols whose owner matches
//!   the qualifier (when any such symbol exists), and
//! * edges may only point into the calling crate or its transitive
//!   Cargo dependencies — `dr-stats` cannot call into `dr-report`, so
//!   a shared method name there is not an edge.
//!
//! The crate table below is the declared layer DAG; the `layer-dag`
//! pass enforces that real `use` edges stay inside it.

use crate::items::{self, UseItem};
use crate::lexer::TokenKind;
use crate::source::{SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// One workspace crate: lib name, source prefix, and declared direct
/// dependencies (indices into [`CRATES`]). This mirrors the Cargo
/// manifests; `manifest_dag_matches` in `tests/graph.rs` keeps it honest.
pub struct CrateInfo {
    /// The `use`-path name (`dr_stats`).
    pub lib: &'static str,
    /// Workspace-relative source prefix (`crates/stats/`).
    pub prefix: &'static str,
    /// Direct dependencies, as indices into [`CRATES`].
    pub deps: &'static [usize],
}

/// The declared crate layer DAG, leaves first. Index order matters:
/// `deps` entries refer to earlier rows.
pub const CRATES: &[CrateInfo] = &[
    /* 0 */ CrateInfo { lib: "dr_xid", prefix: "crates/xid/", deps: &[] },
    /* 1 */ CrateInfo { lib: "dr_par", prefix: "crates/par/", deps: &[] },
    /* 2 */ CrateInfo { lib: "dr_lint", prefix: "crates/lint/", deps: &[] },
    /* 3 */ CrateInfo { lib: "dr_des", prefix: "crates/des/", deps: &[] },
    /* 4 */ CrateInfo { lib: "dr_stats", prefix: "crates/stats/", deps: &[] },
    /* 5 */ CrateInfo { lib: "dr_obs", prefix: "crates/obs/", deps: &[4] },
    /* 6 */ CrateInfo { lib: "dr_logscan", prefix: "crates/logscan/", deps: &[0, 5] },
    /* 7 */ CrateInfo { lib: "dr_gpu", prefix: "crates/gpu/", deps: &[0, 3, 4] },
    /* 8 */ CrateInfo { lib: "dr_cluster", prefix: "crates/cluster/", deps: &[0, 7] },
    /* 9 */ CrateInfo { lib: "dr_faults", prefix: "crates/faults/", deps: &[0, 3, 4, 7, 8, 5] },
    /* 10 */
    CrateInfo { lib: "dr_scenario", prefix: "crates/scenario/", deps: &[0, 7, 8, 9] },
    /* 11 */
    CrateInfo { lib: "dr_slurm", prefix: "crates/slurm/", deps: &[0, 8, 4, 3, 7, 9, 5] },
    /* 12 */
    CrateInfo {
        lib: "resilience_core",
        prefix: "crates/core/",
        deps: &[0, 6, 4, 5, 1, 8, 11, 9],
    },
    /* 13 */ CrateInfo { lib: "dr_availsim", prefix: "crates/availsim/", deps: &[4] },
    /* 14 */ CrateInfo { lib: "dr_predict", prefix: "crates/predict/", deps: &[0, 4, 12] },
    /* 15 */
    CrateInfo {
        lib: "dr_report",
        prefix: "crates/report/",
        deps: &[0, 4, 12, 11, 9, 10, 1, 5, 7],
    },
    /* 16 */
    CrateInfo {
        lib: "dr_bench",
        prefix: "crates/bench/",
        deps: &[0, 6, 4, 3, 1, 7, 8, 9, 11, 12, 13, 15, 5, 2, 10],
    },
    /* 17 */
    CrateInfo {
        lib: "gpu_resilience",
        prefix: "src/",
        deps: &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16],
    },
];

/// The crate a workspace-relative path belongs to, as an index into
/// [`CRATES`]; `None` for paths outside any declared crate.
pub fn crate_of(path: &str) -> Option<usize> {
    CRATES.iter().position(|c| path.starts_with(c.prefix))
}

/// Transitive dependency closure of a crate (excluding itself).
pub fn transitive_deps(idx: usize) -> BTreeSet<usize> {
    let mut seen = BTreeSet::new();
    let mut work = vec![idx];
    while let Some(c) = work.pop() {
        for &d in CRATES[c].deps {
            if seen.insert(d) {
                work.push(d);
            }
        }
    }
    seen
}

/// One function symbol in the workspace graph.
#[derive(Clone, Debug)]
pub struct Symbol {
    pub name: String,
    /// `impl` target or `trait` name, when any.
    pub owner: Option<String>,
    /// Workspace-relative file path.
    pub path: String,
    pub line: u32,
    /// Index into [`CRATES`]; `None` for unclassified paths.
    pub krate: Option<usize>,
    /// Body token range within the file's full token stream, inclusive.
    pub body: Option<(usize, usize)>,
    /// Whole-item token range (signature and body), inclusive.
    pub full: (usize, usize),
    /// Whether the first parameter is `self` (see [`items::FnItem`]).
    pub has_self: bool,
}

impl Symbol {
    /// `Owner::name` or bare `name` — the display form diagnostics use.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace symbol graph: symbols, name index, and call edges.
pub struct SymbolGraph {
    pub symbols: Vec<Symbol>,
    /// Symbol indices by bare function name.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Forward call edges (caller → callees), deduplicated and sorted.
    pub calls: Vec<Vec<usize>>,
    /// Reverse edges (callee → callers), for taint propagation.
    pub callers: Vec<Vec<usize>>,
    /// Non-test `use` declarations per file: (path, item).
    pub uses: Vec<(String, UseItem)>,
    /// Total number of call edges.
    pub edge_count: usize,
}

impl SymbolGraph {
    /// Build the graph for a workspace. Test-region functions are not
    /// symbols: their bodies may panic freely and edges into them are
    /// never pipeline-reachable.
    pub fn build(ws: &Workspace) -> SymbolGraph {
        let mut symbols = Vec::new();
        let mut uses = Vec::new();
        for file in &ws.files {
            let parsed = items::parse(file);
            let krate = crate_of(&file.path);
            for f in parsed.fns {
                if f.is_test {
                    continue;
                }
                symbols.push(Symbol {
                    name: f.name,
                    owner: f.owner,
                    path: file.path.clone(),
                    line: f.line,
                    krate,
                    body: f.body,
                    full: f.full,
                    has_self: f.has_self,
                });
            }
            for u in parsed.uses {
                if !u.is_test {
                    uses.push((file.path.clone(), u));
                }
            }
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, s) in symbols.iter().enumerate() {
            by_name.entry(s.name.clone()).or_default().push(i);
        }

        let mut calls: Vec<Vec<usize>> = vec![Vec::new(); symbols.len()];
        let mut edge_count = 0;
        for (i, s) in symbols.iter().enumerate() {
            let Some(file) = ws.file(&s.path) else {
                continue;
            };
            let mut out = BTreeSet::new();
            body_callees(file, s, &symbols, &by_name, &mut out);
            out.remove(&i); // self-recursion adds nothing to reachability
            edge_count += out.len();
            calls[i] = out.into_iter().collect();
        }

        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); symbols.len()];
        for (i, outs) in calls.iter().enumerate() {
            for &j in outs {
                callers[j].push(i);
            }
        }

        SymbolGraph {
            symbols,
            by_name,
            calls,
            callers,
            uses,
            edge_count,
        }
    }

    /// Symbols matching `owner::name` (owner `None` matches any).
    pub fn find(&self, owner: Option<&str>, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| match owner {
                        Some(o) => self.symbols[i].owner.as_deref() == Some(o),
                        None => true,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Forward BFS from `roots`. Returns each reachable symbol mapped to
    /// its BFS parent (roots map to themselves) — the parent chain is
    /// the call path diagnostics print.
    pub fn reachable_from(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &self.calls[i] {
                // Insert only on first discovery — overwriting an
                // assigned parent can knot the parent chains into a
                // cycle and hang `path_to`.
                if !parent.contains_key(&j) {
                    parent.insert(j, i);
                    queue.push_back(j);
                }
            }
        }
        parent
    }

    /// The call path from a BFS root to `i`, rendered
    /// `Root::a → b → Leaf::c`.
    pub fn path_to(&self, parents: &BTreeMap<usize, usize>, i: usize) -> String {
        let mut chain = vec![i];
        let mut cur = i;
        while let Some(&p) = parents.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&k| self.symbols[k].qualified())
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Graphviz dump for `dr-lint --graph-dot`.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph calls {\n  rankdir=LR;\n  node [shape=box];\n");
        for (i, s) in self.symbols.iter().enumerate() {
            out.push_str(&format!(
                "  n{} [label=\"{}\\n{}:{}\"];\n",
                i,
                s.qualified().replace('"', "'"),
                s.path,
                s.line
            ));
        }
        for (i, outs) in self.calls.iter().enumerate() {
            for &j in outs {
                out.push_str(&format!("  n{i} -> n{j};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Collect the call edges out of one symbol's body into `out`.
fn body_callees(
    file: &SourceFile,
    sym: &Symbol,
    symbols: &[Symbol],
    by_name: &BTreeMap<String, Vec<usize>>,
    out: &mut BTreeSet<usize>,
) {
    let Some((lo, hi)) = sym.body else {
        return;
    };
    // Comment-free view of the body, mapped back to full indices.
    let sig: Vec<usize> = (lo..=hi.min(file.tokens.len().saturating_sub(1)))
        .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
        .collect();
    let text = |k: usize| -> &str {
        sig.get(k).map_or("", |&i| file.tokens[i].text(&file.text))
    };
    let dep_ok = |callee: &Symbol| -> bool {
        match (sym.krate, callee.krate) {
            (Some(a), Some(b)) => a == b || transitive_deps(a).contains(&b),
            // Unclassified paths (fixtures in tests) edge freely.
            _ => true,
        }
    };

    // Names bound locally in this item — parameters (`name:` in the
    // signature) and `let`/`mut`/`for` bindings — shadow fn items in
    // the value namespace, so they never resolve to workspace symbols.
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    {
        let (flo, fhi) = sym.full;
        let fsig: Vec<usize> = (flo..=fhi.min(file.tokens.len().saturating_sub(1)))
            .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
            .collect();
        let ft = |k: usize| -> &str {
            fsig.get(k).map_or("", |&i| file.tokens[i].text(&file.text))
        };
        let body_start = sym.body.map(|(blo, _)| blo).unwrap_or(usize::MAX);
        let mut k = 0;
        while k < fsig.len() {
            // `let <pattern> =` binds every identifier in the pattern,
            // including tuple/enum forms (`let (start, end) = m.span()`,
            // `if let Some(now) = self.now`). The stop `=` must be a
            // standalone assignment, not `==`/`..=`/`<=`/`>=`/`!=`.
            if ft(k) == "let" {
                let mut j = k + 1;
                while j < fsig.len() {
                    let t = ft(j);
                    if t == ";" || t == "{" {
                        break;
                    }
                    if t == "="
                        && ft(j + 1) != "="
                        && !matches!(ft(j.wrapping_sub(1)), "." | "<" | ">" | "!" | "=")
                    {
                        break;
                    }
                    if file.tokens[fsig[j]].kind == TokenKind::Ident {
                        bound.insert(file.tokens[fsig[j]].text(&file.text));
                    }
                    j += 1;
                }
                k = j;
                continue;
            }
            if file.tokens[fsig[k]].kind == TokenKind::Ident {
                let prev = if k > 0 { ft(k - 1) } else { "" };
                let next = ft(k + 1);
                // `name:` marks a binding only in the signature
                // (parameter lists) — in the body it is usually a
                // struct-literal field.
                let in_signature = fsig[k] < body_start;
                let binds = matches!(prev, "mut" | "for")
                    || (in_signature && next == ":" && ft(k + 2) != ":");
                if binds {
                    bound.insert(file.tokens[fsig[k]].text(&file.text));
                }
            }
            k += 1;
        }
    }

    for k in 0..sig.len() {
        let i = sig[k];
        let tok = &file.tokens[i];
        if !matches!(tok.kind, TokenKind::Ident | TokenKind::RawIdent) {
            continue;
        }
        let name = file.tokens[i].text(&file.text).trim_start_matches("r#");
        let Some(cands) = by_name.get(name) else {
            continue;
        };
        // `name!` is a macro invocation, not a call to fn `name`.
        if text(k + 1) == "!" {
            continue;
        }
        // `fn name` is this or a nested declaration, not a call.
        if k > 0 && text(k - 1) == "fn" {
            continue;
        }
        // `value.name` without `(` is a field access, and `name:` (one
        // colon, not `::`) is a struct-literal field, pattern binding,
        // or type ascription — common field names like `start` would
        // otherwise edge to every same-named method in scope.
        let is_method_call = k > 0 && text(k - 1) == ".";
        if is_method_call && text(k + 1) != "(" {
            continue;
        }
        if text(k + 1) == ":" && text(k + 2) != ":" {
            continue;
        }
        // A locally bound `name` shadows any fn `name` in the value
        // namespace; only method calls (their own namespace) and
        // path-qualified references escape the shadow.
        let is_path_qualified = k >= 2 && text(k - 1) == ":" && text(k - 2) == ":";
        if !is_method_call && !is_path_qualified && bound.contains(name) {
            continue;
        }
        // `Qualifier::name` — when candidates exist whose owner is the
        // qualifier, restrict to them. `Self::` resolves to the
        // enclosing owner; `module::name` (no owner match) keeps all.
        let qualifier: Option<String> =
            if k >= 3 && text(k - 1) == ":" && text(k - 2) == ":" {
                let q = text(k - 3);
                if q == "Self" {
                    sym.owner.clone()
                } else {
                    Some(q.to_string())
                }
            } else {
                None
            };
        // `recv.name(…)` can only resolve to fns whose first parameter
        // is `self`; an associated constructor like `Stopwatch::start()`
        // is unreachable through method syntax.
        let cands: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| dep_ok(&symbols[c]) && (!is_method_call || symbols[c].has_self))
            .collect();
        let restricted: Vec<usize> = match &qualifier {
            Some(q) => {
                let owned: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| symbols[c].owner.as_deref() == Some(q.as_str()))
                    .collect();
                if owned.is_empty() { cands } else { owned }
            }
            None => cands,
        };
        out.extend(restricted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_files(
            files
                .iter()
                .map(|(p, s)| SourceFile::new(*p, *s))
                .collect(),
        )
    }

    #[test]
    fn direct_call_edges() {
        let g = SymbolGraph::build(&ws(&[(
            "crates/demo/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]));
        assert_eq!(g.symbols.len(), 3);
        assert_eq!(g.edge_count, 2);
        let a = g.find(None, "a")[0];
        let reach = g.reachable_from(&[a]);
        assert_eq!(reach.len(), 3);
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let g = SymbolGraph::build(&ws(&[(
            "crates/demo/src/lib.rs",
            "struct E;\nimpl E { fn step(&self) {} }\nfn drive(e: &E) { e.step(); }\n",
        )]));
        let drive = g.find(None, "drive")[0];
        let step = g.find(Some("E"), "step")[0];
        assert!(g.calls[drive].contains(&step));
    }

    #[test]
    fn function_pointers_create_edges() {
        let g = SymbolGraph::build(&ws(&[(
            "crates/demo/src/lib.rs",
            "fn parse(x: u32) -> u32 { x }\nfn drive(v: Vec<u32>) { v.iter().map(|&x| parse(x)).count(); let f = parse; }\n",
        )]));
        let drive = g.find(None, "drive")[0];
        let parse = g.find(None, "parse")[0];
        assert!(g.calls[drive].contains(&parse));
    }

    #[test]
    fn qualifier_restricts_to_matching_owner() {
        let g = SymbolGraph::build(&ws(&[(
            "crates/demo/src/lib.rs",
            "struct A;\nstruct B;\nimpl A { fn make() {} }\nimpl B { fn make() {} }\nfn drive() { A::make(); }\n",
        )]));
        let drive = g.find(None, "drive")[0];
        let a_make = g.find(Some("A"), "make")[0];
        let b_make = g.find(Some("B"), "make")[0];
        assert!(g.calls[drive].contains(&a_make));
        assert!(!g.calls[drive].contains(&b_make));
    }

    #[test]
    fn self_qualifier_resolves_to_the_enclosing_owner() {
        let g = SymbolGraph::build(&ws(&[(
            "crates/demo/src/lib.rs",
            "struct A;\nstruct B;\nimpl A { fn make() {} fn run() { Self::make(); } }\nimpl B { fn make() {} }\n",
        )]));
        let run = g.find(Some("A"), "run")[0];
        let a_make = g.find(Some("A"), "make")[0];
        let b_make = g.find(Some("B"), "make")[0];
        assert!(g.calls[run].contains(&a_make));
        assert!(!g.calls[run].contains(&b_make));
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let g = SymbolGraph::build(&ws(&[(
            "crates/demo/src/lib.rs",
            "fn write() {}\nfn drive(buf: &mut String) { write!(buf, \"x\").ok(); }\n",
        )]));
        let drive = g.find(None, "drive")[0];
        assert!(g.calls[drive].is_empty());
    }

    #[test]
    fn edges_respect_the_crate_dag() {
        // dr-stats cannot depend on dr-report, so a shared name there is
        // not an edge; the reverse direction is.
        let g = SymbolGraph::build(&ws(&[
            ("crates/stats/src/lib.rs", "pub fn summarize() { helper(); }\npub fn helper() {}\n"),
            ("crates/report/src/lib.rs", "pub fn render() { summarize(); }\npub fn helper() {}\n"),
        ]));
        let stats_sum = g.find(None, "summarize")[0];
        let render = g.find(None, "render")[0];
        let helpers = g.find(None, "helper");
        let stats_helper = *helpers
            .iter()
            .find(|&&i| g.symbols[i].path.starts_with("crates/stats/"))
            .expect("stats helper");
        let report_helper = *helpers
            .iter()
            .find(|&&i| g.symbols[i].path.starts_with("crates/report/"))
            .expect("report helper");
        // stats → stats only.
        assert!(g.calls[stats_sum].contains(&stats_helper));
        assert!(!g.calls[stats_sum].contains(&report_helper));
        // report may edge down into stats.
        assert!(g.calls[render].contains(&stats_sum));
    }

    #[test]
    fn test_fns_are_not_symbols() {
        let g = SymbolGraph::build(&ws(&[(
            "crates/demo/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn probe() { live(); }\n}\n",
        )]));
        assert_eq!(g.symbols.len(), 1);
        assert_eq!(g.symbols[0].name, "live");
    }

    #[test]
    fn bfs_parents_render_a_call_path() {
        let g = SymbolGraph::build(&ws(&[(
            "crates/demo/src/lib.rs",
            "struct P;\nimpl P { fn run(&self) { middle(); } }\nfn middle() { leaf(); }\nfn leaf() {}\n",
        )]));
        let run = g.find(Some("P"), "run")[0];
        let reach = g.reachable_from(&[run]);
        let leaf = g.find(None, "leaf")[0];
        assert_eq!(g.path_to(&reach, leaf), "P::run → middle → leaf");
    }

    #[test]
    fn dot_dump_names_every_symbol() {
        let g = SymbolGraph::build(&ws(&[(
            "crates/demo/src/lib.rs",
            "fn a() { b(); }\nfn b() {}\n",
        )]));
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph calls {"));
        assert!(dot.contains("n0 -> n1;"));
    }

    #[test]
    fn crate_table_is_a_dag_with_valid_indices() {
        for (i, c) in CRATES.iter().enumerate() {
            for &d in c.deps {
                assert!(d < CRATES.len(), "{} has out-of-range dep", c.lib);
                assert!(d != i, "{} depends on itself", c.lib);
            }
        }
        // Leaves-first ordering makes cycles impossible if every dep
        // points at an earlier row.
        for (i, c) in CRATES.iter().enumerate() {
            for &d in c.deps {
                assert!(d < i, "{} dep {} breaks leaves-first order", c.lib, CRATES[d].lib);
            }
        }
    }

    #[test]
    fn transitive_closure_includes_indirect_deps() {
        let core = CRATES.iter().position(|c| c.lib == "resilience_core").expect("core");
        let xid = CRATES.iter().position(|c| c.lib == "dr_xid").expect("xid");
        let des = CRATES.iter().position(|c| c.lib == "dr_des").expect("des");
        let deps = transitive_deps(core);
        assert!(deps.contains(&xid));
        // core does not depend on des directly — only via faults/slurm.
        assert!(!CRATES[core].deps.contains(&des));
        assert!(deps.contains(&des));
    }
}
