//! A minimal Rust token lexer — just enough structure to lint without
//! false positives from string literals, commented-out code, or raw
//! strings that happen to contain forbidden identifiers.
//!
//! The lexer understands: line and (nested) block comments, string
//! literals with escapes, raw strings with any `#` count, byte strings,
//! char literals vs lifetimes, raw identifiers (`r#type`), numbers, and
//! single-character punctuation. Everything else a real Rust lexer does
//! (float exponent grammar, suffixes, shebangs) is deliberately sloppy:
//! passes only look at identifier text and adjacency, so a `1e-9`
//! lexing as three tokens costs nothing.

/// What a token is. Passes mostly care about `Ident` and `Comment`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    Ident,
    /// `r#struct` — distinct from `Ident` so `r#type` never matches `type`.
    RawIdent,
    /// `'a` in generics — distinct from `Char`.
    Lifetime,
    Num,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`.
    Str,
    Char,
    /// One punctuation byte. Multi-byte operators arrive as adjacent tokens.
    Punct,
    /// `// …` or `/* … */` including nesting; kept so passes can read
    /// `dr-lint: allow(...)` annotations.
    Comment,
}

/// A token with its byte span and 1-based position.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The token's text within the file it was lexed from.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn at(&self, k: usize) -> u8 {
        self.bytes.get(self.i + k).copied().unwrap_or(0)
    }

    fn peek(&self) -> u8 {
        self.at(0)
    }

    fn done(&self) -> bool {
        self.i >= self.bytes.len()
    }

    fn bump(&mut self) {
        if let Some(&b) = self.bytes.get(self.i) {
            self.i += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// If the cursor sits on a raw-string opener (`r"`, `r##"`, `br#"` …),
/// the number of `#`s; `None` otherwise.
fn raw_string_hashes(c: &Cursor) -> Option<usize> {
    let mut k = match (c.peek(), c.at(1)) {
        (b'r', _) => 1,
        (b'b', b'r') => 2,
        _ => return None,
    };
    let mut hashes = 0;
    while c.at(k) == b'#' {
        k += 1;
        hashes += 1;
    }
    (c.at(k) == b'"').then_some(hashes)
}

fn lex_raw_string(c: &mut Cursor, hashes: usize) {
    // Consume the prefix up to and including the opening quote.
    while c.peek() != b'"' && !c.done() {
        c.bump();
    }
    c.bump(); // opening quote
    while !c.done() {
        if c.peek() == b'"' && (0..hashes).all(|k| c.at(1 + k) == b'#') {
            for _ in 0..=hashes {
                c.bump();
            }
            return;
        }
        c.bump();
    }
}

fn lex_string(c: &mut Cursor) {
    c.bump(); // opening quote
    while !c.done() {
        match c.peek() {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                return;
            }
            _ => c.bump(),
        }
    }
}

fn lex_char(c: &mut Cursor) {
    c.bump(); // opening quote
    if c.peek() == b'\\' {
        c.bump();
        match c.peek() {
            // `'\u{7D}'`: the braces live inside the literal and must not
            // reach the token stream, or they would desynchronize the
            // item parser's brace tracking.
            b'u' => {
                c.bump();
                if c.peek() == b'{' {
                    while !c.done() && c.peek() != b'}' {
                        c.bump();
                    }
                    c.bump(); // closing '}'
                }
            }
            // `'\x41'`: two hex digits after the x.
            b'x' => {
                c.bump();
                for _ in 0..2 {
                    if c.peek().is_ascii_hexdigit() {
                        c.bump();
                    }
                }
            }
            _ => c.bump(),
        }
    } else {
        c.bump();
    }
    if c.peek() == b'\'' {
        c.bump();
    }
}

/// Lex a whole file. Whitespace is dropped; comments are kept.
pub fn lex(text: &str) -> Vec<Token> {
    let mut c = Cursor {
        bytes: text.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while !c.done() {
        let (start, line, col) = (c.i, c.line, c.col);
        let b = c.peek();
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }
        let kind = if b == b'/' && c.at(1) == b'/' {
            while !c.done() && c.peek() != b'\n' {
                c.bump();
            }
            TokenKind::Comment
        } else if b == b'/' && c.at(1) == b'*' {
            c.bump();
            c.bump();
            let mut depth = 1u32;
            while !c.done() && depth > 0 {
                if c.peek() == b'/' && c.at(1) == b'*' {
                    depth += 1;
                    c.bump();
                    c.bump();
                } else if c.peek() == b'*' && c.at(1) == b'/' {
                    depth -= 1;
                    c.bump();
                    c.bump();
                } else {
                    c.bump();
                }
            }
            TokenKind::Comment
        } else if let Some(hashes) = raw_string_hashes(&c) {
            lex_raw_string(&mut c, hashes);
            TokenKind::Str
        } else if b == b'b' && c.at(1) == b'"' {
            c.bump();
            lex_string(&mut c);
            TokenKind::Str
        } else if b == b'b' && c.at(1) == b'\'' {
            c.bump();
            lex_char(&mut c);
            TokenKind::Char
        } else if b == b'"' {
            lex_string(&mut c);
            TokenKind::Str
        } else if b == b'\'' {
            if is_ident_start(c.at(1)) && c.at(2) != b'\'' {
                c.bump();
                while is_ident_continue(c.peek()) {
                    c.bump();
                }
                TokenKind::Lifetime
            } else {
                lex_char(&mut c);
                TokenKind::Char
            }
        } else if b == b'r' && c.at(1) == b'#' && is_ident_start(c.at(2)) {
            c.bump();
            c.bump();
            while is_ident_continue(c.peek()) {
                c.bump();
            }
            TokenKind::RawIdent
        } else if is_ident_start(b) {
            while is_ident_continue(c.peek()) {
                c.bump();
            }
            TokenKind::Ident
        } else if b.is_ascii_digit() {
            while is_ident_continue(c.peek()) {
                c.bump();
            }
            if c.peek() == b'.' && c.at(1).is_ascii_digit() {
                c.bump();
                while is_ident_continue(c.peek()) {
                    c.bump();
                }
            }
            TokenKind::Num
        } else {
            c.bump();
            TokenKind::Punct
        };
        out.push(Token {
            kind,
            start,
            end: c.i,
            line,
            col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(TokenKind, String)> {
        lex(text)
            .iter()
            .map(|t| (t.kind, t.text(text).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let ks = kinds("let x = foo::bar(1);");
        let idents: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "foo", "bar"]);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Punct).count(), 6);
    }

    #[test]
    fn string_contents_are_not_idents() {
        let ks = kinds(r#"let s = "HashMap thread_rng";"#);
        assert!(ks
            .iter()
            .all(|(k, s)| *k != TokenKind::Ident || (s != "HashMap" && s != "thread_rng")));
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let src = r####"let p = r#"a "quoted" HashMap"#; let q = 1;"####;
        let ks = kinds(src);
        let strs: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(strs, [r##"r#"a "quoted" HashMap"#"##]);
        // The tail after the raw string still lexes.
        assert!(ks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "q"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let ks = kinds(r##"let a = b"bytes"; let b2 = br#"raw "bytes""#;"##);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner HashMap */ still comment */ let x = 1;";
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokenKind::Comment);
        assert!(ks[0].1.contains("inner HashMap"));
        assert!(ks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "let"));
        assert!(!ks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "HashMap"));
    }

    #[test]
    fn commented_out_code_is_one_comment_token() {
        let src = "// let map = HashMap::new();\nlet y = 2;";
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokenKind::Comment);
        assert!(!ks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "HashMap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }

    #[test]
    fn escaped_quote_chars() {
        let ks = kinds(r"let q = '\''; let n = '\n'; let i = next;");
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
        assert!(ks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "next"));
    }

    #[test]
    fn raw_identifiers_are_distinct() {
        let ks = kinds("let r#type = 1; let t = r#type;");
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::RawIdent).count(), 2);
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    /// Net `{`/`}` balance over the Punct tokens — what the item parser
    /// relies on for body extraction.
    fn brace_balance(src: &str) -> i64 {
        lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| match t.text(src) {
                "{" => 1,
                "}" => -1,
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn unicode_char_escapes_do_not_leak_braces() {
        // The braces of `\u{…}` belong to the literal; leaking them would
        // desynchronize brace tracking.
        assert_eq!(brace_balance(r"fn f() -> char { '\u{7D}' }"), 0);
        assert_eq!(brace_balance(r"fn f() -> char { '\u{1F600}' }"), 0);
        let ks = kinds(r"let c = '\u{41}'; let after = 1;");
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
        assert!(ks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "after"));
    }

    #[test]
    fn hex_char_escapes_do_not_swallow_the_next_token() {
        // `'\x41'` used to lex as quote + escape pair, leaving `1'` to
        // eat whatever followed (a `}` or `;`).
        assert_eq!(brace_balance(r"fn f() { let c = '\x41'; }"), 0);
        let ks = kinds(r"let c = '\x7d'; next();");
        assert!(ks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "next"));
    }

    #[test]
    fn raw_strings_with_braces_keep_brace_tracking_synchronized() {
        assert_eq!(brace_balance(r####"fn f() { let s = r#"{{{"#; }"####), 0);
        assert_eq!(brace_balance(r####"fn f() { let s = r##"}"# still open"##; }"####), 0);
        // A raw string whose closer needs more hashes than an inner `"#`.
        let src = r####"let s = r##"quote "# inside"##; let tail = 1;"####;
        let ks = kinds(src);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(ks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "tail"));
    }

    #[test]
    fn nested_block_comments_with_braces_keep_balance() {
        assert_eq!(brace_balance("fn f() { /* { /* {{ */ } */ }"), 0);
        // `/*/` opens a nested comment (it is `/*` followed by `/`).
        let ks = kinds("/* a /*/ b */ c */ fn live() {}");
        assert_eq!(ks[0].0, TokenKind::Comment);
        assert!(ks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "live"));
    }

    #[test]
    fn lifetimes_in_generics_do_not_open_char_literals() {
        // If `'a` were lexed as an unterminated char, everything after it
        // would shift and the `{` counts would break.
        assert_eq!(brace_balance("impl<'a, 'b: 'a> Foo<'a> { fn g(&'a self) {} }"), 0);
        let ks = kinds("fn f<'long_name>(x: &'long_name str) { body(); }");
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert!(ks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "body"));
        // Loop labels are lifetimes too, not chars.
        assert_eq!(brace_balance("fn f() { 'outer: loop { break 'outer; } }"), 0);
    }

    #[test]
    fn lint_allow_comment_survives_lexing() {
        let src = "let m = x; // dr-lint: allow(determinism): keyed lookup only\n";
        let ks = kinds(src);
        let c = ks.iter().find(|(k, _)| *k == TokenKind::Comment).expect("comment");
        assert!(c.1.contains("dr-lint: allow(determinism)"));
    }
}
