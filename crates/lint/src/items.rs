//! A lightweight item parser on top of the hand-rolled lexer.
//!
//! Extracts the structure the interprocedural passes need — `fn` items
//! with their body token ranges, `impl`/`trait` ownership, inline `mod`
//! nesting, and `use` declarations — without `syn` (the build
//! environment may be offline). The parser is deliberately
//! approximate: it tracks brace nesting over the comment-free token
//! stream and recognizes item keywords, which is enough to attribute
//! every function body to a (owner, name) pair and every `use` edge to
//! its file. Constructs it cannot model precisely (const-generic brace
//! expressions in signatures, `macro_rules!` bodies) degrade into
//! harmless over-approximation: extra phantom symbols, never lost
//! bodies.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name (`run_source`).
    pub name: String,
    /// Enclosing `impl` target or `trait` name, when any
    /// (`PipelineBuilder` for `impl PipelineBuilder { fn run_source … }`).
    pub owner: Option<String>,
    /// Inline `mod` path within the file (empty at file scope).
    pub module: Vec<String>,
    /// Token-index range of the whole item: `fn` keyword through the
    /// closing `}` of the body (or the `;` of a bodyless declaration).
    pub full: (usize, usize),
    /// Token-index range of the body braces, inclusive; `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    pub line: u32,
    /// Whether the item sits inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// Whether the first parameter is (some form of) `self` — a `.name()`
    /// method call can only resolve to such functions.
    pub has_self: bool,
}

/// One `use` declaration (for the layer-DAG pass).
#[derive(Clone, Debug)]
pub struct UseItem {
    /// First path segment (`dr_stats` in `use dr_stats::quantiles;`).
    pub first_segment: String,
    pub line: u32,
    pub is_test: bool,
}

/// Everything extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedItems {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseItem>,
    /// Declared type names (`struct`/`enum`/`trait` identifiers), for
    /// symbol-table completeness and tests.
    pub types: Vec<String>,
}

/// What an open brace on the scope stack means.
#[derive(Clone, Debug)]
enum Scope {
    /// `impl Target { … }` or `trait Name { … }`.
    Owner(String),
    /// `mod name { … }`.
    Module(String),
    /// Any other brace: fn bodies, blocks, struct literals, matches.
    Plain,
}

/// Parse the items of a lexed file.
pub fn parse(file: &SourceFile) -> ParsedItems {
    // Comment-free view; `sig[k]` maps back to a full-token index.
    let sig: Vec<usize> = (0..file.tokens.len())
        .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
        .collect();
    let text = |k: usize| -> &str {
        sig.get(k)
            .map_or("", |&i| file.tokens[i].text(&file.text))
    };
    let kind = |k: usize| -> Option<TokenKind> { sig.get(k).map(|&i| file.tokens[i].kind) };

    let mut out = ParsedItems::default();
    let mut stack: Vec<Scope> = Vec::new();
    // Item header seen at the current depth, waiting for its `{`.
    let mut pending: Option<Scope> = None;
    let mut k = 0;
    while k < sig.len() {
        match text(k) {
            "fn" if kind(k + 1) == Some(TokenKind::Ident)
                || kind(k + 1) == Some(TokenKind::RawIdent) =>
            {
                // `fn(u32) -> u32` function-pointer types fail the
                // ident-follows guard and fall through to the skip arm.
                let (item, next) = parse_fn(file, &sig, k, &stack);
                // `next` sits just past the body `{` (so nested items are
                // still visited) — account for that brace here or the
                // body's `}` would pop the enclosing impl/mod scope.
                let opened_body = item.body.is_some();
                out.fns.push(item);
                if opened_body {
                    stack.push(Scope::Plain);
                }
                k = next;
                continue;
            }
            "use" => {
                let (item, next) = parse_use(file, &sig, k);
                if let Some(u) = item {
                    out.uses.push(u);
                }
                k = next;
                continue;
            }
            "mod" if kind(k + 1) == Some(TokenKind::Ident) => {
                // Inline `mod name {` opens a module scope; `mod name;`
                // is a file reference and opens nothing.
                if text(k + 2) == "{" {
                    pending = Some(Scope::Module(text(k + 1).to_string()));
                }
                k += 2;
                continue;
            }
            "struct" | "enum" | "union" if kind(k + 1) == Some(TokenKind::Ident) => {
                out.types.push(text(k + 1).to_string());
                k += 2;
                continue;
            }
            "trait" if kind(k + 1) == Some(TokenKind::Ident) => {
                out.types.push(text(k + 1).to_string());
                pending = Some(Scope::Owner(text(k + 1).to_string()));
                k += 2;
                continue;
            }
            "impl" => {
                let (owner, next) = parse_impl_header(&sig, file, k);
                pending = Some(match owner {
                    Some(o) => Scope::Owner(o),
                    None => Scope::Plain,
                });
                k = next;
                continue;
            }
            "{" => {
                stack.push(pending.take().unwrap_or(Scope::Plain));
            }
            "}" => {
                stack.pop();
            }
            ";" => {
                // `impl Trait for Type;` / `mod x;` headers never open.
                pending = None;
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// Parse one `fn` item starting at the `fn` keyword (`sig[k]`).
/// Returns the item and the comment-free index to resume at (just past
/// the body `{` so nested items inside the body are still visited — the
/// body extent is recorded on the item, not skipped).
fn parse_fn(
    file: &SourceFile,
    sig: &[usize],
    k: usize,
    stack: &[Scope],
) -> (FnItem, usize) {
    let text = |j: usize| -> &str {
        sig.get(j)
            .map_or("", |&i| file.tokens[i].text(&file.text))
    };
    let name = text(k + 1).trim_start_matches("r#").to_string();
    let decl_tok = sig[k];
    let line = file.tokens[decl_tok].line;

    // Skip the generic parameter list, if any, so a `Fn(…)` bound is
    // not mistaken for the parameter parens. `->`/`=>` guard: their `>`
    // never closes an angle level.
    let mut j = k + 2;
    if text(j) == "<" {
        let mut angle = 0i32;
        while j < sig.len() {
            match text(j) {
                "<" => angle += 1,
                ">" if text(j.wrapping_sub(1)) != "-" && text(j.wrapping_sub(1)) != "=" => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                "{" | ";" => break,
                _ => {}
            }
            j += 1;
        }
    }
    // The first parameter slot decides `has_self`: the tokens between
    // the opening paren and the first `,` (or the closing paren) are
    // some form of `self` when this is a method.
    let has_self = text(j) == "("
        && (j + 1..)
            .take(4)
            .take_while(|&p| p < sig.len() && text(p) != "," && text(p) != ")")
            .any(|p| text(p) == "self");

    // Scan the rest of the signature for the body `{` or terminating
    // `;`. Braces cannot appear in a signature outside (paren/bracket)
    // groups, so a flat depth counter suffices.
    let mut depth = 0i32;
    let mut body_open = None;
    while j < sig.len() {
        match text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth <= 0 => {
                body_open = Some(j);
                break;
            }
            ";" if depth <= 0 => break,
            _ => {}
        }
        j += 1;
    }

    let owner = stack.iter().rev().find_map(|s| match s {
        Scope::Owner(o) => Some(o.clone()),
        _ => None,
    });
    let module: Vec<String> = stack
        .iter()
        .filter_map(|s| match s {
            Scope::Module(m) => Some(m.clone()),
            _ => None,
        })
        .collect();

    let (body, full_end, resume) = match body_open {
        Some(open) => {
            let close = match_braces(file, sig, open);
            ((Some((sig[open], sig[close.min(sig.len() - 1)]))), close, open + 1)
        }
        None => {
            let end = j.min(sig.len() - 1);
            (None, end, j + 1)
        }
    };

    let item = FnItem {
        name,
        owner,
        module,
        full: (decl_tok, sig[full_end.min(sig.len() - 1)]),
        body,
        line,
        is_test: file.in_test_region(decl_tok),
        has_self,
    };
    (item, resume)
}

/// From the comment-free index of an opening `{`, return the index of
/// its matching `}` (or the last token on unbalanced input).
fn match_braces(file: &SourceFile, sig: &[usize], open: usize) -> usize {
    let text = |j: usize| -> &str {
        sig.get(j)
            .map_or("", |&i| file.tokens[i].text(&file.text))
    };
    let mut depth = 0i32;
    let mut j = open;
    while j < sig.len() {
        match text(j) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    sig.len().saturating_sub(1)
}

/// Parse `use path::to::thing;` starting at the `use` keyword. Returns
/// the item (when a path segment exists) and the resume index past `;`.
fn parse_use(file: &SourceFile, sig: &[usize], k: usize) -> (Option<UseItem>, usize) {
    let text = |j: usize| -> &str {
        sig.get(j)
            .map_or("", |&i| file.tokens[i].text(&file.text))
    };
    let kind = |j: usize| -> Option<TokenKind> { sig.get(j).map(|&i| file.tokens[i].kind) };

    // Skip a leading `::` (rare `use ::std::…` form).
    let mut j = k + 1;
    while text(j) == ":" {
        j += 1;
    }
    let seg = match kind(j) {
        Some(TokenKind::Ident) | Some(TokenKind::RawIdent) => {
            Some(text(j).trim_start_matches("r#").to_string())
        }
        _ => None,
    };
    let line = file.tokens[sig[k]].line;
    let is_test = file.in_test_region(sig[k]);
    // Consume to the terminating `;` (brace groups may nest:
    // `use a::{b, c::{d, e}};`).
    let mut depth = 0i32;
    while j < sig.len() {
        match text(j) {
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth <= 0 => {
                j += 1;
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let item = seg.map(|first_segment| UseItem {
        first_segment,
        line,
        is_test,
    });
    (item, j)
}

/// Extract the target type name from an `impl` header starting at the
/// `impl` keyword: the last path segment of the implemented-for type
/// (`Severity` in `impl fmt::Display for Severity`, `PipelineBuilder`
/// in `impl<'a> PipelineBuilder<'a>`). Returns the name and the
/// comment-free index of the opening `{` (or terminator).
fn parse_impl_header(sig: &[usize], file: &SourceFile, k: usize) -> (Option<String>, usize) {
    let text = |j: usize| -> &str {
        sig.get(j)
            .map_or("", |&i| file.tokens[i].text(&file.text))
    };
    let kind = |j: usize| -> Option<TokenKind> { sig.get(j).map(|&i| file.tokens[i].kind) };

    let mut j = k + 1;
    // Skip the generic parameter list `<…>` if present. Arrows (`->` in
    // `Fn(…) -> T` bounds) must not close an angle level.
    if text(j) == "<" {
        let mut angle = 0i32;
        while j < sig.len() {
            match text(j) {
                "<" => angle += 1,
                ">" if text(j.wrapping_sub(1)) != "-" && text(j.wrapping_sub(1)) != "=" => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                "{" | ";" => break,
                _ => {}
            }
            j += 1;
        }
    }

    // Walk the header up to `{`, remembering the last ident seen at
    // angle-depth 0 in the current type position; a `for` resets it so
    // the implemented-for type wins over the trait name.
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    while j < sig.len() {
        match text(j) {
            "<" => angle += 1,
            ">" if text(j.wrapping_sub(1)) != "-" && text(j.wrapping_sub(1)) != "=" => {
                angle -= 1
            }
            "{" if angle <= 0 => return (last_ident, j),
            ";" if angle <= 0 => return (last_ident, j),
            "for" if angle <= 0 => last_ident = None,
            "where" if angle <= 0 => {
                // The target is fixed by now; scan on for the `{`.
                while j < sig.len() && text(j) != "{" {
                    j += 1;
                }
                return (last_ident, j);
            }
            t => {
                if angle <= 0
                    && matches!(kind(j), Some(TokenKind::Ident) | Some(TokenKind::RawIdent))
                    && !matches!(t, "dyn" | "mut" | "const" | "unsafe" | "impl")
                {
                    last_ident = Some(t.trim_start_matches("r#").to_string());
                }
            }
        }
        j += 1;
    }
    (last_ident, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> ParsedItems {
        parse(&SourceFile::new("crates/demo/src/lib.rs", src))
    }

    #[test]
    fn free_fn_and_body_range() {
        let src = "fn alpha(x: u32) -> u32 { x + 1 }\nfn beta() {}\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "alpha");
        assert!(p.fns[0].owner.is_none());
        assert!(p.fns[0].body.is_some());
        assert_eq!(p.fns[1].name, "beta");
    }

    #[test]
    fn impl_methods_get_their_owner() {
        let src = "struct Engine;\nimpl Engine {\n    fn start(&self) { self.step(); }\n    fn step(&self) {}\n}\n";
        let p = parse_src(src);
        assert_eq!(p.types, ["Engine"]);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Engine"));
        assert_eq!(p.fns[1].owner.as_deref(), Some("Engine"));
    }

    #[test]
    fn trait_impl_owner_is_the_target_type() {
        let src = "impl fmt::Display for Severity { fn fmt(&self, f: &mut F) -> R { todo() } }";
        let p = parse_src(src);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Severity"));
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_the_parser() {
        let src = "impl<'a, T: Clone> Holder<'a, T> where T: Send {\n    fn get<U: Into<T>>(&self, u: U) -> T where U: Clone { convert(u) }\n}\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "get");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Holder"));
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn fn_bounds_in_generics_do_not_end_the_signature_early() {
        let src = "fn apply<F: Fn(u32) -> u32>(f: F) -> u32 { f(1) }\nfn after() {}";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].name, "after");
    }

    #[test]
    fn nested_modules_are_tracked() {
        let src = "mod outer {\n    mod inner {\n        fn deep() {}\n    }\n    fn shallow() {}\n}\n";
        let p = parse_src(src);
        let deep = p.fns.iter().find(|f| f.name == "deep").expect("deep");
        assert_eq!(deep.module, ["outer", "inner"]);
        let shallow = p.fns.iter().find(|f| f.name == "shallow").expect("shallow");
        assert_eq!(shallow.module, ["outer"]);
    }

    #[test]
    fn trait_decl_methods_with_and_without_bodies() {
        let src = "trait Pass {\n    fn id(&self) -> &'static str;\n    fn run(&self) { self.id(); }\n}\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Pass"));
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn closures_and_struct_literals_stay_inside_the_body() {
        let src = "fn outer() -> Config {\n    let f = |x: u32| x + 1;\n    let c = Config { a: f(1), b: vec![2] };\n    c\n}\nfn next_item() {}\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "outer");
        assert_eq!(p.fns[1].name, "next_item");
        // The whole literal-bearing body belongs to `outer`.
        let (lo, hi) = p.fns[0].body.expect("body");
        assert!(lo < hi);
    }

    #[test]
    fn function_pointer_types_are_not_items() {
        let src = "fn takes(cb: fn(u32) -> u32) -> u32 { cb(2) }";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "takes");
    }

    #[test]
    fn use_items_record_first_segment_and_nesting() {
        let src = "use dr_stats::{quantiles, mtbe::{self, Mtbe}};\nuse ::std::fmt;\npub use dr_xid::Xid;\nfn f() {}\n";
        let p = parse_src(src);
        let segs: Vec<&str> = p.uses.iter().map(|u| u.first_segment.as_str()).collect();
        assert_eq!(segs, ["dr_stats", "std", "dr_xid"]);
        assert_eq!(p.fns.len(), 1);
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn probe() { live(); }\n}\n";
        let p = parse_src(src);
        let live = p.fns.iter().find(|f| f.name == "live").expect("live");
        let probe = p.fns.iter().find(|f| f.name == "probe").expect("probe");
        assert!(!live.is_test);
        assert!(probe.is_test);
    }

    #[test]
    fn nested_fn_inside_body_is_still_a_symbol() {
        let src = "fn outer() {\n    fn helper() {}\n    helper();\n}\n";
        let p = parse_src(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "helper"]);
    }
}
