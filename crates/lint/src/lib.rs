//! `dr-lint` — zero-dependency static analysis for this workspace.
//!
//! The reproduction's value rests on invariants the code can only claim
//! in comments: bit-reproducible campaigns under any thread count, a
//! panic-free analysis pipeline, a faithful XID taxonomy handled
//! consistently across layers, and unit-suffixed time parameters. This
//! crate machine-checks all four, using a hand-rolled token lexer (no
//! `syn` — the build environment may be offline) and a baseline ledger
//! that ratchets existing debt down instead of bulk-suppressing it.
//!
//! Run it:
//!
//! ```text
//! cargo run --bin dr-lint                         # human output, exit 1 on findings
//! cargo run --bin dr-lint -- --json               # one JSON object per finding
//! cargo run --bin dr-lint -- --update-baseline    # rewrite the debt ledger
//! ```
//!
//! The tier-1 gate is `tests/lint_clean.rs`, which runs the same checks
//! under `cargo test`.

pub mod baseline;
pub mod diag;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod passes;
pub mod source;
pub mod walk;

pub use baseline::{Baseline, OverBaseline};
pub use diag::{Diagnostic, Severity};
pub use graph::SymbolGraph;
pub use source::{SourceFile, Workspace};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A lint pass. File passes implement `check_file`; cross-file passes
/// (taxonomy) implement `check_workspace`; interprocedural passes
/// (panic-reachability, determinism-taint, layer-dag) implement
/// `check_graph` against the symbol graph built once per run.
pub trait Pass {
    fn id(&self) -> &'static str;
    fn check_file(&self, _file: &SourceFile, _out: &mut Vec<Diagnostic>) {}
    fn check_workspace(&self, _ws: &Workspace, _out: &mut Vec<Diagnostic>) {}
    fn check_graph(&self, _ws: &Workspace, _graph: &SymbolGraph, _out: &mut Vec<Diagnostic>) {}
}

/// Where to lint and which debt ledger to honor.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workspace root (the directory holding `Cargo.toml`, `src/`,
    /// `crates/`).
    pub root: PathBuf,
    /// Baseline file; `None` means no suppression.
    pub baseline: Option<PathBuf>,
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct Report {
    /// Non-baselined, non-allowed findings — the ones that fail the run.
    pub active: Vec<Diagnostic>,
    /// Findings swallowed by in-budget baseline groups.
    pub suppressed_baseline: usize,
    /// Findings waived by in-source allow comments.
    pub suppressed_allow: usize,
    /// Baseline groups whose counts grew.
    pub over: Vec<OverBaseline>,
    /// Files scanned.
    pub files: usize,
    /// Function symbols in the workspace call graph.
    pub symbols: usize,
    /// Name-approximated call edges between them.
    pub call_edges: usize,
    /// Current violation counts per (lint, path) — feed to
    /// [`Baseline::render`] for `--update-baseline`.
    pub groups: BTreeMap<(String, String), usize>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.active.is_empty()
    }

    /// Render the human summary (findings plus counts).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.active {
            out.push_str(&d.human());
            out.push('\n');
        }
        for o in &self.over {
            out.push_str(&format!(
                "note[{}] {} grew past its baseline: {} allowed, {} found — fix the new \
                 ones or justify with an allow comment\n",
                o.lint, o.path, o.allowed, o.actual
            ));
        }
        out.push_str(&format!(
            "dr-lint: {} finding(s) across {} files ({} baselined, {} allowed in-source); \
             call graph: {} symbols, {} edges\n",
            self.active.len(),
            self.files,
            self.suppressed_baseline,
            self.suppressed_allow,
            self.symbols,
            self.call_edges
        ));
        out
    }
}

/// Read and lex every lintable source under `root`.
pub fn load_workspace(root: &Path) -> Result<Workspace, String> {
    let paths = walk::workspace_sources(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        files.push(SourceFile::new(walk::relative_path(root, p), text));
    }
    let mut scenarios = Vec::new();
    for p in &walk::scenario_sources(root)? {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        scenarios.push((walk::relative_path(root, p), text));
    }
    Ok(Workspace::from_files(files).with_scenarios(scenarios))
}

/// Lint the workspace at `cfg.root` against its baseline.
pub fn run(cfg: &Config) -> Result<Report, String> {
    let ws = load_workspace(&cfg.root)?;
    let b = match &cfg.baseline {
        Some(p) => Baseline::load(p)?,
        None => Baseline::default(),
    };
    Ok(run_on(&ws, &b))
}

/// Lint an already-loaded workspace (also the unit-test entry point).
pub fn run_on(ws: &Workspace, baseline: &Baseline) -> Report {
    let graph = SymbolGraph::build(ws);
    let mut diags = Vec::new();
    for pass in passes::all() {
        for f in &ws.files {
            pass.check_file(f, &mut diags);
        }
        pass.check_workspace(ws, &mut diags);
        pass.check_graph(ws, &graph, &mut diags);
    }

    let before = diags.len();
    diags.retain(|d| {
        ws.file(&d.path)
            .is_none_or(|f| !f.is_allowed(d.lint, d.line))
    });
    let suppressed_allow = before - diags.len();
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));

    let groups = baseline::group_counts(&diags);
    let outcome = baseline::apply(baseline, diags);
    Report {
        active: outcome.active,
        suppressed_baseline: outcome.suppressed,
        suppressed_allow,
        over: outcome.over,
        files: ws.files.len(),
        symbols: graph.symbols.len(),
        call_edges: graph.edge_count,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_ws() -> Workspace {
        Workspace::from_files(vec![
            SourceFile::new(
                "crates/demo/src/lib.rs",
                "use std::collections::HashMap;\n\
                 // dr-lint: allow(determinism): keyed lookup only, never iterated\n\
                 pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> u32 {\n\
                     m.get(&k).copied().unwrap()\n\
                 }\n\
                 pub fn mtbe(observation: f64, elapsed_time: f64) -> f64 { observation + elapsed_time }\n\
                 pub struct PipelineBuilder;\n\
                 impl PipelineBuilder {\n\
                     pub fn run_source(&self, m: &HashMap<u32, u32>) -> u32 { lookup(m, 1) }\n\
                 }\n",
            ),
        ])
    }

    #[test]
    fn end_to_end_allow_baseline_and_active() {
        let report = run_on(&fixture_ws(), &Baseline::default());
        // Line 1 HashMap import is NOT allowed (comment is on line 2 and
        // covers 2-3); line 3 HashMap is allowed; the unwrap (reachable
        // from the fixture entry point) and the unitless time param are
        // active.
        let lints: Vec<&str> = report.active.iter().map(|d| d.lint).collect();
        assert!(lints.contains(&"determinism"), "{lints:?}");
        assert!(lints.contains(&"panic-reachability"), "{lints:?}");
        assert!(lints.contains(&"unit-hygiene"), "{lints:?}");
        assert_eq!(report.suppressed_allow, 1);
        assert!(report.symbols >= 3, "fixture has lookup, mtbe, run_source");
        assert!(report.call_edges >= 1, "run_source → lookup");

        // Baseline all current groups: the run becomes clean.
        let ledger = Baseline::render(&report.groups);
        let b = Baseline::parse(&ledger).expect("ledger parses");
        let clean = run_on(&fixture_ws(), &b);
        assert!(clean.is_clean(), "{}", clean.render_human());
        assert!(clean.suppressed_baseline >= 3);
    }

    #[test]
    fn report_renders_counts() {
        let report = run_on(&fixture_ws(), &Baseline::default());
        let text = report.render_human();
        assert!(text.contains("dr-lint:"));
        assert!(text.contains("allowed in-source"));
    }
}
