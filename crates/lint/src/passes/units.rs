//! The unit-hygiene pass: public `f64` time parameters must carry their
//! unit in the name.
//!
//! MTBE math mixes hours, seconds, and days constantly; a bare
//! `pub fn mtbe(observation: f64)` is the classic footgun the paper's
//! arithmetic cannot afford. Any public function parameter of type `f64`
//! whose name talks about time (`hours`, `delay`, `window`, `mttr`, …)
//! must end in a unit suffix (`_h`, `_secs`, `_ms`, `_days`, …).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::Pass;

pub struct UnitsPass;

pub const ID: &str = "unit-hygiene";

const TIME_WORDS: [&str; 18] = [
    "hour", "secs", "second", "minute", "day", "time", "delay", "duration", "window", "persist",
    "mttr", "mtbf", "mtbe", "interval", "timeout", "latency", "uptime", "downtime",
];

const UNIT_SUFFIXES: [&str; 22] = [
    "_h", "_hr", "_hrs", "_hours", "_s", "_sec", "_secs", "_seconds", "_ms", "_us", "_ns", "_min",
    "_mins", "_minutes", "_d", "_days", "hours", "secs", "seconds", "days", "_frac", "_share",
];

/// Whether a public `f64` parameter named `name` should be flagged.
pub fn flags_missing_unit(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    TIME_WORDS.iter().any(|w| lower.contains(w))
        && !UNIT_SUFFIXES.iter().any(|s| lower.ends_with(s))
}

impl Pass for UnitsPass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let sig: Vec<usize> = (0..file.tokens.len())
            .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
            .collect();
        let t = |j: usize| -> &str {
            sig.get(j).map_or("", |&i| file.tok_text(&file.tokens[i]))
        };
        let mut k = 0;
        while k < sig.len() {
            if t(k) != "pub" || file.in_test_region(sig[k]) {
                k += 1;
                continue;
            }
            // `pub(crate)` etc. is not public API.
            if t(k + 1) == "(" {
                k += 1;
                continue;
            }
            // Allow `pub const fn`, `pub async fn`, `pub unsafe fn`.
            let mut j = k + 1;
            while j < k + 4 && t(j) != "fn" {
                j += 1;
            }
            if t(j) != "fn" {
                k += 1;
                continue;
            }
            let fn_name = t(j + 1).to_string();
            if let Some((params, next)) = parse_params(file, &sig, j + 2) {
                for (name, line, col, is_f64) in params {
                    if is_f64 && flags_missing_unit(&name) {
                        out.push(Diagnostic {
                            lint: ID,
                            severity: Severity::Warning,
                            path: file.path.clone(),
                            line,
                            col,
                            message: format!(
                                "public fn `{fn_name}`: `f64` time parameter `{name}` has no \
                                 unit suffix — rename to `{name}_h`/`{name}_secs`/… so call \
                                 sites can't mix units"
                            ),
                        });
                    }
                }
                k = next;
            } else {
                k = j + 1;
            }
        }
    }
}

/// From just past the fn name, parse the parameter list. Returns each
/// parameter as (name, line, col, type-is-exactly-f64) plus the index
/// after the closing `)`.
#[allow(clippy::type_complexity)]
fn parse_params(
    file: &SourceFile,
    sig: &[usize],
    from: usize,
) -> Option<(Vec<(String, u32, u32, bool)>, usize)> {
    let t = |j: usize| -> &str {
        sig.get(j).map_or("", |&i| file.tok_text(&file.tokens[i]))
    };
    // Skip generic parameters `<…>`, minding `->` inside Fn bounds.
    let mut j = from;
    if t(j) == "<" {
        let mut angle = 0i32;
        while j < sig.len() {
            match t(j) {
                "<" => angle += 1,
                ">" if j > 0 && t(j - 1) != "-" => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    if t(j) != "(" {
        return None;
    }

    // Collect token index ranges for each comma-separated parameter.
    let mut params: Vec<(usize, usize)> = Vec::new();
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut bracket = 0i32;
    let mut param_start = j + 1;
    let mut end = sig.len();
    while j < sig.len() {
        match t(j) {
            "(" => paren += 1,
            ")" => {
                paren -= 1;
                if paren == 0 {
                    if j > param_start {
                        params.push((param_start, j));
                    }
                    end = j + 1;
                    break;
                }
            }
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "<" => angle += 1,
            ">" if t(j - 1) != "-" => angle -= 1,
            "," if paren == 1 && angle == 0 && bracket == 0 => {
                params.push((param_start, j));
                param_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }

    let mut out = Vec::new();
    for (lo, hi) in params {
        // Find the top-level `:` separating pattern from type (skip `::`).
        let mut colon = None;
        let mut depth = 0i32;
        for p in lo..hi {
            match t(p) {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" => depth -= 1,
                ">" if t(p - 1) != "-" => depth -= 1,
                ":" if depth == 0 && t(p + 1) != ":" && (p == lo || t(p - 1) != ":") => {
                    colon = Some(p);
                    break;
                }
                _ => {}
            }
        }
        let Some(c) = colon else {
            continue; // `self`, `&mut self`
        };
        // Name: the last identifier before the colon (skips `mut`).
        let name_idx = (lo..c)
            .rev()
            .find(|&p| file.tokens[sig[p]].kind == TokenKind::Ident && t(p) != "mut");
        let Some(ni) = name_idx else {
            continue;
        };
        let is_f64 = c + 2 == hi && t(c + 1) == "f64";
        let tok = &file.tokens[sig[ni]];
        out.push((t(ni).to_string(), tok.line, tok.col, is_f64));
    }
    Some((out, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("fixture.rs", src);
        let mut out = Vec::new();
        UnitsPass.check_file(&f, &mut out);
        out
    }

    #[test]
    fn fires_on_suffixless_time_param() {
        let d = check("pub fn mtbe(observation_time: f64, node_count: u32) -> f64 { observation_time }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("observation_time"));
        assert_eq!(d[0].lint, ID);
    }

    #[test]
    fn unit_suffixes_pass() {
        assert!(check("pub fn mtbe(observation_hours: f64, mttr_h: f64, window_s: f64, delay_ms: f64) {}").is_empty());
        assert!(check("pub fn run(duration_days: f64) {}").is_empty());
    }

    #[test]
    fn non_time_f64s_and_non_f64_times_pass() {
        assert!(check("pub fn mix(offender_share: f64, skew: f64) {}").is_empty());
        assert!(check("pub fn wait(timeout: Duration) {}").is_empty());
        assert!(check("pub fn wait(interval: u64) {}").is_empty());
    }

    #[test]
    fn private_and_crate_fns_are_exempt() {
        assert!(check("fn helper(delay: f64) {}").is_empty());
        assert!(check("pub(crate) fn helper(delay: f64) {}").is_empty());
    }

    #[test]
    fn generics_and_self_params_parse() {
        let d = check("impl S { pub fn go<R: Fn(u32) -> f64>(&mut self, rng: &mut R, drain_delay: f64) {} }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("drain_delay"));
    }

    #[test]
    fn heuristic_edges() {
        assert!(flags_missing_unit("timeout"));
        assert!(flags_missing_unit("recovery_delay"));
        assert!(!flags_missing_unit("recovery_delay_min"));
        assert!(!flags_missing_unit("hours"));
        assert!(!flags_missing_unit("p_contained"));
        assert!(!flags_missing_unit("delay_frac"));
    }
}
