//! The stream-hygiene pass: library crates must not slurp whole files.
//!
//! The pipeline's memory contract is that Stage I pulls bounded,
//! line-aligned chunk waves through `resilience_core::source::LogSource`
//! — never a materialized corpus. A single `std::fs::read_to_string` on
//! a 202-GB-scale log directory silently voids that contract, so this
//! pass flags the bulk-materializing reads in library crates
//! (`crates/*`):
//!
//! * `read_to_string` — both the free function `fs::read_to_string` and
//!   the `Read::read_to_string` method materialize an unbounded buffer;
//! * `fs::read` — the byte-vector sibling;
//! * `read_to_end` — the `Read` method form, which would let a record
//!   store (or any binary artifact) be slurped whole instead of read
//!   block-by-block through its footer index.
//!
//! Incremental primitives (`BufReader::read_line`, `fs::read_dir`)
//! remain fine. The lint tool itself (`crates/lint/`) is exempt — its
//! job is reading sources, which are human-sized — as are test regions
//! and the CLI/benchmark layers outside `crates/`. A deliberate
//! boundary case can be waived with
//! `// dr-lint: allow(stream-hygiene): <why the read is bounded>`.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::Pass;

pub struct StreamHygienePass;

pub const ID: &str = "stream-hygiene";

impl Pass for StreamHygienePass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !file.path.starts_with("crates/") || file.path.starts_with("crates/lint/") {
            return;
        }
        let sig: Vec<usize> = (0..file.tokens.len())
            .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
            .collect();
        for (k, &i) in sig.iter().enumerate() {
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident || file.in_test_region(i) {
                continue;
            }
            let message = match file.tok_text(tok) {
                "read_to_string" => Some(
                    "whole-file read in a library crate: `read_to_string` materializes \
                     an unbounded buffer — stream line-aligned chunks through a \
                     `LogSource` instead"
                        .to_string(),
                ),
                "read" if is_fs_read_call(file, &sig, k) => Some(
                    "whole-file read in a library crate: `fs::read` materializes an \
                     unbounded buffer — stream line-aligned chunks through a \
                     `LogSource` instead"
                        .to_string(),
                ),
                "read_to_end" => Some(
                    "whole-file read in a library crate: `read_to_end` materializes \
                     an unbounded buffer — read bounded block ranges (a record \
                     store's footer index, or a `LogSource` chunk wave) instead"
                        .to_string(),
                ),
                _ => None,
            };
            if let Some(message) = message {
                out.push(Diagnostic {
                    lint: ID,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message,
                });
            }
        }
    }
}

/// True when the tokens around `sig[k]` spell `fs::read(` — the path
/// call, not a `read` method or a `read_dir`-style sibling (those are
/// separate ident tokens and never reach here).
fn is_fs_read_call(file: &SourceFile, sig: &[usize], k: usize) -> bool {
    let t = |j: usize| sig.get(j).map_or("", |&i| file.tok_text(&file.tokens[i]));
    k >= 3 && t(k - 3) == "fs" && t(k - 2) == ":" && t(k - 1) == ":" && t(k + 1) == "("
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check_at(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path, src);
        let mut out = Vec::new();
        StreamHygienePass.check_file(&f, &mut out);
        out
    }

    #[test]
    fn fires_on_read_to_string_in_library_code() {
        let d = check_at(
            "crates/report/src/files.rs",
            "fn f(p: &Path) { let _ = std::fs::read_to_string(p); }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, ID);
        assert!(d[0].message.contains("read_to_string"));
    }

    #[test]
    fn fires_on_the_method_form_too() {
        let d = check_at(
            "crates/core/src/source.rs",
            "fn f(r: &mut impl std::io::Read) { let mut s = String::new(); r.read_to_string(&mut s).ok(); }",
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn fires_on_read_to_end_in_library_code() {
        let d = check_at(
            "crates/core/src/store.rs",
            "fn f(r: &mut impl std::io::Read) { let mut b = Vec::new(); r.read_to_end(&mut b).ok(); }",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("read_to_end"));
    }

    #[test]
    fn fires_on_fs_read() {
        let d = check_at(
            "crates/report/src/files.rs",
            "fn f(p: &Path) { let _ = std::fs::read(p); }",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("fs::read"));
    }

    #[test]
    fn incremental_reads_and_read_dir_are_fine() {
        assert!(check_at(
            "crates/core/src/source.rs",
            "fn f(r: &mut BufReader<File>, buf: &mut String) { r.read_line(buf).ok(); \
             let _ = std::fs::read_dir(\"/tmp\"); }",
        )
        .is_empty());
        // A plain `read` method call is not `fs::read`.
        assert!(check_at(
            "crates/core/src/source.rs",
            "fn f(r: &mut impl std::io::Read, buf: &mut [u8]) { r.read(buf).ok(); }",
        )
        .is_empty());
        // `read_exact` into a block-sized buffer is the sanctioned way
        // to pull one indexed range out of a record store.
        assert!(check_at(
            "crates/core/src/store.rs",
            "fn f(r: &mut std::fs::File, buf: &mut [u8]) { r.read_exact(buf).ok(); }",
        )
        .is_empty());
    }

    #[test]
    fn lint_crate_cli_and_tests_are_exempt() {
        let src = "fn f(p: &Path) { let _ = std::fs::read_to_string(p); }";
        assert!(check_at("crates/lint/src/walk.rs", src).is_empty());
        assert!(check_at("src/bin/gpures.rs", src).is_empty());
        assert!(check_at("tests/cli.rs", src).is_empty());
        assert!(check_at(
            "crates/report/src/files.rs",
            "#[cfg(test)]\nmod tests { fn f(p: &Path) { let _ = std::fs::read_to_string(p); } }",
        )
        .is_empty());
    }

    #[test]
    fn allow_comment_records_a_waiver_for_the_runner() {
        let f = SourceFile::new(
            "crates/report/src/files.rs",
            "// dr-lint: allow(stream-hygiene): config files are tiny\nfn f(p: &Path) { let _ = std::fs::read_to_string(p); }\n",
        );
        let mut out = Vec::new();
        StreamHygienePass.check_file(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert!(f.is_allowed(ID, out[0].line));
    }
}
