//! The determinism pass: forbid ambient randomness, wall-clock reads,
//! and unannotated hash collections in library code.
//!
//! The repo's headline invariant is bit-reproducible campaigns under any
//! thread count. Three constructs silently break it: `thread_rng()`
//! (seeded from the OS), `SystemTime::now()` / `Instant::now()` (wall
//! clock leaking into results), and `HashMap`/`HashSet` (random iteration
//! order feeding float accumulation or tie-breaking). Hash collections
//! that are genuinely order-free (keyed lookup only, never iterated into
//! results) may be kept with an in-source
//! `// dr-lint: allow(determinism): <why>` audit comment.
//!
//! One scoped exemption: [`CLOCK_EXEMPT_PATH`] — dr-obs's clock module —
//! may read the wall clock, because span timing describes the *run*,
//! never the *results*. The companion `obs-isolation` pass keeps that
//! timing from leaking back into analysis code.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::Pass;

pub struct DeterminismPass;

pub const ID: &str = "determinism";

/// The workspace's single sanctioned wall-clock callsite: observability
/// span timing. Everything else must stay on the simulation clock.
pub const CLOCK_EXEMPT_PATH: &str = "crates/obs/src/clock.rs";

impl Pass for DeterminismPass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let sig: Vec<usize> = (0..file.tokens.len())
            .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
            .collect();
        for (k, &i) in sig.iter().enumerate() {
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident || file.in_test_region(i) {
                continue;
            }
            let message = match file.tok_text(tok) {
                "thread_rng" => Some(
                    "`thread_rng()` is seeded from the OS and breaks bit-reproducibility; \
                     draw from an explicitly seeded stream (see dr-des `RngStreams`)"
                        .to_string(),
                ),
                name @ ("SystemTime" | "Instant")
                    if followed_by_now(file, &sig, k) && file.path != CLOCK_EXEMPT_PATH =>
                Some(format!(
                    "`{name}::now()` reads the wall clock; results must depend only on \
                     seeds and inputs — thread time through the simulation clock"
                )),
                name @ ("HashMap" | "HashSet") => Some(format!(
                    "`{name}` iteration order is randomized and can leak into results; \
                     use `BTreeMap`/`BTreeSet`, sort before iterating, or annotate with \
                     `// dr-lint: allow(determinism): <why order cannot matter>`"
                )),
                _ => None,
            };
            if let Some(message) = message {
                out.push(Diagnostic {
                    lint: ID,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message,
                });
            }
        }
    }
}

/// True when the tokens after `sig[k]` spell `::now`.
fn followed_by_now(file: &SourceFile, sig: &[usize], k: usize) -> bool {
    let t = |j: usize| sig.get(j).map_or("", |&i| file.tok_text(&file.tokens[i]));
    t(k + 1) == ":" && t(k + 2) == ":" && t(k + 3) == "now"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("fixture.rs", src);
        let mut out = Vec::new();
        DeterminismPass.check_file(&f, &mut out);
        out
    }

    #[test]
    fn fires_on_thread_rng() {
        let d = check("fn f() { let mut rng = rand::thread_rng(); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, ID);
        assert!(d[0].message.contains("thread_rng"));
    }

    #[test]
    fn fires_on_wall_clock_now() {
        let d = check("fn f() { let t = std::time::Instant::now(); }");
        assert_eq!(d.len(), 1);
        let d = check("fn f() { let t = SystemTime::now(); }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn the_obs_clock_module_is_exempt_from_wall_clock_findings() {
        let src = "pub fn now() -> Instant { Instant::now() }";
        let f = SourceFile::new(CLOCK_EXEMPT_PATH, src);
        let mut out = Vec::new();
        DeterminismPass.check_file(&f, &mut out);
        assert!(out.is_empty(), "clock.rs carries the scoped exemption");
        // The same source anywhere else still fires.
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn instant_without_now_is_fine() {
        assert!(check("fn f(deadline: Instant) {}").is_empty());
    }

    #[test]
    fn fires_on_unannotated_hash_collections() {
        let d = check("use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }");
        assert_eq!(d.len(), 3); // the use plus two mentions
        assert!(d[0].message.contains("BTreeMap"));
    }

    #[test]
    fn allow_comment_suppresses_via_runner_contract() {
        // The pass still reports; suppression is the runner's job. Verify
        // the file records the waiver the runner will consult.
        let f = SourceFile::new(
            "fixture.rs",
            "// dr-lint: allow(determinism): lookup-only index, never iterated\nuse std::collections::HashMap;\n",
        );
        let mut out = Vec::new();
        DeterminismPass.check_file(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert!(f.is_allowed(ID, out[0].line));
    }

    #[test]
    fn test_code_and_comments_and_strings_are_exempt() {
        assert!(check("#[cfg(test)]\nmod tests { use std::collections::HashMap; fn f() { thread_rng(); } }").is_empty());
        assert!(check("// old: thread_rng()\nfn f() {}").is_empty());
        assert!(check("fn f() -> &'static str { \"HashMap thread_rng\" }").is_empty());
    }
}
