//! The repo-specific lint passes: seven file-local, three
//! interprocedural, one over the shipped `.scn` scenarios.

pub mod boundedchan;
pub mod determinism;
pub mod hotalloc;
pub mod layerdag;
pub mod obsiso;
pub mod reach;
pub mod scenariohygiene;
pub mod streamhygiene;
pub mod taint;
pub mod taxonomy;
pub mod units;

pub use boundedchan::BoundedChannelsPass;
pub use determinism::DeterminismPass;
pub use hotalloc::HotAllocPass;
pub use layerdag::LayerDagPass;
pub use obsiso::ObsIsolationPass;
pub use reach::ReachPass;
pub use scenariohygiene::ScenarioHygienePass;
pub use streamhygiene::StreamHygienePass;
pub use taint::TaintPass;
pub use taxonomy::TaxonomyPass;
pub use units::UnitsPass;

use crate::Pass;

/// Every pass, in the order findings are reported.
pub fn all() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(BoundedChannelsPass),
        Box::new(DeterminismPass),
        Box::new(HotAllocPass),
        Box::new(LayerDagPass),
        Box::new(ObsIsolationPass),
        Box::new(ReachPass),
        Box::new(ScenarioHygienePass),
        Box::new(StreamHygienePass),
        Box::new(TaintPass),
        Box::new(UnitsPass),
        Box::new(TaxonomyPass),
    ]
}

/// One-paragraph rationale per lint id, for `dr-lint --explain <id>`.
pub fn explain(id: &str) -> Option<&'static str> {
    Some(match id {
        boundedchan::ID => {
            "Forbids unbounded channels (`mpsc::channel`) in library crates. The pipeline's \
             memory contract is O(workers × chunk_bytes) resident text; an unbounded queue \
             between a fast producer and a slower consumer absorbs the corpus and repeals \
             the bound silently. Cross-thread handoffs must use `mpsc::sync_channel(n)`, \
             whose blocking `send` is the back-pressure (the wave prefetcher uses the \
             capacity-0 rendezvous form). Waive a provably bounded queue with \
             `// dr-lint: allow(bounded-channels): <why it is bounded>`."
        }
        determinism::ID => {
            "Forbids ambient randomness (`thread_rng`), wall-clock reads \
             (`SystemTime::now`/`Instant::now` outside crates/obs/src/clock.rs), and \
             `HashMap`/`HashSet` in library code. The repo's headline invariant is \
             bit-reproducible campaigns under any thread count; these constructs break it \
             silently. Waive order-free hash lookups with \
             `// dr-lint: allow(determinism): <why order cannot matter>`."
        }
        reach::ID => {
            "Interprocedural: computes the call-graph transitive closure from the pipeline \
             entry points (PipelineBuilder::run_source, PipelineBuilder::run_record_source, \
             Campaign::run_observed, Scheduler::run_observed) and flags every reachable \
             `.unwrap()`, `.expect(…)`, \
             `panic!`-family macro, and indexing expression without a visible bounds guard. \
             The graph over-approximates calls by name, so a clean run proves the closure \
             panic-free. Legacy `allow(panic-freedom)` comments still waive findings."
        }
        taint::ID => {
            "Interprocedural: seeds taint at functions reading ambient nondeterminism (wall \
             clock, thread_rng, thread identity, hash-iteration order), propagates it from \
             callee to caller along call edges, and flags tainted functions that touch \
             `StudyResults`. dr-obs is a write-only sanitizer boundary: span instrumentation \
             does not taint callers, but its read-back surface (export_json, elapsed_s, now, \
             start) does."
        }
        layerdag::ID => {
            "Interprocedural: workspace `use` edges must stay inside the crate layer DAG \
             declared in crates/lint/src/graph.rs (CRATES, mirroring the Cargo manifests). \
             Cargo rejects undeclared deps; this pass additionally makes *widening* the \
             layering a reviewed change to the lint table. Test-region imports are exempt \
             (dev-dependencies may reach across layers)."
        }
        obsiso::ID => {
            "Observability must describe the run, never the results: outside crates/obs, \
             crates/bench, and src/bin, code may not call the obs read-back surface \
             (export_json, Stopwatch, clock::now). Keeps span timing from leaking into \
             analysis numbers."
        }
        "hot-alloc" => {
            "Flags per-record allocation patterns (format!/to_string/Vec::new in inner parse \
             loops) on the streaming path, where they dominate 202-GB-scale extraction cost."
        }
        scenariohygiene::ID => {
            "Keeps the `.scn` scenario front end honest from both sides. Every shipped \
             file under scenarios/ must pass a structural check (header first and named \
             after the file stem, known statement keywords, balanced braces, the \
             required fleet/duration_days/rates/seeds statements present) so a battery \
             cannot rot in-tree and only fail at `gpures sweep` time. And outside \
             crates/faults and crates/scenario, non-test code may not build \
             `CampaignConfig` from a from-scratch struct literal — start from a preset \
             constructor (`..CampaignConfig::tiny(seed)`) or compile a scenario, so the \
             coupled fleet/rates/tuning knobs cannot drift from the presets silently."
        }
        "stream-hygiene" => {
            "Streaming sources must stay bounded-memory: no slurping whole files \
             (`read_to_string`, `fs::read`, `read_to_end`), no unbounded channel buffers \
             on the campaign→extract→coalesce path. Record stores are read block-by-block \
             through their footer index, never materialized whole."
        }
        "unit-hygiene" => {
            "Time-valued parameters and fields must carry a unit suffix (_s, _ms, _h, \
             _days): the paper's MTBE tables mix hour and day scales, and a bare `elapsed` \
             has already caused one silent 3600x error class in review."
        }
        "xid-taxonomy" => {
            "XID codes must be handled through dr-xid's taxonomy (one source of truth for \
             the paper's studied-XID set), not ad-hoc integer literals scattered per crate."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_pass_has_an_explanation() {
        for pass in all() {
            assert!(
                explain(pass.id()).is_some(),
                "pass `{}` has no --explain text",
                pass.id()
            );
        }
    }

    #[test]
    fn unknown_ids_explain_to_none() {
        assert!(explain("no-such-lint").is_none());
    }
}
