//! The seven repo-specific lint passes.

pub mod determinism;
pub mod hotalloc;
pub mod obsiso;
pub mod panics;
pub mod streamhygiene;
pub mod taxonomy;
pub mod units;

pub use determinism::DeterminismPass;
pub use hotalloc::HotAllocPass;
pub use obsiso::ObsIsolationPass;
pub use panics::PanicPass;
pub use streamhygiene::StreamHygienePass;
pub use taxonomy::TaxonomyPass;
pub use units::UnitsPass;

use crate::Pass;

/// Every pass, in the order findings are reported.
pub fn all() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(DeterminismPass),
        Box::new(HotAllocPass),
        Box::new(ObsIsolationPass),
        Box::new(PanicPass),
        Box::new(StreamHygienePass),
        Box::new(TaxonomyPass),
        Box::new(UnitsPass),
    ]
}
