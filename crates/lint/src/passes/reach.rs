//! The panic-reachability pass: prove the pipeline entry points'
//! transitive closures free of panicking constructs.
//!
//! This replaces the old file-local panic-freedom heuristic. Instead of
//! flagging every `.unwrap()` in the tree, it computes the call-graph
//! closure from the long-running entry points and flags only panic
//! sites a fleet-scale run can actually hit — plus indexing expressions
//! with no visible bounds discipline, which the file-local pass could
//! not see at all. Because the graph over-approximates calls, "not
//! reachable" is a sound verdict; "reachable" names a concrete call
//! path to audit.
//!
//! Waivers: both `// dr-lint: allow(panic-reachability): …` and the
//! legacy `allow(panic-freedom)` spelling are honored, so invariant
//! expects audited under the old pass stay waived.

use crate::diag::{Diagnostic, Severity};
use crate::graph::SymbolGraph;
use crate::lexer::TokenKind;
use crate::source::{SourceFile, Workspace};
use crate::Pass;

pub struct ReachPass;

pub const ID: &str = "panic-reachability";

/// The legacy file-local pass id; its allow comments remain valid.
pub const LEGACY_ID: &str = "panic-freedom";

/// The long-running pipeline entry points whose closures must not
/// panic: stage-1 extraction, record-store replay, fault campaigns,
/// the Slurm scheduler, and the live watch poll loop (which must
/// survive indefinitely against growing, rotating log files).
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("PipelineBuilder", "run_source"),
    ("PipelineBuilder", "run_record_source"),
    ("Campaign", "run_observed"),
    ("Scheduler", "run_observed"),
    ("WatchSession", "run_observed"),
];

/// Identifiers whose presence in a body signals bounds discipline; an
/// indexing expression in such a body is not flagged. Coarse, but the
/// alternative is flow analysis a token lexer cannot support.
const GUARD_IDENTS: &[&str] = &[
    "len",
    "is_empty",
    "get",
    "first",
    "last",
    "min",
    "max",
    "clamp",
    "partition_point",
    "binary_search",
    "saturating_sub",
    "checked_sub",
    "enumerate",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "resize",
    "push",
];

/// Keywords that may directly precede `[` without forming an indexing
/// expression (`let [a, b] = pair;`, `for x in [1, 2]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "ref", "mut", "return", "else", "match", "if", "box", "move", "static",
    "const", "break", "continue", "loop", "while", "for", "as", "use", "pub", "fn", "type",
    "struct", "enum", "union", "trait", "unsafe", "extern", "mod", "await", "async", "yield",
    "where", "dyn", "impl",
];

impl Pass for ReachPass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_graph(&self, ws: &Workspace, g: &SymbolGraph, out: &mut Vec<Diagnostic>) {
        let mut roots = Vec::new();
        for &(owner, name) in ENTRY_POINTS {
            roots.extend(g.find(Some(owner), name));
        }
        let parents = g.reachable_from(&roots);
        for (&i, _) in &parents {
            let sym = &g.symbols[i];
            let Some(file) = ws.file(&sym.path) else {
                continue;
            };
            let sites = panic_sites(file, sym.body);
            if sites.is_empty() {
                continue;
            }
            let via = g.path_to(&parents, i);
            for site in sites {
                if file.is_allowed(ID, site.line) || file.is_allowed(LEGACY_ID, site.line) {
                    continue;
                }
                out.push(Diagnostic {
                    lint: ID,
                    severity: Severity::Error,
                    path: sym.path.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "{} is reachable from a pipeline entry point (via {via}); return a \
                         `Result`, guard the access, or waive with \
                         `// dr-lint: allow({ID}): <invariant>`",
                        site.what
                    ),
                });
            }
        }
    }
}

struct Site {
    what: &'static str,
    line: u32,
    col: u32,
}

/// Scan one function body for panicking constructs.
fn panic_sites(file: &SourceFile, body: Option<(usize, usize)>) -> Vec<Site> {
    let Some((lo, hi)) = body else {
        return Vec::new();
    };
    let sig: Vec<usize> = (lo..=hi.min(file.tokens.len().saturating_sub(1)))
        .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
        .collect();
    let t = |k: usize| -> &str {
        sig.get(k).map_or("", |&i| file.tok_text(&file.tokens[i]))
    };
    let kind_at = |k: usize| -> Option<TokenKind> { sig.get(k).map(|&i| file.tokens[i].kind) };

    let guarded = sig.iter().any(|&i| {
        file.tokens[i].kind == TokenKind::Ident
            && GUARD_IDENTS.contains(&file.tok_text(&file.tokens[i]))
    });

    let mut sites = Vec::new();
    for k in 0..sig.len() {
        let tok = &file.tokens[sig[k]];
        let what = match (tok.kind, file.tok_text(tok)) {
            (TokenKind::Ident, "unwrap") if t(k + 1) == "(" && k > 0 && t(k - 1) == "." => {
                Some("`.unwrap()`")
            }
            (TokenKind::Ident, "expect") if t(k + 1) == "(" && k > 0 && t(k - 1) == "." => {
                Some("`.expect(…)`")
            }
            (TokenKind::Ident, "panic") if t(k + 1) == "!" => Some("`panic!`"),
            (TokenKind::Ident, "unreachable" | "todo" | "unimplemented") if t(k + 1) == "!" => {
                Some("an aborting macro")
            }
            (TokenKind::Punct, "[") if !guarded && k > 0 && is_index_position(kind_at(k - 1), t(k - 1)) => {
                Some("indexing without a visible bounds guard")
            }
            _ => None,
        };
        if let Some(what) = what {
            sites.push(Site {
                what,
                line: tok.line,
                col: tok.col,
            });
        }
    }
    sites
}

/// Whether a `[` preceded by this token is an indexing expression
/// rather than an array literal, slice type, or attribute.
fn is_index_position(kind: Option<TokenKind>, text: &str) -> bool {
    match kind {
        Some(TokenKind::Ident) => !NON_INDEX_KEYWORDS.contains(&text),
        Some(TokenKind::Punct) => matches!(text, ")" | "]" | "?"),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SymbolGraph;
    use crate::source::{SourceFile, Workspace};

    fn check(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_files(
            files
                .iter()
                .map(|(p, s)| SourceFile::new(*p, *s))
                .collect(),
        );
        let g = SymbolGraph::build(&ws);
        let mut out = Vec::new();
        ReachPass.check_graph(&ws, &g, &mut out);
        out
    }

    const ENTRY: &str = "struct PipelineBuilder;\nimpl PipelineBuilder {\n    pub fn run_source(&self) { step_one(); }\n}\n";

    #[test]
    fn reachable_unwrap_is_flagged_with_its_call_path() {
        let src = format!(
            "{ENTRY}fn step_one() {{ step_two(); }}\nfn step_two() {{ Some(1).unwrap(); }}\n"
        );
        let d = check(&[("crates/demo/src/lib.rs", &src)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, ID);
        assert!(d[0].message.contains("PipelineBuilder::run_source → step_one → step_two"));
    }

    #[test]
    fn unreachable_unwrap_is_not_flagged() {
        let src = format!("{ENTRY}fn step_one() {{}}\nfn orphan() {{ Some(1).unwrap(); }}\n");
        assert!(check(&[("crates/demo/src/lib.rs", &src)]).is_empty());
    }

    #[test]
    fn no_entry_points_means_no_findings() {
        assert!(check(&[(
            "crates/demo/src/lib.rs",
            "fn free() { Some(1).unwrap(); panic!(\"x\"); }\n"
        )])
        .is_empty());
    }

    #[test]
    fn unguarded_indexing_in_the_closure_is_flagged() {
        let src = format!("{ENTRY}fn step_one(v: &[u32]) -> u32 {{ v[3] }}\n");
        let d = check(&[("crates/demo/src/lib.rs", &src)]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("bounds guard"));
    }

    #[test]
    fn guarded_indexing_is_not_flagged() {
        let src = format!(
            "{ENTRY}fn step_one(v: &[u32]) -> u32 {{ if v.len() > 3 {{ v[3] }} else {{ 0 }} }}\n"
        );
        assert!(check(&[("crates/demo/src/lib.rs", &src)]).is_empty());
    }

    #[test]
    fn array_literals_and_slice_patterns_are_not_indexing() {
        let src = format!(
            "{ENTRY}fn step_one() {{ let [a, b] = [1u32, 2]; for x in [a, b] {{ let _ = x; }} }}\n"
        );
        assert!(check(&[("crates/demo/src/lib.rs", &src)]).is_empty());
    }

    #[test]
    fn legacy_panic_freedom_allow_comments_still_waive() {
        let src = format!(
            "{ENTRY}fn step_one(re: &str) {{\n    // dr-lint: allow(panic-freedom): pattern is a compile-time constant\n    compile(re).expect(\"static pattern\");\n}}\nfn compile(_: &str) -> Result<(), ()> {{ Ok(()) }}\n"
        );
        assert!(check(&[("crates/demo/src/lib.rs", &src)]).is_empty());
    }

    #[test]
    fn aborting_macros_in_the_closure_are_flagged() {
        let src = format!("{ENTRY}fn step_one() {{ todo!() }}\n");
        let d = check(&[("crates/demo/src/lib.rs", &src)]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("aborting macro"));
    }

    #[test]
    fn every_entry_point_roots_the_closure() {
        let src = "struct Campaign;\nimpl Campaign { pub fn run_observed(&self) { helper(); } }\nstruct Scheduler;\nimpl Scheduler { pub fn run_observed(&self) {} }\nfn helper() { Some(1).unwrap(); }\n";
        let d = check(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Campaign::run_observed → helper"));
    }

    #[test]
    fn record_replay_entry_point_roots_the_closure() {
        let src = "struct PipelineBuilder;\nimpl PipelineBuilder { pub fn run_record_source(&self) { replay(); } }\nfn replay() { Some(1).unwrap(); }\n";
        let d = check(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(d.len(), 1);
        assert!(d[0]
            .message
            .contains("PipelineBuilder::run_record_source → replay"));
    }

    #[test]
    fn watch_poll_entry_point_roots_the_closure() {
        // The live watch loop is an entry point: a panic anywhere in its
        // closure would kill a monitoring deployment mid-tail.
        let src = "struct WatchSession;\nimpl WatchSession { pub fn run_observed(&mut self) { fold(); } }\nfn fold() { Some(1).unwrap(); }\n";
        let d = check(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("WatchSession::run_observed → fold"));
    }
}
