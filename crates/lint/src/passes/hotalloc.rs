//! The hot-alloc pass: no per-call heap allocation inside marked Stage I
//! match loops.
//!
//! The extraction engine's throughput rests on steady-state
//! allocation-freedom: thread lists, capture-slot pools, and scratch
//! buffers are reused across calls, so the inner loops run without
//! touching the allocator. That property is invisible to the type system
//! and trivially regressed by a drive-by `Vec::new()`. Hot code is
//! fenced with marker comments — `hot(begin)` opens a region and
//! `hot(end)` closes it, each written after the usual `dr-lint:` comment
//! prefix — and inside a region the allocating forms `Vec::new`,
//! `vec![...]`, and `Box::new` are flagged (reuse the scratch state
//! threaded through the call instead, e.g. `MatchScratch`).
//!
//! The workspace check ratchets the markers themselves: the Stage I hot
//! files must keep at least one balanced region each, so deleting the
//! fences does not silently retire the invariant.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::{SourceFile, Workspace};
use crate::Pass;

pub struct HotAllocPass;

pub const ID: &str = "hot-alloc";

/// The marker spellings, assembled so this file's own comments never trip
/// the region scanner.
const PREFIX: &str = "dr-lint:";
const BEGIN: &str = "hot(begin)";
const END: &str = "hot(end)";

/// Files whose hot regions the workspace check requires: the Stage I
/// match loops the throughput benchmark tracks.
const REQUIRED: &[&str] = &[
    "crates/logscan/src/regex.rs",
    "crates/logscan/src/syslog.rs",
    "crates/logscan/src/extract.rs",
];

/// Whether a comment token is a region marker.
fn marker(text: &str, kind: &str) -> bool {
    text.find(PREFIX)
        .map(|p| text[p + PREFIX.len()..].trim_start().starts_with(kind))
        .unwrap_or(false)
}

/// Per-token "inside a hot region" flags.
fn hot_flags(file: &SourceFile) -> Vec<bool> {
    let mut flags = Vec::with_capacity(file.tokens.len());
    let mut hot = false;
    for t in &file.tokens {
        if t.kind == TokenKind::Comment {
            let s = file.tok_text(t);
            if marker(s, BEGIN) {
                hot = true;
            } else if marker(s, END) {
                hot = false;
            }
        }
        flags.push(hot);
    }
    flags
}

impl Pass for HotAllocPass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let flags = hot_flags(file);
        let sig: Vec<usize> = (0..file.tokens.len())
            .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
            .collect();
        let t = |k: usize| -> &str {
            sig.get(k)
                .map_or("", |&i| file.tok_text(&file.tokens[i]))
        };
        for (k, &i) in sig.iter().enumerate() {
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident || !flags[i] || file.in_test_region(i) {
                continue;
            }
            let form = match file.tok_text(tok) {
                "vec" if t(k + 1) == "!" => Some("vec![...]"),
                name @ ("Vec" | "Box")
                    if t(k + 1) == ":" && t(k + 2) == ":" && t(k + 3) == "new" =>
                {
                    Some(if name == "Vec" { "Vec::new()" } else { "Box::new()" })
                }
                _ => None,
            };
            if let Some(form) = form {
                out.push(Diagnostic {
                    lint: ID,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "`{form}` allocates on every call inside a hot match loop; reuse \
                         pooled scratch state (see `MatchScratch`) or hoist the allocation \
                         out of the region"
                    ),
                });
            }
        }
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for path in REQUIRED {
            let Some(file) = ws.file(path) else {
                out.push(Diagnostic {
                    lint: ID,
                    severity: Severity::Error,
                    path: path.to_string(),
                    line: 1,
                    col: 1,
                    message: "Stage I hot file is missing; update the hot-alloc pass's \
                              required-file list if it moved"
                        .to_string(),
                });
                continue;
            };
            let comments = file
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Comment)
                .map(|t| file.tok_text(t));
            let (mut begins, mut ends) = (0usize, 0usize);
            for c in comments {
                if marker(c, BEGIN) {
                    begins += 1;
                } else if marker(c, END) {
                    ends += 1;
                }
            }
            let message = if begins == 0 {
                Some(
                    "Stage I hot file has no hot-region markers; the allocation-freedom \
                     ratchet requires at least one fenced match loop"
                        .to_string(),
                )
            } else if begins != ends {
                Some(format!(
                    "unbalanced hot-region markers ({begins} begin, {ends} end); every \
                     region must be closed"
                ))
            } else {
                None
            };
            if let Some(message) = message {
                out.push(Diagnostic {
                    lint: ID,
                    severity: Severity::Error,
                    path: path.to_string(),
                    line: 1,
                    col: 1,
                    message,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("fixture.rs", src);
        let mut out = Vec::new();
        HotAllocPass.check_file(&f, &mut out);
        out
    }

    const HOT: &str = "// dr-lint: hot(begin)\n";
    const COLD: &str = "// dr-lint: hot(end)\n";

    #[test]
    fn fires_on_allocation_inside_hot_region() {
        let src = format!(
            "{HOT}fn step() {{ let a: Vec<u32> = Vec::new(); let b = vec![0u8; 4]; \
             let c = Box::new(1); }}\n{COLD}"
        );
        let d = check(&src);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d[0].message.contains("Vec::new()"));
        assert!(d[1].message.contains("vec![...]"));
        assert!(d[2].message.contains("Box::new()"));
        assert!(d.iter().all(|d| d.lint == ID));
    }

    #[test]
    fn cold_code_and_closed_regions_are_exempt() {
        let src = format!(
            "fn before() {{ let v = Vec::new(); }}\n{HOT}fn hot() {{ step(); }}\n{COLD}\
             fn after() {{ let v = vec![1]; let b = Box::new(2); }}\n"
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn vec_type_and_method_calls_are_fine_in_hot_code() {
        // Only the allocating constructors are flagged — `Vec` in types,
        // `with_capacity` on reused buffers, pushes, etc. all pass.
        let src = format!(
            "{HOT}fn hot(buf: &mut Vec<u32>) {{ buf.clear(); buf.push(1); }}\n{COLD}"
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn test_regions_inside_hot_fences_are_exempt() {
        let src = format!(
            "{HOT}#[cfg(test)]\nmod tests {{ fn f() {{ let v = Vec::new(); }} }}\n{COLD}"
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn allow_comment_waives_via_runner_contract() {
        let src = format!(
            "{HOT}// dr-lint: allow(hot-alloc): cold error path\nfn f() {{ let v = Vec::new(); }}\n{COLD}"
        );
        let f = SourceFile::new("fixture.rs", src);
        let mut out = Vec::new();
        HotAllocPass.check_file(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert!(f.is_allowed(ID, out[0].line));
    }

    #[test]
    fn workspace_check_requires_markers_in_stage1_files() {
        let ws = Workspace::from_files(vec![
            SourceFile::new(
                "crates/logscan/src/regex.rs",
                format!("{HOT}fn hot() {{}}\n{COLD}"),
            ),
            SourceFile::new("crates/logscan/src/syslog.rs", "fn no_markers() {}\n"),
            SourceFile::new(
                "crates/logscan/src/extract.rs",
                format!("{HOT}fn open_region() {{}}\n"),
            ),
        ]);
        let mut out = Vec::new();
        HotAllocPass.check_workspace(&ws, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("no hot-region markers"));
        assert!(out[1].message.contains("unbalanced"));
    }
}
