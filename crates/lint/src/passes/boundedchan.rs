//! The bounded-channels pass: library crates must not create unbounded
//! channels.
//!
//! The pipeline's memory contract is O(workers × chunk_bytes) resident
//! text, end to end. An unbounded `mpsc::channel` between a producer and
//! a slower consumer silently repeals that bound: the queue absorbs the
//! entire corpus at whatever rate the disk delivers it. Every
//! cross-thread handoff in library code must therefore use a bounded
//! primitive — `mpsc::sync_channel(n)` (the wave [`Prefetcher`] uses the
//! rendezvous form, capacity 0) — whose `send` exerts back-pressure.
//!
//! The pass flags the token sequence `mpsc :: channel`, which catches
//! both the call site (`mpsc::channel()`) and the import
//! (`use std::sync::mpsc::channel`). `sync_channel` is a distinct ident
//! token and never matches. Test regions and code outside `crates/*` are
//! exempt, as is the lint tool itself. A deliberate unbounded queue can
//! be waived with
//! `// dr-lint: allow(bounded-channels): <why the queue is bounded>`.
//!
//! [`Prefetcher`]: ../../../core/src/source.rs

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::Pass;

pub struct BoundedChannelsPass;

pub const ID: &str = "bounded-channels";

impl Pass for BoundedChannelsPass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !file.path.starts_with("crates/") || file.path.starts_with("crates/lint/") {
            return;
        }
        let sig: Vec<usize> = (0..file.tokens.len())
            .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
            .collect();
        let t = |j: usize| sig.get(j).map_or("", |&i| file.tok_text(&file.tokens[i]));
        for (k, &i) in sig.iter().enumerate() {
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident
                || file.tok_text(tok) != "channel"
                || file.in_test_region(i)
            {
                continue;
            }
            if k >= 3 && t(k - 3) == "mpsc" && t(k - 2) == ":" && t(k - 1) == ":" {
                out.push(Diagnostic {
                    lint: ID,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: "unbounded channel in a library crate: `mpsc::channel` \
                              queues without back-pressure and voids the bounded-memory \
                              contract — use `mpsc::sync_channel(n)` so `send` blocks"
                        .to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check_at(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path, src);
        let mut out = Vec::new();
        BoundedChannelsPass.check_file(&f, &mut out);
        out
    }

    #[test]
    fn fires_on_unbounded_channel_call() {
        let d = check_at(
            "crates/core/src/source.rs",
            "use std::sync::mpsc;\nfn f() { let (_tx, _rx) = mpsc::channel::<u64>(); }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, ID);
        assert!(d[0].message.contains("sync_channel"));
    }

    #[test]
    fn fires_on_the_import_form() {
        let d = check_at(
            "crates/core/src/source.rs",
            "use std::sync::mpsc::channel;\n",
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn sync_channel_is_clean() {
        let d = check_at(
            "crates/core/src/source.rs",
            "use std::sync::mpsc;\nfn f() { let (_tx, _rx) = mpsc::sync_channel::<u64>(0); }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn test_regions_and_non_library_code_are_exempt() {
        let in_tests = check_at(
            "crates/core/src/source.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { let _ = std::sync::mpsc::channel::<u64>(); }\n}\n",
        );
        assert!(in_tests.is_empty());
        let in_bin = check_at(
            "src/main.rs",
            "fn f() { let _ = std::sync::mpsc::channel::<u64>(); }",
        );
        assert!(in_bin.is_empty());
    }

    #[test]
    fn allow_comment_waives_it() {
        let f = SourceFile::new(
            "crates/core/src/source.rs",
            "// dr-lint: allow(bounded-channels): drained before join, provably < 2 waves\n\
             fn f() { let _ = std::sync::mpsc::channel::<u64>(); }",
        );
        let mut out = Vec::new();
        BoundedChannelsPass.check_file(&f, &mut out);
        let d: Vec<_> = out
            .into_iter()
            .filter(|d| !f.is_allowed(d.lint, d.line))
            .collect();
        assert!(d.is_empty());
    }
}
