//! The observability-isolation pass: measured wall time must never flow
//! back into analysis results.
//!
//! The determinism pass grants dr-obs's clock module the workspace's one
//! wall-clock exemption. That is only safe if the flow stays one-way:
//! instrumented library code *writes* spans and counters into a
//! `MetricsSink` and never reads anything back. This pass closes the
//! read-back loophole by flagging, outside the observability layer
//! (`crates/obs/`), the benchmark harness (`crates/bench/`), and the CLI
//! binaries (`src/bin/`):
//!
//! * `export_json` — the metrics registry read-back; exporting belongs
//!   to the CLI and benchmark layers, never to analysis code;
//! * `Stopwatch` — direct timing, which would let elapsed time steer
//!   results;
//! * `clock::now` — the raw clock read behind it.
//!
//! A legitimate boundary case can be waived with
//! `// dr-lint: allow(obs-isolation): <why time cannot reach results>`.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::Pass;

pub struct ObsIsolationPass;

pub const ID: &str = "obs-isolation";

/// Layers allowed to read the clock and export recorded metrics.
const ALLOWED_PREFIXES: [&str; 3] = ["crates/obs/", "crates/bench/", "src/bin/"];

impl Pass for ObsIsolationPass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if ALLOWED_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
            return;
        }
        let sig: Vec<usize> = (0..file.tokens.len())
            .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
            .collect();
        for (k, &i) in sig.iter().enumerate() {
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident || file.in_test_region(i) {
                continue;
            }
            let message = match file.tok_text(tok) {
                "export_json" => Some(
                    "metrics read-back in analysis code: `export_json` belongs to the \
                     CLI/benchmark layer — instrumented code holds a write-only sink"
                        .to_string(),
                ),
                "Stopwatch" => Some(
                    "`Stopwatch` times code outside the observability/benchmark layers; \
                     record a span via `MetricsSink::span` so wall time stays out of results"
                        .to_string(),
                ),
                "clock" if followed_by_now(file, &sig, k) => Some(
                    "raw wall-clock read via `clock::now` outside the observability layer; \
                     results must depend only on seeds and inputs"
                        .to_string(),
                ),
                _ => None,
            };
            if let Some(message) = message {
                out.push(Diagnostic {
                    lint: ID,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message,
                });
            }
        }
    }
}

/// True when the tokens after `sig[k]` spell `::now`.
fn followed_by_now(file: &SourceFile, sig: &[usize], k: usize) -> bool {
    let t = |j: usize| sig.get(j).map_or("", |&i| file.tok_text(&file.tokens[i]));
    t(k + 1) == ":" && t(k + 2) == ":" && t(k + 3) == "now"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check_at(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path, src);
        let mut out = Vec::new();
        ObsIsolationPass.check_file(&f, &mut out);
        out
    }

    #[test]
    fn fires_on_metric_read_back_in_library_code() {
        let d = check_at(
            "crates/core/src/pipeline.rs",
            "fn f(s: &MetricsSink) { let _ = s.export_json(); }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, ID);
        assert!(d[0].message.contains("export_json"));
    }

    #[test]
    fn fires_on_stopwatch_and_clock_now_outside_obs() {
        let d = check_at(
            "crates/core/src/shard.rs",
            "fn f() { let w = dr_obs::clock::Stopwatch::start(); }",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Stopwatch"));
        let d = check_at(
            "crates/faults/src/campaign.rs",
            "fn f() { let t = dr_obs::clock::now(); }",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("clock::now"));
    }

    #[test]
    fn clock_ident_without_now_is_fine() {
        assert!(check_at(
            "crates/core/src/lib.rs",
            "fn f() { let clock = simulation_clock(); clock.advance(); }",
        )
        .is_empty());
    }

    #[test]
    fn allowed_layers_are_exempt() {
        let src = "fn f(s: &MetricsSink) { let _ = s.export_json(); let _w = Stopwatch::start(); }";
        assert!(check_at("crates/obs/src/sink.rs", src).is_empty());
        assert!(check_at("crates/bench/src/stage1.rs", src).is_empty());
        assert!(check_at("src/bin/gpures.rs", src).is_empty());
        // The facade itself is not exempt.
        assert_eq!(check_at("src/lib.rs", src).len(), 2);
    }

    #[test]
    fn test_code_and_comments_are_exempt() {
        assert!(check_at(
            "crates/core/src/pipeline.rs",
            "#[cfg(test)]\nmod tests { fn f(s: &MetricsSink) { s.export_json(); } }",
        )
        .is_empty());
        assert!(check_at(
            "crates/core/src/pipeline.rs",
            "// callers use export_json() and Stopwatch\nfn f() {}",
        )
        .is_empty());
    }

    #[test]
    fn incremental_analysis_files_are_inside_the_fence() {
        // The fold/tail/watch layer is long-running library code: a
        // wall-clock read or metric read-back there would break replay
        // determinism, so the fence must cover these files.
        let wall = "fn f() { let t = dr_obs::clock::now(); }";
        let read_back = "fn f(s: &MetricsSink) { let _ = s.export_json(); }";
        for path in [
            "crates/core/src/engine.rs",
            "crates/core/src/tail.rs",
            "crates/core/src/watch.rs",
            "crates/core/src/stream.rs",
        ] {
            assert_eq!(check_at(path, wall).len(), 1, "{path} must fence clock::now");
            assert_eq!(check_at(path, read_back).len(), 1, "{path} must fence export_json");
        }
        // gauge_set is a *write* and stays legal in library code.
        assert!(check_at(
            "crates/core/src/watch.rs",
            "fn f(s: &MetricsSink) { s.gauge_set(Stage::Stats, \"watch_window_errors\", 1.0); }",
        )
        .is_empty());
    }

    #[test]
    fn allow_comment_records_a_waiver_for_the_runner() {
        let f = SourceFile::new(
            "crates/core/src/pipeline.rs",
            "// dr-lint: allow(obs-isolation): boundary export for the CLI\nfn f(s: &MetricsSink) { s.export_json(); }\n",
        );
        let mut out = Vec::new();
        ObsIsolationPass.check_file(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert!(f.is_allowed(ID, out[0].line));
    }
}
