//! The scenario-hygiene pass.
//!
//! Two invariants around the `.scn` scenario front end:
//!
//! 1. **Shipped scenarios stay loadable.** Every file under
//!    `scenarios/` is checked with a lightweight structural verifier
//!    (header first, name matches the file stem, known statement
//!    keywords, balanced braces, the required statements present) so a
//!    battery file cannot rot in the tree and only fail at `gpures
//!    sweep` time. This is deliberately *not* the real `dr-scenario`
//!    parser — dr-lint is dependency-free — but every rule here is a
//!    strict subset of what that parser rejects, so a clean lint never
//!    contradicts a parse error.
//!
//! 2. **One compiler for campaign configs.** `CampaignConfig` carries
//!    enough coupled knobs (fleet shape, per-class rates, RAS tuning)
//!    that from-scratch struct literals outside its home crates drift
//!    from the presets silently. Outside `crates/faults/` and
//!    `crates/scenario/`, non-test code must go through a preset
//!    constructor or the scenario compiler; functional-update literals
//!    (`CampaignConfig { days: 60.0, ..CampaignConfig::tiny(7) }`) are
//!    fine — they start from a preset.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::{SourceFile, Workspace};
use crate::Pass;

pub struct ScenarioHygienePass;

pub const ID: &str = "scenario-hygiene";

/// Crates allowed to build `CampaignConfig` from scratch: its home
/// crate and the compiler that exists to produce it.
const LITERAL_OK_PREFIXES: [&str; 2] = ["crates/faults/", "crates/scenario/"];

/// Every statement keyword the `.scn` grammar accepts at top level.
const KEYWORDS: [&str; 12] = [
    "scenario",
    "description",
    "fleet",
    "duration_days",
    "burst_gap_s",
    "seeds",
    "rates",
    "text",
    "repair",
    "tuning",
    "jobs",
    "expect",
];

/// Statements every scenario must have (the compiler refuses without
/// them; `seeds` is additionally required by `Scenario::compile`).
const REQUIRED: [&str; 4] = ["fleet", "duration_days", "rates", "seeds"];

impl Pass for ScenarioHygienePass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if LITERAL_OK_PREFIXES
            .iter()
            .any(|p| file.path.starts_with(p))
        {
            return;
        }
        check_config_literals(file, out);
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for (path, text) in &ws.scenarios {
            check_scn(path, text, out);
        }
    }
}

fn diag(path: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        lint: ID,
        severity: Severity::Error,
        path: path.to_string(),
        line,
        col: 1,
        message,
    }
}

/// Flag from-scratch `CampaignConfig { … }` struct literals in non-test
/// code: a literal without a `..base` functional update bypasses every
/// preset invariant at once.
fn check_config_literals(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let sig: Vec<usize> = (0..file.tokens.len())
        .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
        .collect();
    let t = |k: usize| -> &str {
        sig.get(k).map_or("", |&i| file.tok_text(&file.tokens[i]))
    };
    for k in 0..sig.len() {
        if t(k) != "CampaignConfig" || t(k + 1) != "{" || file.in_test_region(sig[k]) {
            continue;
        }
        // The declaration, impl blocks, and type positions (a return
        // type `-> CampaignConfig {`, `impl Default for CampaignConfig`)
        // are not literals.
        if k > 0 && matches!(t(k - 1), "struct" | "impl" | "for" | ">") {
            continue;
        }
        // Scan the literal body for a `..` functional update at depth 1.
        let mut depth = 0i32;
        let mut has_spread = false;
        let mut j = k + 1;
        while j < sig.len() {
            match t(j) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "." if depth == 1 && t(j + 1) == "." => has_spread = true,
                _ => {}
            }
            j += 1;
        }
        if !has_spread {
            out.push(diag(
                &file.path,
                file.tokens[sig[k]].line,
                "from-scratch `CampaignConfig { … }` literal outside crates/faults — start \
                 from a preset constructor (`..CampaignConfig::tiny(seed)`) or compile a \
                 scenario instead"
                    .to_string(),
            ));
        }
    }
}

/// Structural check of one shipped `.scn` file. Line-oriented: strip
/// comments/strings, track brace depth, verify the header, statement
/// keywords, balance, and required-statement presence.
fn check_scn(path: &str, text: &str, out: &mut Vec<Diagnostic>) {
    let stem = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".scn");
    let mut depth = 0i32;
    let mut seen_header = false;
    let mut seen: Vec<&str> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let (line, unterminated) = strip_scn_line(raw);
        if unterminated {
            out.push(diag(path, line_no, "unterminated string".to_string()));
            return;
        }
        let stripped = line.trim();
        if stripped.is_empty() {
            continue;
        }
        if depth == 0 {
            let word: &str = stripped
                .split(|c: char| c.is_whitespace() || matches!(c, '=' | '.' | '{'))
                .next()
                .unwrap_or("");
            match KEYWORDS.iter().find(|&&k| k == word) {
                None => {
                    out.push(diag(
                        path,
                        line_no,
                        format!("`{word}` is not a .scn statement keyword"),
                    ));
                    return;
                }
                Some(&k) => {
                    if !seen_header {
                        if k != "scenario" {
                            out.push(diag(
                                path,
                                line_no,
                                "the `scenario \"name\"` header must come first".to_string(),
                            ));
                            return;
                        }
                        // The real parser requires the quoted name; here
                        // we additionally pin name == file stem so
                        // `gpures sweep scenarios/` output is navigable.
                        let name = raw
                            .split('"')
                            .nth(1)
                            .unwrap_or("");
                        if name != stem {
                            out.push(diag(
                                path,
                                line_no,
                                format!(
                                    "scenario is named `{name}` but the file stem is `{stem}` \
                                     — keep them identical"
                                ),
                            ));
                        }
                        seen_header = true;
                    }
                    seen.push(k);
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                out.push(diag(path, line_no, "unbalanced `}`".to_string()));
                return;
            }
        }
    }
    if depth != 0 {
        let last = text.lines().count() as u32;
        out.push(diag(path, last.max(1), "unclosed `{` block".to_string()));
        return;
    }
    if !seen_header {
        out.push(diag(path, 1, "empty scenario file".to_string()));
        return;
    }
    for req in REQUIRED {
        if !seen.contains(&req) {
            out.push(diag(
                path,
                1,
                format!("missing required `{req}` statement"),
            ));
        }
    }
}

/// One `.scn` line with comments removed and string contents blanked
/// (so braces in strings don't count); returns `(cleaned, unterminated)`.
fn strip_scn_line(raw: &str) -> (String, bool) {
    let mut out = String::with_capacity(raw.len());
    let mut in_string = false;
    for c in raw.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                out.push('"');
            }
            '#' if !in_string => break,
            _ if in_string => out.push(' '),
            _ => out.push(c),
        }
    }
    (out, in_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourceFile, Workspace};

    fn scn_diags(name: &str, text: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_files(Vec::new())
            .with_scenarios(vec![(format!("scenarios/{name}.scn"), text.to_string())]);
        let mut out = Vec::new();
        ScenarioHygienePass.check_workspace(&ws, &mut out);
        out
    }

    const GOOD: &str = "scenario \"demo\"  # a comment\n\
                        fleet tiny\n\
                        duration_days = 30\n\
                        seeds = [7]\n\
                        rates ampere_delta\n\
                        text { nodes = 4 }\n";

    #[test]
    fn well_formed_scenario_is_clean() {
        assert!(scn_diags("demo", GOOD).is_empty());
    }

    #[test]
    fn name_must_match_file_stem() {
        let d = scn_diags("other", GOOD);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("file stem is `other`"), "{d:?}");
    }

    #[test]
    fn unknown_keyword_unclosed_block_and_missing_statements_fire() {
        let d = scn_diags("demo", "scenario \"demo\"\nbogus = 3\n");
        assert!(d[0].message.contains("not a .scn statement keyword"));
        assert_eq!(d[0].line, 2);

        let d = scn_diags("demo", "scenario \"demo\"\ntext {\n");
        assert!(d[0].message.contains("unclosed"), "{d:?}");

        let d = scn_diags("demo", "scenario \"demo\"\nfleet tiny\n");
        let msgs: Vec<&str> = d.iter().map(|x| x.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("`duration_days`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`rates`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`seeds`")), "{msgs:?}");
    }

    #[test]
    fn header_must_come_first_and_braces_in_strings_are_inert() {
        let d = scn_diags("demo", "fleet tiny\n");
        assert!(d[0].message.contains("must come first"));

        let with_brace = "scenario \"demo\"\ndescription \"curly { noise\"\nfleet tiny\n\
                          duration_days = 30\nseeds = [7]\nrates ampere_delta\n";
        assert!(scn_diags("demo", with_brace).is_empty());
    }

    fn rs_diags(path: &str, text: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path, text);
        let mut out = Vec::new();
        ScenarioHygienePass.check_file(&f, &mut out);
        out
    }

    #[test]
    fn from_scratch_config_literal_is_flagged() {
        let d = rs_diags(
            "crates/report/src/demo.rs",
            "fn f() -> CampaignConfig { CampaignConfig { seed: 7, shape: DeltaShape::tiny() } }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("preset constructor"));
    }

    #[test]
    fn spread_literals_home_crates_and_tests_are_exempt() {
        let spread = "fn f() { let c = CampaignConfig { duration_days: 6.0, \
                      ..CampaignConfig::tiny(7) }; }\n";
        assert!(rs_diags("crates/report/src/demo.rs", spread).is_empty());

        let raw = "fn f() { CampaignConfig { seed: 7 }; }\n";
        assert!(rs_diags("crates/faults/src/campaign.rs", raw).is_empty());
        assert!(rs_diags("crates/scenario/src/parse.rs", raw).is_empty());

        let in_test = "#[cfg(test)]\nmod tests {\n  fn f() { CampaignConfig { seed: 7 }; }\n}\n";
        assert!(rs_diags("crates/report/src/demo.rs", in_test).is_empty());

        let decl = "pub struct CampaignConfig { pub seed: u64 }\nimpl CampaignConfig { }\n";
        assert!(rs_diags("crates/report/src/demo.rs", decl).is_empty());
    }
}
