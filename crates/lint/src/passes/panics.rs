//! The panic-freedom pass: ratchet `.unwrap()`, `.expect(…)`, and
//! `panic!` out of non-test library code.
//!
//! A long-running analysis pipeline should surface malformed input as
//! `Result`s, not process aborts. Existing debt lives in the baseline
//! with a count that may only shrink; `// dr-lint: allow(panic-freedom):
//! <invariant>` documents the few expects that encode real invariants
//! (e.g. a pattern known to compile).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::Pass;

pub struct PanicPass;

pub const ID: &str = "panic-freedom";

impl Pass for PanicPass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let sig: Vec<usize> = (0..file.tokens.len())
            .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
            .collect();
        let t = |j: usize| -> &str {
            sig.get(j).map_or("", |&i| file.tok_text(&file.tokens[i]))
        };
        for (k, &i) in sig.iter().enumerate() {
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident || file.in_test_region(i) {
                continue;
            }
            let message = match file.tok_text(tok) {
                "unwrap" if t(k + 1) == "(" && k > 0 && t(k - 1) == "." => Some(
                    "`.unwrap()` aborts the process on malformed input; return a `Result`, \
                     use `unwrap_or`/pattern matching, or document the invariant with \
                     `.expect(\"…\")` plus an allow comment",
                ),
                "expect" if t(k + 1) == "(" && k > 0 && t(k - 1) == "." => Some(
                    "`.expect(…)` aborts the process; prefer returning a `Result`, or keep it \
                     with `// dr-lint: allow(panic-freedom): <invariant>` when it encodes one",
                ),
                "panic" if t(k + 1) == "!" => Some(
                    "`panic!` in library code aborts the caller; return an error instead \
                     (asserts on documented preconditions belong in the fn's `# Panics` doc)",
                ),
                _ => None,
            };
            if let Some(message) = message {
                out.push(Diagnostic {
                    lint: ID,
                    severity: Severity::Warning,
                    path: file.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: message.to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{apply, Baseline};
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("fixture.rs", src);
        let mut out = Vec::new();
        PanicPass.check_file(&f, &mut out);
        out
    }

    #[test]
    fn fires_on_unwrap_expect_and_panic() {
        let d = check(
            "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"set\");\n    if a == b { panic!(\"boom\"); }\n    a\n}\n",
        );
        let kinds: Vec<u32> = d.iter().map(|d| d.line).collect();
        assert_eq!(kinds, [2, 3, 4]);
        assert!(d.iter().all(|d| d.lint == ID));
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        assert!(check("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }").is_empty());
        assert!(check("fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }").is_empty());
        assert!(check("fn f(x: Option<u32>) { x.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(check("#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(\"ok in tests\"); }\n}\n").is_empty());
    }

    #[test]
    fn baseline_suppresses_known_debt_but_not_growth() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let diags = {
            let f = SourceFile::new("crates/demo/src/lib.rs", src);
            let mut out = Vec::new();
            PanicPass.check_file(&f, &mut out);
            out
        };
        assert_eq!(diags.len(), 1);
        let b = Baseline::parse("panic-freedom 1 crates/demo/src/lib.rs").expect("parses");
        let outcome = apply(&b, diags.clone());
        assert!(outcome.active.is_empty(), "baselined debt is suppressed");

        // One more unwrap than the ledger allows: the group fails.
        let grown = {
            let f = SourceFile::new(
                "crates/demo/src/lib.rs",
                "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Option<u32>) -> u32 { x.unwrap() }\n",
            );
            let mut out = Vec::new();
            PanicPass.check_file(&f, &mut out);
            out
        };
        let outcome = apply(&b, grown);
        assert_eq!(outcome.active.len(), 2);
        assert_eq!(outcome.over.len(), 1);
    }
}
