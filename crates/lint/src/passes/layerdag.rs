//! The layer-dag pass: `use` edges between workspace crates must stay
//! inside the declared dependency DAG.
//!
//! The DAG itself lives in [`crate::graph::CRATES`] (mirroring the
//! Cargo manifests, leaves first). Cargo already rejects undeclared
//! dependencies at build time; what it cannot reject is a *declared*
//! dependency that violates the intended layering — e.g. someone adding
//! `dr-report` to `dr-stats`'s manifest to borrow a helper. This pass
//! pins the layering in code, so widening it is a reviewed lint-table
//! change rather than a quiet Cargo.toml edit. Test-region imports are
//! exempt (dev-dependencies may reach across layers, e.g. dr-predict's
//! test harness using dr-faults).

use crate::diag::{Diagnostic, Severity};
use crate::graph::{crate_of, SymbolGraph, CRATES};
use crate::source::Workspace;
use crate::Pass;

pub struct LayerDagPass;

pub const ID: &str = "layer-dag";

impl Pass for LayerDagPass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_graph(&self, _ws: &Workspace, g: &SymbolGraph, out: &mut Vec<Diagnostic>) {
        for (path, u) in &g.uses {
            let Some(from) = crate_of(path) else {
                continue;
            };
            let Some(to) = CRATES.iter().position(|c| c.lib == u.first_segment) else {
                continue; // std, external, or module-relative path
            };
            if to == from || CRATES[from].deps.contains(&to) {
                continue;
            }
            out.push(Diagnostic {
                lint: ID,
                severity: Severity::Error,
                path: path.clone(),
                line: u.line,
                col: 1,
                message: format!(
                    "`use {}` from `{}` violates the declared crate layer DAG; if the \
                     layering should widen, change `CRATES` in crates/lint/src/graph.rs \
                     alongside the manifest",
                    u.first_segment, CRATES[from].lib
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SymbolGraph;
    use crate::source::{SourceFile, Workspace};

    fn check(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_files(
            files
                .iter()
                .map(|(p, s)| SourceFile::new(*p, *s))
                .collect(),
        );
        let g = SymbolGraph::build(&ws);
        let mut out = Vec::new();
        LayerDagPass.check_graph(&ws, &g, &mut out);
        out
    }

    #[test]
    fn downward_use_edges_are_fine() {
        assert!(check(&[(
            "crates/report/src/lib.rs",
            "use dr_stats::quantiles;\nuse resilience_core::StudyResults;\nuse std::fmt;\n"
        )])
        .is_empty());
    }

    #[test]
    fn upward_use_edges_are_flagged() {
        let d = check(&[("crates/stats/src/lib.rs", "use dr_report::figures;\n")]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, ID);
        assert!(d[0].message.contains("dr_report"));
    }

    #[test]
    fn sideways_use_edges_are_flagged() {
        // availsim and des are unrelated leaves.
        let d = check(&[("crates/availsim/src/lib.rs", "use dr_des::Engine;\n")]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn test_region_imports_are_exempt() {
        // dr-predict dev-depends on dr-faults for its test harness.
        assert!(check(&[(
            "crates/predict/src/lib.rs",
            "use dr_stats::quantiles;\n#[cfg(test)]\nmod tests {\n    use dr_faults::Campaign;\n}\n"
        )])
        .is_empty());
    }

    #[test]
    fn the_root_package_may_use_everything() {
        assert!(check(&[(
            "src/bin/gpures.rs",
            "use dr_report::paper;\nuse dr_lint::run;\nuse dr_predict::features;\n"
        )])
        .is_empty());
    }

    #[test]
    fn non_workspace_uses_are_ignored() {
        assert!(check(&[(
            "crates/stats/src/lib.rs",
            "use std::collections::BTreeMap;\nuse crate::quantile;\nuse super::histogram;\n"
        )])
        .is_empty());
    }
}
