//! The determinism-taint pass: no wall-clock or iteration-order
//! nondeterminism may flow into `StudyResults`.
//!
//! The file-local `determinism` pass forbids nondeterministic
//! *constructs*; this pass tracks nondeterministic *values* through the
//! call graph. Seeds are functions that read ambient nondeterminism
//! (wall clock, OS-seeded RNG, hash-iteration order, thread identity);
//! taint propagates from callee to caller along call edges; a finding
//! is any tainted function that touches `StudyResults` — the struct the
//! paper-comparison numbers are read from.
//!
//! One sanitizer boundary: dr-obs. Span instrumentation calls the wall
//! clock internally, but recording a timing is write-only — it cannot
//! influence results. Taint therefore does not cross from an obs-crate
//! callee to an outside caller except through the read-back surface
//! ([`OBS_READBACK`]), which hands recorded timings (or the clock
//! itself) back to the caller.

use crate::diag::{Diagnostic, Severity};
use crate::graph::{SymbolGraph, CRATES};
use crate::lexer::TokenKind;
use crate::source::{SourceFile, Workspace};
use crate::Pass;
use std::collections::BTreeMap;

pub struct TaintPass;

pub const ID: &str = "determinism-taint";

/// obs-crate functions whose *return values* carry nondeterminism back
/// to the caller. Everything else in dr-obs is a write-only sink.
pub const OBS_READBACK: &[&str] = &["export_json", "elapsed_s", "now", "start"];

/// Composition roots: CLI glue and the bench harness legitimately stamp
/// wall-clock timings next to results, so they are not writer scopes.
const WRITER_EXEMPT_PREFIXES: &[&str] = &["src/bin/", "crates/bench/"];

impl Pass for TaintPass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_graph(&self, ws: &Workspace, g: &SymbolGraph, out: &mut Vec<Diagnostic>) {
        // 1. Seed: functions whose bodies read ambient nondeterminism.
        let mut seed_reason: BTreeMap<usize, String> = BTreeMap::new();
        for (i, sym) in g.symbols.iter().enumerate() {
            let Some(file) = ws.file(&sym.path) else {
                continue;
            };
            if let Some(reason) = seed_in_item(file, sym.full) {
                seed_reason.insert(i, reason);
            }
        }

        // 2. Propagate callee → caller over reverse edges, respecting
        // the obs write-only boundary. `origin[i]` is the callee that
        // tainted `i` (seeds point at themselves).
        let obs_idx = CRATES.iter().position(|c| c.lib == "dr_obs");
        let mut origin: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: Vec<usize> = seed_reason.keys().copied().collect();
        for &s in &queue {
            origin.insert(s, s);
        }
        while let Some(callee) = queue.pop() {
            for &caller in &g.callers[callee] {
                if origin.contains_key(&caller) {
                    continue;
                }
                let callee_sym = &g.symbols[callee];
                let crosses_obs_boundary = callee_sym.krate == obs_idx
                    && g.symbols[caller].krate != obs_idx
                    && !OBS_READBACK.contains(&callee_sym.name.as_str());
                if crosses_obs_boundary {
                    continue;
                }
                origin.insert(caller, callee);
                queue.push(caller);
            }
        }

        // 3. Flag tainted functions that touch StudyResults.
        for (i, sym) in g.symbols.iter().enumerate() {
            if !origin.contains_key(&i) {
                continue;
            }
            if WRITER_EXEMPT_PREFIXES.iter().any(|p| sym.path.starts_with(p)) {
                continue;
            }
            let Some(file) = ws.file(&sym.path) else {
                continue;
            };
            if !mentions_study_results(file, sym.full) {
                continue;
            }
            if file.is_allowed(ID, sym.line) {
                continue;
            }
            let chain = taint_chain(g, &origin, i);
            let root = *chain.last().unwrap_or(&i);
            let why = seed_reason
                .get(&root)
                .cloned()
                .unwrap_or_else(|| "a nondeterminism source".to_string());
            let via = chain
                .iter()
                .map(|&k| g.symbols[k].qualified())
                .collect::<Vec<_>>()
                .join(" → ");
            out.push(Diagnostic {
                lint: ID,
                severity: Severity::Error,
                path: sym.path.clone(),
                line: sym.line,
                col: 1,
                message: format!(
                    "`{}` touches StudyResults but is tainted by {why} (via {via}); results \
                     must depend only on seeds and inputs",
                    sym.qualified()
                ),
            });
        }
    }
}

/// Walk `origin` links from a tainted symbol down to its seed.
fn taint_chain(g: &SymbolGraph, origin: &BTreeMap<usize, usize>, i: usize) -> Vec<usize> {
    let mut chain = vec![i];
    let mut cur = i;
    while let Some(&next) = origin.get(&cur) {
        if next == cur || chain.len() > g.symbols.len() {
            break;
        }
        chain.push(next);
        cur = next;
    }
    chain
}

/// Whether an item (signature or body) reads ambient nondeterminism,
/// and which kind. Signatures count: a fn taking a `HashMap` is assumed
/// to be able to iterate it.
fn seed_in_item(file: &SourceFile, (lo, hi): (usize, usize)) -> Option<String> {
    let sig: Vec<usize> = (lo..=hi.min(file.tokens.len().saturating_sub(1)))
        .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
        .collect();
    let t = |k: usize| -> &str {
        sig.get(k).map_or("", |&i| file.tok_text(&file.tokens[i]))
    };
    for k in 0..sig.len() {
        let i = sig[k];
        if file.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let line = file.tokens[i].line;
        match file.tok_text(&file.tokens[i]) {
            "thread_rng" => return Some("OS-seeded `thread_rng()`".to_string()),
            name @ ("SystemTime" | "Instant")
                if t(k + 1) == ":" && t(k + 2) == ":" && t(k + 3) == "now" =>
            {
                return Some(format!("the wall clock (`{name}::now()`)"));
            }
            "thread" if t(k + 1) == ":" && t(k + 2) == ":" && t(k + 3) == "current" => {
                return Some("thread identity (`thread::current()`)".to_string());
            }
            // Hash-collection mention over-approximates iteration; the
            // same allow(determinism) audit comments that waive the
            // file-local pass waive the seed.
            name @ ("HashMap" | "HashSet")
                if !file.is_allowed(super::determinism::ID, line)
                    && !file.is_allowed(ID, line) =>
            {
                return Some(format!("`{name}` iteration order"));
            }
            _ => {}
        }
    }
    None
}

/// Whether an item (signature or body) mentions `StudyResults` outside
/// comments/strings.
fn mentions_study_results(file: &SourceFile, (lo, hi): (usize, usize)) -> bool {
    (lo..=hi.min(file.tokens.len().saturating_sub(1))).any(|i| {
        file.tokens[i].kind == TokenKind::Ident
            && file.tok_text(&file.tokens[i]) == "StudyResults"
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SymbolGraph;
    use crate::source::{SourceFile, Workspace};

    fn check(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_files(
            files
                .iter()
                .map(|(p, s)| SourceFile::new(*p, *s))
                .collect(),
        );
        let g = SymbolGraph::build(&ws);
        let mut out = Vec::new();
        TaintPass.check_graph(&ws, &g, &mut out);
        out
    }

    #[test]
    fn tainted_writer_is_flagged_with_its_chain() {
        let src = "fn stamp() -> f64 { let t = Instant::now(); 0.0 }\nfn assemble(r: &mut StudyResults) { r.wall = stamp(); }\n";
        let d = check(&[("crates/core/src/lib.rs", src)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, ID);
        assert!(d[0].message.contains("wall clock"));
        assert!(d[0].message.contains("assemble → stamp"));
    }

    #[test]
    fn untainted_writer_is_fine() {
        let src = "fn assemble(r: &mut StudyResults, x: f64) { r.mtbe = x; }\n";
        assert!(check(&[("crates/core/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn tainted_non_writer_is_not_flagged() {
        let src = "fn stamp() -> f64 { let t = SystemTime::now(); 0.0 }\nfn log_it() { let _ = stamp(); }\n";
        assert!(check(&[("crates/core/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn hash_iteration_seeds_taint_unless_allowed() {
        let tainted = "fn tally(m: &HashMap<u32, u32>) -> f64 { 0.0 }\nfn assemble(r: &mut StudyResults) { r.x = tally(&r.m); }\n";
        assert_eq!(check(&[("crates/core/src/lib.rs", tainted)]).len(), 1);

        let waived = "// dr-lint: allow(determinism): keyed lookup only, never iterated\nfn tally(m: &HashMap<u32, u32>) -> f64 { 0.0 }\nfn assemble(r: &mut StudyResults) { r.x = tally(&r.m); }\n";
        assert!(check(&[("crates/core/src/lib.rs", waived)]).is_empty());
    }

    #[test]
    fn obs_span_instrumentation_does_not_taint_callers() {
        // span() reads the clock internally but is write-only; pipeline
        // code instrumented with it stays clean.
        let obs = "pub fn now() -> f64 { let t = Instant::now(); 0.0 }\npub fn span(name: &str) { let t = now(); }\n";
        let core = "fn assemble(r: &mut StudyResults) { span(\"assemble\"); r.x = 1.0; }\n";
        assert!(check(&[
            ("crates/obs/src/clock.rs", obs),
            ("crates/core/src/lib.rs", core),
        ])
        .is_empty());
    }

    #[test]
    fn obs_readback_surface_does_propagate_taint() {
        let obs = "pub fn now() -> f64 { let t = Instant::now(); 0.0 }\npub fn elapsed_s() -> f64 { now() }\n";
        let core = "fn assemble(r: &mut StudyResults) { r.wall = elapsed_s(); }\n";
        let d = check(&[
            ("crates/obs/src/clock.rs", obs),
            ("crates/core/src/lib.rs", core),
        ]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("elapsed_s"));
    }

    #[test]
    fn composition_roots_may_stamp_timings() {
        let src = "fn main_inner(r: &mut StudyResults) { r.wall = stamp(); }\nfn stamp() -> f64 { let t = Instant::now(); 0.0 }\n";
        assert!(check(&[("src/bin/gpures.rs", src)]).is_empty());
    }

    #[test]
    fn thread_identity_seeds_taint() {
        let src = "fn worker_id() -> u64 { let id = thread::current().id(); 0 }\nfn assemble(r: &mut StudyResults) { r.worker = worker_id(); }\n";
        assert_eq!(check(&[("crates/core/src/lib.rs", src)]).len(), 1);
    }
}
