//! The XID-taxonomy consistency pass.
//!
//! The paper's findings hang off a specific set of NVIDIA XID codes:
//! GSP (119/120) as the dominant weak link, NVLink 74 masking, row
//! remapping 63/64, containment 94/95. This pass is data-driven: it
//! parses the `Xid` enum declaration and asserts (a) the paper-critical
//! codes are all declared, (b) no code is declared twice, and (c) every
//! declared variant is actually handled — spelled `Xid::<Name>` — in the
//! campaign driver, the syslog renderer, and the extraction pattern set,
//! so a variant added in one layer cannot silently fall out of another.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::{SourceFile, Workspace};
use crate::Pass;
use std::collections::{BTreeMap, BTreeSet};

pub struct TaxonomyPass;

pub const ID: &str = "xid-taxonomy";

/// Where the `Xid` enum is declared.
pub const XID_DECL: &str = "crates/xid/src/xid.rs";

/// Files that must handle every declared variant by name.
pub const HANDLERS: [&str; 3] = [
    "crates/faults/src/campaign.rs",
    "crates/xid/src/syslog.rs",
    "crates/logscan/src/extract.rs",
];

/// The XIDs the paper's analysis cannot do without (Table 1 + GSP 120).
pub const PAPER_CRITICAL: [u16; 11] = [13, 31, 48, 63, 64, 74, 79, 94, 95, 119, 120];

/// One declared enum variant: name, discriminant (the XID code), line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Variant {
    pub name: String,
    pub code: u16,
    pub line: u32,
}

impl Pass for TaxonomyPass {
    fn id(&self) -> &'static str {
        ID
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(decl) = ws.file(XID_DECL) else {
            // Nothing to check outside the real workspace (e.g. fixture
            // workspaces in unit tests that omit the file on purpose).
            return;
        };
        let variants = parse_xid_variants(decl);
        if variants.is_empty() {
            out.push(diag(
                decl.path.clone(),
                1,
                "no `enum Xid` variants with explicit discriminants found — the taxonomy \
                 check cannot run"
                    .to_string(),
            ));
            return;
        }

        let mut by_code: BTreeMap<u16, &Variant> = BTreeMap::new();
        for v in &variants {
            if let Some(first) = by_code.get(&v.code) {
                out.push(diag(
                    decl.path.clone(),
                    v.line,
                    format!(
                        "XID code {} declared twice: `{}` and `{}`",
                        v.code, first.name, v.name
                    ),
                ));
            } else {
                by_code.insert(v.code, v);
            }
        }

        for code in PAPER_CRITICAL {
            if !by_code.contains_key(&code) {
                out.push(diag(
                    decl.path.clone(),
                    variants[0].line,
                    format!(
                        "paper-critical XID {code} is not declared in the `Xid` enum — the \
                         reproduction's findings depend on it"
                    ),
                ));
            }
        }

        for handler in HANDLERS {
            let Some(hf) = ws.file(handler) else {
                out.push(diag(
                    handler.to_string(),
                    1,
                    format!("expected XID handler file `{handler}` is missing"),
                ));
                continue;
            };
            let referenced = xid_references(hf);
            for v in &variants {
                if !referenced.contains(&v.name) {
                    out.push(diag(
                        decl.path.clone(),
                        v.line,
                        format!(
                            "`Xid::{}` (XID {}) is declared but never handled in {handler}",
                            v.name, v.code
                        ),
                    ));
                }
            }
        }
    }
}

fn diag(path: String, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        lint: ID,
        severity: Severity::Error,
        path,
        line,
        col: 1,
        message,
    }
}

/// Parse `Name = <code>,` variants inside `enum Xid { … }`.
pub fn parse_xid_variants(file: &SourceFile) -> Vec<Variant> {
    let sig: Vec<usize> = (0..file.tokens.len())
        .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
        .collect();
    let t = |j: usize| -> &str {
        sig.get(j).map_or("", |&i| file.tok_text(&file.tokens[i]))
    };

    // Find `enum Xid {`.
    let mut start = None;
    for k in 0..sig.len() {
        if t(k) == "enum" && t(k + 1) == "Xid" && t(k + 2) == "{" {
            start = Some(k + 3);
            break;
        }
    }
    let Some(start) = start else {
        return Vec::new();
    };

    let mut out = Vec::new();
    let mut depth = 1i32;
    let mut k = start;
    while k < sig.len() && depth > 0 {
        match t(k) {
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {}
        }
        if depth == 1
            && file.tokens[sig[k]].kind == TokenKind::Ident
            && t(k + 1) == "="
            && sig.get(k + 2).map_or(false, |&i| file.tokens[i].kind == TokenKind::Num)
        {
            if let Ok(code) = t(k + 2).parse::<u16>() {
                out.push(Variant {
                    name: t(k).to_string(),
                    code,
                    line: file.tokens[sig[k]].line,
                });
            }
        }
        k += 1;
    }
    out
}

/// Variant names referenced as `Xid::<Name>` in non-test code.
fn xid_references(file: &SourceFile) -> BTreeSet<String> {
    let sig: Vec<usize> = (0..file.tokens.len())
        .filter(|&i| file.tokens[i].kind != TokenKind::Comment)
        .collect();
    let t = |j: usize| -> &str {
        sig.get(j).map_or("", |&i| file.tok_text(&file.tokens[i]))
    };
    let mut out = BTreeSet::new();
    for k in 0..sig.len() {
        if t(k) == "Xid"
            && !file.in_test_region(sig[k])
            && t(k + 1) == ":"
            && t(k + 2) == ":"
            && sig.get(k + 3).map_or(false, |&i| file.tokens[i].kind == TokenKind::Ident)
        {
            out.insert(t(k + 3).to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourceFile, Workspace};

    const DECL_OK: &str = "#[repr(u16)]\npub enum Xid {\n    GraphicsEngineException = 13,\n    GpuStoppedProcessing = 31,\n    DoubleBitEcc = 48,\n    RowRemapEvent = 63,\n    RowRemapFailure = 64,\n    NvlinkError = 74,\n    MmuError = 31,\n}\n";

    fn handler_for(names: &[&str]) -> String {
        let arms: Vec<String> = names.iter().map(|n| format!("Xid::{n} => 1,")).collect();
        format!("pub fn handle(x: Xid) -> u32 {{ match x {{ {} _ => 0 }} }}", arms.join(" "))
    }

    fn ws(decl: &str, handler_names: &[&str]) -> Workspace {
        let h = handler_for(handler_names);
        Workspace::from_files(vec![
            SourceFile::new(XID_DECL, decl),
            SourceFile::new(HANDLERS[0], h.clone()),
            SourceFile::new(HANDLERS[1], h.clone()),
            SourceFile::new(HANDLERS[2], h),
        ])
    }

    fn run(ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        TaxonomyPass.check_workspace(ws, &mut out);
        out
    }

    #[test]
    fn parses_variants_with_codes_and_lines() {
        let f = SourceFile::new(XID_DECL, DECL_OK);
        let vs = parse_xid_variants(&f);
        assert_eq!(vs.len(), 7);
        assert_eq!(vs[0].name, "GraphicsEngineException");
        assert_eq!(vs[0].code, 13);
        assert_eq!(vs[3].code, 63);
    }

    #[test]
    fn fires_on_missing_paper_critical_codes() {
        // DECL_OK lacks 74-is-fine but misses 79/94/95/119/120 and dups 31.
        let all = ["GraphicsEngineException", "GpuStoppedProcessing", "DoubleBitEcc", "RowRemapEvent", "RowRemapFailure", "NvlinkError", "MmuError"];
        let d = run(&ws(DECL_OK, &all));
        let missing: Vec<&Diagnostic> = d.iter().filter(|x| x.message.contains("paper-critical")).collect();
        assert_eq!(missing.len(), 5, "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("declared twice")));
    }

    #[test]
    fn fires_on_unhandled_variant() {
        let partial = ["GraphicsEngineException", "GpuStoppedProcessing", "DoubleBitEcc", "RowRemapEvent", "RowRemapFailure", "NvlinkError"];
        let d = run(&ws(DECL_OK, &partial));
        let unhandled: Vec<&Diagnostic> = d.iter().filter(|x| x.message.contains("never handled")).collect();
        assert_eq!(unhandled.len(), 3, "MmuError missing from 3 handlers: {unhandled:?}");
        assert!(unhandled[0].message.contains("Xid::MmuError"));
    }

    #[test]
    fn silent_outside_real_workspace() {
        let d = run(&Workspace::from_files(vec![SourceFile::new("other.rs", "fn f() {}")]));
        assert!(d.is_empty());
    }
}
