//! Lexed source files, `#[cfg(test)]` region detection, and the
//! in-source allow-comment grammar.
//!
//! Allow comments the linter recognizes:
//!
//! ```text
//! // dr-lint: allow(<lint-id>): reason            (this line and the next)
//! // dr-lint: allow-file(<lint-id>): reason       (the whole file)
//! ```
//!
//! The reason clause is required by convention, not by the parser — the
//! annotation is the audit trail for why a forbidden construct is safe
//! here.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeSet;

/// One lexed file plus lint-relevant structure.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Inclusive token-index ranges covered by `#[cfg(test)]` / `#[test]`
    /// items.
    test_regions: Vec<(usize, usize)>,
    allow_file: BTreeSet<String>,
    /// (lint id, line) pairs granted by same/next-line allow comments.
    allow_lines: BTreeSet<(String, u32)>,
}

impl SourceFile {
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let path = path.into();
        let text = text.into();
        let tokens = lex(&text);
        let test_regions = find_test_regions(&tokens, &text);
        let (allow_file, allow_lines) = parse_allow_comments(&tokens, &text);
        SourceFile {
            path,
            text,
            tokens,
            test_regions,
            allow_file,
            allow_lines,
        }
    }

    pub fn tok_text(&self, t: &Token) -> &str {
        t.text(&self.text)
    }

    /// Whether the token at `idx` is inside test-only code.
    pub fn in_test_region(&self, idx: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| lo <= idx && idx <= hi)
    }

    /// Whether a diagnostic of `lint` at `line` is waived by an allow
    /// comment.
    pub fn is_allowed(&self, lint: &str, line: u32) -> bool {
        self.allow_file.contains(lint) || self.allow_lines.contains(&(lint.to_string(), line))
    }
}

/// Find items annotated `#[cfg(test)]` or `#[test]` and return the token
/// ranges they span (attribute through closing brace/semicolon).
fn find_test_regions(tokens: &[Token], text: &str) -> Vec<(usize, usize)> {
    // Work on the comment-free view, mapping back to full-token indices.
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::Comment)
        .collect();
    let t = |k: usize| -> &str {
        sig.get(k).map_or("", |&i| tokens[i].text(text))
    };

    let mut regions = Vec::new();
    let mut k = 0;
    while k < sig.len() {
        let is_attr = t(k) == "#" && t(k + 1) == "[";
        let is_test_attr = is_attr
            && ((t(k + 2) == "cfg" && t(k + 3) == "(" && t(k + 4) == "test")
                || (t(k + 2) == "test" && t(k + 3) == "]"));
        if !is_test_attr {
            k += 1;
            continue;
        }
        let region_start = sig[k];
        let mut j = skip_attribute(&sig, tokens, text, k);
        // Further attributes on the same item (e.g. `#[should_panic]`).
        while t_at(&sig, tokens, text, j) == "#" && t_at(&sig, tokens, text, j + 1) == "[" {
            j = skip_attribute(&sig, tokens, text, j);
        }
        let end = skip_item(&sig, tokens, text, j);
        let region_end = if end > 0 && end <= sig.len() {
            sig[end - 1]
        } else {
            *sig.last().unwrap_or(&region_start)
        };
        regions.push((region_start, region_end));
        k = end;
    }
    regions
}

fn t_at<'a>(sig: &[usize], tokens: &[Token], text: &'a str, k: usize) -> &'a str {
    sig.get(k).map_or("", |&i| tokens[i].text(text))
}

/// From the index of a `#`, step past the matching `]`.
fn skip_attribute(sig: &[usize], tokens: &[Token], text: &str, k: usize) -> usize {
    let mut j = k + 1; // at '['
    let mut depth = 0i32;
    while j < sig.len() {
        match t_at(sig, tokens, text, j) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    sig.len()
}

/// Step past one item: to the `;` that ends it, or past the matching `}`
/// of its body.
fn skip_item(sig: &[usize], tokens: &[Token], text: &str, k: usize) -> usize {
    let mut j = k;
    let mut depth = 0i32;
    while j < sig.len() {
        match t_at(sig, tokens, text, j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => {
                let mut braces = 0i32;
                while j < sig.len() {
                    match t_at(sig, tokens, text, j) {
                        "{" => braces += 1,
                        "}" => {
                            braces -= 1;
                            if braces == 0 {
                                return j + 1;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return sig.len();
            }
            ";" if depth <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    sig.len()
}

fn parse_allow_comments(
    tokens: &[Token],
    text: &str,
) -> (BTreeSet<String>, BTreeSet<(String, u32)>) {
    let mut allow_file = BTreeSet::new();
    let mut allow_lines = BTreeSet::new();
    for tok in tokens.iter().filter(|t| t.kind == TokenKind::Comment) {
        let body = tok.text(text);
        let Some(pos) = body.find("dr-lint:") else {
            continue;
        };
        let rest = body[pos + "dr-lint:".len()..].trim_start();
        if let Some(arg) = rest.strip_prefix("allow-file(") {
            if let Some(id) = arg.split(')').next() {
                allow_file.insert(id.trim().to_string());
            }
        } else if let Some(arg) = rest.strip_prefix("allow(") {
            if let Some(id) = arg.split(')').next() {
                let id = id.trim().to_string();
                allow_lines.insert((id.clone(), tok.line));
                allow_lines.insert((id, tok.line + 1));
            }
        }
    }
    (allow_file, allow_lines)
}

/// All lintable sources of a workspace, plus root metadata.
#[derive(Clone, Debug)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    /// Shipped `.scn` scenario files as `(workspace-relative path, text)`.
    /// Carried separately from `files` so the Rust lexer and the Rust
    /// passes never see them; only `scenario-hygiene` reads this.
    pub scenarios: Vec<(String, String)>,
}

impl Workspace {
    pub fn from_files(files: Vec<SourceFile>) -> Workspace {
        Workspace {
            files,
            scenarios: Vec::new(),
        }
    }

    /// Attach shipped `.scn` scenarios (see [`Workspace::scenarios`]).
    pub fn with_scenarios(mut self, scenarios: Vec<(String, String)>) -> Workspace {
        self.scenarios = scenarios;
        self
    }

    /// Exact-path lookup (paths are workspace-relative).
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::TokenKind;

    fn idents_outside_tests(f: &SourceFile) -> Vec<String> {
        f.tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| t.kind == TokenKind::Ident && !f.in_test_region(*i))
            .map(|(_, t)| f.tok_text(t).to_string())
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let f = SourceFile::new(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { hidden(); }\n}\nfn after() {}\n",
        );
        let ids = idents_outside_tests(&f);
        assert!(ids.contains(&"live".to_string()));
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"hidden".to_string()));
    }

    #[test]
    fn test_attr_fn_is_a_test_region() {
        let f = SourceFile::new(
            "x.rs",
            "#[test]\n#[should_panic]\nfn boom() { hidden(); }\nfn live() {}\n",
        );
        let ids = idents_outside_tests(&f);
        assert!(!ids.contains(&"hidden".to_string()));
        assert!(ids.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let f = SourceFile::new(
            "x.rs",
            "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n",
        );
        let ids = idents_outside_tests(&f);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"live".to_string()));
    }

    #[test]
    fn allow_comment_covers_same_and_next_line() {
        let f = SourceFile::new(
            "x.rs",
            "// dr-lint: allow(determinism): keyed lookup only\nlet m = 1;\nlet n = 2;\n",
        );
        assert!(f.is_allowed("determinism", 1));
        assert!(f.is_allowed("determinism", 2));
        assert!(!f.is_allowed("determinism", 3));
        assert!(!f.is_allowed("panic-freedom", 2));
    }

    #[test]
    fn allow_file_covers_everything() {
        let f = SourceFile::new("x.rs", "// dr-lint: allow-file(unit-hygiene): CLI glue\n");
        assert!(f.is_allowed("unit-hygiene", 999));
        assert!(!f.is_allowed("determinism", 1));
    }
}
