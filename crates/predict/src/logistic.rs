//! SGD logistic regression baseline.
//!
//! Features are z-normalized from training-set statistics, then a plain
//! logistic model is fit by mini-epoch stochastic gradient descent with L2
//! regularization and a class-balancing weight (long persisters are rare).

use crate::features::{Sample, N_FEATURES};
use crate::Classifier;
use dr_stats::OnlineStats;
use rand::prelude::*;

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct LogisticConfig {
    pub epochs: u32,
    pub learning_rate: f64,
    pub l2: f64,
    pub seed: u64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            epochs: 30,
            learning_rate: 0.05,
            l2: 1e-4,
            seed: 7,
        }
    }
}

/// A trained logistic model with its normalization.
#[derive(Clone, Debug)]
pub struct LogisticModel {
    weights: [f64; N_FEATURES],
    mean: [f64; N_FEATURES],
    std: [f64; N_FEATURES],
}

impl LogisticModel {
    /// Fit from labeled samples.
    ///
    /// # Panics
    /// If `samples` is empty or single-class.
    pub fn fit(samples: &[Sample], cfg: LogisticConfig) -> LogisticModel {
        assert!(!samples.is_empty(), "empty training set");
        let positives = samples.iter().filter(|s| s.label).count();
        assert!(
            positives > 0 && positives < samples.len(),
            "training set must contain both classes"
        );

        // Normalization statistics.
        let mut acc = [(); N_FEATURES].map(|_| OnlineStats::new());
        for s in samples {
            for (a, &x) in acc.iter_mut().zip(&s.features) {
                a.push(x);
            }
        }
        let mut mean = [0.0; N_FEATURES];
        let mut std = [1.0; N_FEATURES];
        for i in 0..N_FEATURES {
            mean[i] = acc[i].mean();
            let s = acc[i].std_dev();
            std[i] = if s > 1e-9 { s } else { 1.0 };
        }

        // Class-balance weight for the rare positive class.
        let pos_weight = ((samples.len() - positives) as f64 / positives as f64).clamp(1.0, 50.0);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut w = [0.0f64; N_FEATURES];
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let lr = cfg.learning_rate / (1.0 + 0.2 * epoch as f64);
            for &idx in &order {
                let s = &samples[idx];
                let mut z = [0.0; N_FEATURES];
                for i in 0..N_FEATURES {
                    z[i] = (s.features[i] - mean[i]) / std[i];
                }
                let logit: f64 = w.iter().zip(&z).map(|(wi, zi)| wi * zi).sum();
                let p = 1.0 / (1.0 + (-logit).exp());
                let y = s.label as u8 as f64;
                let grad_scale = (p - y) * if s.label { pos_weight } else { 1.0 };
                for i in 0..N_FEATURES {
                    w[i] -= lr * (grad_scale * z[i] + cfg.l2 * w[i]);
                }
            }
        }
        LogisticModel {
            weights: w,
            mean,
            std,
        }
    }

    /// Normalized-space weights (for inspection).
    pub fn weights(&self) -> &[f64; N_FEATURES] {
        &self.weights
    }
}

impl Classifier for LogisticModel {
    fn predict_proba(&self, features: &[f64; N_FEATURES]) -> f64 {
        let mut logit = 0.0;
        for i in 0..N_FEATURES {
            logit += self.weights[i] * (features[i] - self.mean[i]) / self.std[i];
        }
        1.0 / (1.0 + (-logit).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::{GpuId, NodeId, Xid};

    fn sample(f0: f64, f1: f64, label: bool) -> Sample {
        Sample {
            features: [f0, f1, 0.0, 0.0, 0.0, 0.0, 1.0],
            label,
            persistence_s: 0.0,
            start_us: 0,
            xid: Xid::MmuError,
            gpu: GpuId::at_slot(NodeId(1), 0),
        }
    }

    #[test]
    fn learns_linear_boundary() {
        let mut v = Vec::new();
        for k in 0..300 {
            let j = (k % 30) as f64 * 0.05;
            v.push(sample(6.0 + j, 1.0 + j, true));
            v.push(sample(1.0 + j, 5.0 + j, false));
        }
        let m = LogisticModel::fit(&v, LogisticConfig::default());
        assert!(m.predict_proba(&[6.5, 1.2, 0.0, 0.0, 0.0, 0.0, 1.0]) > 0.85);
        assert!(m.predict_proba(&[1.2, 5.5, 0.0, 0.0, 0.0, 0.0, 1.0]) < 0.15);
        // Feature 0 should carry positive weight, feature 1 negative.
        assert!(m.weights()[0] > 0.0);
        assert!(m.weights()[1] < 0.0);
    }

    #[test]
    fn imbalanced_classes_still_detected() {
        let mut v = Vec::new();
        for k in 0..1_000 {
            let j = (k % 40) as f64 * 0.03;
            if k % 25 == 0 {
                v.push(sample(7.0 + j, 1.0, true)); // 4% positives
            } else {
                v.push(sample(2.0 + j, 1.0, false));
            }
        }
        let m = LogisticModel::fit(&v, LogisticConfig::default());
        // The balancing weight keeps the positive region detectable.
        assert!(m.predict_proba(&[7.5, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0]) > 0.5);
        assert!(m.predict_proba(&[2.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0]) < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let v: Vec<Sample> = (0..100)
            .map(|k| sample(k as f64 % 9.0, 1.0, k % 3 == 0))
            .collect();
        let a = LogisticModel::fit(&v, LogisticConfig::default());
        let b = LogisticModel::fit(&v, LogisticConfig::default());
        assert_eq!(a.weights(), b.weights());
    }
}
