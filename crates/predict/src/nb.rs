//! Gaussian naive Bayes — the "Bayesian model" the paper proposes.
//!
//! Each feature is modeled as class-conditionally Gaussian; the posterior
//! combines per-feature log-likelihood ratios with the class prior. Simple,
//! trains in one pass, and calibrated enough for an alerting threshold.

use crate::features::{Sample, N_FEATURES};
use crate::Classifier;
use dr_stats::OnlineStats;

/// Per-class, per-feature Gaussians plus the class prior.
#[derive(Clone, Debug)]
pub struct NaiveBayes {
    prior_long: f64,
    long: [(f64, f64); N_FEATURES],
    short: [(f64, f64); N_FEATURES],
}

/// Variance floor: degenerate (constant) features must not produce
/// infinite likelihood ratios.
const VAR_FLOOR: f64 = 1e-4;

impl NaiveBayes {
    /// Fit from labeled samples.
    ///
    /// # Panics
    /// If `samples` is empty or single-class (nothing to learn).
    pub fn fit(samples: &[Sample]) -> NaiveBayes {
        assert!(!samples.is_empty(), "empty training set");
        let mut acc_long = [(); N_FEATURES].map(|_| OnlineStats::new());
        let mut acc_short = [(); N_FEATURES].map(|_| OnlineStats::new());
        let mut n_long = 0u64;
        for s in samples {
            let acc = if s.label { &mut acc_long } else { &mut acc_short };
            if s.label {
                n_long += 1;
            }
            for (a, &x) in acc.iter_mut().zip(&s.features) {
                a.push(x);
            }
        }
        assert!(
            n_long > 0 && n_long < samples.len() as u64,
            "training set must contain both classes"
        );
        // Variance smoothing: blend each class variance toward the pooled
        // variance. Without it, a tight majority class (or a tight rare
        // class) makes mildly atypical positives look impossible — the
        // classic Gaussian-NB overconfidence failure on imbalanced data.
        let pooled: Vec<f64> = (0..N_FEATURES)
            .map(|i| {
                let n_l = acc_long[i].count() as f64;
                let n_s = acc_short[i].count() as f64;
                (acc_long[i].variance() * n_l + acc_short[i].variance() * n_s) / (n_l + n_s)
            })
            .collect();
        let moments = |acc: &[OnlineStats; N_FEATURES]| {
            let mut out = [(0.0, 0.0); N_FEATURES];
            for (i, (o, a)) in out.iter_mut().zip(acc).enumerate() {
                let var = 0.75 * a.variance() + 0.25 * pooled[i];
                *o = (a.mean(), var.max(VAR_FLOOR));
            }
            out
        };
        NaiveBayes {
            prior_long: n_long as f64 / samples.len() as f64,
            long: moments(&acc_long),
            short: moments(&acc_short),
        }
    }

    pub fn prior(&self) -> f64 {
        self.prior_long
    }

    fn log_gauss(x: f64, (mean, var): (f64, f64)) -> f64 {
        -0.5 * ((x - mean) * (x - mean) / var + var.ln())
    }
}

impl Classifier for NaiveBayes {
    fn predict_proba(&self, features: &[f64; N_FEATURES]) -> f64 {
        let mut logit = (self.prior_long / (1.0 - self.prior_long)).ln();
        for i in 0..N_FEATURES {
            logit += Self::log_gauss(features[i], self.long[i])
                - Self::log_gauss(features[i], self.short[i]);
        }
        1.0 / (1.0 + (-logit).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::{GpuId, NodeId, Xid};

    fn sample(f0: f64, f1: f64, label: bool) -> Sample {
        Sample {
            features: [f0, f1, 0.0, 0.0, 0.0, 0.0, 1.0],
            label,
            persistence_s: if label { 1_000.0 } else { 1.0 },
            start_us: 0,
            xid: Xid::MmuError,
            gpu: GpuId::at_slot(NodeId(1), 0),
        }
    }

    fn separable_training_set() -> Vec<Sample> {
        let mut v = Vec::new();
        for k in 0..200 {
            let j = (k % 10) as f64 * 0.1;
            v.push(sample(8.0 + j, 1.5 + j * 0.1, true));
            v.push(sample(2.0 + j, 4.0 + j * 0.1, false));
        }
        v
    }

    #[test]
    fn learns_separable_classes() {
        let model = NaiveBayes::fit(&separable_training_set());
        assert!((model.prior() - 0.5).abs() < 1e-9);
        assert!(model.predict_proba(&[8.5, 1.6, 0.0, 0.0, 0.0, 0.0, 1.0]) > 0.9);
        assert!(model.predict_proba(&[2.1, 4.1, 0.0, 0.0, 0.0, 0.0, 1.0]) < 0.1);
    }

    #[test]
    fn constant_feature_is_harmless() {
        // Feature 6 (bias) is constant 1.0 in both classes: the variance
        // floor keeps its likelihood ratio finite and neutral.
        let model = NaiveBayes::fit(&separable_training_set());
        let p = model.predict_proba(&[5.0, 2.7, 0.0, 0.0, 0.0, 0.0, 1.0]);
        assert!(p.is_finite());
    }

    #[test]
    fn skewed_prior_shifts_probabilities() {
        let mut v = separable_training_set();
        // Make positives rare.
        v.retain(|s| !s.label || s.features[0] < 8.3);
        let model = NaiveBayes::fit(&v);
        assert!(model.prior() < 0.5);
        // An ambiguous point leans negative under the skewed prior.
        let p = model.predict_proba(&[5.0, 2.75, 0.0, 0.0, 0.0, 0.0, 1.0]);
        assert!(p < 0.5, "p {p}");
    }

    #[test]
    #[should_panic]
    fn single_class_panics() {
        let v: Vec<Sample> = (0..10).map(|_| sample(1.0, 1.0, true)).collect();
        NaiveBayes::fit(&v);
    }
}
