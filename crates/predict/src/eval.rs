//! Evaluation: chronological split, classification metrics, and the
//! operational pay-off (GPU hours saved by acting on predictions).

use crate::features::{Dataset, Sample};
use crate::Classifier;

/// Chronological train/test split (never train on the future).
#[derive(Clone, Debug)]
pub struct ChronoSplit<'d> {
    pub train: &'d [Sample],
    pub test: &'d [Sample],
}

impl<'d> ChronoSplit<'d> {
    /// Split at `train_fraction` of the (time-sorted) samples.
    pub fn new(dataset: &'d Dataset, train_fraction: f64) -> Self {
        let n = dataset.samples.len();
        let cut = ((n as f64) * train_fraction.clamp(0.0, 1.0)) as usize;
        let cut = cut.min(n);
        ChronoSplit {
            train: &dataset.samples[..cut],
            test: &dataset.samples[cut..],
        }
    }
}

/// Classification quality plus the operational metric.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalReport {
    pub true_positives: u64,
    pub false_positives: u64,
    pub true_negatives: u64,
    pub false_negatives: u64,
    /// Base rate of long persisters in the test set.
    pub base_rate: f64,
    /// Hours of tail persistence that early resets on true positives would
    /// have avoided (persistence beyond the detection window), minus a
    /// fixed reset cost charged for every positive prediction.
    pub gpu_hours_saved: f64,
}

impl EvalReport {
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    pub fn render(&self, name: &str) -> String {
        format!(
            "{name}: precision {:.2} recall {:.2} F1 {:.2} \
             (TP {} FP {} TN {} FN {}; base rate {:.1}%) — {:.0} GPU-hours saved",
            self.precision(),
            self.recall(),
            self.f1(),
            self.true_positives,
            self.false_positives,
            self.true_negatives,
            self.false_negatives,
            self.base_rate * 100.0,
            self.gpu_hours_saved
        )
    }
}

/// Evaluate `model` on `test` at a decision threshold.
///
/// `detection_s` is when the monitor fires (the onset window); an early
/// reset on a true positive saves `persistence - detection_s` seconds of
/// the burst, while *every* positive prediction pays `reset_cost_h` hours
/// of GPU reset/drain time (false alarms are not free — the paper's
/// 0.3-hour mean service time).
pub fn evaluate<C: Classifier>(
    model: &C,
    test: &[Sample],
    threshold: f64,
    detection_s: f64,
    reset_cost_h: f64,
) -> EvalReport {
    let mut r = EvalReport::default();
    let mut positives = 0u64;
    let mut saved_s = 0.0;
    for s in test {
        if s.label {
            positives += 1;
        }
        let predicted = model.predict(&s.features, threshold);
        match (predicted, s.label) {
            (true, true) => {
                r.true_positives += 1;
                saved_s += (s.persistence_s - detection_s).max(0.0);
            }
            (true, false) => r.false_positives += 1,
            (false, true) => r.false_negatives += 1,
            (false, false) => r.true_negatives += 1,
        }
    }
    r.base_rate = if test.is_empty() {
        0.0
    } else {
        positives as f64 / test.len() as f64
    };
    r.gpu_hours_saved = saved_s / 3_600.0
        - (r.true_positives + r.false_positives) as f64 * reset_cost_h;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::N_FEATURES;
    use dr_xid::{GpuId, NodeId, Xid};

    struct Threshold0;
    impl Classifier for Threshold0 {
        fn predict_proba(&self, f: &[f64; N_FEATURES]) -> f64 {
            if f[0] > 5.0 {
                0.9
            } else {
                0.1
            }
        }
    }

    fn sample(f0: f64, label: bool, persistence_s: f64, at: u64) -> Sample {
        Sample {
            features: [f0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            label,
            persistence_s,
            start_us: at,
            xid: Xid::MmuError,
            gpu: GpuId::at_slot(NodeId(1), 0),
        }
    }

    #[test]
    fn metrics_and_savings() {
        let test = vec![
            sample(9.0, true, 3_600.0 + 15.0, 0), // TP: saves 1h
            sample(9.0, false, 1.0, 1),           // FP: costs reset
            sample(1.0, true, 7_200.0, 2),        // FN
            sample(1.0, false, 1.0, 3),           // TN
        ];
        let r = evaluate(&Threshold0, &test, 0.5, 15.0, 0.3);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.false_negatives, 1);
        assert_eq!(r.true_negatives, 1);
        assert!((r.precision() - 0.5).abs() < 1e-9);
        assert!((r.recall() - 0.5).abs() < 1e-9);
        assert!((r.f1() - 0.5).abs() < 1e-9);
        assert!((r.base_rate - 0.5).abs() < 1e-9);
        // 1h saved minus 2 positives * 0.3h reset cost.
        assert!((r.gpu_hours_saved - (1.0 - 0.6)).abs() < 1e-9);
    }

    #[test]
    fn chrono_split_respects_time_order() {
        let ds = Dataset {
            samples: (0..10).map(|k| sample(1.0, false, 1.0, k)).collect(),
        };
        let split = ChronoSplit::new(&ds, 0.7);
        assert_eq!(split.train.len(), 7);
        assert_eq!(split.test.len(), 3);
        assert!(split.train.iter().all(|s| s.start_us < 7));
    }

    #[test]
    fn empty_test_set_is_safe() {
        let r = evaluate(&Threshold0, &[], 0.5, 15.0, 0.3);
        assert_eq!(r.f1(), 0.0);
        assert_eq!(r.base_rate, 0.0);
    }
}
