//! Onset-time feature extraction.
//!
//! For every coalesced episode, we reconstruct what a monitor sees during
//! the first `onset_window` seconds of the burst — crucially *without*
//! peeking at the episode's eventual length — plus the emitting GPU's
//! error history up to that moment.

use dr_xid::{Duration, ErrorRecord, GpuId, Xid};
use resilience_core::CoalescedError;
use std::collections::BTreeMap;

/// Number of features per sample.
pub const N_FEATURES: usize = 7;

/// Feature-extraction parameters.
#[derive(Clone, Copy, Debug)]
pub struct FeatureConfig {
    /// How much of the burst's start the monitor may observe (seconds).
    pub onset_window_s: f64,
    /// "Long persister" label threshold (seconds). The paper's tail
    /// analysis keys on per-XID P95s; a fixed operational threshold is
    /// what an alerting rule would use.
    pub long_threshold_s: f64,
    /// History lookback for per-GPU error counts (hours).
    pub history_hours: f64,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            onset_window_s: 15.0,
            long_threshold_s: 600.0,
            history_hours: 24.0,
        }
    }
}

/// One labeled episode.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    pub features: [f64; N_FEATURES],
    /// True if persistence exceeded the long threshold.
    pub label: bool,
    /// Episode persistence (for the GPU-hours-saved metric).
    pub persistence_s: f64,
    /// Episode start (for chronological splitting).
    pub start_us: u64,
    pub xid: Xid,
    pub gpu: GpuId,
}

/// A labeled dataset.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    pub samples: Vec<Sample>,
}

impl Dataset {
    pub fn len(&self) -> usize {
        self.samples.len()
    }
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.label).count() as f64 / self.samples.len() as f64
    }
}

/// Build the dataset from raw records and their coalesced episodes.
///
/// Feature vector (all rates/counts are what an online monitor can
/// compute at `onset_window` after the first line):
///
/// 0. lines observed in the onset window
/// 1. mean inter-line gap in the onset window (s; onset window if <2 lines)
/// 2. error-type tail propensity: is this XID's persistence historically
///    heavy-tailed (1.0 for XID 95/119/64, the storm-prone kinds)
/// 3. episodes on this GPU in the lookback window
/// 4. long episodes on this GPU in the lookback window
/// 5. same-XID episodes on this GPU in the lookback window
/// 6. bias term (always 1.0)
pub fn build_dataset(
    records: &[ErrorRecord],
    episodes: &[CoalescedError],
    cfg: FeatureConfig,
) -> Dataset {
    // Records grouped by identity, time-sorted, for onset reconstruction.
    let mut by_identity: BTreeMap<_, Vec<u64>> = BTreeMap::new();
    for r in records {
        by_identity.entry(r.identity()).or_default().push(r.at.as_micros());
    }
    for v in by_identity.values_mut() {
        v.sort_unstable();
    }

    // Episodes per GPU, time-sorted, for history features.
    let mut by_gpu: BTreeMap<GpuId, Vec<&CoalescedError>> = BTreeMap::new();
    for e in episodes {
        by_gpu.entry(e.gpu).or_default().push(e);
    }
    for v in by_gpu.values_mut() {
        v.sort_by_key(|e| e.start);
    }

    let onset = Duration::from_secs_f64(cfg.onset_window_s);
    let lookback = Duration::from_secs_f64(cfg.history_hours * 3_600.0);

    let mut samples = Vec::with_capacity(episodes.len());
    for e in episodes {
        // Onset lines: identity-matching records in [start, start+onset].
        let times = by_identity
            .get(&(e.gpu, e.xid, e.detail))
            .expect("episode has records");
        let lo = times.partition_point(|&t| t < e.start.as_micros());
        let hi = times.partition_point(|&t| t <= (e.start + onset).as_micros());
        let onset_times = &times[lo..hi];
        let lines = onset_times.len() as f64;
        let mean_gap = if onset_times.len() >= 2 {
            let span = (onset_times[onset_times.len() - 1] - onset_times[0]) as f64 / 1e6;
            span / (onset_times.len() - 1) as f64
        } else {
            cfg.onset_window_s
        };

        // History: strictly-earlier episodes on the same GPU.
        let history = &by_gpu[&e.gpu];
        let h_end = history.partition_point(|o| o.start < e.start);
        let h_start_time = e.start.saturating_sub(lookback);
        let mut recent = 0.0;
        let mut recent_long = 0.0;
        let mut recent_same_xid = 0.0;
        for o in history[..h_end].iter().rev() {
            if o.start < h_start_time {
                break;
            }
            recent += 1.0;
            if o.persistence().as_secs_f64() > cfg.long_threshold_s {
                recent_long += 1.0;
            }
            if o.xid == e.xid {
                recent_same_xid += 1.0;
            }
        }

        let tail_prone = matches!(
            e.xid,
            Xid::UncontainedEcc | Xid::GspRpcTimeout | Xid::RowRemapFailure
        ) as u8 as f64;

        let persistence_s = e.persistence().as_secs_f64();
        samples.push(Sample {
            features: [
                lines,
                mean_gap,
                tail_prone,
                recent,
                recent_long,
                recent_same_xid,
                1.0,
            ],
            label: persistence_s > cfg.long_threshold_s,
            persistence_s,
            start_us: e.start.as_micros(),
            xid: e.xid,
            gpu: e.gpu,
        });
    }
    samples.sort_by_key(|s| s.start_us);
    Dataset { samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::{ErrorDetail, NodeId, Timestamp};
    use resilience_core::{coalesce, CoalesceConfig};

    fn burst(gpu: GpuId, xid: Xid, start_s: f64, len_s: f64, gap_s: f64) -> Vec<ErrorRecord> {
        let mut t = 0.0;
        let mut out = Vec::new();
        while t <= len_s {
            out.push(ErrorRecord::new(
                Timestamp::EPOCH + Duration::from_secs_f64(start_s + t),
                gpu,
                xid,
                ErrorDetail::NONE,
            ));
            t += gap_s;
        }
        out
    }

    #[test]
    fn onset_features_reflect_burst_rate() {
        let g = GpuId::at_slot(NodeId(1), 0);
        let mut records = burst(g, Xid::UncontainedEcc, 0.0, 1_000.0, 2.0); // fast, long
        records.extend(burst(g, Xid::MmuError, 90_000.0, 4.0, 4.0)); // slow, short
        let episodes = coalesce(&records, CoalesceConfig::default());
        let ds = build_dataset(&records, &episodes, FeatureConfig::default());
        assert_eq!(ds.len(), 2);
        let long = ds.samples.iter().find(|s| s.xid == Xid::UncontainedEcc).unwrap();
        let short = ds.samples.iter().find(|s| s.xid == Xid::MmuError).unwrap();
        assert!(long.label);
        assert!(!short.label);
        assert!(long.features[0] > short.features[0], "line counts");
        assert!(long.features[1] < short.features[1], "mean gaps");
        assert_eq!(long.features[2], 1.0);
        assert_eq!(short.features[2], 0.0);
    }

    #[test]
    fn history_features_count_prior_episodes_only() {
        let g = GpuId::at_slot(NodeId(2), 0);
        let mut records = Vec::new();
        // Three long storms an hour apart, then a fourth.
        for k in 0..4 {
            records.extend(burst(g, Xid::UncontainedEcc, k as f64 * 3_600.0, 700.0, 3.0));
        }
        let episodes = coalesce(&records, CoalesceConfig::default());
        let ds = build_dataset(&records, &episodes, FeatureConfig::default());
        assert_eq!(ds.len(), 4);
        // Samples are chronological; the k-th has k prior episodes.
        for (k, s) in ds.samples.iter().enumerate() {
            assert_eq!(s.features[3], k as f64, "recent count for episode {k}");
            assert_eq!(s.features[4], k as f64, "recent long count");
            assert_eq!(s.features[5], k as f64, "same-xid count");
        }
    }

    #[test]
    fn lookback_window_expires_history() {
        let g = GpuId::at_slot(NodeId(3), 0);
        let mut records = burst(g, Xid::MmuError, 0.0, 3.0, 1.5);
        // Second episode 48h later: history empty under a 24h lookback.
        records.extend(burst(g, Xid::MmuError, 48.0 * 3_600.0, 3.0, 1.5));
        let episodes = coalesce(&records, CoalesceConfig::default());
        let ds = build_dataset(&records, &episodes, FeatureConfig::default());
        assert_eq!(ds.samples[1].features[3], 0.0);
    }

    #[test]
    fn positive_rate() {
        let g = GpuId::at_slot(NodeId(4), 0);
        let mut records = burst(g, Xid::UncontainedEcc, 0.0, 700.0, 3.0);
        records.extend(burst(g, Xid::MmuError, 90_000.0, 3.0, 1.5));
        let episodes = coalesce(&records, CoalesceConfig::default());
        let ds = build_dataset(&records, &episodes, FeatureConfig::default());
        assert!((ds.positive_rate() - 0.5).abs() < 1e-9);
    }
}
