//! # dr-predict — early prediction of long-persisting GPU errors
//!
//! The paper's Section 4.3 proposal, implemented: errors at the tail of
//! the persistence distribution carry 91 % of the lost GPU hours, so "SREs
//! should continuously monitor the errors at the tail ... A potential
//! solution would be to develop an ML model (e.g., a Bayesian model) to
//! predict the onset of these long persisting errors for preventive
//! actions."
//!
//! The pipeline here:
//!
//! 1. [`features`] — at episode onset (the first few seconds of a burst),
//!    extract what an online monitor could actually see: the error type,
//!    the early re-logging rate, and the GPU's recent error history.
//! 2. [`nb`] — a Gaussian naive-Bayes classifier (the "Bayesian model" the
//!    paper suggests) over those features.
//! 3. [`logistic`] — an SGD logistic-regression baseline.
//! 4. [`eval`] — chronological train/test split, precision/recall/F1, and
//!    the operational metric: GPU-hours saved if every true-positive
//!    prediction triggered an immediate reset.
//!
//! The `predict_long_errors` example trains both models on a campaign and
//! reports their quality.

pub mod eval;
pub mod features;
pub mod logistic;
pub mod nb;

pub use eval::{evaluate, ChronoSplit, EvalReport};
pub use features::{build_dataset, Dataset, FeatureConfig, Sample, N_FEATURES};
pub use logistic::LogisticModel;
pub use nb::NaiveBayes;

/// A trained long-persistence classifier.
pub trait Classifier {
    /// Probability the episode becomes a long persister.
    fn predict_proba(&self, features: &[f64; N_FEATURES]) -> f64;

    /// Hard decision at a threshold.
    fn predict(&self, features: &[f64; N_FEATURES], threshold: f64) -> bool {
        self.predict_proba(features) >= threshold
    }
}
