//! # dr-scenario — declarative `.scn` fleet-campaign scenarios
//!
//! A campaign used to be something only Rust could describe: pick a
//! [`CampaignConfig`] constructor, then mutate fields until the study you
//! wanted emerged. This crate makes the *scenario* — fleet composition,
//! duration, per-class fault-rate bends, RAS tuning, text generation,
//! seeds, and the reference study to validate against — a small
//! declarative text format instead, so a fleet operator can author a
//! what-if battery (`gpures sweep`) without touching the simulator.
//!
//! ```text
//! scenario "gh200_heavy"
//! description "H100-dominated refresh: what does Delta look like post-upgrade?"
//!
//! fleet { a100x4 = 20  gh200 = 200 }
//! duration_days = 240
//! seeds = [616, 617]
//!
//! rates h100_delta
//! rates.* *= 2.75        # fleet is 2.75x the calibration population
//! rates.xid136 *= 1.5    # and the undocumented event runs hotter
//! ```
//!
//! [`Scenario::parse`] turns that into a validated [`Scenario`];
//! [`Scenario::compile`] lowers it onto the existing
//! [`dr_faults::CampaignConfig`] — the DSL adds no second simulator, just
//! a front end. Every parse or compile failure is a
//! [`dr_xid::DataError::Scenario`] with the 1-based line and column of
//! the offending token.
//!
//! The repo's own study presets ship as `.scn` files under `scenarios/`
//! and are bundled into this crate via `include_str!` (see [`preset`]);
//! tier-1 tests pin them bit-identical to the Rust constructors they
//! replaced as the canonical definition.

pub mod lex;
mod parse;

pub use parse::class_by_name;

use dr_faults::CampaignConfig;
use dr_xid::DataError;

/// Which paper study a scenario's results should be checked against in a
/// sweep (`expect ampere` / `expect h100`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExpectRef {
    /// No reference: the scenario is exploratory.
    #[default]
    None,
    /// Section 4-5 Ampere study tolerances.
    Ampere,
    /// Section 6 H100 study tolerances.
    H100,
}

impl ExpectRef {
    /// The DSL spelling, for artifacts and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ExpectRef::None => "none",
            ExpectRef::Ampere => "ampere",
            ExpectRef::H100 => "h100",
        }
    }
}

/// The `jobs { … }` block: run the Slurm workload model over the campaign
/// and fold error impact into the sweep's job columns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobsSpec {
    /// Absolute job count over the campaign (`total = 1_445_119`).
    pub total: Option<u64>,
    /// Or a size-relative load (`per_node_day = 25`), scaled by
    /// `nodes × duration_days` at sweep time. Exactly one of the two is
    /// set; the parser rejects both-or-neither.
    pub per_node_day: Option<f64>,
    /// Scheduler placement seed (default 7, the paper recipe).
    pub seed: u64,
    /// Error-masking draw seed (default 99, the paper recipe).
    pub mask_seed: u64,
}

impl JobsSpec {
    /// Resolve the job count for a concrete fleet and duration.
    pub fn job_count(&self, nodes: u32, duration_days: f64) -> u64 {
        match (self.total, self.per_node_day) {
            (Some(t), _) => t,
            (None, Some(per)) => (per * nodes as f64 * duration_days).round() as u64,
            (None, None) => 0,
        }
    }
}

/// A parsed, validated scenario: everything `gpures sweep` needs to run
/// one campaign battery entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Identifier from the `scenario "…"` header (must match the file
    /// stem for shipped scenarios; enforced by the `scenario-hygiene`
    /// lint).
    pub name: String,
    /// Free-text `description "…"` (may be empty).
    pub description: String,
    /// Campaign seeds to expand in a sweep; `compile` uses the first.
    pub seeds: Vec<u64>,
    /// Reference study for pass/fail tolerance checks.
    pub expect: ExpectRef,
    /// Optional workload model.
    pub jobs: Option<JobsSpec>,
    /// The lowered campaign with a placeholder seed; private so the only
    /// way to obtain a runnable config is [`Scenario::compile`] /
    /// [`Scenario::compile_seed`], which stamp a real seed.
    pub(crate) base: CampaignConfig,
}

impl Scenario {
    /// Parse a `.scn` source. See the crate docs for the grammar.
    pub fn parse(src: &str) -> Result<Scenario, DataError> {
        parse::parse(src)
    }

    /// Lower to a runnable [`CampaignConfig`] using the first declared
    /// seed. Fails if the scenario declares none — exploratory files may
    /// omit `seeds` and be driven entirely via [`Scenario::compile_seed`].
    pub fn compile(&self) -> Result<CampaignConfig, DataError> {
        match self.seeds.first() {
            Some(&seed) => Ok(self.compile_seed(seed)),
            None => Err(DataError::Scenario {
                line: 1,
                col: 1,
                message: format!(
                    "scenario `{}` declares no seeds; add `seeds = [...]` or use compile_seed",
                    self.name
                ),
            }),
        }
    }

    /// Lower to a runnable [`CampaignConfig`] with an explicit seed.
    pub fn compile_seed(&self, seed: u64) -> CampaignConfig {
        let mut cfg = self.base.clone();
        cfg.seed = seed;
        cfg
    }

    /// Read access to the lowered campaign (fleet shape, duration, …)
    /// without committing to a seed.
    pub fn config(&self) -> &CampaignConfig {
        &self.base
    }
}

/// The scenarios shipped in the repo's `scenarios/` directory, bundled at
/// compile time. Order is the battery order of `gpures sweep` presets.
pub const BUNDLED: [&str; 6] = [
    "ampere_study",
    "h100_study",
    "tiny",
    "gh200_heavy",
    "mixed_generation",
    "delta_10x",
];

/// The raw `.scn` source of a bundled scenario, if `name` is one.
pub fn preset_source(name: &str) -> Option<&'static str> {
    Some(match name {
        "ampere_study" => include_str!("../../../scenarios/ampere_study.scn"),
        "h100_study" => include_str!("../../../scenarios/h100_study.scn"),
        "tiny" => include_str!("../../../scenarios/tiny.scn"),
        "gh200_heavy" => include_str!("../../../scenarios/gh200_heavy.scn"),
        "mixed_generation" => include_str!("../../../scenarios/mixed_generation.scn"),
        "delta_10x" => include_str!("../../../scenarios/delta_10x.scn"),
        _ => return None,
    })
}

/// Parse a bundled scenario by name.
pub fn preset(name: &str) -> Result<Scenario, DataError> {
    let src = preset_source(name).ok_or_else(|| DataError::Scenario {
        line: 1,
        col: 1,
        message: format!(
            "unknown bundled scenario `{name}` (bundled: {})",
            BUNDLED.join(", ")
        ),
    })?;
    Scenario::parse(src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_faults::FaultClass;

    #[test]
    fn every_bundled_scenario_parses_and_names_match() {
        for name in BUNDLED {
            let sc = preset(name).unwrap_or_else(|e| panic!("{name}.scn: {e}"));
            assert_eq!(sc.name, name, "header/name mismatch in {name}.scn");
            assert!(!sc.seeds.is_empty(), "{name}.scn must declare seeds");
            sc.compile().unwrap_or_else(|e| panic!("{name}.scn: {e}"));
        }
    }

    #[test]
    fn bundled_presets_match_their_rust_constructors_bit_for_bit() {
        // The .scn files are the canonical definitions; the constructors
        // must stay equivalent. PartialEq on CampaignConfig covers every
        // field including the full rate table and tuning block.
        for seed in [0u64, 7, 616, 2024, u64::MAX] {
            assert_eq!(
                preset("ampere_study").expect("parses").compile_seed(seed),
                CampaignConfig::ampere_study(seed),
                "ampere_study.scn drifted from CampaignConfig::ampere_study"
            );
            assert_eq!(
                preset("h100_study").expect("parses").compile_seed(seed),
                CampaignConfig::h100_study(seed),
                "h100_study.scn drifted from CampaignConfig::h100_study"
            );
            assert_eq!(
                preset("tiny").expect("parses").compile_seed(seed),
                CampaignConfig::tiny(seed),
                "tiny.scn drifted from CampaignConfig::tiny"
            );
        }
    }

    #[test]
    fn compile_uses_the_first_seed_and_fails_without_one() {
        let sc = preset("h100_study").expect("parses");
        assert_eq!(sc.compile().expect("has seeds").seed, sc.seeds[0]);

        let src = "scenario \"bare\"\nfleet tiny\nduration_days = 1\nrates ampere_delta\n";
        let bare = Scenario::parse(src).expect("parses without seeds");
        let e = bare.compile().expect_err("no seeds");
        assert!(e.to_string().contains("declares no seeds"), "{e}");
        assert_eq!(bare.compile_seed(3).seed, 3);
    }

    #[test]
    fn fleet_forms_compose() {
        let inline = Scenario::parse(
            "scenario \"custom\"\nfleet {\n  a100x4 = 20\n  gh200 = 200\n}\nduration_days = 1\nrates h100_delta\n",
        )
        .expect("inline fleet");
        assert_eq!(inline.config().shape.node_count(), 220);
        assert_eq!(inline.config().shape.gpu_count(), 880);

        let scaled = Scenario::parse(
            "scenario \"big\"\nfleet delta * 10\nduration_days = 1\nrates ampere_delta\n",
        )
        .expect("scaled fleet");
        assert_eq!(scaled.config().shape.node_count(), 2860);
        assert_eq!(scaled.config().shape.gpu_count(), 11_680);
    }

    #[test]
    fn class_multipliers_bend_only_their_class() {
        let sc = Scenario::parse(
            "scenario \"bent\"\nfleet delta_ampere\nduration_days = 10\nrates ampere_delta\nrates.nvlink *= 2\nrates.xid79 *= 0.5\n",
        )
        .expect("parses");
        let base = dr_faults::ClassRates::ampere_delta();
        for (spec, orig) in sc.config().rates.specs.iter().zip(base.specs.iter()) {
            let want = match spec.class {
                FaultClass::Nvlink => orig.expected_count * 2.0,
                FaultClass::BusDrop => orig.expected_count * 0.5,
                _ => orig.expected_count,
            };
            assert_eq!(spec.expected_count, want, "{:?}", spec.class);
        }
    }

    #[test]
    fn jobs_block_resolves_load_both_ways() {
        let total = Scenario::parse(
            "scenario \"jt\"\nfleet tiny\nduration_days = 30\nrates ampere_delta\njobs {\n  total = 1_000\n}\n",
        )
        .expect("total form");
        let spec = total.jobs.expect("jobs set");
        assert_eq!(spec.job_count(6, 30.0), 1_000);
        assert_eq!((spec.seed, spec.mask_seed), (7, 99), "paper-recipe defaults");

        let per = Scenario::parse(
            "scenario \"jp\"\nfleet tiny\nduration_days = 30\nrates ampere_delta\njobs {\n  per_node_day = 25\n  seed = 11\n}\n",
        )
        .expect("per-node form");
        assert_eq!(per.jobs.expect("jobs set").job_count(6, 30.0), 4_500);
    }

    /// The rejection matrix: each malformed source must fail at exactly
    /// the line/column of its defect with a message naming it.
    #[test]
    fn rejection_matrix_pins_line_and_column() {
        let cases: &[(&str, usize, usize, &str)] = &[
            ("fleet tiny\n", 1, 1, "must start with `scenario"),
            ("scenario \"x\"\nfleet moon\n", 2, 7, "unknown fleet preset"),
            (
                "scenario \"x\"\nfleet tiny\nduration_days = 0\n",
                3,
                17,
                "must be positive",
            ),
            (
                "scenario \"x\"\nfleet tiny\nduration_weeks = 3\n",
                3,
                1,
                "unknown statement",
            ),
            (
                "scenario \"x\"\nrates.nvlink *= 2\n",
                2,
                1,
                "before scaling",
            ),
            (
                "scenario \"x\"\nrates ampere_delta\nrates.xid999 *= 2\n",
                3,
                7,
                "unknown fault class",
            ),
            (
                "scenario \"x\"\nrates h100_delta\nrates.nvlink *= 2\n",
                3,
                7,
                "not in the base rate table",
            ),
            (
                "scenario \"x\"\ntuning {\n  p_pmu_to_mmu = 1.5\n}\n",
                3,
                18,
                "must be in [0, 1]",
            ),
            (
                "scenario \"x\"\ntuning {\n  p_warp_drive = 0.5\n}\n",
                3,
                3,
                "unknown `tuning` key",
            ),
            ("scenario \"x\"\nseeds = []\n", 2, 9, "must not be empty"),
            (
                "scenario \"x\"\nfleet tiny\nfleet tiny\n",
                3,
                1,
                "duplicate `fleet`",
            ),
            (
                "scenario \"x\"\nfleet delta * 0\n",
                2,
                15,
                "multiplier must be >= 1",
            ),
            (
                "scenario \"x\"\njobs {\n  seed = 3\n}\n",
                2,
                1,
                "needs a load size",
            ),
            (
                "scenario \"x\"\njobs {\n  total = 5\n  per_node_day = 1\n}\n",
                2,
                1,
                "pick one",
            ),
            (
                "scenario \"x\"\nexpect blackwell\n",
                2,
                8,
                "unknown reference study",
            ),
            (
                "scenario \"x\"\nfleet { bogus = 3\n}\n",
                2,
                9,
                "unknown node flavor",
            ),
            ("scenario \"x\"\nseeds = [1.5]\n", 2, 10, "expected an integer"),
        ];
        for (src, line, col, needle) in cases {
            match Scenario::parse(src) {
                Ok(_) => panic!("accepted malformed source:\n{src}"),
                Err(DataError::Scenario {
                    line: l,
                    col: c,
                    message,
                }) => {
                    assert!(
                        message.contains(needle),
                        "wrong message for:\n{src}\n  got: {message}\n  want substring: {needle}"
                    );
                    assert_eq!(
                        (l, c),
                        (*line, *col),
                        "wrong position for:\n{src}\n  ({message})"
                    );
                }
                Err(other) => panic!("non-scenario error for:\n{src}\n  {other}"),
            }
        }
    }

    #[test]
    fn missing_required_statements_name_the_scenario() {
        let e = Scenario::parse("scenario \"lonely\"\n").expect_err("missing everything");
        assert!(
            e.to_string().contains("`lonely` is missing its required `fleet`"),
            "{e}"
        );
        let e = Scenario::parse("scenario \"lonely\"\nfleet tiny\nduration_days = 1\n")
            .expect_err("missing rates");
        assert!(e.to_string().contains("required `rates`"), "{e}");
    }

    #[test]
    fn expect_and_description_round_trip() {
        let sc = preset("ampere_study").expect("parses");
        assert_eq!(sc.expect, ExpectRef::Ampere);
        assert!(!sc.description.is_empty());
        assert_eq!(preset("h100_study").expect("parses").expect, ExpectRef::H100);
        assert_eq!(preset("tiny").expect("parses").expect, ExpectRef::None);
    }

    #[test]
    fn delta_10x_is_a_ten_thousand_gpu_fleet() {
        let sc = preset("delta_10x").expect("parses");
        assert!(sc.config().shape.gpu_count() >= 10_000);
        assert_eq!(sc.config().shape.node_count(), 2_860);
    }
}
