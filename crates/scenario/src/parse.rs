//! The `.scn` parser and compiler.
//!
//! Statements are newline-terminated; the full grammar is documented in
//! `DESIGN.md` ("Scenario DSL"). Parsing is strict by design: every
//! unknown key, absent fault class, out-of-range probability, or missing
//! required statement is a [`DataError::Scenario`] carrying the 1-based
//! line and column of the offending token, so a battery author fixing a
//! typo is pointed at the character, not the file.

use crate::lex::{err, lex, Token, TokenKind};
use crate::{ExpectRef, JobsSpec, Scenario};
use dr_cluster::DeltaShape;
use dr_faults::{CampaignConfig, ClassRates, FaultClass};
use dr_xid::DataError;

/// Map a DSL class name (or `xidNN` alias) to its fault class.
pub fn class_by_name(s: &str) -> Option<FaultClass> {
    Some(match s {
        "mmu_app" | "xid31" => FaultClass::MmuApp,
        "dbe" | "xid48" => FaultClass::Dbe,
        "sbe_pair" | "xid63" => FaultClass::SbePair,
        "nvlink" | "xid74" => FaultClass::Nvlink,
        "bus_drop" | "xid79" => FaultClass::BusDrop,
        "sram_contained" | "xid94" => FaultClass::SramContained,
        "uncontained_storm" | "xid95" => FaultClass::UncontainedStorm,
        "gsp_hang" | "xid119" => FaultClass::GspHang,
        "pmu_spi" | "xid122" => FaultClass::PmuSpi,
        "software_noise" | "xid13" => FaultClass::SoftwareNoise,
        "event136" | "xid136" => FaultClass::Event136,
        _ => return None,
    })
}

struct Cursor {
    toks: Vec<Token>,
    i: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    /// Position just past the end of the source, for "missing statement"
    /// diagnostics.
    fn end_pos(&self) -> (usize, usize) {
        self.toks.last().map(|t| (t.line, t.col)).unwrap_or((1, 1))
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Newline)) {
            self.i += 1;
        }
    }

    fn expect_newline(&mut self) -> Result<(), DataError> {
        match self.bump() {
            Some(Token {
                kind: TokenKind::Newline,
                ..
            }) => Ok(()),
            Some(t) => Err(err(
                t.line,
                t.col,
                format!("expected end of line, found {}", t.kind.describe()),
            )),
            None => Ok(()),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<Token, DataError> {
        match self.bump() {
            Some(t) if t.kind == TokenKind::Punct(c) => Ok(t),
            Some(t) => Err(err(
                t.line,
                t.col,
                format!("expected `{c}`, found {}", t.kind.describe()),
            )),
            None => {
                let (l, co) = self.end_pos();
                Err(err(l, co, format!("expected `{c}`, found end of file")))
            }
        }
    }

    fn expect_ident(&mut self) -> Result<(String, usize, usize), DataError> {
        match self.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                line,
                col,
            }) => Ok((s, line, col)),
            Some(t) => Err(err(
                t.line,
                t.col,
                format!("expected a name, found {}", t.kind.describe()),
            )),
            None => {
                let (l, c) = self.end_pos();
                Err(err(l, c, "expected a name, found end of file"))
            }
        }
    }

    fn expect_str(&mut self) -> Result<(String, usize, usize), DataError> {
        match self.bump() {
            Some(Token {
                kind: TokenKind::Str(s),
                line,
                col,
            }) => Ok((s, line, col)),
            Some(t) => Err(err(
                t.line,
                t.col,
                format!("expected a quoted string, found {}", t.kind.describe()),
            )),
            None => {
                let (l, c) = self.end_pos();
                Err(err(l, c, "expected a quoted string, found end of file"))
            }
        }
    }

    fn expect_f64(&mut self) -> Result<(f64, usize, usize), DataError> {
        match self.bump() {
            Some(Token {
                kind: TokenKind::Num(raw),
                line,
                col,
            }) => {
                let clean: String = raw.chars().filter(|&c| c != '_').collect();
                clean
                    .parse::<f64>()
                    .map(|v| (v, line, col))
                    .map_err(|_| err(line, col, format!("malformed number `{raw}`")))
            }
            Some(t) => Err(err(
                t.line,
                t.col,
                format!("expected a number, found {}", t.kind.describe()),
            )),
            None => {
                let (l, c) = self.end_pos();
                Err(err(l, c, "expected a number, found end of file"))
            }
        }
    }

    fn expect_u64(&mut self) -> Result<(u64, usize, usize), DataError> {
        match self.bump() {
            Some(Token {
                kind: TokenKind::Num(raw),
                line,
                col,
            }) => {
                let clean: String = raw.chars().filter(|&c| c != '_').collect();
                clean
                    .parse::<u64>()
                    .map(|v| (v, line, col))
                    .map_err(|_| err(line, col, format!("expected an integer, found `{raw}`")))
            }
            Some(t) => Err(err(
                t.line,
                t.col,
                format!("expected an integer, found {}", t.kind.describe()),
            )),
            None => {
                let (l, c) = self.end_pos();
                Err(err(l, c, "expected an integer, found end of file"))
            }
        }
    }

    fn expect_bool(&mut self) -> Result<(bool, usize, usize), DataError> {
        let (word, line, col) = self.expect_ident()?;
        match word.as_str() {
            "true" => Ok((true, line, col)),
            "false" => Ok((false, line, col)),
            other => Err(err(line, col, format!("expected `true` or `false`, found `{other}`"))),
        }
    }

    fn expect_star_eq(&mut self) -> Result<(), DataError> {
        match self.bump() {
            Some(t) if t.kind == TokenKind::StarEq => Ok(()),
            Some(t) => Err(err(
                t.line,
                t.col,
                format!("expected `*=`, found {}", t.kind.describe()),
            )),
            None => {
                let (l, c) = self.end_pos();
                Err(err(l, c, "expected `*=`, found end of file"))
            }
        }
    }
}

/// Run `entry` once per `key = …` entry of a `{ … }` block. Entries are
/// usually one per line but may share a line, separated by whitespace or
/// an optional comma (`fleet { a100x4 = 20, gh200 = 200 }`); the
/// callback consumes everything after the key (normally `= value`).
fn parse_block(
    p: &mut Cursor,
    mut entry: impl FnMut(&mut Cursor, &str, usize, usize) -> Result<(), DataError>,
) -> Result<(), DataError> {
    p.expect_punct('{')?;
    loop {
        p.skip_newlines();
        if matches!(p.peek().map(|t| &t.kind), Some(TokenKind::Punct('}'))) {
            p.bump();
            return Ok(());
        }
        let (key, line, col) = p.expect_ident()?;
        entry(p, &key, line, col)?;
        if matches!(p.peek().map(|t| &t.kind), Some(TokenKind::Punct(','))) {
            p.bump();
        }
    }
}

/// A probability key must carry a probability value.
fn check_prob(key: &str, v: f64, line: usize, col: usize) -> Result<(), DataError> {
    if !(0.0..=1.0).contains(&v) {
        return Err(err(
            line,
            col,
            format!("`{key}` is a probability and must be in [0, 1], got {v}"),
        ));
    }
    Ok(())
}

pub fn parse(src: &str) -> Result<Scenario, DataError> {
    let mut p = Cursor {
        toks: lex(src)?,
        i: 0,
    };

    // The header must come first so error messages can name the scenario
    // and so the hygiene lint can check name-matches-filename cheaply.
    p.skip_newlines();
    let (first, fline, fcol) = p.expect_ident()?;
    if first != "scenario" {
        return Err(err(
            fline,
            fcol,
            format!("a scenario file must start with `scenario \"name\"`, found `{first}`"),
        ));
    }
    let (name, nline, ncol) = p.expect_str()?;
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(err(
            nline,
            ncol,
            format!("scenario name `{name}` must be a non-empty [a-z0-9_]+ identifier"),
        ));
    }
    p.expect_newline()?;

    let mut description = String::new();
    let mut shape: Option<DeltaShape> = None;
    let mut duration_days: Option<f64> = None;
    let mut seeds: Vec<u64> = Vec::new();
    let mut burst_gap_s = 4.5_f64;
    let mut rates: Option<ClassRates> = None;
    let mut tuning = dr_gpu::RasTuning::default();
    let mut text = dr_faults::TextConfig::default();
    let mut repair = dr_faults::RepairConfig::default();
    let mut jobs: Option<JobsSpec> = None;
    let mut expect = ExpectRef::None;

    loop {
        p.skip_newlines();
        let Some(tok) = p.peek() else { break };
        let (line, col) = (tok.line, tok.col);
        let (word, _, _) = p.expect_ident()?;
        let dup = |what: &str| err(line, col, format!("duplicate `{what}` statement"));
        match word.as_str() {
            "scenario" => return Err(dup("scenario")),
            "description" => {
                if !description.is_empty() {
                    return Err(dup("description"));
                }
                let (d, dl, dc) = p.expect_str()?;
                if d.is_empty() {
                    return Err(err(dl, dc, "description must not be empty"));
                }
                description = d;
                p.expect_newline()?;
            }
            "fleet" => {
                if shape.is_some() {
                    return Err(dup("fleet"));
                }
                shape = Some(parse_fleet(&mut p)?);
                p.expect_newline()?;
            }
            "duration_days" => {
                if duration_days.is_some() {
                    return Err(dup("duration_days"));
                }
                p.expect_punct('=')?;
                let (v, vl, vc) = p.expect_f64()?;
                if !(v > 0.0) {
                    return Err(err(vl, vc, format!("duration_days must be positive, got {v}")));
                }
                duration_days = Some(v);
                p.expect_newline()?;
            }
            "burst_gap_s" => {
                p.expect_punct('=')?;
                let (v, vl, vc) = p.expect_f64()?;
                if !(v > 0.0) {
                    return Err(err(vl, vc, format!("burst_gap_s must be positive, got {v}")));
                }
                burst_gap_s = v;
                p.expect_newline()?;
            }
            "seeds" => {
                if !seeds.is_empty() {
                    return Err(dup("seeds"));
                }
                p.expect_punct('=')?;
                let open = p.expect_punct('[')?;
                loop {
                    if matches!(p.peek().map(|t| &t.kind), Some(TokenKind::Punct(']'))) {
                        p.bump();
                        break;
                    }
                    let (s, _, _) = p.expect_u64()?;
                    seeds.push(s);
                    match p.peek().map(|t| &t.kind) {
                        Some(TokenKind::Punct(',')) => {
                            p.bump();
                        }
                        Some(TokenKind::Punct(']')) => {}
                        _ => {
                            let t = p.bump();
                            let (l, c, d) = t
                                .map(|t| (t.line, t.col, t.kind.describe()))
                                .unwrap_or_else(|| {
                                    let (l, c) = p.end_pos();
                                    (l, c, "end of file".into())
                                });
                            return Err(err(l, c, format!("expected `,` or `]` in seed list, found {d}")));
                        }
                    }
                }
                if seeds.is_empty() {
                    return Err(err(open.line, open.col, "seed list must not be empty"));
                }
                p.expect_newline()?;
            }
            "rates" => {
                parse_rates(&mut p, &mut rates, line, col)?;
                p.expect_newline()?;
            }
            "text" => {
                parse_block(&mut p, |p, key, kl, kc| {
                    p.expect_punct('=')?;
                    match key {
                        "nodes" => {
                            let (v, _, _) = p.expect_u64()?;
                            text.nodes = v as usize;
                        }
                        "defer" => text.defer = p.expect_bool()?.0,
                        "noise_per_node_hour" => {
                            let (v, vl, vc) = p.expect_f64()?;
                            if v < 0.0 {
                                return Err(err(vl, vc, "noise_per_node_hour must be >= 0"));
                            }
                            text.noise_per_node_hour = v;
                        }
                        other => {
                            return Err(err(kl, kc, format!("unknown `text` key `{other}`")))
                        }
                    }
                    Ok(())
                })?;
                p.expect_newline()?;
            }
            "repair" => {
                parse_block(&mut p, |p, key, kl, kc| {
                    p.expect_punct('=')?;
                    let (v, vl, vc) = p.expect_f64()?;
                    match key {
                        "p_storm" => {
                            check_prob(key, v, vl, vc)?;
                            repair.p_storm = v;
                        }
                        "median_h" | "p95_h" => {
                            if !(v > 0.0) {
                                return Err(err(vl, vc, format!("`{key}` must be positive, got {v}")));
                            }
                            if key == "median_h" {
                                repair.median_h = v;
                            } else {
                                repair.p95_h = v;
                            }
                        }
                        other => {
                            return Err(err(kl, kc, format!("unknown `repair` key `{other}`")))
                        }
                    }
                    Ok(())
                })?;
                if repair.p95_h < repair.median_h {
                    return Err(err(
                        line,
                        col,
                        format!(
                            "repair p95_h ({}) must be >= median_h ({})",
                            repair.p95_h, repair.median_h
                        ),
                    ));
                }
                p.expect_newline()?;
            }
            "tuning" => {
                parse_block(&mut p, |p, key, kl, kc| {
                    p.expect_punct('=')?;
                    if key == "nvlink_down_threshold" {
                        let (v, vl, vc) = p.expect_u64()?;
                        if v == 0 || v > u32::MAX as u64 {
                            return Err(err(vl, vc, "nvlink_down_threshold must be in [1, 2^32)"));
                        }
                        tuning.nvlink_down_threshold = v as u32;
                        return Ok(());
                    }
                    let (v, vl, vc) = p.expect_f64()?;
                    if key.starts_with("p_") {
                        check_prob(key, v, vl, vc)?;
                    } else if !(v > 0.0) {
                        return Err(err(vl, vc, format!("`{key}` must be positive, got {v}")));
                    }
                    match key {
                        "p_contained_after_rrf" => tuning.p_contained_after_rrf = v,
                        "p_error_state_after_rrf" => tuning.p_error_state_after_rrf = v,
                        "p_gsp_cascade_pmu" => tuning.p_gsp_cascade_pmu = v,
                        "p_pmu_to_mmu" => tuning.p_pmu_to_mmu = v,
                        "p_nvlink_error_state" => tuning.p_nvlink_error_state = v,
                        "p_nvlink_spread" => tuning.p_nvlink_spread = v,
                        "dbe_to_remap_s" => tuning.dbe_to_remap_s = v,
                        "rrf_to_containment_s" => tuning.rrf_to_containment_s = v,
                        "gsp_to_pmu_s" => tuning.gsp_to_pmu_s = v,
                        "pmu_to_mmu_s" => tuning.pmu_to_mmu_s = v,
                        other => {
                            return Err(err(kl, kc, format!("unknown `tuning` key `{other}`")))
                        }
                    }
                    Ok(())
                })?;
                p.expect_newline()?;
            }
            "jobs" => {
                if jobs.is_some() {
                    return Err(dup("jobs"));
                }
                let mut spec = JobsSpec {
                    total: None,
                    per_node_day: None,
                    seed: 7,
                    mask_seed: 99,
                };
                parse_block(&mut p, |p, key, kl, kc| {
                    p.expect_punct('=')?;
                    match key {
                        "total" => spec.total = Some(p.expect_u64()?.0),
                        "per_node_day" => {
                            let (v, vl, vc) = p.expect_f64()?;
                            if !(v > 0.0) {
                                return Err(err(vl, vc, "per_node_day must be positive"));
                            }
                            spec.per_node_day = Some(v);
                        }
                        "seed" => spec.seed = p.expect_u64()?.0,
                        "mask_seed" => spec.mask_seed = p.expect_u64()?.0,
                        other => {
                            return Err(err(kl, kc, format!("unknown `jobs` key `{other}`")))
                        }
                    }
                    Ok(())
                })?;
                match (spec.total, spec.per_node_day) {
                    (Some(_), Some(_)) => {
                        return Err(err(
                            line,
                            col,
                            "jobs block sets both `total` and `per_node_day`; pick one",
                        ))
                    }
                    (None, None) => {
                        return Err(err(
                            line,
                            col,
                            "jobs block needs a load size: set `total` or `per_node_day`",
                        ))
                    }
                    _ => {}
                }
                jobs = Some(spec);
                p.expect_newline()?;
            }
            "expect" => {
                if expect != ExpectRef::None {
                    return Err(dup("expect"));
                }
                let (which, wl, wc) = p.expect_ident()?;
                expect = match which.as_str() {
                    "ampere" => ExpectRef::Ampere,
                    "h100" => ExpectRef::H100,
                    other => {
                        return Err(err(
                            wl,
                            wc,
                            format!("unknown reference study `{other}` (expected `ampere` or `h100`)"),
                        ))
                    }
                };
                p.expect_newline()?;
            }
            other => {
                return Err(err(line, col, format!("unknown statement `{other}`")));
            }
        }
    }

    let (el, _) = p.end_pos();
    let missing = |what: &str| {
        err(
            el,
            1,
            format!("scenario `{name}` is missing its required `{what}` statement"),
        )
    };
    let shape = shape.ok_or_else(|| missing("fleet"))?;
    let duration_days = duration_days.ok_or_else(|| missing("duration_days"))?;
    let rates = rates.ok_or_else(|| missing("rates"))?;

    Ok(Scenario {
        name,
        description,
        seeds,
        expect,
        jobs,
        base: CampaignConfig {
            shape,
            duration_days,
            seed: 0,
            tuning,
            rates,
            burst_gap_s,
            text,
            repair,
        },
    })
}

fn parse_fleet(p: &mut Cursor) -> Result<DeltaShape, DataError> {
    if matches!(p.peek().map(|t| &t.kind), Some(TokenKind::Punct('{'))) {
        let mut shape = DeltaShape {
            a40x4: 0,
            a100x4: 0,
            a100x8: 0,
            gh200: 0,
        };
        let mut open = (0usize, 0usize);
        if let Some(t) = p.peek() {
            open = (t.line, t.col);
        }
        parse_block(p, |p, key, kl, kc| {
            p.expect_punct('=')?;
            let (v, vl, vc) = p.expect_u64()?;
            let v: u32 = v
                .try_into()
                .map_err(|_| err(vl, vc, format!("node count {v} does not fit in u32")))?;
            match key {
                "a40x4" => shape.a40x4 = v,
                "a100x4" => shape.a100x4 = v,
                "a100x8" => shape.a100x8 = v,
                "gh200" => shape.gh200 = v,
                other => {
                    return Err(err(
                        kl,
                        kc,
                        format!("unknown node flavor `{other}` (a40x4, a100x4, a100x8, gh200)"),
                    ))
                }
            }
            Ok(())
        })?;
        if shape.node_count() == 0 {
            return Err(err(open.0, open.1, "fleet block describes zero nodes"));
        }
        return Ok(shape);
    }

    let (preset, pl, pc) = p.expect_ident()?;
    let mut shape = match preset.as_str() {
        "delta" => DeltaShape::delta(),
        "delta_ampere" => DeltaShape::delta_ampere(),
        "delta_h100" => DeltaShape::delta_h100(),
        "tiny" => DeltaShape::tiny(),
        other => {
            return Err(err(
                pl,
                pc,
                format!("unknown fleet preset `{other}` (delta, delta_ampere, delta_h100, tiny)"),
            ))
        }
    };
    if matches!(p.peek().map(|t| &t.kind), Some(TokenKind::Punct('*'))) {
        p.bump();
        let (n, nl, nc) = p.expect_u64()?;
        if n == 0 {
            return Err(err(nl, nc, "fleet multiplier must be >= 1"));
        }
        let scale = |v: u32| -> Result<u32, DataError> {
            (v as u64)
                .checked_mul(n)
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| err(nl, nc, format!("fleet multiplier {n} overflows node counts")))
        };
        shape = DeltaShape {
            a40x4: scale(shape.a40x4)?,
            a100x4: scale(shape.a100x4)?,
            a100x8: scale(shape.a100x8)?,
            gh200: scale(shape.gh200)?,
        };
    }
    Ok(shape)
}

fn parse_rates(
    p: &mut Cursor,
    rates: &mut Option<ClassRates>,
    line: usize,
    col: usize,
) -> Result<(), DataError> {
    // Two statement forms share the keyword: `rates <base-table>` and
    // `rates.<class>|* *= F`. Multipliers are ordered after the base so a
    // scenario reads top-down as "start from the calibration, then bend it".
    if matches!(p.peek().map(|t| &t.kind), Some(TokenKind::Punct('.'))) {
        p.bump();
        let Some(table) = rates.as_mut() else {
            return Err(err(
                line,
                col,
                "set a base rate table (`rates ampere_delta` or `rates h100_delta`) before scaling",
            ));
        };
        if matches!(p.peek().map(|t| &t.kind), Some(TokenKind::Punct('*'))) {
            p.bump();
            p.expect_star_eq()?;
            let (f, fl, fc) = p.expect_f64()?;
            if f < 0.0 {
                return Err(err(fl, fc, "rate multiplier must be >= 0"));
            }
            *table = table.clone().scale_all(f);
            return Ok(());
        }
        let (cls_name, cl, cc) = p.expect_ident()?;
        let Some(class) = class_by_name(&cls_name) else {
            return Err(err(cl, cc, format!("unknown fault class `{cls_name}`")));
        };
        p.expect_star_eq()?;
        let (f, fl, fc) = p.expect_f64()?;
        if f < 0.0 {
            return Err(err(fl, fc, "rate multiplier must be >= 0"));
        }
        if !table.scale_class(class, f) {
            return Err(err(
                cl,
                cc,
                format!("class `{cls_name}` is not in the base rate table of this scenario"),
            ));
        }
        return Ok(());
    }

    if rates.is_some() {
        return Err(err(line, col, "duplicate `rates` base-table statement"));
    }
    let (table, tl, tc) = p.expect_ident()?;
    *rates = Some(match table.as_str() {
        "ampere_delta" => ClassRates::ampere_delta(),
        "h100_delta" => ClassRates::h100_delta(),
        other => {
            return Err(err(
                tl,
                tc,
                format!("unknown rate table `{other}` (ampere_delta, h100_delta)"),
            ))
        }
    });
    Ok(())
}
