//! The `.scn` lexer.
//!
//! Hand-rolled, like `dr-lint`'s Rust lexer: the format is small enough
//! that a character scanner with explicit line/column tracking beats any
//! grammar machinery, and the zero-dependency rule holds. Statements are
//! newline-separated, so unlike a freeform language the lexer emits
//! [`TokenKind::Newline`] tokens; the parser treats them as statement
//! terminators and skips blank runs.

use dr_xid::DataError;

/// One lexical token with its 1-based source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Bare word: keys, preset names, `true`/`false`.
    Ident(String),
    /// Numeric literal, kept raw so integers round-trip exactly
    /// (`1_445_119` stays a `u64`, never a lossy float).
    Num(String),
    /// Double-quoted string (no escape sequences).
    Str(String),
    /// Single-character punctuation: `{ } [ ] = , . *`.
    Punct(char),
    /// The `*=` multiplier-assignment operator.
    StarEq,
    /// Statement terminator.
    Newline,
}

impl TokenKind {
    /// Human label for "expected X, found Y" diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Num(s) => format!("number `{s}`"),
            TokenKind::Str(s) => format!("\"{s}\""),
            TokenKind::Punct(c) => format!("`{c}`"),
            TokenKind::StarEq => "`*=`".to_string(),
            TokenKind::Newline => "end of line".to_string(),
        }
    }
}

/// Convenience constructor for positioned scenario errors.
pub fn err(line: usize, col: usize, message: impl Into<String>) -> DataError {
    DataError::Scenario {
        line,
        col,
        message: message.into(),
    }
}

/// Tokenize a full `.scn` source. `#` starts a comment running to end of
/// line; a trailing [`TokenKind::Newline`] is always appended so the
/// parser never has to special-case a missing final newline.
pub fn lex(src: &str) -> Result<Vec<Token>, DataError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = src.chars().peekable();

    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        match c {
            '\n' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Newline,
                    line: tline,
                    col: tcol,
                });
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
                col += 1;
            }
            '#' => {
                while let Some(&n) = chars.peek() {
                    if n == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            '"' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => {
                            col += 1;
                            break;
                        }
                        Some('\n') | None => {
                            return Err(err(tline, tcol, "unterminated string"));
                        }
                        Some(ch) => {
                            col += 1;
                            s.push(ch);
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line: tline,
                    col: tcol,
                });
            }
            '*' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    out.push(Token {
                        kind: TokenKind::StarEq,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    out.push(Token {
                        kind: TokenKind::Punct('*'),
                        line: tline,
                        col: tcol,
                    });
                }
            }
            '{' | '}' | '[' | ']' | '=' | ',' | '.' => {
                chars.next();
                col += 1;
                out.push(Token {
                    kind: TokenKind::Punct(c),
                    line: tline,
                    col: tcol,
                });
            }
            '0'..='9' => {
                let mut s = String::new();
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_digit() || n == '_' || n == '.' {
                        // `10.gpus` style member access never occurs; a dot
                        // after digits is always a decimal point here.
                        s.push(n);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Num(s),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_alphanumeric() || n == '_' {
                        s.push(n);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(s),
                    line: tline,
                    col: tcol,
                });
            }
            other => {
                return Err(err(
                    tline,
                    tcol,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    let end_line = line;
    out.push(Token {
        kind: TokenKind::Newline,
        line: end_line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let toks = lex("fleet tiny\n  duration_days = 30.0\n").expect("lexes");
        let fleet = &toks[0];
        assert_eq!(fleet.kind, TokenKind::Ident("fleet".into()));
        assert_eq!((fleet.line, fleet.col), (1, 1));
        let dur = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("duration_days".into()))
            .expect("duration token");
        assert_eq!((dur.line, dur.col), (2, 3));
    }

    #[test]
    fn star_eq_and_bare_star_are_distinct() {
        let toks = lex("rates.* *= 0.3\nfleet delta * 10\n").expect("lexes");
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert!(kinds.contains(&&TokenKind::StarEq));
        assert!(kinds.contains(&&TokenKind::Punct('*')));
    }

    #[test]
    fn comments_and_underscored_numbers() {
        let toks = lex("total = 1_445_119 # paper job count\n").expect("lexes");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Num("1_445_119".into())));
        // Nothing from the comment leaks into the stream.
        assert!(!toks
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "paper")));
    }

    #[test]
    fn bad_character_is_a_positioned_error() {
        let e = lex("fleet tiny\nseeds = [7; 8]\n").expect_err("semicolon rejected");
        assert_eq!(
            e,
            DataError::Scenario {
                line: 2,
                col: 11,
                message: "unexpected character `;`".into()
            }
        );
    }

    #[test]
    fn unterminated_string_points_at_the_opening_quote() {
        let e = lex("scenario \"drifts\n").expect_err("unterminated");
        match e {
            DataError::Scenario { line, col, message } => {
                assert_eq!((line, col), (1, 10));
                assert!(message.contains("unterminated"));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }
}
