//! Accounting-table CSV serialization.
//!
//! The `gpures` CLI round-trips the job table through disk so the analysis
//! pipeline can run on files, the way the real study consumed the Slurm
//! accounting database. The format is one header plus one row per job:
//!
//! ```text
//! id,start_us,end_us,state,exit_code,ml,gpus
//! 17,360000000,7200000000,COMPLETED,0,0,3/0000:07:00;3/0000:0f:00
//! ```
//!
//! `gpus` is a `;`-separated list of `node/pci` identifiers matching
//! [`dr_xid::GpuId`]'s display format.

use crate::jobs::{JobRecord, JobState};
use dr_xid::{GpuId, NodeId, PciAddr, Timestamp};
use std::fmt::Write as _;

/// Header line.
pub const HEADER: &str = "id,start_us,end_us,state,exit_code,ml,gpus";

/// Parse error with line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsvError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jobs csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Boundary conversion into the workspace-wide data-path error.
impl From<CsvError> for dr_xid::DataError {
    fn from(e: CsvError) -> Self {
        dr_xid::DataError::Csv {
            artifact: "jobs",
            line: e.line,
            message: e.message,
        }
    }
}

fn state_str(s: JobState) -> &'static str {
    match s {
        JobState::Completed => "COMPLETED",
        JobState::UserFailed => "FAILED",
        JobState::GpuFailed => "GPU_FAILED",
    }
}

fn parse_state(s: &str) -> Option<JobState> {
    match s {
        "COMPLETED" => Some(JobState::Completed),
        "FAILED" => Some(JobState::UserFailed),
        "GPU_FAILED" => Some(JobState::GpuFailed),
        _ => None,
    }
}

/// Serialize the whole table (header included).
pub fn to_csv(jobs: &[JobRecord]) -> String {
    let mut out = String::with_capacity(64 * jobs.len() + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for j in jobs {
        let mut gpus = String::new();
        for (i, g) in j.gpus.iter().enumerate() {
            if i > 0 {
                gpus.push(';');
            }
            let _ = write!(gpus, "{}/{}", g.node.0, g.pci);
        }
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            j.id,
            j.start.as_micros(),
            j.end.as_micros(),
            state_str(j.state),
            j.exit_code,
            j.ml as u8,
            gpus
        );
    }
    out
}

/// Parse a table (header required).
pub fn from_csv(text: &str) -> Result<Vec<JobRecord>, CsvError> {
    let err = |line: usize, message: &str| CsvError {
        line,
        message: message.to_string(),
    };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(err(1, "missing or wrong header")),
    }
    let mut jobs = Vec::new();
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let fields: Vec<&str> = raw.split(',').collect();
        if fields.len() != 7 {
            return Err(err(line_no, "expected 7 fields"));
        }
        let id: u64 = fields[0].parse().map_err(|_| err(line_no, "bad id"))?;
        let start: u64 = fields[1].parse().map_err(|_| err(line_no, "bad start_us"))?;
        let end: u64 = fields[2].parse().map_err(|_| err(line_no, "bad end_us"))?;
        if end < start {
            return Err(err(line_no, "end before start"));
        }
        let state = parse_state(fields[3]).ok_or_else(|| err(line_no, "bad state"))?;
        let exit_code: i32 = fields[4].parse().map_err(|_| err(line_no, "bad exit code"))?;
        let ml = match fields[5] {
            "0" => false,
            "1" => true,
            _ => return Err(err(line_no, "bad ml flag")),
        };
        let mut gpus = Vec::new();
        for part in fields[6].split(';').filter(|p| !p.is_empty()) {
            let (node, pci) = part
                .split_once('/')
                .ok_or_else(|| err(line_no, "bad gpu id"))?;
            let node: u32 = node.parse().map_err(|_| err(line_no, "bad node id"))?;
            let pci: PciAddr = pci.parse().map_err(|_| err(line_no, "bad pci"))?;
            gpus.push(GpuId::new(NodeId(node), pci));
        }
        if gpus.is_empty() {
            return Err(err(line_no, "job without GPUs"));
        }
        jobs.push(JobRecord {
            id,
            gpus,
            start: Timestamp::from_micros(start),
            end: Timestamp::from_micros(end),
            state,
            exit_code,
            ml,
        });
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::Duration;

    fn sample_jobs() -> Vec<JobRecord> {
        vec![
            JobRecord {
                id: 1,
                gpus: vec![GpuId::at_slot(NodeId(3), 0), GpuId::at_slot(NodeId(3), 1)],
                start: Timestamp::from_secs(100),
                end: Timestamp::from_secs(4_000),
                state: JobState::Completed,
                exit_code: 0,
                ml: true,
            },
            JobRecord {
                id: 2,
                gpus: vec![GpuId::at_slot(NodeId(7), 2)],
                start: Timestamp::from_secs(50) + Duration::from_micros(123),
                end: Timestamp::from_secs(99),
                state: JobState::GpuFailed,
                exit_code: 139,
                ml: false,
            },
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let jobs = sample_jobs();
        let csv = to_csv(&jobs);
        let parsed = from_csv(&csv).expect("parses");
        assert_eq!(parsed.len(), 2);
        for (a, b) in jobs.iter().zip(&parsed) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.gpus, b.gpus);
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
            assert_eq!(a.state, b.state);
            assert_eq!(a.exit_code, b.exit_code);
            assert_eq!(a.ml, b.ml);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_csv("").is_err());
        assert!(from_csv("wrong,header\n").is_err());
        let bad_fields = format!("{HEADER}\n1,2,3\n");
        assert!(from_csv(&bad_fields).is_err());
        let bad_state = format!("{HEADER}\n1,0,5,RUNNING,0,0,1/0000:07:00\n");
        assert!(from_csv(&bad_state).is_err());
        let end_before_start = format!("{HEADER}\n1,10,5,COMPLETED,0,0,1/0000:07:00\n");
        assert!(from_csv(&end_before_start).is_err());
        let no_gpus = format!("{HEADER}\n1,0,5,COMPLETED,0,0,\n");
        assert!(from_csv(&no_gpus).is_err());
    }

    #[test]
    fn skips_blank_lines_and_reports_line_numbers() {
        let csv = format!("{HEADER}\n\n1,0,5,COMPLETED,0,1,4/0000:47:00\n");
        let jobs = from_csv(&csv).expect("parses");
        assert_eq!(jobs.len(), 1);
        assert!(jobs[0].ml);
        let bad = format!("{HEADER}\n1,0,5,COMPLETED,0,0,4/0000:47:00\nx,y\n");
        let e = from_csv(&bad).unwrap_err();
        assert_eq!(e.line, 3);
    }
}
