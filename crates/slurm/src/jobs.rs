//! Workload mixture calibrated to Table 3.

use dr_stats::dist::Sampler;
use dr_stats::LogNormal;
use dr_xid::{Duration, GpuId, Timestamp};
use rand::Rng;

/// The 48-hour walltime limit visible in Table 3's P99 column (2,880 min).
pub const WALLTIME_CAP_MIN: f64 = 2_880.0;

/// One row of Table 3: a job-size bucket.
#[derive(Clone, Copy, Debug)]
pub struct SizeBucket {
    /// Inclusive GPU-count range.
    pub min_gpus: u16,
    pub max_gpus: u16,
    /// Fraction of all GPU jobs in this bucket.
    pub share: f64,
    /// Elapsed-time statistics (minutes).
    pub mean_min: f64,
    pub p50_min: f64,
    /// Fraction of this bucket's GPU hours attributed to ML workloads.
    pub ml_fraction: f64,
}

/// Table 3's eight buckets.
pub const TABLE3_BUCKETS: [SizeBucket; 8] = [
    SizeBucket { min_gpus: 1, max_gpus: 1, share: 0.698_6, mean_min: 175.62, p50_min: 10.15, ml_fraction: 0.081 },
    SizeBucket { min_gpus: 2, max_gpus: 4, share: 0.273_1, mean_min: 145.04, p50_min: 4.75, ml_fraction: 0.100 },
    SizeBucket { min_gpus: 5, max_gpus: 8, share: 0.015_5, mean_min: 133.89, p50_min: 2.70, ml_fraction: 0.146 },
    SizeBucket { min_gpus: 9, max_gpus: 32, share: 0.010_7, mean_min: 270.40, p50_min: 73.73, ml_fraction: 0.074 },
    SizeBucket { min_gpus: 33, max_gpus: 64, share: 0.001_4, mean_min: 204.52, p50_min: 10.25, ml_fraction: 0.417 },
    SizeBucket { min_gpus: 65, max_gpus: 128, share: 0.000_63, mean_min: 226.28, p50_min: 0.32, ml_fraction: 0.072 },
    SizeBucket { min_gpus: 129, max_gpus: 256, share: 0.000_06, mean_min: 226.53, p50_min: 9.19, ml_fraction: 0.0 },
    SizeBucket { min_gpus: 257, max_gpus: 512, share: 0.000_02, mean_min: 32.12, p50_min: 20.40, ml_fraction: 0.0 },
];

/// Heavy-tailed elapsed-time model: log-normal matched to the bucket's
/// median, with sigma solved so the walltime-truncated mean matches the
/// bucket's mean. Samples are winsorized at the 48 h cap — which is why
/// Table 3's P99 column pins at ~2,880 minutes for most buckets.
#[derive(Clone, Copy, Debug)]
pub struct ElapsedModel {
    ln: LogNormal,
    cap_min: f64,
}

impl ElapsedModel {
    /// Solve for sigma by bisection on the closed-form capped mean.
    pub fn fit(median_min: f64, mean_min: f64, cap_min: f64) -> Self {
        assert!(median_min > 0.0 && mean_min > 0.0 && cap_min > median_min);
        let mu = median_min.ln();
        // Capped mean is increasing in sigma, bounded by cap.
        let target = mean_min.min(cap_min * 0.98).max(median_min);
        let (mut lo, mut hi) = (0.0f64, 6.0f64);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if LogNormal::new(mu, mid).capped_mean(cap_min) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        ElapsedModel {
            ln: LogNormal::new(mu, 0.5 * (lo + hi)),
            cap_min,
        }
    }

    /// Draw an elapsed time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let minutes = self.ln.sample(rng).min(self.cap_min);
        Duration::from_secs_f64(minutes * 60.0)
    }

    /// Analytic mean in minutes.
    pub fn mean_min(&self) -> f64 {
        self.ln.capped_mean(self.cap_min)
    }
}

/// Job lifecycle state in the accounting table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Ran to its natural end.
    Completed,
    /// Failed for reasons unrelated to GPUs (user bugs, OOM, I/O...).
    UserFailed,
    /// Killed by a GPU error.
    GpuFailed,
}

/// One accounting-table row.
#[derive(Clone, Debug)]
pub struct JobRecord {
    pub id: u64,
    pub gpus: Vec<GpuId>,
    pub start: Timestamp,
    pub end: Timestamp,
    pub state: JobState,
    pub exit_code: i32,
    pub ml: bool,
}

impl JobRecord {
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    pub fn elapsed(&self) -> Duration {
        self.end - self.start
    }

    /// GPU hours consumed (elapsed × allocation size).
    pub fn gpu_hours(&self) -> f64 {
        self.elapsed().as_hours_f64() * self.gpus.len() as f64
    }

    /// Whether the job was running on `gpu` at instant `t`.
    pub fn running_on(&self, gpu: GpuId, t: Timestamp) -> bool {
        self.start <= t && t <= self.end && self.gpus.contains(&gpu)
    }
}

/// The generator for job sizes, durations, and labels.
#[derive(Clone, Debug)]
pub struct JobMix {
    buckets: Vec<SizeBucket>,
    elapsed: Vec<ElapsedModel>,
    cumulative_share: Vec<f64>,
}

impl Default for JobMix {
    fn default() -> Self {
        Self::table3()
    }
}

impl JobMix {
    /// The Table 3 mixture.
    pub fn table3() -> Self {
        let buckets: Vec<SizeBucket> = TABLE3_BUCKETS.to_vec();
        let elapsed = buckets
            .iter()
            .map(|b| ElapsedModel::fit(b.p50_min, b.mean_min, WALLTIME_CAP_MIN))
            .collect();
        let mut acc = 0.0;
        let cumulative_share = buckets
            .iter()
            .map(|b| {
                acc += b.share;
                acc
            })
            .collect();
        JobMix {
            buckets,
            elapsed,
            cumulative_share,
        }
    }

    pub fn buckets(&self) -> &[SizeBucket] {
        &self.buckets
    }

    /// Which bucket a GPU count belongs to (for recomputing Table 3).
    pub fn bucket_of(&self, gpu_count: usize) -> Option<usize> {
        self.buckets
            .iter()
            .position(|b| (b.min_gpus as usize..=b.max_gpus as usize).contains(&gpu_count))
    }

    /// Draw (gpu_count, elapsed, is_ml) for one job.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (u16, Duration, bool) {
        // Construction guarantees at least one bucket; 0.0 is a dead fallback.
        let total = self.cumulative_share.last().copied().unwrap_or(0.0);
        let x = rng.gen::<f64>() * total;
        let idx = self
            .cumulative_share
            .partition_point(|&c| c <= x)
            .min(self.buckets.len() - 1);
        let b = self.buckets[idx];
        // GPU counts are strongly skewed toward the low end of each
        // bucket (most 2–4-GPU jobs use 2); geometric decay over the span.
        let span = b.max_gpus - b.min_gpus;
        let mut offset = 0u16;
        while offset < span && rng.gen::<f64>() < 0.5 {
            offset += 1;
        }
        let gpus = b.min_gpus + offset;
        let elapsed = self.elapsed[idx].sample(rng);
        let ml = rng.gen::<f64>() < b.ml_fraction;
        (gpus, elapsed, ml)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = TABLE3_BUCKETS.iter().map(|b| b.share).sum();
        assert!((total - 1.0).abs() < 1e-3, "shares sum to {total}");
    }

    #[test]
    fn elapsed_fit_recovers_bucket_statistics() {
        // Bucket 1: median 10.15 min, mean 175.62 min, cap 2880 min.
        let m = ElapsedModel::fit(10.15, 175.62, WALLTIME_CAP_MIN);
        assert!((m.mean_min() - 175.62).abs() / 175.62 < 0.02);
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples: Vec<f64> = (0..200_000)
            .map(|_| m.sample(&mut rng).as_secs_f64() / 60.0)
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let p99 = samples[(samples.len() as f64 * 0.99) as usize];
        assert!((p50 - 10.15).abs() / 10.15 < 0.05, "p50 {p50}");
        assert!((mean - 175.62).abs() / 175.62 < 0.05, "mean {mean}");
        // The paper's P99 pins at the walltime cap.
        assert!((p99 - 2_483.0).abs() / 2_483.0 < 0.35, "p99 {p99}");
    }

    #[test]
    fn elapsed_never_exceeds_walltime() {
        let m = ElapsedModel::fit(10.0, 200.0, WALLTIME_CAP_MIN);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50_000 {
            assert!(m.sample(&mut rng).as_secs_f64() <= WALLTIME_CAP_MIN * 60.0);
        }
    }

    #[test]
    fn mix_reproduces_bucket_shares() {
        let mix = JobMix::table3();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u64; TABLE3_BUCKETS.len()];
        let n = 300_000;
        for _ in 0..n {
            let (gpus, _, _) = mix.sample(&mut rng);
            let idx = mix.bucket_of(gpus as usize).unwrap();
            counts[idx] += 1;
        }
        // Dominant buckets within 2 % absolute.
        assert!((counts[0] as f64 / n as f64 - 0.6986).abs() < 0.02);
        assert!((counts[1] as f64 / n as f64 - 0.2731).abs() < 0.02);
        // Rare buckets appear.
        assert!(counts[3] > 0);
    }

    #[test]
    fn gpu_counts_respect_bucket_bounds() {
        let mix = JobMix::table3();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100_000 {
            let (gpus, elapsed, _) = mix.sample(&mut rng);
            assert!(gpus >= 1);
            assert!(gpus <= 512);
            assert!(elapsed > Duration::ZERO);
            let idx = mix.bucket_of(gpus as usize).expect("in a bucket");
            let b = mix.buckets()[idx];
            assert!(gpus >= b.min_gpus && gpus <= b.max_gpus);
        }
    }

    #[test]
    fn job_record_helpers() {
        use dr_xid::NodeId;
        let g0 = GpuId::at_slot(NodeId(1), 0);
        let g1 = GpuId::at_slot(NodeId(1), 1);
        let job = JobRecord {
            id: 1,
            gpus: vec![g0, g1],
            start: Timestamp::from_secs(100),
            end: Timestamp::from_secs(3_700),
            state: JobState::Completed,
            exit_code: 0,
            ml: false,
        };
        assert_eq!(job.gpu_count(), 2);
        assert!((job.gpu_hours() - 2.0).abs() < 1e-9);
        assert!(job.running_on(g0, Timestamp::from_secs(200)));
        assert!(!job.running_on(g0, Timestamp::from_secs(5_000)));
        assert!(!job.running_on(GpuId::at_slot(NodeId(2), 0), Timestamp::from_secs(200)));
    }
}
