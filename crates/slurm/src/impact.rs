//! Application of GPU error events to running jobs.
//!
//! For every campaign error event we find the jobs running on the emitting
//! GPU at that instant and roll the per-XID masking model to decide
//! whether the job dies. Masking probabilities encode *application*
//! behavior the paper measured (Table 2): framework-level exception
//! handlers absorb ~41 % of MMU faults, NVLink CRC-retry hides ~34 % of
//! link errors from the job, while GSP timeouts, row-remap failures and
//! contained-ECC process kills are never survivable.

use crate::jobs::{JobRecord, JobState};
use dr_faults::ErrorEvent;
use dr_xid::{Duration, GpuId, Xid};
use rand::Rng;
use std::collections::BTreeMap;

/// Per-XID job-kill probabilities given exposure.
///
/// These are **per-job** decisions, rolled once per (job, XID) pair: the
/// paper observes that multiple errors of one kind within a job
/// consolidate their impact (an app that masks one MMU fault masks the
/// next too; a job not using NVLink survives every CRC burst). The
/// defaults are the application-behavior probabilities Table 2 measures.
#[derive(Clone, Copy, Debug)]
pub struct MaskingModel {
    /// P(job fails | exposed to an application-induced MMU fault).
    pub mmu_app: f64,
    /// P(job fails | exposed to a hardware-induced MMU fault).
    pub mmu_hw: f64,
    /// P(job fails | exposed to NVLink errors): many jobs use NVLink for
    /// communication only (or not at all) and the CRC retry saves them.
    pub nvlink: f64,
    /// P(job fails | DBE on its GPU).
    pub dbe: f64,
    /// P(job fails | RRE on its GPU).
    pub rre: f64,
    /// P(job fails | uncontained memory error).
    pub uncontained: f64,
    /// P(job fails | PMU SPI error) — mostly via the propagated MMU error.
    pub pmu: f64,
}

impl Default for MaskingModel {
    fn default() -> Self {
        MaskingModel {
            mmu_app: 0.565,
            mmu_hw: 0.97,
            nvlink: 0.657,
            dbe: 0.90,
            rre: 0.50,
            uncontained: 0.972,
            pmu: 0.966,
        }
    }
}

impl MaskingModel {
    /// Kill probability for a job's first exposure to this XID.
    pub fn kill_prob(&self, ev: &ErrorEvent) -> f64 {
        match ev.xid {
            Xid::MmuError => {
                if ev.hw_induced {
                    self.mmu_hw
                } else {
                    self.mmu_app
                }
            }
            Xid::DoubleBitEcc => self.dbe,
            Xid::RowRemapEvent => self.rre,
            Xid::RowRemapFailure => 1.0,
            Xid::NvlinkError => self.nvlink,
            Xid::FallenOffBus => 1.0,
            Xid::ContainedEcc => 1.0,
            Xid::UncontainedEcc => self.uncontained,
            Xid::GspRpcTimeout => 1.0,
            Xid::PmuSpiError => self.pmu,
            // Job-induced software errors and XID 136: no forced kill.
            _ => 0.0,
        }
    }

    /// Slurm exit code recorded for a job killed by `xid`.
    pub fn exit_code(&self, xid: Xid) -> i32 {
        match xid {
            // NVLink failures surface as MPI segfaults (Incident 1).
            Xid::NvlinkError => 139,
            Xid::GspRpcTimeout | Xid::FallenOffBus => 137, // SIGKILL via node reboot
            _ => 134, // SIGABRT from the CUDA runtime
        }
    }
}

/// Summary counters from one impact pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ImpactSummary {
    /// Error events that found at least one running job on their GPU.
    pub exposed_events: u64,
    /// Jobs killed by a GPU error.
    pub gpu_failed_jobs: u64,
    /// (job, xid) exposure pairs (one job may encounter several XIDs).
    pub exposures: u64,
}

/// Apply `events` to `jobs` in time order, mutating job outcomes.
///
/// Jobs already dead (user failure before the event, or a previous GPU
/// kill) are not re-killed; the first fatal event fixes the end time a
/// few seconds after the error, which is what lets the analysis pipeline
/// re-discover the association through its ±20 s join window.
pub fn apply_errors<R: Rng + ?Sized>(
    jobs: &mut [JobRecord],
    events: &[ErrorEvent],
    masking: &MaskingModel,
    rng: &mut R,
) -> ImpactSummary {
    // Index: GPU -> job indices sorted by start time.
    let mut by_gpu: BTreeMap<GpuId, Vec<usize>> = BTreeMap::new();
    for (idx, job) in jobs.iter().enumerate() {
        for &g in &job.gpus {
            by_gpu.entry(g).or_default().push(idx);
        }
    }
    for list in by_gpu.values_mut() {
        list.sort_by_key(|&i| jobs[i].start);
    }

    let mut summary = ImpactSummary::default();
    // One masking roll per (job, XID): repeated errors of the same kind
    // within a job consolidate (Section 4.1 (iv)).
    let mut rolled: std::collections::BTreeSet<(u64, Xid)> = std::collections::BTreeSet::new();
    for ev in events {
        let Some(candidates) = by_gpu.get(&ev.gpu) else {
            continue;
        };
        // Jobs with start <= ev.at; scan backwards while they may overlap
        // (walltime bounds the lookback to 48 h).
        let hi = candidates.partition_point(|&i| jobs[i].start <= ev.at);
        let lookback = ev.at.saturating_sub(Duration::from_hours(48));
        let mut exposed_any = false;
        for &idx in candidates[..hi].iter().rev() {
            let job = &jobs[idx];
            if job.start + Duration::from_hours(49) < ev.at || job.start < lookback {
                break;
            }
            if ev.at > job.end {
                continue;
            }
            exposed_any = true;
            summary.exposures += 1;
            if jobs[idx].state == JobState::GpuFailed {
                continue;
            }
            if !rolled.insert((jobs[idx].id, ev.xid)) {
                continue; // this job already survived this error kind
            }
            if rng.gen::<f64>() < masking.kill_prob(ev) {
                let job = &mut jobs[idx];
                // The job dies shortly after the error hits.
                let delay = Duration::from_secs_f64(1.0 + rng.gen::<f64>() * 12.0);
                job.end = (ev.at + delay).min(job.end.max(ev.at + delay));
                job.state = JobState::GpuFailed;
                job.exit_code = masking.exit_code(ev.xid);
                summary.gpu_failed_jobs += 1;
            }
        }
        if exposed_any {
            summary.exposed_events += 1;
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_gpu::device::Consequence;
    use dr_xid::{ErrorDetail, NodeId, Timestamp};
    use rand::prelude::*;
    

    fn job(id: u64, gpu: GpuId, start_s: u64, end_s: u64) -> JobRecord {
        JobRecord {
            id,
            gpus: vec![gpu],
            start: Timestamp::from_secs(start_s),
            end: Timestamp::from_secs(end_s),
            state: JobState::Completed,
            exit_code: 0,
            ml: false,
        }
    }

    fn event(gpu: GpuId, at_s: u64, xid: Xid, consequence: Consequence) -> ErrorEvent {
        ErrorEvent {
            at: Timestamp::from_secs(at_s),
            gpu,
            xid,
            detail: ErrorDetail::NONE,
            persistence: Duration::from_secs(1),
            consequence,
            chain: 0,
            hw_induced: false,
        }
    }

    #[test]
    fn gsp_error_kills_overlapping_job() {
        let g = GpuId::at_slot(NodeId(1), 0);
        let mut jobs = vec![job(0, g, 100, 10_000)];
        let events = vec![event(g, 500, Xid::GspRpcTimeout, Consequence::GpuLost)];
        let mut rng = StdRng::seed_from_u64(1);
        let s = apply_errors(&mut jobs, &events, &MaskingModel::default(), &mut rng);
        assert_eq!(s.gpu_failed_jobs, 1);
        assert_eq!(jobs[0].state, JobState::GpuFailed);
        assert_eq!(jobs[0].exit_code, 137);
        // Death lands within the 20 s join window after the error.
        let dt = (jobs[0].end - Timestamp::from_secs(500)).as_secs_f64();
        assert!(dt > 0.0 && dt < 20.0, "dt {dt}");
    }

    #[test]
    fn error_on_other_gpu_or_time_is_harmless() {
        let g = GpuId::at_slot(NodeId(1), 0);
        let other = GpuId::at_slot(NodeId(1), 1);
        let mut jobs = vec![job(0, g, 100, 1_000)];
        let events = vec![
            event(other, 500, Xid::GspRpcTimeout, Consequence::GpuLost),
            event(g, 2_000, Xid::GspRpcTimeout, Consequence::GpuLost),
        ];
        let mut rng = StdRng::seed_from_u64(2);
        let s = apply_errors(&mut jobs, &events, &MaskingModel::default(), &mut rng);
        assert_eq!(s.gpu_failed_jobs, 0);
        assert_eq!(jobs[0].state, JobState::Completed);
        assert_eq!(s.exposed_events, 0);
    }

    #[test]
    fn mmu_app_errors_are_often_masked() {
        let g = GpuId::at_slot(NodeId(1), 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut killed = 0;
        let n = 5_000;
        for i in 0..n {
            let mut jobs = vec![job(i, g, 100, 10_000)];
            let events = vec![event(g, 500, Xid::MmuError, Consequence::Masked)];
            apply_errors(&mut jobs, &events, &MaskingModel::default(), &mut rng);
            if jobs[0].state == JobState::GpuFailed {
                killed += 1;
            }
        }
        let frac = killed as f64 / n as f64;
        assert!((frac - 0.565).abs() < 0.03, "MMU kill fraction {frac}");
    }

    #[test]
    fn hw_induced_mmu_is_nearly_fatal() {
        let g = GpuId::at_slot(NodeId(1), 0);
        let mut ev = event(g, 500, Xid::MmuError, Consequence::GpuErrorState);
        ev.hw_induced = true;
        let m = MaskingModel::default();
        assert!((m.kill_prob(&ev) - 0.97).abs() < 1e-9);
    }

    #[test]
    fn job_is_killed_at_most_once() {
        let g = GpuId::at_slot(NodeId(1), 0);
        let mut jobs = vec![job(0, g, 100, 100_000)];
        let events = vec![
            event(g, 500, Xid::GspRpcTimeout, Consequence::GpuLost),
            event(g, 600, Xid::GspRpcTimeout, Consequence::GpuLost),
        ];
        let mut rng = StdRng::seed_from_u64(4);
        let s = apply_errors(&mut jobs, &events, &MaskingModel::default(), &mut rng);
        assert_eq!(s.gpu_failed_jobs, 1);
        // The second event no longer overlaps (the job already ended).
        assert!(jobs[0].end < Timestamp::from_secs(599));
    }

    #[test]
    fn multi_gpu_job_dies_from_any_member_gpu() {
        let g0 = GpuId::at_slot(NodeId(1), 0);
        let g3 = GpuId::at_slot(NodeId(4), 2);
        let mut jobs = vec![JobRecord {
            gpus: vec![g0, g3],
            ..job(0, g0, 100, 10_000)
        }];
        let events = vec![event(g3, 500, Xid::RowRemapFailure, Consequence::GpuErrorState)];
        let mut rng = StdRng::seed_from_u64(5);
        apply_errors(&mut jobs, &events, &MaskingModel::default(), &mut rng);
        assert_eq!(jobs[0].state, JobState::GpuFailed);
    }

    #[test]
    fn nvlink_exit_code_is_segfault() {
        assert_eq!(MaskingModel::default().exit_code(Xid::NvlinkError), 139);
    }

    #[test]
    fn masking_rolls_once_per_job_and_xid() {
        // A job that survives its first NVLink error survives the whole
        // burst: with per-event rolls P(survive 30 errors) would be
        // ~(1-0.657)^30 ~ 0; per-job rolls keep it at 1-0.657.
        let g = GpuId::at_slot(NodeId(1), 0);
        let mut survived = 0;
        let mut rng = StdRng::seed_from_u64(9);
        let n = 3_000;
        for i in 0..n {
            let mut jobs = vec![job(i, g, 0, 100_000)];
            let events: Vec<ErrorEvent> = (0..30)
                .map(|k| event(g, 500 + k * 40, Xid::NvlinkError, Consequence::Masked))
                .collect();
            apply_errors(&mut jobs, &events, &MaskingModel::default(), &mut rng);
            if jobs[0].state != JobState::GpuFailed {
                survived += 1;
            }
        }
        let frac = survived as f64 / n as f64;
        assert!((frac - (1.0 - 0.657)).abs() < 0.03, "survival fraction {frac}");
    }

    #[test]
    fn software_errors_never_kill() {
        let g = GpuId::at_slot(NodeId(1), 0);
        let ev = event(g, 0, Xid::GraphicsEngineException, Consequence::Masked);
        assert_eq!(MaskingModel::default().kill_prob(&ev), 0.0);
    }
}
