//! # dr-slurm — workload generation, scheduling, and job accounting
//!
//! The paper's job-impact analysis (Section 5) joins the Slurm accounting
//! database against the GPU error stream. This crate plays the Slurm side:
//!
//! - [`jobs`]: the workload mixture calibrated to Table 3 — job sizes
//!   (69.86 % single-GPU, 27.31 % 2–4 GPUs, …), heavy-tailed elapsed times
//!   truncated at the 48-hour walltime limit, and ML/non-ML labeling.
//! - [`scheduler`]: placement of ~1.4 M jobs onto the fleet with
//!   drain-awareness: nodes that recently threw error-state XIDs are
//!   avoided, the way SREs drain flaky nodes (this is what makes the
//!   "jobs encountering XID" counts in Table 2 so much smaller than the
//!   error counts in Table 1).
//! - [`impact`]: application of campaign error events to running jobs via
//!   the per-XID masking model (MMU errors are maskable by framework
//!   exception handlers ~41 % of the time; NVLink CRC-retry saves ~34 %;
//!   GSP timeouts are never survivable), producing the final accounting
//!   table with exit codes.

pub mod csv;
pub mod impact;
pub mod jobs;
pub mod scheduler;

pub use impact::{apply_errors, ImpactSummary, MaskingModel};
pub use jobs::{ElapsedModel, JobMix, JobRecord, JobState, SizeBucket};
pub use scheduler::{DrainWindows, JobLoadConfig, Schedule, Scheduler};
