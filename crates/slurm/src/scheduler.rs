//! Job placement onto the fleet.
//!
//! A deliberately light scheduler: jobs arrive as a Poisson stream sized
//! to the study's 1.44 M GPU jobs over 855 days; each job draws its shape
//! from the Table 3 mixture and is placed on concrete GPUs. Two behaviors
//! matter for the resilience analysis and are modeled carefully:
//!
//! * **capacity probing** — placement prefers GPUs that are free at the
//!   job's start, so fleet utilization emerges near the observed ~40–50 %;
//! * **drain awareness** — nodes that recently threw an error-state XID
//!   are avoided for a drain window, mirroring SRE practice. This is why
//!   only 35 jobs *encountered* an NVLink error although Table 1 counts
//!   2,987 of them: flaky nodes spend most of their life drained.

use crate::jobs::{JobMix, JobRecord, JobState};
use dr_cluster::Fleet;
use dr_des::RngStreams;


use dr_xid::{Duration, GpuId, NodeId, Timestamp};
use rand::Rng;
use std::collections::BTreeMap;

/// Workload sizing.
#[derive(Clone, Debug)]
pub struct JobLoadConfig {
    /// Total GPU jobs to generate.
    pub total_jobs: u64,
    /// Campaign duration the jobs spread over.
    pub duration_days: f64,
    pub seed: u64,
    /// Baseline probability a job fails for non-GPU reasons
    /// (Section 5.2: overall success rate ≈ 74.7 %).
    pub user_failure_prob: f64,
    /// How long a node stays avoided after an error-state event.
    pub drain_hours: f64,
    /// Probability a drained node is still refused by placement probes.
    pub drain_strictness: f64,
    /// Placement probes before giving up on finding a free GPU.
    pub probes: u32,
    /// Early-deployment ramp: jobs during the first `ramp_days` arrive at
    /// `ramp_factor` of the steady-state rate (Delta's testing phase ran
    /// far fewer user jobs, which is why memory errors from the burn-in
    /// period rarely intersected production work).
    pub ramp_days: f64,
    pub ramp_factor: f64,
}

impl JobLoadConfig {
    /// The production workload: 1,445,119 GPU jobs over 855 days.
    pub fn delta_study(seed: u64) -> Self {
        JobLoadConfig {
            total_jobs: 1_445_119,
            duration_days: 855.0,
            seed,
            user_failure_prob: 0.2509,
            drain_hours: 24.0,
            drain_strictness: 0.97,
            probes: 12,
            ramp_days: 90.0,
            ramp_factor: 0.5,
        }
    }

    /// A scaled-down load for tests and examples.
    pub fn tiny(seed: u64) -> Self {
        JobLoadConfig {
            total_jobs: 4_000,
            duration_days: 30.0,
            ramp_days: 3.0,
            ..JobLoadConfig::delta_study(seed)
        }
    }
}

/// The placement result: the accounting table before error impact.
#[derive(Clone, Debug)]
pub struct Schedule {
    pub jobs: Vec<JobRecord>,
    /// GPU hours actually allocated (for utilization sanity checks).
    pub allocated_gpu_hours: f64,
}

impl Schedule {
    /// Fleet utilization given a fleet capacity.
    pub fn utilization(&self, fleet_gpus: usize, duration: Duration) -> f64 {
        self.allocated_gpu_hours / (fleet_gpus as f64 * duration.as_hours_f64())
    }
}

/// Drain windows per node, derived from error-state events.
#[derive(Clone, Debug, Default)]
pub struct DrainWindows {
    /// Sorted (start, end) windows per node.
    windows: BTreeMap<NodeId, Vec<(Timestamp, Timestamp)>>,
}

impl DrainWindows {
    /// Build from (node, event time) pairs with a fixed drain duration.
    pub fn from_events<I>(events: I, drain: Duration) -> Self
    where
        I: IntoIterator<Item = (NodeId, Timestamp)>,
    {
        let mut windows: BTreeMap<NodeId, Vec<(Timestamp, Timestamp)>> = BTreeMap::new();
        for (node, at) in events {
            windows.entry(node).or_default().push((at, at + drain));
        }
        for w in windows.values_mut() {
            w.sort();
            // Merge overlapping windows.
            let mut merged: Vec<(Timestamp, Timestamp)> = Vec::with_capacity(w.len());
            for &(s, e) in w.iter() {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            *w = merged;
        }
        DrainWindows { windows }
    }

    /// Whether `node` is drained at `t`.
    pub fn is_drained(&self, node: NodeId, t: Timestamp) -> bool {
        match self.windows.get(&node) {
            None => false,
            Some(w) => {
                let idx = w.partition_point(|&(s, _)| s <= t);
                idx > 0 && w[idx - 1].1 >= t
            }
        }
    }
}

/// The scheduler.
pub struct Scheduler {
    cfg: JobLoadConfig,
    mix: JobMix,
}

impl Scheduler {
    pub fn new(cfg: JobLoadConfig) -> Self {
        Scheduler {
            cfg,
            mix: JobMix::table3(),
        }
    }

    /// Generate and place the workload. `drains` encodes node avoidance.
    pub fn run(&self, fleet: &Fleet, drains: &DrainWindows) -> Schedule {
        self.run_observed(fleet, drains, &dr_obs::MetricsSink::disabled())
    }

    /// [`Scheduler::run`] with observability: a `schedule/total` span and
    /// a placed-jobs counter. Write-only — the schedule is bit-identical
    /// to `run` for the same config and seed.
    pub fn run_observed(
        &self,
        fleet: &Fleet,
        drains: &DrainWindows,
        sink: &dr_obs::MetricsSink,
    ) -> Schedule {
        use dr_obs::{Counter, Stage};
        let _span = sink.span(Stage::Schedule, "total");
        let out = self.run_inner(fleet, drains);
        sink.add(Stage::Schedule, Counter::Jobs, out.jobs.len() as u64);
        out
    }

    fn run_inner(&self, fleet: &Fleet, drains: &DrainWindows) -> Schedule {
        let streams = RngStreams::new(self.cfg.seed);
        let mut rng = streams.named("scheduler");
        let gpu_ids = fleet.gpu_ids();
        assert!(!gpu_ids.is_empty(), "fleet has no GPUs");

        // Per-GPU busy-until tracker (approximate first-fit).
        let mut busy_until: BTreeMap<GpuId, Timestamp> = BTreeMap::new();

        // A Poisson process conditioned on its count is N sorted uniform
        // arrival times — exact job count, monotone timeline. The ramp
        // thins the testing window by rejection (count preserved).
        let horizon_h = self.cfg.duration_days * 24.0;
        let ramp_h = (self.cfg.ramp_days * 24.0).min(horizon_h);
        let mut arrivals: Vec<f64> = (0..self.cfg.total_jobs)
            .map(|_| loop {
                let t = rng.gen::<f64>() * horizon_h;
                if t >= ramp_h || rng.gen::<f64>() < self.cfg.ramp_factor {
                    break t;
                }
            })
            .collect();
        arrivals.sort_by(f64::total_cmp);

        let mut jobs = Vec::with_capacity(self.cfg.total_jobs as usize);
        let mut allocated_gpu_hours = 0.0;
        for (id, t_h) in arrivals.into_iter().enumerate() {
            let id = id as u64;
            let start = Timestamp::EPOCH + Duration::from_secs_f64(t_h * 3_600.0);
            let (gpu_count, elapsed, ml) = self.mix.sample(&mut rng);
            let gpus = self.place(&gpu_ids, fleet, drains, &mut busy_until, start, gpu_count, &mut rng);
            let natural_end = start + elapsed;

            // Baseline non-GPU failure: the job dies somewhere inside its
            // planned window with a user exit code.
            let (state, end, exit_code) = if rng.gen::<f64>() < self.cfg.user_failure_prob {
                let frac: f64 = rng.gen::<f64>().max(0.02);
                let end = start + Duration::from_secs_f64(elapsed.as_secs_f64() * frac);
                (JobState::UserFailed, end, 1 + (rng.gen::<u32>() % 127) as i32)
            } else {
                (JobState::Completed, natural_end, 0)
            };

            allocated_gpu_hours += (end - start).as_hours_f64() * gpus.len() as f64;
            for &g in &gpus {
                let slot = busy_until.entry(g).or_insert(end);
                *slot = (*slot).max(end);
            }
            jobs.push(JobRecord {
                id,
                gpus,
                start,
                end,
                state,
                exit_code,
                ml,
            });
        }
        Schedule {
            jobs,
            allocated_gpu_hours,
        }
    }

    /// Choose `count` GPUs for a job starting at `start`.
    ///
    /// Single-node jobs probe random nodes for enough free, undrained
    /// GPUs; multi-node jobs assemble whole nodes. After the probe budget
    /// is spent the job is placed wherever the last probe landed (the
    /// cluster is saturated — overlap stands in for queueing delay).
    fn place<R: Rng + ?Sized>(
        &self,
        gpu_ids: &[GpuId],
        fleet: &Fleet,
        drains: &DrainWindows,
        busy_until: &mut BTreeMap<GpuId, Timestamp>,
        start: Timestamp,
        count: u16,
        rng: &mut R,
    ) -> Vec<GpuId> {
        let nodes = fleet.nodes();
        let want = count as usize;
        let mut chosen: Vec<GpuId> = Vec::with_capacity(want);

        let mut probes_left = self.cfg.probes.max(1);
        while chosen.len() < want && probes_left > 0 {
            probes_left -= 1;
            let node = &nodes[rng.gen_range(0..nodes.len())];
            if drains.is_drained(node.id, start) && rng.gen::<f64>() < self.cfg.drain_strictness {
                continue;
            }
            let mut free: Vec<GpuId> = node
                .gpus
                .iter()
                .map(|g| g.id())
                .filter(|g| busy_until.get(g).is_none_or(|&u| u <= start))
                .filter(|g| !chosen.contains(g))
                .collect();
            let need = want - chosen.len();
            free.truncate(need.min(node.gpus.len()));
            chosen.extend(free);
        }
        // Saturated: fill the remainder with arbitrary GPUs.
        while chosen.len() < want {
            let g = gpu_ids[rng.gen_range(0..gpu_ids.len())];
            if !chosen.contains(&g) || gpu_ids.len() <= want {
                chosen.push(g);
            }
        }
        chosen
    }

    /// Mark a schedule's jobs as occupying their GPUs (post-pass used by
    /// tests to measure conflicts).
    pub fn config(&self) -> &JobLoadConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_cluster::DeltaShape;
    use dr_gpu::RasTuning;

    fn tiny_fleet() -> Fleet {
        Fleet::build(DeltaShape::tiny(), RasTuning::default())
    }

    #[test]
    fn generates_exact_job_count() {
        let fleet = tiny_fleet();
        let sched = Scheduler::new(JobLoadConfig::tiny(1));
        let s = sched.run(&fleet, &DrainWindows::default());
        assert_eq!(s.jobs.len(), 4_000);
        assert!(s.allocated_gpu_hours > 0.0);
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let fleet = tiny_fleet();
        let a = Scheduler::new(JobLoadConfig::tiny(5)).run(&fleet, &DrainWindows::default());
        let b = Scheduler::new(JobLoadConfig::tiny(5)).run(&fleet, &DrainWindows::default());
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert!(a
            .jobs
            .iter()
            .zip(&b.jobs)
            .all(|(x, y)| x.start == y.start && x.gpus == y.gpus));
    }

    #[test]
    fn jobs_lie_inside_the_window_and_walltime() {
        let fleet = tiny_fleet();
        let cfg = JobLoadConfig::tiny(2);
        let days = cfg.duration_days;
        let s = Scheduler::new(cfg).run(&fleet, &DrainWindows::default());
        let horizon = Timestamp::EPOCH + Duration::from_days(days as u64);
        for j in &s.jobs {
            assert!(j.start < horizon);
            assert!(j.end >= j.start);
            assert!(j.elapsed().as_hours_f64() <= 48.01);
            assert!(!j.gpus.is_empty());
        }
    }

    #[test]
    fn user_failure_rate_matches_config() {
        let fleet = tiny_fleet();
        let s = Scheduler::new(JobLoadConfig::tiny(3)).run(&fleet, &DrainWindows::default());
        let failed = s.jobs.iter().filter(|j| j.state == JobState::UserFailed).count();
        let frac = failed as f64 / s.jobs.len() as f64;
        assert!((frac - 0.2509).abs() < 0.03, "user-failure fraction {frac}");
        // Failed jobs carry non-zero exit codes.
        assert!(s
            .jobs
            .iter()
            .filter(|j| j.state == JobState::UserFailed)
            .all(|j| j.exit_code != 0));
    }

    #[test]
    fn multi_gpu_jobs_get_distinct_gpus() {
        let fleet = tiny_fleet();
        let s = Scheduler::new(JobLoadConfig::tiny(4)).run(&fleet, &DrainWindows::default());
        for j in s.jobs.iter().filter(|j| j.gpu_count() > 1 && j.gpu_count() <= 8) {
            let mut g = j.gpus.clone();
            let before = g.len();
            g.dedup();
            g.sort();
            g.dedup();
            assert_eq!(g.len(), before, "duplicate GPUs in allocation");
        }
    }

    #[test]
    fn drained_nodes_are_avoided() {
        let fleet = tiny_fleet();
        let node0 = fleet.nodes()[0].id;
        // Drain node 0 for the entire window.
        let drains = DrainWindows::from_events(
            (0..40).map(|d| (node0, Timestamp::EPOCH + Duration::from_days(d))),
            Duration::from_days(2),
        );
        assert!(drains.is_drained(node0, Timestamp::from_secs(3600)));
        let mut cfg = JobLoadConfig::tiny(6);
        cfg.drain_strictness = 1.0;
        let s = Scheduler::new(cfg).run(&fleet, &drains);
        let on_node0 = s
            .jobs
            .iter()
            .flat_map(|j| &j.gpus)
            .filter(|g| g.node == node0)
            .count();
        let total: usize = s.jobs.iter().map(|j| j.gpu_count()).sum();
        // Node 0 is 1 of 6 nodes; drained it should carry well under its
        // fair share (only saturation spillover lands there).
        assert!(
            (on_node0 as f64) < 0.4 * total as f64 / 6.0,
            "drained node got {on_node0} of {total}"
        );
    }

    #[test]
    fn drain_window_merging() {
        let n = NodeId(1);
        let d = DrainWindows::from_events(
            vec![
                (n, Timestamp::from_secs(100)),
                (n, Timestamp::from_secs(200)),
            ],
            Duration::from_secs(150),
        );
        assert!(d.is_drained(n, Timestamp::from_secs(100)));
        assert!(d.is_drained(n, Timestamp::from_secs(340)));
        assert!(!d.is_drained(n, Timestamp::from_secs(360)));
        assert!(!d.is_drained(n, Timestamp::from_secs(99)));
        assert!(!d.is_drained(NodeId(2), Timestamp::from_secs(100)));
    }
}
