//! Syslog line model with monotonic year inference.
//!
//! Classic syslog timestamps (`Jan  2 03:04:05`) carry **no year**. Over an
//! 855-day campaign the calendar wraps twice, so a scanner that naively
//! pinned one year would mis-order two thirds of the data. [`SyslogScanner`]
//! tracks the last seen month and bumps the year whenever the month
//! regresses (December → January), which is correct as long as the log is
//! scanned in order — true for per-node log files.

use crate::regex::Regex;
use dr_xid::time::month_from_abbrev;
use dr_xid::{NodeId, Timestamp};

/// A parsed syslog line header plus the remaining message body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyslogLine<'l> {
    /// Reconstructed wall-clock timestamp (year inferred).
    pub at: Timestamp,
    /// Originating host parsed from the hostname field.
    pub host: NodeId,
    /// Everything after the hostname field.
    pub body: &'l str,
}

/// Stateful scanner over an in-order syslog stream.
pub struct SyslogScanner {
    header: Regex,
    year: i32,
    last_month: u8,
}

impl Default for SyslogScanner {
    fn default() -> Self {
        Self::new()
    }
}

impl SyslogScanner {
    /// Scanner starting at the campaign's first year (2022).
    pub fn new() -> Self {
        Self::starting_year(2022)
    }

    /// Scanner with an explicit starting year.
    pub fn starting_year(year: i32) -> Self {
        let header = Regex::new(
            r"^([A-Z][a-z][a-z]) +(\d{1,2}) (\d{2}):(\d{2}):(\d{2}) gpub(\d+) (.*)$",
        )
        // dr-lint: allow(panic-freedom): constant pattern, compile covered by tests
        .expect("header pattern compiles");
        SyslogScanner {
            header,
            year,
            last_month: 1,
        }
    }

    /// Current inferred year.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Parse one line. Returns `None` for lines that are not well-formed
    /// syslog from a GPU node (they are counted by the extractor, not here).
    pub fn parse<'l>(&mut self, line: &'l str) -> Option<SyslogLine<'l>> {
        let m = self.header.find(line)?;
        let month = month_from_abbrev(m.group(line, 1)?)?;
        let day: u8 = m.group(line, 2)?.parse().ok()?;
        let hour: u8 = m.group(line, 3)?.parse().ok()?;
        let minute: u8 = m.group(line, 4)?.parse().ok()?;
        let second: u8 = m.group(line, 5)?.parse().ok()?;
        let host: u32 = m.group(line, 6)?.parse().ok()?;
        if day == 0 || day > 31 || hour > 23 || minute > 59 || second > 59 {
            return None;
        }

        // Year rollover: month going backwards means a new year started.
        if month < self.last_month {
            self.year += 1;
        }
        self.last_month = month;

        let at = Timestamp::from_civil(self.year, month, day, hour, minute, second)?;
        let (_, body_span_end) = m.span();
        let body_start = m.group_span(7)?.0;
        debug_assert!(body_span_end == line.len());
        Some(SyslogLine {
            at,
            host: NodeId(host),
            body: &line[body_start..],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::time::SECS_PER_DAY;

    #[test]
    fn parses_well_formed_line() {
        let mut s = SyslogScanner::new();
        let line = "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 79, x";
        let p = s.parse(line).unwrap();
        assert_eq!(p.host, NodeId(42));
        assert_eq!(p.body, "kernel: NVRM: Xid (PCI:0000:c1:00): 79, x");
        let c = p.at.civil();
        assert_eq!((c.year, c.month, c.day), (2022, 1, 2));
        assert_eq!((c.hour, c.minute, c.second), (3, 4, 5));
    }

    #[test]
    fn rejects_malformed_lines() {
        let mut s = SyslogScanner::new();
        assert!(s.parse("").is_none());
        assert!(s.parse("not a log line").is_none());
        assert!(s.parse("Jan  2 03:04:05 loginnode sshd: hi").is_none());
        assert!(s.parse("Jxn  2 03:04:05 gpub001 kernel: x").is_none());
        // Invalid time fields.
        assert!(s.parse("Jan  2 25:04:05 gpub001 kernel: x").is_none());
        assert!(s.parse("Jan  0 03:04:05 gpub001 kernel: x").is_none());
    }

    #[test]
    fn infers_year_across_two_rollovers() {
        let mut s = SyslogScanner::new();
        let a = s.parse("Dec 31 23:59:59 gpub001 kernel: a").unwrap();
        assert_eq!(a.at.civil().year, 2022);
        let b = s.parse("Jan  1 00:00:10 gpub001 kernel: b").unwrap();
        assert_eq!(b.at.civil().year, 2023);
        assert!(b.at > a.at);
        assert_eq!((b.at - a.at).as_secs_f64(), 11.0);
        // Second rollover.
        s.parse("Dec 30 01:00:00 gpub001 kernel: c").unwrap();
        let d = s.parse("Feb  1 00:00:00 gpub001 kernel: d").unwrap();
        assert_eq!(d.at.civil().year, 2024);
        assert_eq!(s.year(), 2024);
    }

    #[test]
    fn mid_year_month_progress_does_not_bump_year() {
        let mut s = SyslogScanner::new();
        s.parse("Mar  1 00:00:00 gpub001 kernel: a").unwrap();
        let b = s.parse("Jul 15 00:00:00 gpub001 kernel: b").unwrap();
        assert_eq!(b.at.civil().year, 2022);
    }

    #[test]
    fn timestamps_are_day_accurate() {
        let mut s = SyslogScanner::new();
        let a = s.parse("Jan  1 00:00:00 gpub001 kernel: a").unwrap();
        let b = s.parse("Jan  3 00:00:00 gpub001 kernel: b").unwrap();
        assert_eq!((b.at - a.at).as_secs_f64(), 2.0 * SECS_PER_DAY as f64);
    }
}
