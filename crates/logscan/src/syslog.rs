//! Syslog line model with monotonic year inference.
//!
//! Classic syslog timestamps (`Jan  2 03:04:05`) carry **no year**. Over an
//! 855-day campaign the calendar wraps twice, so a scanner that naively
//! pinned one year would mis-order two thirds of the data. [`SyslogScanner`]
//! tracks the last seen month and bumps the year whenever the month
//! regresses (December → January), which is correct as long as the log is
//! scanned in order — true for per-node log files.
//!
//! The header format is fixed-shape (`Mmm [d]d HH:MM:SS gpubNNN body`), so
//! [`parse_header`] decodes it with direct byte inspection — a month
//! table, digit runs, and fixed `HH:MM:SS` offsets — instead of a regex.
//! The original regex implementation survives as
//! [`parse_header_oracle`], the differential-testing oracle that pins the
//! byte parser's accept/reject behavior exactly.

use crate::regex::Regex;
use dr_xid::time::month_from_abbrev;
use dr_xid::{NodeId, Timestamp};
use std::sync::OnceLock;

/// A parsed syslog line header plus the remaining message body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyslogLine<'l> {
    /// Reconstructed wall-clock timestamp (year inferred).
    pub at: Timestamp,
    /// Originating host parsed from the hostname field.
    pub host: NodeId,
    /// Everything after the hostname field.
    pub body: &'l str,
}

/// Structurally decoded syslog header fields, before time-field range
/// validation and year inference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawHeader {
    /// Calendar month 1–12 from the leading abbreviation.
    pub month: u8,
    /// Day-of-month digits as written (not yet range-checked).
    pub day: u8,
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
    /// Numeric suffix of the `gpubNNN` hostname.
    pub host: u32,
    /// Byte offset where the message body begins.
    pub body_start: usize,
}

impl RawHeader {
    /// Whether the written time fields denote a plausible wall-clock
    /// time (`day` 1–31, `hour` ≤ 23, `minute`/`second` ≤ 59). Headers
    /// failing this are rejected by [`SyslogScanner::parse`] *before*
    /// they touch year-inference state.
    pub fn time_fields_valid(&self) -> bool {
        self.day >= 1
            && self.day <= 31
            && self.hour <= 23
            && self.minute <= 59
            && self.second <= 59
    }
}

// dr-lint: hot(begin)
/// Byte-level header decoder: `Mmm <spaces> [d]d HH:MM:SS gpubNNN <body>`.
///
/// Accepts exactly the lines the header regex
/// `^([A-Z][a-z][a-z]) +(\d{1,2}) (\d{2}):(\d{2}):(\d{2}) gpub(\d+) (.*)$`
/// accepts (see [`parse_header_oracle`]); the equivalence is pinned by
/// differential tests. Purely structural — time-field ranges are checked
/// separately via [`RawHeader::time_fields_valid`].
pub fn parse_header(line: &str) -> Option<RawHeader> {
    let b = line.as_bytes();
    let month = month_from_abbrev(line.get(0..3)?)?;
    // One or more spaces, then a 1–2 digit day terminated by one space.
    let mut i = 3;
    while i < b.len() && b[i] == b' ' {
        i += 1;
    }
    if i == 3 {
        return None;
    }
    let day_start = i;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    let day = match i - day_start {
        1 => b[day_start] - b'0',
        2 => (b[day_start] - b'0') * 10 + (b[day_start + 1] - b'0'),
        _ => return None,
    };
    if b.get(i) != Some(&b' ') {
        return None;
    }
    i += 1;
    // Fixed-shape HH:MM:SS followed by one space.
    if b.len() < i + 9 {
        return None;
    }
    let t = &b[i..i + 9];
    if t[2] != b':'
        || t[5] != b':'
        || t[8] != b' '
        || !(t[0].is_ascii_digit() && t[1].is_ascii_digit())
        || !(t[3].is_ascii_digit() && t[4].is_ascii_digit())
        || !(t[6].is_ascii_digit() && t[7].is_ascii_digit())
    {
        return None;
    }
    let hour = (t[0] - b'0') * 10 + (t[1] - b'0');
    let minute = (t[3] - b'0') * 10 + (t[4] - b'0');
    let second = (t[6] - b'0') * 10 + (t[7] - b'0');
    i += 9;
    // Hostname: literal "gpub" then a u32 digit run then one space.
    if b.len() < i + 4 || &b[i..i + 4] != b"gpub" {
        return None;
    }
    i += 4;
    let host_start = i;
    let mut host: u32 = 0;
    while i < b.len() && b[i].is_ascii_digit() {
        host = host
            .checked_mul(10)?
            .checked_add((b[i] - b'0') as u32)?;
        i += 1;
    }
    if i == host_start || b.get(i) != Some(&b' ') {
        return None;
    }
    i += 1;
    // The regex's trailing `(.*)$` cannot cross a newline.
    if b[i..].contains(&b'\n') {
        return None;
    }
    Some(RawHeader {
        month,
        day,
        hour,
        minute,
        second,
        host,
        body_start: i,
    })
}
// dr-lint: hot(end)

/// The original regex-based header decoder, kept verbatim as the
/// differential-testing oracle for [`parse_header`]. Not used on the
/// production scan path.
pub fn parse_header_oracle(line: &str) -> Option<RawHeader> {
    static HEADER: OnceLock<Regex> = OnceLock::new();
    let header = HEADER.get_or_init(|| {
        Regex::new(r"^([A-Z][a-z][a-z]) +(\d{1,2}) (\d{2}):(\d{2}):(\d{2}) gpub(\d+) (.*)$")
            // dr-lint: allow(panic-freedom): constant pattern, compile covered by tests
            .expect("header pattern compiles")
    });
    let m = header.find(line)?;
    let month = month_from_abbrev(m.group(line, 1)?)?;
    let day: u8 = m.group(line, 2)?.parse().ok()?;
    let hour: u8 = m.group(line, 3)?.parse().ok()?;
    let minute: u8 = m.group(line, 4)?.parse().ok()?;
    let second: u8 = m.group(line, 5)?.parse().ok()?;
    let host: u32 = m.group(line, 6)?.parse().ok()?;
    let body_start = m.group_span(7)?.0;
    debug_assert!(m.span().1 == line.len());
    Some(RawHeader {
        month,
        day,
        hour,
        minute,
        second,
        host,
        body_start,
    })
}

/// Stateful scanner over an in-order syslog stream.
pub struct SyslogScanner {
    year: i32,
    last_month: u8,
}

impl Default for SyslogScanner {
    fn default() -> Self {
        Self::new()
    }
}

impl SyslogScanner {
    /// Scanner starting at the campaign's first year (2022).
    pub fn new() -> Self {
        Self::starting_year(2022)
    }

    /// Scanner with an explicit starting year.
    pub fn starting_year(year: i32) -> Self {
        Self::starting_state(year, 1)
    }

    /// Scanner resuming mid-stream with explicit year-inference state —
    /// used by chunked parallel extraction to replay the state a serial
    /// scan would have reached at the chunk boundary.
    pub fn starting_state(year: i32, last_month: u8) -> Self {
        SyslogScanner { year, last_month }
    }

    /// Current inferred year.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Month of the last successfully validated header (year-inference
    /// state; 1 before any line is seen).
    pub fn last_month(&self) -> u8 {
        self.last_month
    }

    /// Parse one line. Returns `None` for lines that are not well-formed
    /// syslog from a GPU node (they are counted by the extractor, not here).
    pub fn parse<'l>(&mut self, line: &'l str) -> Option<SyslogLine<'l>> {
        let h = parse_header(line)?;
        self.resolve(line, &h)
    }

    /// Second half of [`SyslogScanner::parse`]: validate an
    /// already-decoded header, advance year-inference state, and resolve
    /// the timestamp. Split out so the extractor can decode the header
    /// once and count structural validity separately from time-field
    /// validity.
    pub fn resolve<'l>(&mut self, line: &'l str, h: &RawHeader) -> Option<SyslogLine<'l>> {
        if !h.time_fields_valid() {
            return None;
        }

        // Year rollover: month going backwards means a new year started.
        if h.month < self.last_month {
            self.year += 1;
        }
        self.last_month = h.month;

        let at = Timestamp::from_civil(self.year, h.month, h.day, h.hour, h.minute, h.second)?;
        let body = line.get(h.body_start..)?;
        Some(SyslogLine {
            at,
            host: NodeId(h.host),
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::time::SECS_PER_DAY;

    #[test]
    fn parses_well_formed_line() {
        let mut s = SyslogScanner::new();
        let line = "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 79, x";
        let p = s.parse(line).unwrap();
        assert_eq!(p.host, NodeId(42));
        assert_eq!(p.body, "kernel: NVRM: Xid (PCI:0000:c1:00): 79, x");
        let c = p.at.civil();
        assert_eq!((c.year, c.month, c.day), (2022, 1, 2));
        assert_eq!((c.hour, c.minute, c.second), (3, 4, 5));
    }

    #[test]
    fn rejects_malformed_lines() {
        let mut s = SyslogScanner::new();
        assert!(s.parse("").is_none());
        assert!(s.parse("not a log line").is_none());
        assert!(s.parse("Jan  2 03:04:05 loginnode sshd: hi").is_none());
        assert!(s.parse("Jxn  2 03:04:05 gpub001 kernel: x").is_none());
        // Invalid time fields.
        assert!(s.parse("Jan  2 25:04:05 gpub001 kernel: x").is_none());
        assert!(s.parse("Jan  0 03:04:05 gpub001 kernel: x").is_none());
    }

    #[test]
    fn byte_parser_agrees_with_regex_oracle() {
        // Well-formed, near-miss, and hostile headers; the byte decoder
        // must accept/reject and decode exactly like the regex oracle.
        let cases = [
            "Jan  2 03:04:05 gpub042 kernel: hello",
            "Dec 31 23:59:59 gpub001 body",
            "Feb 30 10:11:12 gpub900 impossible date is still structural",
            "Jan 12 03:04:05 gpub7 ",
            "Jan 123 03:04:05 gpub7 x",   // 3-digit day
            "Jan  2 3:04:05 gpub7 x",     // 1-digit hour
            "Jan  2 03:04:5 gpub7 x",     // 1-digit second
            "Jan  2 03:04:05 gpub x",     // hostname without digits
            "Jan  2 03:04:05 gpub7",      // missing body separator
            "Jan  2 03:04:05  gpub7 x",   // double space before host
            "Jan  2 03:04:05 gpub99999999999 x", // host overflows u32
            "Jan  2 030405 gpub7 x",      // missing colons
            "Jan2 03:04:05 gpub7 x",      // no space after month
            "jan  2 03:04:05 gpub7 x",    // lowercase month
            "Xyz  2 03:04:05 gpub7 x",    // not a month
            "Jan  2 03:04:05 gpub7 body with\nnewline",
            " Jan  2 03:04:05 gpub7 x",   // leading space
            "Jan 99 03:04:05 gpub7 x",    // day out of range but structural
            "",
        ];
        for line in cases {
            assert_eq!(
                parse_header(line),
                parse_header_oracle(line),
                "divergence on {line:?}"
            );
        }
        // Spot-check one decoded header end to end.
        let h = parse_header("Jan  2 03:04:05 gpub042 kernel: hi").unwrap();
        assert_eq!(
            (h.month, h.day, h.hour, h.minute, h.second, h.host),
            (1, 2, 3, 4, 5, 42)
        );
        assert_eq!(h.body_start, 24);
        assert!(h.time_fields_valid());
        assert!(parse_header("Feb 30 10:11:12 gpub900 x").is_some());
        assert!(!parse_header("Jan 99 03:04:05 gpub7 x").unwrap().time_fields_valid());
    }

    #[test]
    fn starting_state_replays_mid_stream_scan() {
        // A scanner initialized with the state a serial scan reached at a
        // chunk boundary must produce identical timestamps afterwards.
        let lines = [
            "Nov  5 00:00:00 gpub001 a",
            "Dec 31 23:59:59 gpub001 b",
            "Jan  1 00:00:10 gpub001 c",
            "Mar  2 07:00:00 gpub001 d",
        ];
        let mut serial = SyslogScanner::new();
        let serial_ts: Vec<_> = lines.iter().map(|l| serial.parse(l).unwrap().at).collect();

        // Split after the second line; replay state into a new scanner.
        let mut first = SyslogScanner::new();
        for l in &lines[..2] {
            first.parse(l).unwrap();
        }
        let mut second = SyslogScanner::starting_state(first.year(), first.last_month());
        let tail_ts: Vec<_> = lines[2..].iter().map(|l| second.parse(l).unwrap().at).collect();
        assert_eq!(&serial_ts[2..], &tail_ts[..]);
    }

    #[test]
    fn infers_year_across_two_rollovers() {
        let mut s = SyslogScanner::new();
        let a = s.parse("Dec 31 23:59:59 gpub001 kernel: a").unwrap();
        assert_eq!(a.at.civil().year, 2022);
        let b = s.parse("Jan  1 00:00:10 gpub001 kernel: b").unwrap();
        assert_eq!(b.at.civil().year, 2023);
        assert!(b.at > a.at);
        assert_eq!((b.at - a.at).as_secs_f64(), 11.0);
        // Second rollover.
        s.parse("Dec 30 01:00:00 gpub001 kernel: c").unwrap();
        let d = s.parse("Feb  1 00:00:00 gpub001 kernel: d").unwrap();
        assert_eq!(d.at.civil().year, 2024);
        assert_eq!(s.year(), 2024);
    }

    #[test]
    fn mid_year_month_progress_does_not_bump_year() {
        let mut s = SyslogScanner::new();
        s.parse("Mar  1 00:00:00 gpub001 kernel: a").unwrap();
        let b = s.parse("Jul 15 00:00:00 gpub001 kernel: b").unwrap();
        assert_eq!(b.at.civil().year, 2022);
    }

    #[test]
    fn timestamps_are_day_accurate() {
        let mut s = SyslogScanner::new();
        let a = s.parse("Jan  1 00:00:00 gpub001 kernel: a").unwrap();
        let b = s.parse("Jan  3 00:00:00 gpub001 kernel: b").unwrap();
        assert_eq!((b.at - a.at).as_secs_f64(), 2.0 * SECS_PER_DAY as f64);
    }
}
