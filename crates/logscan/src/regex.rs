//! A self-contained regular-expression engine.
//!
//! Pipeline: pattern text → AST ([`parse`]) → NFA program ([`compile`]) →
//! Pike VM execution ([`Regex::find`]). The VM simulates all NFA threads in
//! lock-step with priority ordering, giving leftmost-greedy semantics in
//! guaranteed `O(pattern × input)` time — no backtracking blow-ups on
//! hostile log content.
//!
//! Matching operates on bytes; patterns and inputs are expected to be
//! ASCII (true of syslog).
//!
//! ## Execution engines
//!
//! Two engines share one compiled [`Program`]:
//!
//! - The **optimized engine** ([`Regex::find_bytes_at_with`]) executes
//!   against a caller-owned [`MatchScratch`], so steady-state matching
//!   performs no heap allocation: thread lists and capture slots live in
//!   pooled storage reused across calls. Capture slots are refcounted and
//!   copied on write, so a `Split` shares its slot set instead of deep-
//!   cloning it. Character classes are pre-compiled to 256-bit bitmaps.
//!   A compile-time [`Analysis`] derives a *required literal* (a byte run
//!   every match must contain at a bounded offset) and a start-anchor
//!   flag; both restrict where start threads are seeded, memchr-style,
//!   instead of seeding one thread per input byte. A captureless
//!   [`Regex::is_match_with`] path skips `Save` bookkeeping entirely.
//!   None of this changes observable behavior: skipped seeds are exactly
//!   those that provably cannot reach `Match`, and thread dedup merges
//!   only states with identical futures.
//!
//! - The **baseline engine** ([`Regex::find_bytes_at_baseline`]) is the
//!   original per-call Pike VM (fresh thread lists, boxed slots deep-
//!   cloned on every transition, linear class scans, no prefilter). It is
//!   kept as the differential-testing oracle and as the "pre" side of the
//!   Stage I throughput benchmark.

use std::fmt;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Pattern compilation error with byte offset into the pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for RegexError {}

/// Boundary conversion into the workspace-wide data-path error.
impl From<RegexError> for dr_xid::DataError {
    fn from(e: RegexError) -> Self {
        dr_xid::DataError::Pattern {
            offset: e.offset,
            message: e.message,
        }
    }
}

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, RegexError> {
    Err(RegexError {
        offset,
        message: message.into(),
    })
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// Character class: a set of inclusive byte ranges, possibly negated.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ClassSet {
    negated: bool,
    ranges: Vec<(u8, u8)>,
}

impl ClassSet {
    fn matches(&self, b: u8) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= b && b <= hi);
        inside != self.negated
    }
}

/// A `ClassSet` pre-compiled to a 256-bit membership bitmap: one branch-
/// free load/shift/mask per byte instead of a linear range scan.
#[derive(Clone, Copy, Debug)]
struct ClassBits([u64; 4]);

impl ClassBits {
    fn from_set(set: &ClassSet) -> Self {
        let mut bits = [0u64; 4];
        for b in 0..=255u8 {
            if set.matches(b) {
                if let Some(word) = bits.get_mut((b >> 6) as usize) {
                    *word |= 1u64 << (b & 63);
                }
            }
        }
        ClassBits(bits)
    }

    #[inline]
    fn test(&self, b: u8) -> bool {
        (self.0[(b >> 6) as usize] >> (b & 63)) & 1 != 0
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Ast {
    Empty,
    Literal(u8),
    Any,
    Class(ClassSet),
    Concat(Vec<Ast>),
    Alternate(Vec<Ast>),
    /// `Some(index)` for capturing groups (1-based), `None` for `(?:...)`.
    Group(Box<Ast>, Option<u16>),
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
        /// Lazy (non-greedy) repetition: prefer the shortest match.
        lazy: bool,
    },
    AnchorStart,
    AnchorEnd,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'p> {
    pat: &'p [u8],
    pos: usize,
    next_group: u16,
}

impl<'p> Parser<'p> {
    fn new(pat: &'p str) -> Self {
        Parser {
            pat: pat.as_bytes(),
            pos: 0,
            next_group: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse(mut self) -> Result<(Ast, u16), RegexError> {
        let ast = self.alternate()?;
        if self.pos != self.pat.len() {
            return err(self.pos, "unexpected ')'");
        }
        Ok((ast, self.next_group - 1))
    }

    fn alternate(&mut self) -> Result<Ast, RegexError> {
        let first = self.concat()?;
        if !self.eat(b'|') {
            return Ok(first);
        }
        let mut branches = vec![first];
        loop {
            branches.push(self.concat()?);
            if !self.eat(b'|') {
                break;
            }
        }
        Ok(Ast::Alternate(branches))
    }

    fn concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.pop() {
            None => Ast::Empty,
            Some(only) if items.is_empty() => only,
            Some(last) => {
                items.push(last);
                Ast::Concat(items)
            }
        })
    }

    fn repeat(&mut self) -> Result<Ast, RegexError> {
        let atom_start = self.pos;
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                (0, None)
            }
            Some(b'+') => {
                self.pos += 1;
                (1, None)
            }
            Some(b'?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some(b'{') => {
                // Only treat as a counted repeat if it looks like {m[,n]}.
                if let Some((min, max, consumed)) = self.try_counted_repeat() {
                    self.pos += consumed;
                    (min, max)
                } else {
                    return Ok(atom);
                }
            }
            _ => return Ok(atom),
        };
        // A trailing '?' makes the quantifier lazy (non-greedy).
        let lazy = self.eat(b'?');
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd) {
            return err(atom_start, "cannot repeat an anchor");
        }
        if let Some(mx) = max {
            if mx < min {
                return err(atom_start, "repeat max below min");
            }
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            lazy,
        })
    }

    /// Parse `{m}`, `{m,}`, or `{m,n}` starting at the current `{`.
    /// Returns `(min, max, bytes_consumed)` or `None` if it isn't a
    /// well-formed counted repeat (then `{` is a literal).
    fn try_counted_repeat(&self) -> Option<(u32, Option<u32>, usize)> {
        let rest = &self.pat[self.pos..];
        let close = rest.iter().position(|&b| b == b'}')?;
        let inner = &rest[1..close];
        let inner = std::str::from_utf8(inner).ok()?;
        let (min_s, max_s) = match inner.split_once(',') {
            None => (inner, None),
            Some((a, b)) => (a, Some(b)),
        };
        let min: u32 = min_s.parse().ok()?;
        let max = match max_s {
            None => Some(min),
            Some("") => None,
            Some(s) => Some(s.parse().ok()?),
        };
        // Guard against pathological expansion sizes.
        if min > 1_000 || max.is_some_and(|m| m > 1_000) {
            return None;
        }
        Some((min, max, close + 1))
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        let start = self.pos;
        match self.bump() {
            None => err(start, "expected atom"),
            Some(b'(') => {
                let cap = if self.peek() == Some(b'?') {
                    // Only (?: ... ) is supported.
                    self.pos += 1;
                    if !self.eat(b':') {
                        return err(self.pos, "unsupported group flag (only (?:) )");
                    }
                    None
                } else {
                    let idx = self.next_group;
                    if idx > 255 {
                        return err(start, "too many capture groups");
                    }
                    self.next_group += 1;
                    Some(idx)
                };
                let inner = self.alternate()?;
                if !self.eat(b')') {
                    return err(self.pos, "missing ')'");
                }
                Ok(Ast::Group(Box::new(inner), cap))
            }
            Some(b'[') => self.class(start),
            Some(b'.') => Ok(Ast::Any),
            Some(b'^') => Ok(Ast::AnchorStart),
            Some(b'$') => Ok(Ast::AnchorEnd),
            Some(b'\\') => self.escape(start),
            Some(b @ (b'*' | b'+' | b'?')) => {
                err(start, format!("dangling quantifier '{}'", b as char))
            }
            Some(b) => Ok(Ast::Literal(b)),
        }
    }

    fn escape(&mut self, start: usize) -> Result<Ast, RegexError> {
        match self.bump() {
            None => err(start, "trailing backslash"),
            Some(b'd') => Ok(Ast::Class(class_digit(false))),
            Some(b'D') => Ok(Ast::Class(class_digit(true))),
            Some(b'w') => Ok(Ast::Class(class_word(false))),
            Some(b'W') => Ok(Ast::Class(class_word(true))),
            Some(b's') => Ok(Ast::Class(class_space(false))),
            Some(b'S') => Ok(Ast::Class(class_space(true))),
            Some(b'n') => Ok(Ast::Literal(b'\n')),
            Some(b't') => Ok(Ast::Literal(b'\t')),
            Some(b'r') => Ok(Ast::Literal(b'\r')),
            Some(b) if b.is_ascii_alphanumeric() => {
                err(start, format!("unknown escape '\\{}'", b as char))
            }
            Some(b) => Ok(Ast::Literal(b)),
        }
    }

    fn class(&mut self, start: usize) -> Result<Ast, RegexError> {
        let negated = self.eat(b'^');
        let mut ranges: Vec<(u8, u8)> = Vec::new();
        // A ']' immediately after '[' (or '[^') is a literal.
        if self.eat(b']') {
            ranges.push((b']', b']'));
        }
        loop {
            let lo = match self.bump() {
                None => return err(start, "unterminated class"),
                Some(b']') => break,
                Some(b'\\') => match self.bump() {
                    None => return err(start, "trailing backslash in class"),
                    Some(b'd') => {
                        ranges.extend_from_slice(&class_digit(false).ranges);
                        continue;
                    }
                    Some(b'w') => {
                        ranges.extend_from_slice(&class_word(false).ranges);
                        continue;
                    }
                    Some(b's') => {
                        ranges.extend_from_slice(&class_space(false).ranges);
                        continue;
                    }
                    Some(b'n') => b'\n',
                    Some(b't') => b'\t',
                    Some(b) => b,
                },
                Some(b) => b,
            };
            // Range lo-hi, unless '-' is trailing (literal).
            if self.peek() == Some(b'-') && self.pat.get(self.pos + 1) != Some(&b']') {
                self.pos += 1; // consume '-'
                let hi = match self.bump() {
                    None => return err(start, "unterminated class range"),
                    Some(b'\\') => match self.bump() {
                        None => return err(start, "trailing backslash in class"),
                        Some(b'n') => b'\n',
                        Some(b't') => b'\t',
                        Some(b) => b,
                    },
                    Some(b) => b,
                };
                if hi < lo {
                    return err(start, "invalid class range (hi < lo)");
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return err(start, "empty character class");
        }
        Ok(Ast::Class(ClassSet { negated, ranges }))
    }
}

fn class_digit(negated: bool) -> ClassSet {
    ClassSet {
        negated,
        ranges: vec![(b'0', b'9')],
    }
}

fn class_word(negated: bool) -> ClassSet {
    ClassSet {
        negated,
        ranges: vec![(b'0', b'9'), (b'A', b'Z'), (b'a', b'z'), (b'_', b'_')],
    }
}

fn class_space(negated: bool) -> ClassSet {
    ClassSet {
        negated,
        ranges: vec![
            (b' ', b' '),
            (b'\t', b'\t'),
            (b'\n', b'\n'),
            (0x0b, 0x0c),
            (b'\r', b'\r'),
        ],
    }
}

// ---------------------------------------------------------------------------
// Compile-time pattern analysis
// ---------------------------------------------------------------------------

/// A byte run that every match must contain, at an offset from the match
/// start bounded by `[min_off, max_off]` (`max_off == None` means
/// unbounded: the run appears somewhere at or after `min_off`).
#[derive(Clone, Debug)]
struct RequiredLit {
    bytes: Vec<u8>,
    min_off: usize,
    max_off: Option<usize>,
}

/// What the optimizer can assume about every match of the pattern.
#[derive(Clone, Debug, Default)]
struct Analysis {
    required: Option<RequiredLit>,
    anchored_start: bool,
}

/// `(min, max)` number of input bytes the node can consume; `None` max
/// means unbounded. Saturating arithmetic: counted repeats nest.
fn len_bounds(ast: &Ast) -> (usize, Option<usize>) {
    match ast {
        Ast::Empty | Ast::AnchorStart | Ast::AnchorEnd => (0, Some(0)),
        Ast::Literal(_) | Ast::Any | Ast::Class(_) => (1, Some(1)),
        Ast::Group(inner, _) => len_bounds(inner),
        Ast::Concat(items) => items.iter().fold((0, Some(0)), |(lo, hi), it| {
            let (ilo, ihi) = len_bounds(it);
            (
                lo.saturating_add(ilo),
                hi.zip(ihi).map(|(a, b)| a.saturating_add(b)),
            )
        }),
        Ast::Alternate(branches) => {
            let mut lo = usize::MAX;
            let mut hi = Some(0usize);
            for b in branches {
                let (blo, bhi) = len_bounds(b);
                lo = lo.min(blo);
                hi = hi.zip(bhi).map(|(a, c)| a.max(c));
            }
            (if lo == usize::MAX { 0 } else { lo }, hi)
        }
        Ast::Repeat { node, min, max, .. } => {
            let (nlo, nhi) = len_bounds(node);
            let lo = nlo.saturating_mul(*min as usize);
            let hi = match (max, nhi) {
                (Some(m), Some(h)) => Some(h.saturating_mul(*m as usize)),
                _ => None,
            };
            (lo, hi)
        }
    }
}

/// Walks the AST along its single mandatory path, collecting maximal
/// literal byte runs together with their offset bounds from the match
/// start. Alternations and optional repeats flush the current run (their
/// contents are not mandatory) and only widen the offset bounds.
struct LitScan {
    runs: Vec<RequiredLit>,
    cur: Vec<u8>,
    cur_lo: usize,
    cur_hi: Option<usize>,
    lo: usize,
    hi: Option<usize>,
}

impl LitScan {
    fn flush(&mut self) {
        if !self.cur.is_empty() {
            self.runs.push(RequiredLit {
                bytes: std::mem::take(&mut self.cur),
                min_off: self.cur_lo,
                max_off: self.cur_hi,
            });
        }
    }

    fn advance(&mut self, lo: usize, hi: Option<usize>) {
        self.lo = self.lo.saturating_add(lo);
        self.hi = self.hi.zip(hi).map(|(a, b)| a.saturating_add(b));
    }

    fn push_byte(&mut self, b: u8) {
        if self.cur.is_empty() {
            self.cur_lo = self.lo;
            self.cur_hi = self.hi;
        }
        self.cur.push(b);
        self.advance(1, Some(1));
    }

    /// Node contributes no mandatory literal: end the current run and
    /// advance the offset bounds by the node's length bounds.
    fn skip(&mut self, ast: &Ast) {
        self.flush();
        let (lo, hi) = len_bounds(ast);
        self.advance(lo, hi);
    }

    fn walk(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty | Ast::AnchorStart | Ast::AnchorEnd => {}
            Ast::Literal(b) => self.push_byte(*b),
            Ast::Any | Ast::Class(_) => self.skip(ast),
            Ast::Concat(items) => {
                for it in items {
                    self.walk(it);
                }
            }
            Ast::Group(inner, _) => self.walk(inner),
            Ast::Alternate(_) => self.skip(ast),
            Ast::Repeat { node, min, max, .. } => {
                // Mandatory copies mirror what the compiler emits.
                for _ in 0..*min {
                    self.walk(node);
                }
                if *max != Some(*min) {
                    self.flush();
                    let (_, nhi) = len_bounds(node);
                    let opt_hi = match (max, nhi) {
                        (Some(m), Some(h)) => Some(h.saturating_mul((m - min) as usize)),
                        _ => None,
                    };
                    self.advance(0, opt_hi);
                }
            }
        }
    }
}

/// Does every match necessarily begin at input offset 0 (i.e. every path
/// through the pattern passes `^` before consuming a byte)? Conservative:
/// `false` never breaks anything, it only disables the anchor fast path.
fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::AnchorStart => true,
        Ast::Group(inner, _) => starts_anchored(inner),
        Ast::Concat(items) => {
            for it in items {
                if starts_anchored(it) {
                    return true;
                }
                // Keep looking through zero-width prefixes only.
                if len_bounds(it).1 != Some(0) {
                    return false;
                }
            }
            false
        }
        Ast::Alternate(branches) => branches.iter().all(starts_anchored),
        Ast::Repeat { node, min, .. } => *min >= 1 && starts_anchored(node),
        _ => false,
    }
}

fn analyze(ast: &Ast) -> Analysis {
    let mut scan = LitScan {
        runs: Vec::new(),
        cur: Vec::new(),
        cur_lo: 0,
        cur_hi: Some(0),
        lo: 0,
        hi: Some(0),
    };
    scan.walk(ast);
    scan.flush();
    // Prefer runs with a bounded offset window (they allow skipping start
    // positions, not just whole-input rejection); among candidates take
    // the longest. Length-1 windowed runs are weak filters, so a longer
    // unbounded run beats them.
    let required = scan
        .runs
        .iter()
        .max_by_key(|r| (r.bytes.len() >= 2 && r.max_off.is_some(), r.bytes.len()))
        .cloned();
    Analysis {
        required,
        anchored_start: starts_anchored(ast),
    }
}

// ---------------------------------------------------------------------------
// Compiler: AST -> NFA program
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Inst {
    /// Match one byte exactly.
    Byte(u8),
    /// Match any byte except newline.
    Any,
    /// Match a byte in the indexed class.
    Class(u32),
    /// Try `a` first (higher priority), then `b`.
    Split(u32, u32),
    Jmp(u32),
    /// Record the current input offset into capture slot `n`.
    Save(u16),
    AssertStart,
    AssertEnd,
    Match,
}

struct Program {
    insts: Vec<Inst>,
    classes: Vec<ClassSet>,
    /// Bitmap form of `classes`, same indices.
    class_bits: Vec<ClassBits>,
    n_groups: u16,
    analysis: Analysis,
}

struct Compiler {
    insts: Vec<Inst>,
    classes: Vec<ClassSet>,
}

impl Compiler {
    fn push(&mut self, i: Inst) -> u32 {
        self.insts.push(i);
        (self.insts.len() - 1) as u32
    }

    fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    fn class_id(&mut self, c: ClassSet) -> u32 {
        if let Some(idx) = self.classes.iter().position(|x| *x == c) {
            idx as u32
        } else {
            self.classes.push(c);
            (self.classes.len() - 1) as u32
        }
    }

    fn compile(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(b) => {
                self.push(Inst::Byte(*b));
            }
            Ast::Any => {
                self.push(Inst::Any);
            }
            Ast::Class(c) => {
                let id = self.class_id(c.clone());
                self.push(Inst::Class(id));
            }
            Ast::AnchorStart => {
                self.push(Inst::AssertStart);
            }
            Ast::AnchorEnd => {
                self.push(Inst::AssertEnd);
            }
            Ast::Concat(items) => {
                for item in items {
                    self.compile(item);
                }
            }
            Ast::Group(inner, cap) => {
                if let Some(idx) = cap {
                    self.push(Inst::Save(idx * 2));
                    self.compile(inner);
                    self.push(Inst::Save(idx * 2 + 1));
                } else {
                    self.compile(inner);
                }
            }
            Ast::Alternate(branches) => {
                // Chain of splits; each branch jumps to the common end.
                let mut jmp_ends = Vec::new();
                for (i, branch) in branches.iter().enumerate() {
                    if i + 1 < branches.len() {
                        let split = self.push(Inst::Split(0, 0));
                        let body = self.here();
                        self.compile(branch);
                        jmp_ends.push(self.push(Inst::Jmp(0)));
                        let next = self.here();
                        self.insts[split as usize] = Inst::Split(body, next);
                    } else {
                        self.compile(branch);
                    }
                }
                let end = self.here();
                for j in jmp_ends {
                    self.insts[j as usize] = Inst::Jmp(end);
                }
            }
            Ast::Repeat { node, min, max, lazy } => self.compile_repeat(node, *min, *max, *lazy),
        }
    }

    fn compile_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, lazy: bool) {
        // Split priority encodes greediness: the preferred branch comes
        // first, so greedy prefers the body and lazy prefers the exit.
        let split = |body: u32, out: u32| {
            if lazy {
                Inst::Split(out, body)
            } else {
                Inst::Split(body, out)
            }
        };
        // Mandatory copies.
        for _ in 0..min {
            self.compile(node);
        }
        match max {
            None => {
                // Kleene tail: L1: Split(body, out); body; Jmp(L1); out:
                let l1 = self.push(Inst::Split(0, 0));
                let body = self.here();
                self.compile(node);
                self.push(Inst::Jmp(l1));
                let out = self.here();
                self.insts[l1 as usize] = split(body, out);
            }
            Some(mx) => {
                // (mx - min) optional copies, each skippable to the end.
                let mut splits = Vec::new();
                for _ in min..mx {
                    let s = self.push(Inst::Split(0, 0));
                    let body = self.here();
                    splits.push((s, body));
                    self.compile(node);
                }
                let out = self.here();
                for (s, body) in splits {
                    self.insts[s as usize] = split(body, out);
                }
            }
        }
    }
}

fn compile(ast: &Ast, n_groups: u16) -> Program {
    let mut c = Compiler {
        insts: Vec::new(),
        classes: Vec::new(),
    };
    c.push(Inst::Save(0));
    c.compile(ast);
    c.push(Inst::Save(1));
    c.push(Inst::Match);
    let class_bits = c.classes.iter().map(ClassBits::from_set).collect();
    Program {
        insts: c.insts,
        classes: c.classes,
        class_bits,
        n_groups,
        analysis: analyze(ast),
    }
}

// ---------------------------------------------------------------------------
// Reusable match scratch: pooled thread lists + capture slots
// ---------------------------------------------------------------------------

type Slots = Box<[Option<usize>]>;

/// Pooled capture-slot storage. Each live slot set is a `width`-sized
/// region of `data`, identified by a `u32` id, with a reference count.
/// `Split` transitions share a set by bumping its refcount; `Save` writes
/// copy-on-write when the set is shared. Freed regions go on a free list
/// and are reused, so a scanning loop reaches a steady state where no
/// allocation happens at all.
struct SlotPool {
    width: usize,
    data: Vec<Option<usize>>,
    refs: Vec<u32>,
    free: Vec<u32>,
}

impl SlotPool {
    fn reset(&mut self, width: usize) {
        self.width = width;
        self.data.clear();
        self.refs.clear();
        self.free.clear();
    }

    // dr-lint: hot(begin)
    /// Allocate a slot set with every slot unset, refcount 1.
    fn alloc_blank(&mut self) -> u32 {
        match self.free.pop() {
            Some(id) => {
                let base = id as usize * self.width;
                self.data[base..base + self.width].fill(None);
                self.refs[id as usize] = 1;
                id
            }
            None => {
                let id = self.refs.len() as u32;
                self.data.resize(self.data.len() + self.width, None);
                self.refs.push(1);
                id
            }
        }
    }

    #[inline]
    fn retain(&mut self, id: u32) {
        if let Some(r) = self.refs.get_mut(id as usize) {
            *r += 1;
        }
    }

    #[inline]
    fn release(&mut self, id: u32) {
        let r = &mut self.refs[id as usize];
        *r -= 1;
        if *r == 0 {
            self.free.push(id);
        }
    }

    /// Set one slot, copy-on-write: in place when exclusively owned,
    /// otherwise into a fresh copy (the caller's reference moves to it).
    fn with_slot_set(&mut self, id: u32, slot: usize, pos: usize) -> u32 {
        if self.refs[id as usize] == 1 {
            self.data[id as usize * self.width + slot] = Some(pos);
            return id;
        }
        self.refs[id as usize] -= 1;
        let new_id = match self.free.pop() {
            Some(n) => {
                self.refs[n as usize] = 1;
                n
            }
            None => {
                let n = self.refs.len() as u32;
                self.data.resize(self.data.len() + self.width, None);
                self.refs.push(1);
                n
            }
        };
        let src = id as usize * self.width;
        let dst = new_id as usize * self.width;
        self.data.copy_within(src..src + self.width, dst);
        self.data[dst + slot] = Some(pos);
        new_id
    }
    // dr-lint: hot(end)

    #[inline]
    fn get(&self, id: u32, slot: usize) -> Option<usize> {
        self.data.get(id as usize * self.width + slot).copied().flatten()
    }

    /// Copy a slot set out of the pool (used once per successful find).
    fn snapshot(&self, id: u32) -> Slots {
        let base = id as usize * self.width;
        self.data
            .get(base..base + self.width)
            .unwrap_or(&[])
            .to_vec()
            .into_boxed_slice()
    }
}

struct ThreadList {
    /// (pc, slot-pool id), in priority order.
    threads: Vec<(u32, u32)>,
    /// Dense "already added at this step" marker, one per instruction.
    seen: Vec<u32>,
    stamp: u32,
}

impl ThreadList {
    fn prepare(&mut self, n_insts: usize) {
        self.threads.clear();
        if self.seen.len() != n_insts {
            self.seen.clear();
            self.seen.resize(n_insts, 0);
            self.stamp = 0;
        }
    }

    fn begin_step(&mut self) {
        self.threads.clear();
        if self.stamp == u32::MAX {
            self.seen.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
    }
}

/// Caller-owned execution state for the optimized engine: thread lists
/// and the capture-slot pool. Create one per scanning loop (or per
/// worker) and pass it to [`Regex::find_bytes_at_with`] /
/// [`Regex::is_match_with`]; after warm-up, matching allocates nothing.
///
/// A scratch is not tied to a particular `Regex`; it re-sizes itself on
/// first use with each program.
pub struct MatchScratch {
    clist: ThreadList,
    nlist: ThreadList,
    pool: SlotPool,
}

impl Default for MatchScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl MatchScratch {
    pub fn new() -> Self {
        MatchScratch {
            clist: ThreadList {
                threads: Vec::new(),
                seen: Vec::new(),
                stamp: 0,
            },
            nlist: ThreadList {
                threads: Vec::new(),
                seen: Vec::new(),
                stamp: 0,
            },
            pool: SlotPool {
                width: 0,
                data: Vec::new(),
                refs: Vec::new(),
                free: Vec::new(),
            },
        }
    }

    fn prepare(&mut self, n_insts: usize, width: usize) {
        self.clist.prepare(n_insts);
        self.nlist.prepare(n_insts);
        self.pool.reset(width);
    }
}

/// A successful match: the overall span plus capture-group spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Match {
    slots: Slots,
    n_groups: u16,
    /// Overall span, resolved at construction so `span()` cannot panic.
    start: usize,
    end: usize,
}

impl Match {
    /// Overall match span `(start, end)` as byte offsets.
    pub fn span(&self) -> (usize, usize) {
        (self.start, self.end)
    }

    /// Span of capture group `i` (1-based; 0 is the whole match), if it
    /// participated in the match.
    pub fn group_span(&self, i: usize) -> Option<(usize, usize)> {
        if i > self.n_groups as usize {
            return None;
        }
        match (self.slots.get(2 * i), self.slots.get(2 * i + 1)) {
            (Some(&Some(s)), Some(&Some(e))) => Some((s, e)),
            _ => None,
        }
    }

    /// Text of capture group `i` within `haystack`.
    pub fn group<'h>(&self, haystack: &'h str, i: usize) -> Option<&'h str> {
        self.group_span(i).and_then(|(s, e)| haystack.get(s..e))
    }
}

/// Iterator returned by [`Regex::find_iter`]. Owns a [`MatchScratch`],
/// so iterating over many matches allocates per match only for the
/// returned [`Match`] values themselves.
pub struct FindIter<'r, 'h> {
    re: &'r Regex,
    haystack: &'h str,
    at: usize,
    scratch: MatchScratch,
}

impl Iterator for FindIter<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.at > self.haystack.len() {
            return None;
        }
        let m = self
            .re
            .find_bytes_at_with(self.haystack.as_bytes(), self.at, &mut self.scratch)?;
        let (start, end) = m.span();
        // Advance past the match; empty matches step one byte so the
        // iterator always terminates.
        self.at = if end > start { end } else { end + 1 };
        Some(m)
    }
}

/// First occurrence of `needle` in `hay` at index `>= from`.
fn find_sub(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    let n = needle.len();
    if n == 0 {
        return (from <= hay.len()).then_some(from);
    }
    if from.saturating_add(n) > hay.len() {
        return None;
    }
    let first = needle[0];
    let last = hay.len() - n;
    let mut i = from;
    while i <= last {
        // Skip to the next candidate first byte.
        match hay[i..=last].iter().position(|&b| b == first) {
            None => return None,
            Some(off) => i += off,
        }
        if &hay[i..i + n] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// A compiled regular expression.
pub struct Regex {
    prog: Program,
    pattern: String,
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Regex({:?})", self.pattern)
    }
}

impl Regex {
    /// Compile `pattern`.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let (ast, n_groups) = Parser::new(pattern).parse()?;
        Ok(Regex {
            prog: compile(&ast, n_groups),
            pattern: pattern.to_string(),
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups.
    pub fn group_count(&self) -> u16 {
        self.prog.n_groups
    }

    /// Leftmost match in `haystack`, if any. Convenience wrapper that
    /// allocates a throwaway scratch; loops should hold a
    /// [`MatchScratch`] and call [`Regex::find_with`].
    pub fn find(&self, haystack: &str) -> Option<Match> {
        self.find_bytes(haystack.as_bytes())
    }

    /// Leftmost match using caller-owned scratch (allocation-free after
    /// warm-up).
    pub fn find_with(&self, haystack: &str, scratch: &mut MatchScratch) -> Option<Match> {
        self.find_bytes_at_with(haystack.as_bytes(), 0, scratch)
    }

    /// Whether `haystack` contains a match.
    pub fn is_match(&self, haystack: &str) -> bool {
        let mut scratch = MatchScratch::new();
        self.is_match_with(haystack, &mut scratch)
    }

    /// Whether `haystack` contains a match, using caller-owned scratch
    /// and the captureless VM (no `Save` bookkeeping at all).
    pub fn is_match_with(&self, haystack: &str, scratch: &mut MatchScratch) -> bool {
        self.is_match_bytes_with(haystack.as_bytes(), scratch)
    }

    /// Iterator over all non-overlapping matches, leftmost-first.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h str) -> FindIter<'r, 'h> {
        FindIter {
            re: self,
            haystack,
            at: 0,
            scratch: MatchScratch::new(),
        }
    }

    /// Leftmost match over raw bytes.
    pub fn find_bytes(&self, input: &[u8]) -> Option<Match> {
        self.find_bytes_at(input, 0)
    }

    /// Leftmost match over raw bytes, starting the scan at `start`.
    /// `^` still anchors to the true beginning of `input`.
    pub fn find_bytes_at(&self, input: &[u8], start: usize) -> Option<Match> {
        let mut scratch = MatchScratch::new();
        self.find_bytes_at_with(input, start, &mut scratch)
    }

    /// Leftmost match over raw bytes starting at `start`, executed
    /// against caller-owned scratch. This is the optimized engine:
    /// prefiltered seeding, pooled copy-on-write capture slots, bitmap
    /// classes. Behavior is identical to
    /// [`Regex::find_bytes_at_baseline`].
    pub fn find_bytes_at_with(
        &self,
        input: &[u8],
        start: usize,
        scratch: &mut MatchScratch,
    ) -> Option<Match> {
        let prog = &self.prog;
        if start > input.len() {
            return None;
        }
        // Every match begins at offset 0; a later scan start can't hit it.
        if prog.analysis.anchored_start && start > 0 {
            return None;
        }
        let n_slots = 2 * (prog.n_groups as usize + 1);
        scratch.prepare(prog.insts.len(), n_slots);
        let MatchScratch { clist, nlist, pool } = scratch;
        let len = input.len();
        let lit = prog.analysis.required.as_ref();
        // Cached first literal occurrence at or after the last search
        // point; `lit_done` means no further occurrence exists.
        let mut lit_next: usize = 0;
        let mut lit_fresh = false;
        let mut lit_done = false;
        let mut matched: Option<u32> = None;
        let mut pos = start;

        clist.begin_step();
        loop {
            // dr-lint: hot(begin)
            // --- Seeding: decide whether a start thread at `pos` could
            // possibly reach Match; skip it otherwise. ---
            let mut seed = matched.is_none();
            if seed && prog.analysis.anchored_start && pos > 0 {
                seed = false;
                if clist.threads.is_empty() {
                    break; // anchored: no live threads, no future seeds
                }
            }
            if seed {
                if let Some(rl) = lit {
                    let need = pos + rl.min_off;
                    if !lit_done && (!lit_fresh || lit_next < need) {
                        match find_sub(input, &rl.bytes, need) {
                            Some(l) => {
                                lit_next = l;
                                lit_fresh = true;
                            }
                            None => lit_done = true,
                        }
                    }
                    if lit_done {
                        // The literal never occurs again: no match can
                        // start at `pos` or later.
                        seed = false;
                        if clist.threads.is_empty() {
                            break;
                        }
                    } else if let Some(mx) = rl.max_off {
                        if lit_next > pos + mx {
                            seed = false;
                            if clist.threads.is_empty() {
                                // Fast-forward to the first position whose
                                // window reaches the occurrence.
                                pos = lit_next - mx;
                                seed = true;
                            }
                        }
                    }
                }
            }
            if seed {
                let sid = pool.alloc_blank();
                add_thread(prog, clist, pool, 0, pos, len, sid);
            }
            if clist.threads.is_empty() && matched.is_some() {
                break;
            }

            // --- Step every thread over the byte at `pos`. ---
            nlist.begin_step();
            let byte = input.get(pos).copied();
            let tcount = clist.threads.len();
            let mut i = 0;
            while i < tcount {
                let (pc, sid) = clist.threads[i];
                match &prog.insts[pc as usize] {
                    Inst::Byte(b) => {
                        if byte == Some(*b) {
                            add_thread(prog, nlist, pool, pc + 1, pos + 1, len, sid);
                        } else {
                            pool.release(sid);
                        }
                    }
                    Inst::Any => {
                        if byte.is_some_and(|b| b != b'\n') {
                            add_thread(prog, nlist, pool, pc + 1, pos + 1, len, sid);
                        } else {
                            pool.release(sid);
                        }
                    }
                    Inst::Class(id) => {
                        if byte.is_some_and(|b| prog.class_bits[*id as usize].test(b)) {
                            add_thread(prog, nlist, pool, pc + 1, pos + 1, len, sid);
                        } else {
                            pool.release(sid);
                        }
                    }
                    Inst::Match => {
                        // Highest-priority match at this step: keep it,
                        // cut lower-priority threads.
                        if let Some(old) = matched.replace(sid) {
                            pool.release(old);
                        }
                        let mut j = i + 1;
                        while j < tcount {
                            pool.release(clist.threads[j].1);
                            j += 1;
                        }
                        break;
                    }
                    // Eps transitions were resolved by add_thread.
                    Inst::Split(..) | Inst::Jmp(..) | Inst::Save(..) | Inst::AssertStart
                    // dr-lint: allow(panic-reachability): add_thread resolves every eps inst
                    | Inst::AssertEnd => unreachable!("eps inst in stepped list"),
                }
                i += 1;
            }
            std::mem::swap(clist, nlist);
            if clist.threads.is_empty() && matched.is_some() {
                break;
            }
            if pos >= len {
                break;
            }
            pos += 1;
            // dr-lint: hot(end)
        }

        let sid = matched?;
        let (start, end) = match (pool.get(sid, 0), pool.get(sid, 1)) {
            (Some(s), Some(e)) => (s, e),
            // A match thread always saved slot 0/1; treat anything else
            // as no match rather than panicking.
            _ => return None,
        };
        Some(Match {
            slots: pool.snapshot(sid),
            n_groups: prog.n_groups,
            start,
            end,
        })
    }

    /// Captureless match test over raw bytes: same seeding and stepping
    /// as the find path but threads carry no capture slots and `Save`
    /// instructions are skipped, with an early return on the first
    /// `Match` reached.
    pub fn is_match_bytes_with(&self, input: &[u8], scratch: &mut MatchScratch) -> bool {
        let prog = &self.prog;
        scratch.prepare(prog.insts.len(), 0);
        let MatchScratch { clist, nlist, .. } = scratch;
        let len = input.len();
        let lit = prog.analysis.required.as_ref();
        let mut lit_next: usize = 0;
        let mut lit_fresh = false;
        let mut lit_done = false;
        let mut pos = 0usize;

        clist.begin_step();
        loop {
            // dr-lint: hot(begin)
            let mut seed = true;
            if prog.analysis.anchored_start && pos > 0 {
                seed = false;
                if clist.threads.is_empty() {
                    return false;
                }
            }
            if seed {
                if let Some(rl) = lit {
                    let need = pos + rl.min_off;
                    if !lit_done && (!lit_fresh || lit_next < need) {
                        match find_sub(input, &rl.bytes, need) {
                            Some(l) => {
                                lit_next = l;
                                lit_fresh = true;
                            }
                            None => lit_done = true,
                        }
                    }
                    if lit_done {
                        seed = false;
                        if clist.threads.is_empty() {
                            return false;
                        }
                    } else if let Some(mx) = rl.max_off {
                        if lit_next > pos + mx {
                            seed = false;
                            if clist.threads.is_empty() {
                                pos = lit_next - mx;
                                seed = true;
                            }
                        }
                    }
                }
            }
            if seed && add_thread_nocap(prog, clist, 0, pos, len) {
                return true;
            }

            nlist.begin_step();
            let byte = input.get(pos).copied();
            for i in 0..clist.threads.len() {
                let (pc, _) = clist.threads[i];
                let advance = match &prog.insts[pc as usize] {
                    Inst::Byte(b) => byte == Some(*b),
                    Inst::Any => byte.is_some_and(|b| b != b'\n'),
                    Inst::Class(id) => {
                        byte.is_some_and(|b| prog.class_bits[*id as usize].test(b))
                    }
                    Inst::Match => return true,
                    Inst::Split(..) | Inst::Jmp(..) | Inst::Save(..) | Inst::AssertStart
                    | Inst::AssertEnd => unreachable!("eps inst in stepped list"),
                };
                if advance && add_thread_nocap(prog, nlist, pc + 1, pos + 1, len) {
                    return true;
                }
            }
            std::mem::swap(clist, nlist);
            if pos >= len {
                return false;
            }
            pos += 1;
            // dr-lint: hot(end)
        }
    }

    // -----------------------------------------------------------------
    // Baseline engine (pre-optimization), kept as differential oracle
    // -----------------------------------------------------------------

    /// Leftmost match over raw bytes starting at `start`, executed by the
    /// original per-call Pike VM: fresh thread lists and boxed capture
    /// slots every call, deep-cloned slots on every transition, linear
    /// class-range scans, a start thread seeded at every byte. Kept
    /// verbatim as the differential-test oracle and the benchmark's
    /// "pre" engine. Must behave identically to
    /// [`Regex::find_bytes_at_with`].
    pub fn find_bytes_at_baseline(&self, input: &[u8], start: usize) -> Option<Match> {
        let n_slots = 2 * (self.prog.n_groups as usize + 1);
        let mut clist = BaselineThreadList::new(self.prog.insts.len());
        let mut nlist = BaselineThreadList::new(self.prog.insts.len());
        let mut matched: Option<Slots> = None;

        clist.begin_step();
        for pos in start..=input.len() {
            // Seed a fresh start thread (lowest priority) unless a match
            // was already found — leftmost semantics.
            if matched.is_none() {
                let slots = vec![None; n_slots].into_boxed_slice();
                add_thread_baseline(&self.prog, &mut clist, 0, pos, input.len(), slots);
            }
            if clist.threads.is_empty() && matched.is_some() {
                break;
            }

            nlist.begin_step();
            let byte = input.get(pos).copied();
            // Iterate by index: list is already eps-closed.
            let mut i = 0;
            while i < clist.threads.len() {
                let (pc, ref slots) = clist.threads[i];
                match &self.prog.insts[pc as usize] {
                    Inst::Byte(b) => {
                        if byte == Some(*b) {
                            let s = slots.clone();
                            add_thread_baseline(
                                &self.prog,
                                &mut nlist,
                                pc + 1,
                                pos + 1,
                                input.len(),
                                s,
                            );
                        }
                    }
                    Inst::Any => {
                        if byte.is_some_and(|b| b != b'\n') {
                            let s = slots.clone();
                            add_thread_baseline(
                                &self.prog,
                                &mut nlist,
                                pc + 1,
                                pos + 1,
                                input.len(),
                                s,
                            );
                        }
                    }
                    Inst::Class(id) => {
                        if byte.is_some_and(|b| self.prog.classes[*id as usize].matches(b)) {
                            let s = slots.clone();
                            add_thread_baseline(
                                &self.prog,
                                &mut nlist,
                                pc + 1,
                                pos + 1,
                                input.len(),
                                s,
                            );
                        }
                    }
                    Inst::Match => {
                        matched = Some(slots.clone());
                        break;
                    }
                    Inst::Split(..) | Inst::Jmp(..) | Inst::Save(..) | Inst::AssertStart
                    // dr-lint: allow(panic-reachability): add_thread_baseline resolves every eps inst
                    | Inst::AssertEnd => unreachable!("eps inst in stepped list"),
                }
                i += 1;
            }
            std::mem::swap(&mut clist, &mut nlist);
            if clist.threads.is_empty() && matched.is_some() {
                break;
            }
        }

        matched.and_then(|slots| {
            let (start, end) = match (slots[0], slots[1]) {
                (Some(s), Some(e)) => (s, e),
                _ => return None,
            };
            Some(Match {
                slots,
                n_groups: self.prog.n_groups,
                start,
                end,
            })
        })
    }
}

// dr-lint: hot(begin)
/// Add `pc` to `list`, following epsilon transitions. `pos` is the current
/// input offset (for Save/anchors), `len` the input length. The caller's
/// reference to `sid` is consumed: it ends up owned by a queued thread,
/// or released.
fn add_thread(
    prog: &Program,
    list: &mut ThreadList,
    pool: &mut SlotPool,
    pc: u32,
    pos: usize,
    len: usize,
    sid: u32,
) {
    if list.seen[pc as usize] == list.stamp {
        pool.release(sid);
        return;
    }
    list.seen[pc as usize] = list.stamp;
    match &prog.insts[pc as usize] {
        Inst::Jmp(t) => add_thread(prog, list, pool, *t, pos, len, sid),
        Inst::Split(a, b) => {
            pool.retain(sid);
            add_thread(prog, list, pool, *a, pos, len, sid);
            add_thread(prog, list, pool, *b, pos, len, sid);
        }
        Inst::Save(slot) => {
            let nid = pool.with_slot_set(sid, *slot as usize, pos);
            add_thread(prog, list, pool, pc + 1, pos, len, nid);
        }
        Inst::AssertStart => {
            if pos == 0 {
                add_thread(prog, list, pool, pc + 1, pos, len, sid);
            } else {
                pool.release(sid);
            }
        }
        Inst::AssertEnd => {
            if pos == len {
                add_thread(prog, list, pool, pc + 1, pos, len, sid);
            } else {
                pool.release(sid);
            }
        }
        _ => list.threads.push((pc, sid)),
    }
}

/// Captureless epsilon closure. Returns `true` if `Match` is reachable
/// from `pc` without consuming input — the caller can stop immediately.
fn add_thread_nocap(prog: &Program, list: &mut ThreadList, pc: u32, pos: usize, len: usize) -> bool {
    if list.seen[pc as usize] == list.stamp {
        return false;
    }
    list.seen[pc as usize] = list.stamp;
    match &prog.insts[pc as usize] {
        Inst::Jmp(t) => add_thread_nocap(prog, list, *t, pos, len),
        Inst::Split(a, b) => {
            add_thread_nocap(prog, list, *a, pos, len)
                || add_thread_nocap(prog, list, *b, pos, len)
        }
        Inst::Save(_) => add_thread_nocap(prog, list, pc + 1, pos, len),
        Inst::AssertStart => pos == 0 && add_thread_nocap(prog, list, pc + 1, pos, len),
        Inst::AssertEnd => pos == len && add_thread_nocap(prog, list, pc + 1, pos, len),
        Inst::Match => true,
        _ => {
            list.threads.push((pc, 0));
            false
        }
    }
}
// dr-lint: hot(end)

/// Baseline thread list: per-call allocation, boxed slots per thread.
struct BaselineThreadList {
    threads: Vec<(u32, Slots)>,
    seen: Vec<u32>,
    stamp: u32,
}

impl BaselineThreadList {
    fn new(n_insts: usize) -> Self {
        BaselineThreadList {
            threads: Vec::new(),
            seen: vec![0; n_insts],
            stamp: 0,
        }
    }

    fn begin_step(&mut self) {
        self.threads.clear();
        self.stamp += 1;
    }
}

/// Baseline epsilon closure: deep-clones `slots` at every `Split`.
fn add_thread_baseline(
    prog: &Program,
    list: &mut BaselineThreadList,
    pc: u32,
    pos: usize,
    len: usize,
    slots: Slots,
) {
    if list.seen[pc as usize] == list.stamp {
        return;
    }
    list.seen[pc as usize] = list.stamp;
    match &prog.insts[pc as usize] {
        Inst::Jmp(t) => add_thread_baseline(prog, list, *t, pos, len, slots),
        Inst::Split(a, b) => {
            add_thread_baseline(prog, list, *a, pos, len, slots.clone());
            add_thread_baseline(prog, list, *b, pos, len, slots);
        }
        Inst::Save(slot) => {
            let mut s = slots;
            s[*slot as usize] = Some(pos);
            add_thread_baseline(prog, list, pc + 1, pos, len, s);
        }
        Inst::AssertStart => {
            if pos == 0 {
                add_thread_baseline(prog, list, pc + 1, pos, len, slots);
            }
        }
        Inst::AssertEnd => {
            if pos == len {
                add_thread_baseline(prog, list, pc + 1, pos, len, slots);
            }
        }
        _ => list.threads.push((pc, slots)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> Option<(usize, usize)> {
        Regex::new(pat).unwrap().find(text).map(|m| m.span())
    }

    #[test]
    fn literals_and_any() {
        assert_eq!(m("abc", "xxabcxx"), Some((2, 5)));
        assert_eq!(m("a.c", "abc"), Some((0, 3)));
        assert_eq!(m("a.c", "a\nc"), None);
        assert_eq!(m("abc", "abd"), None);
    }

    #[test]
    fn anchors() {
        assert_eq!(m("^abc", "abcd"), Some((0, 3)));
        assert_eq!(m("^abc", "xabc"), None);
        assert_eq!(m("abc$", "xabc"), Some((1, 4)));
        assert_eq!(m("abc$", "abcx"), None);
        assert_eq!(m("^$", ""), Some((0, 0)));
    }

    #[test]
    fn quantifiers_are_greedy() {
        assert_eq!(m("a*", "aaab"), Some((0, 3)));
        assert_eq!(m("a+", "baaab"), Some((1, 4)));
        assert_eq!(m("a?b", "ab"), Some((0, 2)));
        assert_eq!(m("a?b", "b"), Some((0, 1)));
        assert_eq!(m("a+", "b"), None);
    }

    #[test]
    fn counted_repeats() {
        assert_eq!(m("a{3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("a{3}", "aa"), None);
        assert_eq!(m("a{2,}", "aaaa"), Some((0, 4)));
        assert_eq!(m("a{1,3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("\\d{4}-\\d{2}", "on 2024-05 we"), Some((3, 10)));
        // Malformed counted repeats are literal braces.
        assert_eq!(m("a{x}", "a{x}"), Some((0, 4)));
    }

    #[test]
    fn classes() {
        assert_eq!(m("[abc]+", "zzbcaz"), Some((2, 5)));
        assert_eq!(m("[a-f0-9]+", "xxdeadbeef99x"), Some((2, 12)));
        assert_eq!(m("[^0-9]+", "12ab34"), Some((2, 4)));
        assert_eq!(m("[]a]+", "]a]"), Some((0, 3)));
        assert_eq!(m("[a-]+", "a-a"), Some((0, 3)));
        assert_eq!(m("[\\d]+", "ab123"), Some((2, 5)));
    }

    #[test]
    fn escapes() {
        assert_eq!(m(r"\d+", "abc123def"), Some((3, 6)));
        assert_eq!(m(r"\w+", "  hi_there "), Some((2, 10)));
        assert_eq!(m(r"\s+", "ab  cd"), Some((2, 4)));
        assert_eq!(m(r"\D+", "12ab34"), Some((2, 4)));
        assert_eq!(m(r"a\.b", "a.b"), Some((0, 3)));
        assert_eq!(m(r"a\.b", "axb"), None);
        assert_eq!(m(r"\(x\)", "(x)"), Some((0, 3)));
    }

    #[test]
    fn alternation_prefers_leftmost() {
        assert_eq!(m("cat|dog", "hotdog"), Some((3, 6)));
        assert_eq!(m("ab|abc", "abc"), Some((0, 2))); // first branch wins
        assert_eq!(m("abc|ab", "abc"), Some((0, 3)));
        assert_eq!(m("(?:red|blue) fish", "one blue fish"), Some((4, 13)));
    }

    #[test]
    fn leftmost_beats_longer_later_match() {
        assert_eq!(m("a+", "baaa_aaaa"), Some((1, 4)));
    }

    #[test]
    fn capture_groups() {
        let re = Regex::new(r"(\d+)-(\d+)").unwrap();
        let mm = re.find("order 123-456 shipped").unwrap();
        assert_eq!(mm.span(), (6, 13));
        assert_eq!(mm.group("order 123-456 shipped", 1), Some("123"));
        assert_eq!(mm.group("order 123-456 shipped", 2), Some("456"));
        assert_eq!(mm.group_span(3), None);
        assert_eq!(re.group_count(), 2);
    }

    #[test]
    fn optional_group_not_participating() {
        let re = Regex::new(r"a(b)?c").unwrap();
        let mm = re.find("ac").unwrap();
        assert_eq!(mm.group_span(1), None);
        let mm = re.find("abc").unwrap();
        assert_eq!(mm.group("abc", 1), Some("b"));
    }

    #[test]
    fn nested_groups() {
        let re = Regex::new(r"((a+)(b+))c").unwrap();
        let text = "xaabbc";
        let mm = re.find(text).unwrap();
        assert_eq!(mm.group(text, 1), Some("aabb"));
        assert_eq!(mm.group(text, 2), Some("aa"));
        assert_eq!(mm.group(text, 3), Some("bb"));
    }

    #[test]
    fn greedy_group_captures_last_iteration() {
        let re = Regex::new(r"(a)+").unwrap();
        let mm = re.find("aaa").unwrap();
        assert_eq!(mm.span(), (0, 3));
        assert_eq!(mm.group("aaa", 1), Some("a"));
        assert_eq!(mm.group_span(1), Some((2, 3)));
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // (a+)+b against a^40 kills a backtracker; the Pike VM shrugs.
        let re = Regex::new("(a+)+b").unwrap();
        let text = "a".repeat(40);
        assert!(re.find(&text).is_none());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new(")").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new(r"\q").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("^*").is_err());
        let e = Regex::new("[z-a]").unwrap_err();
        assert!(e.message.contains("range"));
    }

    #[test]
    fn nvrm_line_pattern_works_end_to_end() {
        let re = Regex::new(
            r"NVRM: Xid \(PCI:([0-9a-f]+:[0-9a-f]+:[0-9a-f]+)\): (\d+), (.*)$",
        )
        .unwrap();
        let line = "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 79, \
                    pid=2731, GPU has fallen off the bus.";
        let mm = re.find(line).unwrap();
        assert_eq!(mm.group(line, 1), Some("0000:c1:00"));
        assert_eq!(mm.group(line, 2), Some("79"));
        assert_eq!(mm.group(line, 3), Some("pid=2731, GPU has fallen off the bus."));
    }

    #[test]
    fn lazy_quantifiers_prefer_short_matches() {
        assert_eq!(m("a*?", "aaa"), Some((0, 0)));
        assert_eq!(m("a+?", "aaa"), Some((0, 1)));
        assert_eq!(m("a??b", "ab"), Some((0, 2)));
        assert_eq!(m("<.*?>", "<a><bb>"), Some((0, 3)));
        assert_eq!(m("<.*>", "<a><bb>"), Some((0, 7)));
        assert_eq!(m("a{1,3}?", "aaa"), Some((0, 1)));
        // Lazy still has to satisfy what follows.
        assert_eq!(m("a+?b", "aaab"), Some((0, 4)));
    }

    #[test]
    fn find_iter_yields_all_matches() {
        let re = Regex::new(r"\d+").unwrap();
        let text = "a1b22c333";
        let spans: Vec<_> = re.find_iter(text).map(|m| m.span()).collect();
        assert_eq!(spans, vec![(1, 2), (3, 5), (6, 9)]);
        let texts: Vec<_> = re
            .find_iter(text)
            .map(|m| m.group(text, 0).unwrap().to_string())
            .collect();
        assert_eq!(texts, vec!["1", "22", "333"]);
    }

    #[test]
    fn find_iter_handles_empty_matches() {
        let re = Regex::new("x*").unwrap();
        let n = re.find_iter("ab").count();
        // Empty match at 0, 1, 2 — terminates, no infinite loop.
        assert_eq!(n, 3);
    }

    #[test]
    fn find_at_respects_caret_anchor() {
        let re = Regex::new("^ab").unwrap();
        assert!(re.find_bytes_at(b"abab", 0).is_some());
        // Starting the scan later must not re-anchor ^ to the offset.
        assert!(re.find_bytes_at(b"abab", 2).is_none());
        assert!(re.find_bytes_at_baseline(b"abab", 2).is_none());
    }

    #[test]
    fn scratch_is_reusable_across_finds_and_patterns() {
        let re1 = Regex::new(r"(\d+)-(\d+)").unwrap();
        let re2 = Regex::new(r"[a-z]+").unwrap();
        let mut scratch = MatchScratch::new();
        for _ in 0..3 {
            let mm = re1.find_with("order 123-456 shipped", &mut scratch).unwrap();
            assert_eq!(mm.span(), (6, 13));
            assert_eq!(mm.group("order 123-456 shipped", 1), Some("123"));
            let mm = re2.find_with("99 bottles", &mut scratch).unwrap();
            assert_eq!(mm.span(), (3, 10));
            assert!(re1.is_match_with("7-8", &mut scratch));
            assert!(!re1.is_match_with("no digits here", &mut scratch));
        }
    }

    #[test]
    fn analysis_finds_required_literal() {
        // Long leading literal, window [0, 0].
        let re = Regex::new(r"kernel: NVRM: Xid \(PCI:([0-9a-f]+)\): (\d+)").unwrap();
        let rl = re.prog.analysis.required.as_ref().unwrap();
        assert_eq!(rl.bytes, b"kernel: NVRM: Xid (PCI:".to_vec());
        assert_eq!((rl.min_off, rl.max_off), (0, Some(0)));
        assert!(!re.prog.analysis.anchored_start);

        // Variable-width prefix: window present but shifted.
        let re = Regex::new(r"\d{1,3} gpub(\d+)").unwrap();
        let rl = re.prog.analysis.required.as_ref().unwrap();
        assert_eq!(rl.bytes, b" gpub".to_vec());
        assert_eq!((rl.min_off, rl.max_off), (1, Some(3)));

        // Unbounded prefix: min offset only.
        let re = Regex::new(r"\d+ gpub(\d+)").unwrap();
        let rl = re.prog.analysis.required.as_ref().unwrap();
        assert_eq!(rl.bytes, b" gpub".to_vec());
        assert_eq!((rl.min_off, rl.max_off), (1, None));

        // Alternation contributes no required literal.
        let re = Regex::new(r"cat|dog").unwrap();
        assert!(re.prog.analysis.required.is_none());

        // Anchored-start detection.
        assert!(Regex::new(r"^gpub\d+").unwrap().prog.analysis.anchored_start);
        assert!(Regex::new(r"(?:^a)+x").unwrap().prog.analysis.anchored_start);
        assert!(!Regex::new(r"a^b").unwrap().prog.analysis.anchored_start);
        assert!(!Regex::new(r"(?:^a)*x").unwrap().prog.analysis.anchored_start);
    }

    #[test]
    fn prefilter_rejects_and_skips_correctly() {
        let re = Regex::new(r"NVRM: Xid \((\w+)\)").unwrap();
        // Literal absent: must reject without matching.
        assert!(re.find("a long line about nothing in particular").is_none());
        // Literal deep in the line: match found at the right offset.
        let line = "x".repeat(100) + "NVRM: Xid (foo) trailer";
        let mm = re.find(&line).unwrap();
        assert_eq!(mm.span().0, 100);
        // Several occurrences; first viable one wins (leftmost).
        let line = "NVRM: Xid (} NVRM: Xid (ok)";
        let mm = re.find(line).unwrap();
        assert_eq!(mm.group(line, 1), Some("ok"));
    }

    #[test]
    fn optimized_agrees_with_baseline_on_tricky_cases() {
        let cases: &[(&str, &str)] = &[
            ("a*", ""),
            ("a*", "aaa"),
            ("", "abc"),
            ("^", "abc"),
            ("$", "abc"),
            ("(a*)(a*)", "aaa"),
            ("(a|ab)(c|bcd)", "abcd"),
            ("x*y", "xxxz"),
            ("ab", "ab"),
            ("(b)?", "ab"),
            ("a{2,4}", "aaaaa"),
            ("gpub(\\d+)", "Jan  2 03:04:05 gpub042 kernel: hi"),
            ("^gpub", "gpubgpub"),
        ];
        let mut scratch = MatchScratch::new();
        for (pat, text) in cases {
            let re = Regex::new(pat).unwrap();
            for start in 0..=text.len() {
                let fast = re.find_bytes_at_with(text.as_bytes(), start, &mut scratch);
                let slow = re.find_bytes_at_baseline(text.as_bytes(), start);
                assert_eq!(
                    fast.as_ref().map(|m| m.span()),
                    slow.as_ref().map(|m| m.span()),
                    "span mismatch: {pat:?} on {text:?} at {start}"
                );
                assert_eq!(fast, slow, "capture mismatch: {pat:?} on {text:?} at {start}");
            }
            assert_eq!(
                re.is_match(text),
                re.find_bytes_at_baseline(text.as_bytes(), 0).is_some(),
                "is_match mismatch: {pat:?} on {text:?}"
            );
        }
    }

    /// Brute-force reference matcher for a restricted AST (no captures),
    /// used to cross-check the Pike VM on random inputs.
    mod reference {
        /// Does `pat` match some prefix of `text` starting at 0? Returns
        /// all possible end offsets (the backtracking closure).
        pub fn ends(pat: &[Tok], text: &[u8]) -> Vec<usize> {
            match pat.split_first() {
                None => vec![0],
                Some((tok, rest)) => {
                    let mut out = Vec::new();
                    match tok {
                        Tok::Byte(b) => {
                            if text.first() == Some(b) {
                                for e in ends(rest, &text[1..]) {
                                    out.push(e + 1);
                                }
                            }
                        }
                        Tok::Star(b) => {
                            let mut k = 0;
                            loop {
                                for e in ends(rest, &text[k..]) {
                                    out.push(e + k);
                                }
                                if text.get(k) == Some(b) {
                                    k += 1;
                                } else {
                                    break;
                                }
                            }
                        }
                    }
                    out.sort_unstable();
                    out.dedup();
                    out
                }
            }
        }

        #[derive(Clone, Copy, Debug)]
        pub enum Tok {
            Byte(u8),
            Star(u8),
        }

        /// Unanchored reference match.
        pub fn is_match(pat: &[Tok], text: &[u8]) -> bool {
            (0..=text.len()).any(|i| !ends(pat, &text[i..]).is_empty())
        }
    }

    proptest::proptest! {
        /// The Pike VM agrees with a brute-force backtracker on random
        /// patterns built from literals and starred literals over {a, b}.
        #[test]
        fn vm_agrees_with_reference(
            toks in proptest::collection::vec((0..2u8, proptest::bool::ANY), 1..8),
            text in proptest::collection::vec(0..2u8, 0..12),
        ) {
            use reference::Tok;
            let mut pattern = String::new();
            let mut ref_pat = Vec::new();
            for (byte, star) in &toks {
                let ch = (b'a' + byte) as char;
                pattern.push(ch);
                if *star {
                    pattern.push('*');
                    ref_pat.push(Tok::Star(b'a' + byte));
                } else {
                    ref_pat.push(Tok::Byte(b'a' + byte));
                }
            }
            let text: Vec<u8> = text.iter().map(|b| b'a' + b).collect();
            let text_str = String::from_utf8(text.clone()).unwrap();
            let re = Regex::new(&pattern).unwrap();
            proptest::prop_assert_eq!(
                re.is_match(&text_str),
                reference::is_match(&ref_pat, &text),
                "pattern {} on {:?}", pattern, text_str
            );
        }
    }

    #[test]
    fn empty_pattern_matches_empty_prefix() {
        assert_eq!(m("", "abc"), Some((0, 0)));
        assert_eq!(m("x*", "abc"), Some((0, 0)));
    }
}
