//! A self-contained regular-expression engine.
//!
//! Pipeline: pattern text → AST ([`parse`]) → NFA program ([`compile`]) →
//! Pike VM execution ([`Regex::find`]). The VM simulates all NFA threads in
//! lock-step with priority ordering, giving leftmost-greedy semantics in
//! guaranteed `O(pattern × input)` time — no backtracking blow-ups on
//! hostile log content.
//!
//! Matching operates on bytes; patterns and inputs are expected to be
//! ASCII (true of syslog).

use std::fmt;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Pattern compilation error with byte offset into the pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for RegexError {}

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, RegexError> {
    Err(RegexError {
        offset,
        message: message.into(),
    })
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// Character class: a set of inclusive byte ranges, possibly negated.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ClassSet {
    negated: bool,
    ranges: Vec<(u8, u8)>,
}

impl ClassSet {
    fn matches(&self, b: u8) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= b && b <= hi);
        inside != self.negated
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Ast {
    Empty,
    Literal(u8),
    Any,
    Class(ClassSet),
    Concat(Vec<Ast>),
    Alternate(Vec<Ast>),
    /// `Some(index)` for capturing groups (1-based), `None` for `(?:...)`.
    Group(Box<Ast>, Option<u16>),
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
        /// Lazy (non-greedy) repetition: prefer the shortest match.
        lazy: bool,
    },
    AnchorStart,
    AnchorEnd,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'p> {
    pat: &'p [u8],
    pos: usize,
    next_group: u16,
}

impl<'p> Parser<'p> {
    fn new(pat: &'p str) -> Self {
        Parser {
            pat: pat.as_bytes(),
            pos: 0,
            next_group: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse(mut self) -> Result<(Ast, u16), RegexError> {
        let ast = self.alternate()?;
        if self.pos != self.pat.len() {
            return err(self.pos, "unexpected ')'");
        }
        Ok((ast, self.next_group - 1))
    }

    fn alternate(&mut self) -> Result<Ast, RegexError> {
        let first = self.concat()?;
        if !self.eat(b'|') {
            return Ok(first);
        }
        let mut branches = vec![first];
        loop {
            branches.push(self.concat()?);
            if !self.eat(b'|') {
                break;
            }
        }
        Ok(Ast::Alternate(branches))
    }

    fn concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.pop() {
            None => Ast::Empty,
            Some(only) if items.is_empty() => only,
            Some(last) => {
                items.push(last);
                Ast::Concat(items)
            }
        })
    }

    fn repeat(&mut self) -> Result<Ast, RegexError> {
        let atom_start = self.pos;
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                (0, None)
            }
            Some(b'+') => {
                self.pos += 1;
                (1, None)
            }
            Some(b'?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some(b'{') => {
                // Only treat as a counted repeat if it looks like {m[,n]}.
                if let Some((min, max, consumed)) = self.try_counted_repeat() {
                    self.pos += consumed;
                    (min, max)
                } else {
                    return Ok(atom);
                }
            }
            _ => return Ok(atom),
        };
        // A trailing '?' makes the quantifier lazy (non-greedy).
        let lazy = self.eat(b'?');
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd) {
            return err(atom_start, "cannot repeat an anchor");
        }
        if let Some(mx) = max {
            if mx < min {
                return err(atom_start, "repeat max below min");
            }
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            lazy,
        })
    }

    /// Parse `{m}`, `{m,}`, or `{m,n}` starting at the current `{`.
    /// Returns `(min, max, bytes_consumed)` or `None` if it isn't a
    /// well-formed counted repeat (then `{` is a literal).
    fn try_counted_repeat(&self) -> Option<(u32, Option<u32>, usize)> {
        let rest = &self.pat[self.pos..];
        let close = rest.iter().position(|&b| b == b'}')?;
        let inner = &rest[1..close];
        let inner = std::str::from_utf8(inner).ok()?;
        let (min_s, max_s) = match inner.split_once(',') {
            None => (inner, None),
            Some((a, b)) => (a, Some(b)),
        };
        let min: u32 = min_s.parse().ok()?;
        let max = match max_s {
            None => Some(min),
            Some("") => None,
            Some(s) => Some(s.parse().ok()?),
        };
        // Guard against pathological expansion sizes.
        if min > 1_000 || max.is_some_and(|m| m > 1_000) {
            return None;
        }
        Some((min, max, close + 1))
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        let start = self.pos;
        match self.bump() {
            None => err(start, "expected atom"),
            Some(b'(') => {
                let cap = if self.peek() == Some(b'?') {
                    // Only (?: ... ) is supported.
                    self.pos += 1;
                    if !self.eat(b':') {
                        return err(self.pos, "unsupported group flag (only (?:) )");
                    }
                    None
                } else {
                    let idx = self.next_group;
                    if idx > 255 {
                        return err(start, "too many capture groups");
                    }
                    self.next_group += 1;
                    Some(idx)
                };
                let inner = self.alternate()?;
                if !self.eat(b')') {
                    return err(self.pos, "missing ')'");
                }
                Ok(Ast::Group(Box::new(inner), cap))
            }
            Some(b'[') => self.class(start),
            Some(b'.') => Ok(Ast::Any),
            Some(b'^') => Ok(Ast::AnchorStart),
            Some(b'$') => Ok(Ast::AnchorEnd),
            Some(b'\\') => self.escape(start),
            Some(b @ (b'*' | b'+' | b'?')) => {
                err(start, format!("dangling quantifier '{}'", b as char))
            }
            Some(b) => Ok(Ast::Literal(b)),
        }
    }

    fn escape(&mut self, start: usize) -> Result<Ast, RegexError> {
        match self.bump() {
            None => err(start, "trailing backslash"),
            Some(b'd') => Ok(Ast::Class(class_digit(false))),
            Some(b'D') => Ok(Ast::Class(class_digit(true))),
            Some(b'w') => Ok(Ast::Class(class_word(false))),
            Some(b'W') => Ok(Ast::Class(class_word(true))),
            Some(b's') => Ok(Ast::Class(class_space(false))),
            Some(b'S') => Ok(Ast::Class(class_space(true))),
            Some(b'n') => Ok(Ast::Literal(b'\n')),
            Some(b't') => Ok(Ast::Literal(b'\t')),
            Some(b'r') => Ok(Ast::Literal(b'\r')),
            Some(b) if b.is_ascii_alphanumeric() => {
                err(start, format!("unknown escape '\\{}'", b as char))
            }
            Some(b) => Ok(Ast::Literal(b)),
        }
    }

    fn class(&mut self, start: usize) -> Result<Ast, RegexError> {
        let negated = self.eat(b'^');
        let mut ranges: Vec<(u8, u8)> = Vec::new();
        // A ']' immediately after '[' (or '[^') is a literal.
        if self.eat(b']') {
            ranges.push((b']', b']'));
        }
        loop {
            let lo = match self.bump() {
                None => return err(start, "unterminated class"),
                Some(b']') => break,
                Some(b'\\') => match self.bump() {
                    None => return err(start, "trailing backslash in class"),
                    Some(b'd') => {
                        ranges.extend_from_slice(&class_digit(false).ranges);
                        continue;
                    }
                    Some(b'w') => {
                        ranges.extend_from_slice(&class_word(false).ranges);
                        continue;
                    }
                    Some(b's') => {
                        ranges.extend_from_slice(&class_space(false).ranges);
                        continue;
                    }
                    Some(b'n') => b'\n',
                    Some(b't') => b'\t',
                    Some(b) => b,
                },
                Some(b) => b,
            };
            // Range lo-hi, unless '-' is trailing (literal).
            if self.peek() == Some(b'-') && self.pat.get(self.pos + 1) != Some(&b']') {
                self.pos += 1; // consume '-'
                let hi = match self.bump() {
                    None => return err(start, "unterminated class range"),
                    Some(b'\\') => match self.bump() {
                        None => return err(start, "trailing backslash in class"),
                        Some(b'n') => b'\n',
                        Some(b't') => b'\t',
                        Some(b) => b,
                    },
                    Some(b) => b,
                };
                if hi < lo {
                    return err(start, "invalid class range (hi < lo)");
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return err(start, "empty character class");
        }
        Ok(Ast::Class(ClassSet { negated, ranges }))
    }
}

fn class_digit(negated: bool) -> ClassSet {
    ClassSet {
        negated,
        ranges: vec![(b'0', b'9')],
    }
}

fn class_word(negated: bool) -> ClassSet {
    ClassSet {
        negated,
        ranges: vec![(b'0', b'9'), (b'A', b'Z'), (b'a', b'z'), (b'_', b'_')],
    }
}

fn class_space(negated: bool) -> ClassSet {
    ClassSet {
        negated,
        ranges: vec![
            (b' ', b' '),
            (b'\t', b'\t'),
            (b'\n', b'\n'),
            (b'\r', b'\r'),
            (0x0b, 0x0c),
        ],
    }
}

// ---------------------------------------------------------------------------
// Compiler: AST -> NFA program
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Inst {
    /// Match one byte exactly.
    Byte(u8),
    /// Match any byte except newline.
    Any,
    /// Match a byte in the indexed class.
    Class(u32),
    /// Try `a` first (higher priority), then `b`.
    Split(u32, u32),
    Jmp(u32),
    /// Record the current input offset into capture slot `n`.
    Save(u16),
    AssertStart,
    AssertEnd,
    Match,
}

struct Program {
    insts: Vec<Inst>,
    classes: Vec<ClassSet>,
    n_groups: u16,
}

struct Compiler {
    insts: Vec<Inst>,
    classes: Vec<ClassSet>,
}

impl Compiler {
    fn push(&mut self, i: Inst) -> u32 {
        self.insts.push(i);
        (self.insts.len() - 1) as u32
    }

    fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    fn class_id(&mut self, c: ClassSet) -> u32 {
        if let Some(idx) = self.classes.iter().position(|x| *x == c) {
            idx as u32
        } else {
            self.classes.push(c);
            (self.classes.len() - 1) as u32
        }
    }

    fn compile(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(b) => {
                self.push(Inst::Byte(*b));
            }
            Ast::Any => {
                self.push(Inst::Any);
            }
            Ast::Class(c) => {
                let id = self.class_id(c.clone());
                self.push(Inst::Class(id));
            }
            Ast::AnchorStart => {
                self.push(Inst::AssertStart);
            }
            Ast::AnchorEnd => {
                self.push(Inst::AssertEnd);
            }
            Ast::Concat(items) => {
                for item in items {
                    self.compile(item);
                }
            }
            Ast::Group(inner, cap) => {
                if let Some(idx) = cap {
                    self.push(Inst::Save(idx * 2));
                    self.compile(inner);
                    self.push(Inst::Save(idx * 2 + 1));
                } else {
                    self.compile(inner);
                }
            }
            Ast::Alternate(branches) => {
                // Chain of splits; each branch jumps to the common end.
                let mut jmp_ends = Vec::new();
                for (i, branch) in branches.iter().enumerate() {
                    if i + 1 < branches.len() {
                        let split = self.push(Inst::Split(0, 0));
                        let body = self.here();
                        self.compile(branch);
                        jmp_ends.push(self.push(Inst::Jmp(0)));
                        let next = self.here();
                        self.insts[split as usize] = Inst::Split(body, next);
                    } else {
                        self.compile(branch);
                    }
                }
                let end = self.here();
                for j in jmp_ends {
                    self.insts[j as usize] = Inst::Jmp(end);
                }
            }
            Ast::Repeat { node, min, max, lazy } => self.compile_repeat(node, *min, *max, *lazy),
        }
    }

    fn compile_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, lazy: bool) {
        // Split priority encodes greediness: the preferred branch comes
        // first, so greedy prefers the body and lazy prefers the exit.
        let split = |body: u32, out: u32| {
            if lazy {
                Inst::Split(out, body)
            } else {
                Inst::Split(body, out)
            }
        };
        // Mandatory copies.
        for _ in 0..min {
            self.compile(node);
        }
        match max {
            None => {
                // Kleene tail: L1: Split(body, out); body; Jmp(L1); out:
                let l1 = self.push(Inst::Split(0, 0));
                let body = self.here();
                self.compile(node);
                self.push(Inst::Jmp(l1));
                let out = self.here();
                self.insts[l1 as usize] = split(body, out);
            }
            Some(mx) => {
                // (mx - min) optional copies, each skippable to the end.
                let mut splits = Vec::new();
                for _ in min..mx {
                    let s = self.push(Inst::Split(0, 0));
                    let body = self.here();
                    splits.push((s, body));
                    self.compile(node);
                }
                let out = self.here();
                for (s, body) in splits {
                    self.insts[s as usize] = split(body, out);
                }
            }
        }
    }
}

fn compile(ast: &Ast, n_groups: u16) -> Program {
    let mut c = Compiler {
        insts: Vec::new(),
        classes: Vec::new(),
    };
    c.push(Inst::Save(0));
    c.compile(ast);
    c.push(Inst::Save(1));
    c.push(Inst::Match);
    Program {
        insts: c.insts,
        classes: c.classes,
        n_groups,
    }
}

// ---------------------------------------------------------------------------
// Pike VM
// ---------------------------------------------------------------------------

type Slots = Box<[Option<usize>]>;

struct ThreadList {
    /// (pc, capture slots), in priority order.
    threads: Vec<(u32, Slots)>,
    /// Dense "already added at this step" marker, one per instruction.
    seen: Vec<u32>,
    stamp: u32,
}

impl ThreadList {
    fn new(n_insts: usize) -> Self {
        ThreadList {
            threads: Vec::new(),
            seen: vec![0; n_insts],
            stamp: 0,
        }
    }

    fn begin_step(&mut self) {
        self.threads.clear();
        self.stamp += 1;
    }
}

/// A successful match: the overall span plus capture-group spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Match {
    slots: Slots,
    n_groups: u16,
    /// Overall span, resolved at construction so `span()` cannot panic.
    start: usize,
    end: usize,
}

impl Match {
    /// Overall match span `(start, end)` as byte offsets.
    pub fn span(&self) -> (usize, usize) {
        (self.start, self.end)
    }

    /// Span of capture group `i` (1-based; 0 is the whole match), if it
    /// participated in the match.
    pub fn group_span(&self, i: usize) -> Option<(usize, usize)> {
        if i > self.n_groups as usize {
            return None;
        }
        match (self.slots.get(2 * i), self.slots.get(2 * i + 1)) {
            (Some(&Some(s)), Some(&Some(e))) => Some((s, e)),
            _ => None,
        }
    }

    /// Text of capture group `i` within `haystack`.
    pub fn group<'h>(&self, haystack: &'h str, i: usize) -> Option<&'h str> {
        self.group_span(i).map(|(s, e)| &haystack[s..e])
    }
}

/// Iterator returned by [`Regex::find_iter`].
pub struct FindIter<'r, 'h> {
    re: &'r Regex,
    haystack: &'h str,
    at: usize,
}

impl Iterator for FindIter<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.at > self.haystack.len() {
            return None;
        }
        let m = self.re.find_bytes_at(self.haystack.as_bytes(), self.at)?;
        let (start, end) = m.span();
        // Advance past the match; empty matches step one byte so the
        // iterator always terminates.
        self.at = if end > start { end } else { end + 1 };
        Some(m)
    }
}

/// A compiled regular expression.
pub struct Regex {
    prog: Program,
    pattern: String,
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Regex({:?})", self.pattern)
    }
}

impl Regex {
    /// Compile `pattern`.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let (ast, n_groups) = Parser::new(pattern).parse()?;
        Ok(Regex {
            prog: compile(&ast, n_groups),
            pattern: pattern.to_string(),
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups.
    pub fn group_count(&self) -> u16 {
        self.prog.n_groups
    }

    /// Leftmost match in `haystack`, if any.
    pub fn find(&self, haystack: &str) -> Option<Match> {
        self.find_bytes(haystack.as_bytes())
    }

    /// Whether `haystack` contains a match.
    pub fn is_match(&self, haystack: &str) -> bool {
        self.find(haystack).is_some()
    }

    /// Iterator over all non-overlapping matches, leftmost-first.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h str) -> FindIter<'r, 'h> {
        FindIter {
            re: self,
            haystack,
            at: 0,
        }
    }

    /// Leftmost match over raw bytes.
    pub fn find_bytes(&self, input: &[u8]) -> Option<Match> {
        self.find_bytes_at(input, 0)
    }

    /// Leftmost match over raw bytes, starting the scan at `start`.
    /// `^` still anchors to the true beginning of `input`.
    pub fn find_bytes_at(&self, input: &[u8], start: usize) -> Option<Match> {
        let n_slots = 2 * (self.prog.n_groups as usize + 1);
        let mut clist = ThreadList::new(self.prog.insts.len());
        let mut nlist = ThreadList::new(self.prog.insts.len());
        let mut matched: Option<Slots> = None;

        clist.begin_step();
        for pos in start..=input.len() {
            // Seed a fresh start thread (lowest priority) unless a match
            // was already found — leftmost semantics.
            if matched.is_none() {
                let slots = vec![None; n_slots].into_boxed_slice();
                add_thread(&self.prog, &mut clist, 0, pos, input.len(), slots);
            }
            if clist.threads.is_empty() && matched.is_some() {
                break;
            }

            nlist.begin_step();
            let byte = input.get(pos).copied();
            // Iterate by index: list is already eps-closed.
            let mut i = 0;
            while i < clist.threads.len() {
                let (pc, ref slots) = clist.threads[i];
                match &self.prog.insts[pc as usize] {
                    Inst::Byte(b) => {
                        if byte == Some(*b) {
                            let s = slots.clone();
                            add_thread(&self.prog, &mut nlist, pc + 1, pos + 1, input.len(), s);
                        }
                    }
                    Inst::Any => {
                        if byte.is_some_and(|b| b != b'\n') {
                            let s = slots.clone();
                            add_thread(&self.prog, &mut nlist, pc + 1, pos + 1, input.len(), s);
                        }
                    }
                    Inst::Class(id) => {
                        if byte.is_some_and(|b| self.prog.classes[*id as usize].matches(b)) {
                            let s = slots.clone();
                            add_thread(&self.prog, &mut nlist, pc + 1, pos + 1, input.len(), s);
                        }
                    }
                    Inst::Match => {
                        // Highest-priority match at this step: record and
                        // cut lower-priority threads.
                        matched = Some(slots.clone());
                        break;
                    }
                    // Eps transitions were resolved by add_thread.
                    Inst::Split(..) | Inst::Jmp(..) | Inst::Save(..) | Inst::AssertStart
                    | Inst::AssertEnd => unreachable!("eps inst in stepped list"),
                }
                i += 1;
            }
            std::mem::swap(&mut clist, &mut nlist);
            if clist.threads.is_empty() && matched.is_some() {
                break;
            }
        }

        matched.and_then(|slots| {
            let (start, end) = match (slots[0], slots[1]) {
                (Some(s), Some(e)) => (s, e),
                // A match thread always saved slot 0/1; treat anything
                // else as no match rather than panicking.
                _ => return None,
            };
            Some(Match {
                slots,
                n_groups: self.prog.n_groups,
                start,
                end,
            })
        })
    }
}

/// Add `pc` to `list`, following epsilon transitions. `pos` is the current
/// input offset (for Save/anchors), `len` the input length.
fn add_thread(prog: &Program, list: &mut ThreadList, pc: u32, pos: usize, len: usize, slots: Slots) {
    if list.seen[pc as usize] == list.stamp {
        return;
    }
    list.seen[pc as usize] = list.stamp;
    match &prog.insts[pc as usize] {
        Inst::Jmp(t) => add_thread(prog, list, *t, pos, len, slots),
        Inst::Split(a, b) => {
            add_thread(prog, list, *a, pos, len, slots.clone());
            add_thread(prog, list, *b, pos, len, slots);
        }
        Inst::Save(slot) => {
            let mut s = slots;
            s[*slot as usize] = Some(pos);
            add_thread(prog, list, pc + 1, pos, len, s);
        }
        Inst::AssertStart => {
            if pos == 0 {
                add_thread(prog, list, pc + 1, pos, len, slots);
            }
        }
        Inst::AssertEnd => {
            if pos == len {
                add_thread(prog, list, pc + 1, pos, len, slots);
            }
        }
        _ => list.threads.push((pc, slots)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> Option<(usize, usize)> {
        Regex::new(pat).unwrap().find(text).map(|m| m.span())
    }

    #[test]
    fn literals_and_any() {
        assert_eq!(m("abc", "xxabcxx"), Some((2, 5)));
        assert_eq!(m("a.c", "abc"), Some((0, 3)));
        assert_eq!(m("a.c", "a\nc"), None);
        assert_eq!(m("abc", "abd"), None);
    }

    #[test]
    fn anchors() {
        assert_eq!(m("^abc", "abcd"), Some((0, 3)));
        assert_eq!(m("^abc", "xabc"), None);
        assert_eq!(m("abc$", "xabc"), Some((1, 4)));
        assert_eq!(m("abc$", "abcx"), None);
        assert_eq!(m("^$", ""), Some((0, 0)));
    }

    #[test]
    fn quantifiers_are_greedy() {
        assert_eq!(m("a*", "aaab"), Some((0, 3)));
        assert_eq!(m("a+", "baaab"), Some((1, 4)));
        assert_eq!(m("a?b", "ab"), Some((0, 2)));
        assert_eq!(m("a?b", "b"), Some((0, 1)));
        assert_eq!(m("a+", "b"), None);
    }

    #[test]
    fn counted_repeats() {
        assert_eq!(m("a{3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("a{3}", "aa"), None);
        assert_eq!(m("a{2,}", "aaaa"), Some((0, 4)));
        assert_eq!(m("a{1,3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("\\d{4}-\\d{2}", "on 2024-05 we"), Some((3, 10)));
        // Malformed counted repeats are literal braces.
        assert_eq!(m("a{x}", "a{x}"), Some((0, 4)));
    }

    #[test]
    fn classes() {
        assert_eq!(m("[abc]+", "zzbcaz"), Some((2, 5)));
        assert_eq!(m("[a-f0-9]+", "xxdeadbeef99x"), Some((2, 12)));
        assert_eq!(m("[^0-9]+", "12ab34"), Some((2, 4)));
        assert_eq!(m("[]a]+", "]a]"), Some((0, 3)));
        assert_eq!(m("[a-]+", "a-a"), Some((0, 3)));
        assert_eq!(m("[\\d]+", "ab123"), Some((2, 5)));
    }

    #[test]
    fn escapes() {
        assert_eq!(m(r"\d+", "abc123def"), Some((3, 6)));
        assert_eq!(m(r"\w+", "  hi_there "), Some((2, 10)));
        assert_eq!(m(r"\s+", "ab  cd"), Some((2, 4)));
        assert_eq!(m(r"\D+", "12ab34"), Some((2, 4)));
        assert_eq!(m(r"a\.b", "a.b"), Some((0, 3)));
        assert_eq!(m(r"a\.b", "axb"), None);
        assert_eq!(m(r"\(x\)", "(x)"), Some((0, 3)));
    }

    #[test]
    fn alternation_prefers_leftmost() {
        assert_eq!(m("cat|dog", "hotdog"), Some((3, 6)));
        assert_eq!(m("ab|abc", "abc"), Some((0, 2))); // first branch wins
        assert_eq!(m("abc|ab", "abc"), Some((0, 3)));
        assert_eq!(m("(?:red|blue) fish", "one blue fish"), Some((4, 13)));
    }

    #[test]
    fn leftmost_beats_longer_later_match() {
        assert_eq!(m("a+", "baaa_aaaa"), Some((1, 4)));
    }

    #[test]
    fn capture_groups() {
        let re = Regex::new(r"(\d+)-(\d+)").unwrap();
        let mm = re.find("order 123-456 shipped").unwrap();
        assert_eq!(mm.span(), (6, 13));
        assert_eq!(mm.group("order 123-456 shipped", 1), Some("123"));
        assert_eq!(mm.group("order 123-456 shipped", 2), Some("456"));
        assert_eq!(mm.group_span(3), None);
        assert_eq!(re.group_count(), 2);
    }

    #[test]
    fn optional_group_not_participating() {
        let re = Regex::new(r"a(b)?c").unwrap();
        let mm = re.find("ac").unwrap();
        assert_eq!(mm.group_span(1), None);
        let mm = re.find("abc").unwrap();
        assert_eq!(mm.group("abc", 1), Some("b"));
    }

    #[test]
    fn nested_groups() {
        let re = Regex::new(r"((a+)(b+))c").unwrap();
        let text = "xaabbc";
        let mm = re.find(text).unwrap();
        assert_eq!(mm.group(text, 1), Some("aabb"));
        assert_eq!(mm.group(text, 2), Some("aa"));
        assert_eq!(mm.group(text, 3), Some("bb"));
    }

    #[test]
    fn greedy_group_captures_last_iteration() {
        let re = Regex::new(r"(a)+").unwrap();
        let mm = re.find("aaa").unwrap();
        assert_eq!(mm.span(), (0, 3));
        assert_eq!(mm.group("aaa", 1), Some("a"));
        assert_eq!(mm.group_span(1), Some((2, 3)));
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // (a+)+b against a^40 kills a backtracker; the Pike VM shrugs.
        let re = Regex::new("(a+)+b").unwrap();
        let text = "a".repeat(40);
        assert!(re.find(&text).is_none());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new(")").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new(r"\q").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("^*").is_err());
        let e = Regex::new("[z-a]").unwrap_err();
        assert!(e.message.contains("range"));
    }

    #[test]
    fn nvrm_line_pattern_works_end_to_end() {
        let re = Regex::new(
            r"NVRM: Xid \(PCI:([0-9a-f]+:[0-9a-f]+:[0-9a-f]+)\): (\d+), (.*)$",
        )
        .unwrap();
        let line = "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 79, \
                    pid=2731, GPU has fallen off the bus.";
        let mm = re.find(line).unwrap();
        assert_eq!(mm.group(line, 1), Some("0000:c1:00"));
        assert_eq!(mm.group(line, 2), Some("79"));
        assert_eq!(mm.group(line, 3), Some("pid=2731, GPU has fallen off the bus."));
    }

    #[test]
    fn lazy_quantifiers_prefer_short_matches() {
        assert_eq!(m("a*?", "aaa"), Some((0, 0)));
        assert_eq!(m("a+?", "aaa"), Some((0, 1)));
        assert_eq!(m("a??b", "ab"), Some((0, 2)));
        assert_eq!(m("<.*?>", "<a><bb>"), Some((0, 3)));
        assert_eq!(m("<.*>", "<a><bb>"), Some((0, 7)));
        assert_eq!(m("a{1,3}?", "aaa"), Some((0, 1)));
        // Lazy still has to satisfy what follows.
        assert_eq!(m("a+?b", "aaab"), Some((0, 4)));
    }

    #[test]
    fn find_iter_yields_all_matches() {
        let re = Regex::new(r"\d+").unwrap();
        let text = "a1b22c333";
        let spans: Vec<_> = re.find_iter(text).map(|m| m.span()).collect();
        assert_eq!(spans, vec![(1, 2), (3, 5), (6, 9)]);
        let texts: Vec<_> = re
            .find_iter(text)
            .map(|m| m.group(text, 0).unwrap().to_string())
            .collect();
        assert_eq!(texts, vec!["1", "22", "333"]);
    }

    #[test]
    fn find_iter_handles_empty_matches() {
        let re = Regex::new("x*").unwrap();
        let n = re.find_iter("ab").count();
        // Empty match at 0, 1, 2 — terminates, no infinite loop.
        assert_eq!(n, 3);
    }

    #[test]
    fn find_at_respects_caret_anchor() {
        let re = Regex::new("^ab").unwrap();
        assert!(re.find_bytes_at(b"abab", 0).is_some());
        // Starting the scan later must not re-anchor ^ to the offset.
        assert!(re.find_bytes_at(b"abab", 2).is_none());
    }

    /// Brute-force reference matcher for a restricted AST (no captures),
    /// used to cross-check the Pike VM on random inputs.
    mod reference {
        /// Does `pat` match some prefix of `text` starting at 0? Returns
        /// all possible end offsets (the backtracking closure).
        pub fn ends(pat: &[Tok], text: &[u8]) -> Vec<usize> {
            match pat.split_first() {
                None => vec![0],
                Some((tok, rest)) => {
                    let mut out = Vec::new();
                    match tok {
                        Tok::Byte(b) => {
                            if text.first() == Some(b) {
                                for e in ends(rest, &text[1..]) {
                                    out.push(e + 1);
                                }
                            }
                        }
                        Tok::Star(b) => {
                            let mut k = 0;
                            loop {
                                for e in ends(rest, &text[k..]) {
                                    out.push(e + k);
                                }
                                if text.get(k) == Some(b) {
                                    k += 1;
                                } else {
                                    break;
                                }
                            }
                        }
                    }
                    out.sort_unstable();
                    out.dedup();
                    out
                }
            }
        }

        #[derive(Clone, Copy, Debug)]
        pub enum Tok {
            Byte(u8),
            Star(u8),
        }

        /// Unanchored reference match.
        pub fn is_match(pat: &[Tok], text: &[u8]) -> bool {
            (0..=text.len()).any(|i| !ends(pat, &text[i..]).is_empty())
        }
    }

    proptest::proptest! {
        /// The Pike VM agrees with a brute-force backtracker on random
        /// patterns built from literals and starred literals over {a, b}.
        #[test]
        fn vm_agrees_with_reference(
            toks in proptest::collection::vec((0..2u8, proptest::bool::ANY), 1..8),
            text in proptest::collection::vec(0..2u8, 0..12),
        ) {
            use reference::Tok;
            let mut pattern = String::new();
            let mut ref_pat = Vec::new();
            for (byte, star) in &toks {
                let ch = (b'a' + byte) as char;
                pattern.push(ch);
                if *star {
                    pattern.push('*');
                    ref_pat.push(Tok::Star(b'a' + byte));
                } else {
                    ref_pat.push(Tok::Byte(b'a' + byte));
                }
            }
            let text: Vec<u8> = text.iter().map(|b| b'a' + b).collect();
            let text_str = String::from_utf8(text.clone()).unwrap();
            let re = Regex::new(&pattern).unwrap();
            proptest::prop_assert_eq!(
                re.is_match(&text_str),
                reference::is_match(&ref_pat, &text),
                "pattern {} on {:?}", pattern, text_str
            );
        }
    }

    #[test]
    fn empty_pattern_matches_empty_prefix() {
        assert_eq!(m("", "abc"), Some((0, 0)));
        assert_eq!(m("x*", "abc"), Some((0, 0)));
    }
}
