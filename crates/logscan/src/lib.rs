//! # dr-logscan — log extraction substrate
//!
//! Stage I of the paper's pipeline (Figure 4) extracts GPU error events
//! from 202 GB of raw syslog text using regular-expression patterns built
//! from NVIDIA's XID message catalog. This crate reproduces that stage
//! from scratch:
//!
//! - [`regex`]: a self-contained regular-expression engine — recursive-
//!   descent parser → Thompson NFA → Pike VM with capture groups. Supports
//!   the constructs the XID patterns need: literals, `.`, classes with
//!   ranges and negation, escapes (`\d \w \s \D \W \S`), anchors `^ $`,
//!   alternation, capturing and non-capturing groups, and greedy
//!   quantifiers `* + ? {m} {m,} {m,n}`. Guaranteed linear-time matching
//!   (no backtracking), which matters when scanning hundreds of gigabytes.
//! - [`syslog`]: the classic syslog line model (`Mon dd hh:mm:ss host ...`)
//!   including **monotonic year inference** — syslog timestamps carry no
//!   year, so the scanner tracks month rollovers across a multi-year
//!   campaign, exactly the hazard a real field study must handle.
//! - [`extract`]: the XID pattern set and the extractor that turns raw
//!   text lines back into structured [`dr_xid::ErrorRecord`]s.

pub mod extract;
pub mod regex;
pub mod syslog;

pub use extract::{BaselineExtractor, ExtractStats, XidExtractor};
pub use regex::{FindIter, Match, MatchScratch, Regex, RegexError};
pub use syslog::{parse_header, RawHeader, SyslogLine, SyslogScanner};
