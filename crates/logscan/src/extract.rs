//! Stage I extraction: raw syslog text → structured [`ErrorRecord`]s.
//!
//! The extractor mirrors the paper's methodology: a RegEx pattern set built
//! from NVIDIA's XID message catalog is applied to every log line; NVRM
//! XID lines yield structured records (timestamp, GPU = node + PCI address,
//! XID code, message detail), everything else is counted and skipped.

use crate::regex::Regex;
use crate::syslog::SyslogScanner;
use dr_xid::{ErrorDetail, ErrorRecord, GpuId, PciAddr, Xid};

/// Counters describing one extraction pass (useful for sanity-checking a
/// campaign: how much of the log was noise, how much was malformed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Total lines offered to the extractor.
    pub lines: u64,
    /// Lines with a well-formed syslog header from a GPU node.
    pub syslog_lines: u64,
    /// Lines containing an NVRM XID report.
    pub xid_lines: u64,
    /// XID lines with a code outside the studied set.
    pub unknown_xid: u64,
    /// XID lines whose message body failed detail extraction.
    pub malformed: u64,
}

/// Per-XID message-body pattern used to pull out the detail fields.
struct BodyPattern {
    xid: Xid,
    re: Regex,
    /// Which capture group maps to `unit` / `qualifier` and their radix.
    unit: Option<(usize, u32)>,
    qualifier: Option<(usize, u32)>,
}

/// The Stage I extractor: compiled pattern set plus syslog scanner state.
pub struct XidExtractor {
    scanner: SyslogScanner,
    nvrm: Regex,
    bodies: Vec<BodyPattern>,
    stats: ExtractStats,
}

impl Default for XidExtractor {
    fn default() -> Self {
        Self::new()
    }
}

impl XidExtractor {
    /// Compile the full pattern set.
    pub fn new() -> Self {
        let nvrm = Regex::new(
            r"kernel: NVRM: Xid \(PCI:([0-9a-f]{4}:[0-9a-f]{2}:[0-9a-f]{2})\): (\d+), (?:pid=('?<?\w+>?'?), )?(.*)$",
        )
        // dr-lint: allow(panic-freedom): constant pattern, compile covered by tests
        .expect("NVRM pattern compiles");

        let mk = |xid, pat: &str, unit, qualifier| BodyPattern {
            xid,
            // dr-lint: allow(panic-freedom): constant patterns, round-trip tested below
            re: Regex::new(pat).expect("body pattern compiles"),
            unit,
            qualifier,
        };
        // (group index, radix) per field; None = field absent for this XID.
        let bodies = vec![
            mk(
                Xid::MmuError,
                r"GPCCLIENT_T1_(\d+) faulted @ 0x7f_([0-9a-f]+)",
                Some((1, 10)),
                Some((2, 16)),
            ),
            mk(
                Xid::DoubleBitEcc,
                r"\(DBE\) has been detected on bank (\d+) row 0x([0-9a-f]+)",
                Some((1, 10)),
                Some((2, 16)),
            ),
            mk(
                Xid::RowRemapEvent,
                r"Row Remapper: remapping row 0x([0-9a-f]+) in bank (\d+)",
                Some((2, 10)),
                Some((1, 16)),
            ),
            mk(
                Xid::RowRemapFailure,
                r"Row Remapper: Failed to remap row 0x([0-9a-f]+) in bank (\d+)",
                Some((2, 10)),
                Some((1, 16)),
            ),
            mk(
                Xid::NvlinkError,
                r"NVLink: fatal error detected on link (\d+) \(0x([0-9a-f]+),",
                Some((1, 10)),
                Some((2, 16)),
            ),
            mk(Xid::FallenOffBus, r"GPU has fallen off the bus", None, None),
            mk(
                Xid::ContainedEcc,
                r"Contained: SM \(0x([0-9a-f]+)\)",
                Some((1, 16)),
                None,
            ),
            mk(
                Xid::UncontainedEcc,
                r"Uncontained: LTC TAG \(0x([0-9a-f]+),0x([0-9a-f]+)\)",
                Some((1, 16)),
                Some((2, 16)),
            ),
            mk(
                Xid::GspRpcTimeout,
                r"RPC response from GPU(\d+) GSP! Expected function (\d+)",
                Some((1, 10)),
                Some((2, 10)),
            ),
            mk(
                Xid::GspError,
                r"GSP task (\d+) raised fatal error 0x([0-9a-f]+)",
                Some((1, 10)),
                Some((2, 16)),
            ),
            mk(
                Xid::PmuSpiError,
                r"SPI RPC read failure \(addr 0x([0-9a-f]+)\)",
                None,
                Some((1, 16)),
            ),
            mk(
                Xid::GraphicsEngineException,
                r"Graphics Exception: ESR 0x([0-9a-f]+)",
                None,
                Some((1, 16)),
            ),
            mk(
                Xid::ResetChannelVerifError,
                r"Reset Channel Verification Error on channel (\d+)",
                Some((1, 10)),
                None,
            ),
            mk(
                Xid::Xid136,
                r"Event 136 reported on engine (\d+)",
                Some((1, 10)),
                None,
            ),
        ];

        XidExtractor {
            scanner: SyslogScanner::new(),
            nvrm,
            bodies,
            stats: ExtractStats::default(),
        }
    }

    /// Extraction counters so far.
    pub fn stats(&self) -> ExtractStats {
        self.stats
    }

    /// Scan one line; return a structured record if it is a studied XID
    /// report. Lines must be offered in log order (year inference).
    pub fn extract_line(&mut self, line: &str) -> Option<ErrorRecord> {
        self.stats.lines += 1;
        // Literal prefilter: the overwhelming majority of syslog is noise,
        // and a substring scan is an order of magnitude cheaper than the
        // header regex. (The real study greps 202 GB; so do we.)
        if !line.contains("NVRM: Xid") {
            if looks_like_syslog(line) {
                self.stats.syslog_lines += 1;
            }
            return None;
        }
        let parsed = self.scanner.parse(line)?;
        self.stats.syslog_lines += 1;

        let m = self.nvrm.find(parsed.body)?;
        self.stats.xid_lines += 1;

        let pci: PciAddr = m.group(parsed.body, 1)?.parse().ok()?;
        let code: u16 = m.group(parsed.body, 2)?.parse().ok()?;
        let Some(xid) = Xid::from_code(code) else {
            self.stats.unknown_xid += 1;
            return None;
        };
        let body = m.group(parsed.body, 4)?;

        let Some(detail) = self.extract_detail(xid, body) else {
            self.stats.malformed += 1;
            return None;
        };

        Some(ErrorRecord::new(
            parsed.at,
            GpuId::new(parsed.host, pci),
            xid,
            detail,
        ))
    }

    /// Scan many lines, collecting all structured records.
    pub fn extract_all<'a, I>(&mut self, lines: I) -> Vec<ErrorRecord>
    where
        I: IntoIterator<Item = &'a str>,
    {
        lines
            .into_iter()
            .filter_map(|l| self.extract_line(l))
            .collect()
    }

    fn extract_detail(&self, xid: Xid, body: &str) -> Option<ErrorDetail> {
        let bp = self.bodies.iter().find(|b| b.xid == xid)?;
        let m = bp.re.find(body)?;
        let get = |spec: Option<(usize, u32)>| -> Option<u64> {
            match spec {
                None => Some(0),
                Some((group, radix)) => {
                    let text = m.group(body, group)?;
                    u64::from_str_radix(text, radix).ok()
                }
            }
        };
        Some(ErrorDetail::new(
            get(bp.unit)? as u16,
            get(bp.qualifier)? as u32,
        ))
    }
}

/// Cheap structural check used only for the `syslog_lines` statistic on
/// prefiltered-out lines: a month abbreviation followed by a space.
fn looks_like_syslog(line: &str) -> bool {
    line.len() > 4
        && line.is_char_boundary(3)
        && dr_xid::time::month_from_abbrev(&line[..3]).is_some()
        && line.as_bytes()[3] == b' '
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::syslog::{format_line, format_noise_line};
    use dr_xid::time::Duration;
    use dr_xid::{NodeId, Timestamp};

    fn sample_record(xid: Xid, unit: u16, qualifier: u32) -> ErrorRecord {
        ErrorRecord::new(
            Timestamp::EPOCH + Duration::from_hours(30),
            GpuId::at_slot(NodeId(17), 2),
            xid,
            ErrorDetail::new(unit, qualifier),
        )
    }

    /// Which detail fields each XID's message body actually encodes:
    /// fields the driver does not print cannot survive a text round trip.
    fn encoded_fields(xid: Xid) -> (bool, bool) {
        match xid {
            Xid::FallenOffBus => (false, false),
            Xid::ContainedEcc | Xid::ResetChannelVerifError | Xid::Xid136 => (true, false),
            Xid::PmuSpiError | Xid::GraphicsEngineException => (false, true),
            _ => (true, true),
        }
    }

    #[test]
    fn round_trips_every_studied_xid() {
        // Render a synthetic line for each XID, then re-extract it and
        // verify the structured record survives the text round trip.
        let mut ex = XidExtractor::new();
        for (i, &xid) in Xid::ALL.iter().enumerate() {
            let (has_unit, has_qual) = encoded_fields(xid);
            let rec = sample_record(
                xid,
                if has_unit { (i + 1) as u16 } else { 0 },
                if has_qual { (i * 7 + 3) as u32 } else { 0 },
            );
            let line = format_line(&rec, 1000 + i as u32);
            let got = ex
                .extract_line(&line)
                .unwrap_or_else(|| panic!("extraction failed for {xid}: {line}"));
            assert_eq!(got.xid, rec.xid, "{line}");
            assert_eq!(got.gpu, rec.gpu);
            assert_eq!(got.at, rec.at);
            assert_eq!(got.detail, rec.detail, "{line}");
        }
        assert_eq!(ex.stats().xid_lines, Xid::ALL.len() as u64);
        assert_eq!(ex.stats().malformed, 0);
        assert_eq!(ex.stats().unknown_xid, 0);
    }

    #[test]
    fn fields_without_detail_are_zero() {
        // FallenOffBus carries no unit/qualifier in its message.
        let mut ex = XidExtractor::new();
        let rec = sample_record(Xid::FallenOffBus, 9, 9);
        let line = format_line(&rec, 1);
        let got = ex.extract_line(&line).unwrap();
        assert_eq!(got.detail, ErrorDetail::NONE);
    }

    #[test]
    fn noise_lines_are_skipped_but_counted() {
        let mut ex = XidExtractor::new();
        for k in 0..5 {
            let line = format_noise_line(Timestamp::EPOCH, NodeId(3), k);
            assert!(ex.extract_line(&line).is_none());
        }
        assert!(ex.extract_line("complete garbage").is_none());
        let s = ex.stats();
        assert_eq!(s.lines, 6);
        assert_eq!(s.syslog_lines, 5);
        assert_eq!(s.xid_lines, 0);
    }

    #[test]
    fn unknown_xid_codes_are_counted() {
        let mut ex = XidExtractor::new();
        let line = "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 999, \
                    pid=5, something new";
        assert!(ex.extract_line(line).is_none());
        assert_eq!(ex.stats().unknown_xid, 1);
    }

    #[test]
    fn corrupted_body_is_malformed() {
        let mut ex = XidExtractor::new();
        let line = "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 74, \
                    pid=5, NVLink: truncated mess";
        assert!(ex.extract_line(line).is_none());
        assert_eq!(ex.stats().malformed, 1);
    }

    #[test]
    fn extract_all_filters_mixed_stream() {
        let mut ex = XidExtractor::new();
        let r1 = sample_record(Xid::GspRpcTimeout, 0, 76);
        let mut r2 = sample_record(Xid::NvlinkError, 3, 1);
        r2.at = r1.at + Duration::from_secs(5);
        let lines = vec![
            format_noise_line(Timestamp::EPOCH, NodeId(17), 0),
            format_line(&r1, 0),
            format_noise_line(Timestamp::EPOCH + Duration::from_hours(31), NodeId(17), 1),
            format_line(&r2, 42),
        ];
        let recs = ex.extract_all(lines.iter().map(|s| s.as_str()));
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].xid, Xid::GspRpcTimeout);
        assert_eq!(recs[1].xid, Xid::NvlinkError);
        assert_eq!(recs[1].detail.unit, 3);
    }

    #[test]
    fn year_inference_flows_through_extraction() {
        let mut ex = XidExtractor::new();
        let dec = "Dec 31 23:59:59 gpub001 kernel: NVRM: Xid (PCI:0000:07:00): 79, \
                   pid=1, GPU has fallen off the bus.";
        let jan = "Jan  1 00:00:30 gpub001 kernel: NVRM: Xid (PCI:0000:07:00): 79, \
                   pid=1, GPU has fallen off the bus.";
        let a = ex.extract_line(dec).unwrap();
        let b = ex.extract_line(jan).unwrap();
        assert!(b.at > a.at, "year must roll over");
        assert_eq!((b.at - a.at).as_secs_f64(), 31.0);
    }
}
