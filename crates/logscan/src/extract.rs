//! Stage I extraction: raw syslog text → structured [`ErrorRecord`]s.
//!
//! The extractor mirrors the paper's methodology: a RegEx pattern set built
//! from NVIDIA's XID message catalog is applied to every log line; NVRM
//! XID lines yield structured records (timestamp, GPU = node + PCI address,
//! XID code, message detail), everything else is counted and skipped.
//!
//! Two implementations share one pattern table: [`XidExtractor`] is the
//! production fast path (byte-level header decode, scratch-reusing
//! prefiltered regex execution, O(1) body-pattern dispatch by XID code);
//! [`BaselineExtractor`] is the original Stage I code path (regex header,
//! per-call Pike VM, linear dispatch), kept as the differential-testing
//! oracle and as the "pre" engine of the throughput benchmark.

use crate::regex::{MatchScratch, Regex};
use crate::syslog::{parse_header, SyslogLine, SyslogScanner};
use dr_xid::{ErrorDetail, ErrorRecord, GpuId, PciAddr, Xid};

/// Counters describing one extraction pass (useful for sanity-checking a
/// campaign: how much of the log was noise, how much was malformed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Total lines offered to the extractor.
    pub lines: u64,
    /// Lines with a structurally well-formed `gpub` syslog header
    /// ([`parse_header`] succeeds). The definition is uniform across all
    /// lines, whether or not they mention an XID: a month-prefixed line
    /// from a non-GPU host does **not** count, and a `gpub` header with
    /// an impossible date (e.g. Feb 30) does.
    pub syslog_lines: u64,
    /// Lines that pass the literal `NVRM: Xid` needle prefilter and are
    /// handed to the structured parser. `prefilter_hits - xid_lines` is
    /// the near-miss count: lines mentioning the needle whose header or
    /// report body then failed to parse.
    pub prefilter_hits: u64,
    /// Lines containing an NVRM XID report.
    pub xid_lines: u64,
    /// XID lines with a code outside the studied set.
    pub unknown_xid: u64,
    /// XID lines whose message body failed detail extraction.
    pub malformed: u64,
}

impl ExtractStats {
    /// Accumulate another pass's counters (used when merging per-shard
    /// extractions back together).
    pub fn merge(&mut self, other: &ExtractStats) {
        self.lines += other.lines;
        self.syslog_lines += other.syslog_lines;
        self.prefilter_hits += other.prefilter_hits;
        self.xid_lines += other.xid_lines;
        self.unknown_xid += other.unknown_xid;
        self.malformed += other.malformed;
    }
}

/// The literal every XID report line contains; scanning for it is far
/// cheaper than any structured parse. (The real study greps 202 GB; so
/// do we.)
const NVRM_NEEDLE: &str = "NVRM: Xid";

/// Per-XID message-body pattern used to pull out the detail fields.
struct BodyPattern {
    re: Regex,
    /// Which capture group maps to `unit` / `qualifier` and their radix.
    unit: Option<(usize, u32)>,
    qualifier: Option<(usize, u32)>,
}

/// The shared pattern table: `(xid, body pattern, unit spec, qualifier
/// spec)` with `(group index, radix)` per field; `None` = field absent
/// for this XID.
type FieldSpec = Option<(usize, u32)>;

const NVRM_PATTERN: &str = r"kernel: NVRM: Xid \(PCI:([0-9a-f]{4}:[0-9a-f]{2}:[0-9a-f]{2})\): (\d+), (?:pid=('?<?\w+>?'?), )?(.*)$";

fn body_pattern_table() -> Vec<(Xid, &'static str, FieldSpec, FieldSpec)> {
    vec![
        (
            Xid::MmuError,
            r"GPCCLIENT_T1_(\d+) faulted @ 0x7f_([0-9a-f]+)",
            Some((1, 10)),
            Some((2, 16)),
        ),
        (
            Xid::DoubleBitEcc,
            r"\(DBE\) has been detected on bank (\d+) row 0x([0-9a-f]+)",
            Some((1, 10)),
            Some((2, 16)),
        ),
        (
            Xid::RowRemapEvent,
            r"Row Remapper: remapping row 0x([0-9a-f]+) in bank (\d+)",
            Some((2, 10)),
            Some((1, 16)),
        ),
        (
            Xid::RowRemapFailure,
            r"Row Remapper: Failed to remap row 0x([0-9a-f]+) in bank (\d+)",
            Some((2, 10)),
            Some((1, 16)),
        ),
        (
            Xid::NvlinkError,
            r"NVLink: fatal error detected on link (\d+) \(0x([0-9a-f]+),",
            Some((1, 10)),
            Some((2, 16)),
        ),
        (Xid::FallenOffBus, r"GPU has fallen off the bus", None, None),
        (
            Xid::ContainedEcc,
            r"Contained: SM \(0x([0-9a-f]+)\)",
            Some((1, 16)),
            None,
        ),
        (
            Xid::UncontainedEcc,
            r"Uncontained: LTC TAG \(0x([0-9a-f]+),0x([0-9a-f]+)\)",
            Some((1, 16)),
            Some((2, 16)),
        ),
        (
            Xid::GspRpcTimeout,
            r"RPC response from GPU(\d+) GSP! Expected function (\d+)",
            Some((1, 10)),
            Some((2, 10)),
        ),
        (
            Xid::GspError,
            r"GSP task (\d+) raised fatal error 0x([0-9a-f]+)",
            Some((1, 10)),
            Some((2, 16)),
        ),
        (
            Xid::PmuSpiError,
            r"SPI RPC read failure \(addr 0x([0-9a-f]+)\)",
            None,
            Some((1, 16)),
        ),
        (
            Xid::GraphicsEngineException,
            r"Graphics Exception: ESR 0x([0-9a-f]+)",
            None,
            Some((1, 16)),
        ),
        (
            Xid::ResetChannelVerifError,
            r"Reset Channel Verification Error on channel (\d+)",
            Some((1, 10)),
            None,
        ),
        (
            Xid::Xid136,
            r"Event 136 reported on engine (\d+)",
            Some((1, 10)),
            None,
        ),
    ]
}

/// The Stage I extractor: compiled pattern set plus syslog scanner state.
pub struct XidExtractor {
    scanner: SyslogScanner,
    nvrm: Regex,
    /// Body patterns indexed directly by XID code: O(1) dispatch from the
    /// already-parsed code instead of a linear scan.
    dispatch: Vec<Option<BodyPattern>>,
    scratch: MatchScratch,
    stats: ExtractStats,
}

impl Default for XidExtractor {
    fn default() -> Self {
        Self::new()
    }
}

impl XidExtractor {
    /// Compile the full pattern set.
    pub fn new() -> Self {
        Self::with_scanner_state(2022, 1)
    }

    /// Extractor whose syslog scanner resumes from explicit year-inference
    /// state — used by chunked parallel extraction to replay the state a
    /// serial scan would have reached at the chunk boundary.
    pub fn with_scanner_state(year: i32, last_month: u8) -> Self {
        let nvrm = Regex::new(NVRM_PATTERN)
            // dr-lint: allow(panic-freedom): constant pattern, compile covered by tests
            .expect("NVRM pattern compiles");

        let table = body_pattern_table();
        let max_code = table.iter().map(|(x, ..)| x.code()).max().unwrap_or(0);
        let mut dispatch: Vec<Option<BodyPattern>> = Vec::new();
        dispatch.resize_with(max_code as usize + 1, || None);
        for (xid, pat, unit, qualifier) in table {
            dispatch[xid.code() as usize] = Some(BodyPattern {
                // dr-lint: allow(panic-freedom): constant patterns, round-trip tested below
                re: Regex::new(pat).expect("body pattern compiles"),
                unit,
                qualifier,
            });
        }

        XidExtractor {
            scanner: SyslogScanner::starting_state(year, last_month),
            nvrm,
            dispatch,
            scratch: MatchScratch::new(),
            stats: ExtractStats::default(),
        }
    }

    /// Extraction counters so far.
    pub fn stats(&self) -> ExtractStats {
        self.stats
    }

    /// Current year-inference state `(year, last_month)` of the embedded
    /// syslog scanner.
    pub fn scanner_state(&self) -> (i32, u8) {
        (self.scanner.year(), self.scanner.last_month())
    }

    // dr-lint: hot(begin)
    /// Scan one line; return a structured record if it is a studied XID
    /// report. Lines must be offered in log order (year inference).
    pub fn extract_line(&mut self, line: &str) -> Option<ErrorRecord> {
        self.stats.lines += 1;
        // Literal prefilter: the overwhelming majority of syslog is noise,
        // and a substring scan is an order of magnitude cheaper than a
        // structured parse.
        if !line.contains(NVRM_NEEDLE) {
            if parse_header(line).is_some() {
                self.stats.syslog_lines += 1;
            }
            return None;
        }
        self.stats.prefilter_hits += 1;
        let header = parse_header(line)?;
        self.stats.syslog_lines += 1;
        let parsed = self.scanner.resolve(line, &header)?;

        let m = self.nvrm.find_with(parsed.body, &mut self.scratch)?;
        self.stats.xid_lines += 1;

        let pci: PciAddr = m.group(parsed.body, 1)?.parse().ok()?;
        let code: u16 = m.group(parsed.body, 2)?.parse().ok()?;
        let Some(xid) = Xid::from_code(code) else {
            self.stats.unknown_xid += 1;
            return None;
        };
        let body = m.group(parsed.body, 4)?;

        let Some(detail) = self.extract_detail(xid, body) else {
            self.stats.malformed += 1;
            return None;
        };

        Some(ErrorRecord::new(
            parsed.at,
            GpuId::new(parsed.host, pci),
            xid,
            detail,
        ))
    }

    fn extract_detail(&mut self, xid: Xid, body: &str) -> Option<ErrorDetail> {
        let bp = self.dispatch.get(xid.code() as usize)?.as_ref()?;
        let m = bp.re.find_with(body, &mut self.scratch)?;
        let get = |spec: FieldSpec| -> Option<u64> {
            match spec {
                None => Some(0),
                Some((group, radix)) => {
                    let text = m.group(body, group)?;
                    u64::from_str_radix(text, radix).ok()
                }
            }
        };
        Some(ErrorDetail::new(
            get(bp.unit)? as u16,
            get(bp.qualifier)? as u32,
        ))
    }
    // dr-lint: hot(end)

    /// Scan many lines, collecting all structured records.
    pub fn extract_all<'a, I>(&mut self, lines: I) -> Vec<ErrorRecord>
    where
        I: IntoIterator<Item = &'a str>,
    {
        lines
            .into_iter()
            .filter_map(|l| self.extract_line(l))
            .collect()
    }

    /// [`XidExtractor::extract_all`] with observability: one timed
    /// `extract/chunk` span, bulk counters (bytes, lines, XID lines,
    /// records), and a per-chunk MB/s sample — all recorded once per
    /// call, never per line, so the hot loop is untouched. On a disabled
    /// sink this is exactly `extract_all` plus one branch.
    pub fn extract_all_observed<'a, I>(
        &mut self,
        lines: I,
        sink: &dr_obs::MetricsSink,
    ) -> Vec<ErrorRecord>
    where
        I: IntoIterator<Item = &'a str>,
    {
        use dr_obs::{Counter, Stage};
        if !sink.is_enabled() {
            return self.extract_all(lines);
        }
        let before = self.stats;
        let mut bytes = 0u64;
        let mut span = sink.span(Stage::Extract, "chunk");
        let records = {
            let b = &mut bytes;
            self.extract_all(lines.into_iter().inspect(move |l| *b += l.len() as u64 + 1))
        };
        let after = self.stats;
        sink.add(Stage::Extract, Counter::Bytes, bytes);
        sink.add(Stage::Extract, Counter::Lines, after.lines - before.lines);
        sink.add(Stage::Extract, Counter::XidLines, after.xid_lines - before.xid_lines);
        sink.add(
            Stage::Extract,
            Counter::PrefilterHits,
            after.prefilter_hits - before.prefilter_hits,
        );
        sink.add(Stage::Extract, Counter::Records, records.len() as u64);
        span.rate("chunk_mb_per_s", bytes as f64 / (1024.0 * 1024.0));
        records
    }
}

// ---------------------------------------------------------------------------
// Baseline (pre-optimization) extractor: the differential oracle
// ---------------------------------------------------------------------------

/// The original Stage I path, kept verbatim as the differential-testing
/// oracle and the benchmark's "pre" engine: header parsed by regex on the
/// per-call baseline Pike VM, body patterns dispatched by linear scan.
///
/// Extracted records are bit-identical to [`XidExtractor`]'s. The
/// `syslog_lines` counter keeps the *old* inconsistent definition
/// (month-prefix heuristic on prefiltered lines, full validated header on
/// XID lines); all other counters agree with the fast path.
pub struct BaselineExtractor {
    header: Regex,
    year: i32,
    last_month: u8,
    nvrm: Regex,
    bodies: Vec<(Xid, BodyPattern)>,
    stats: ExtractStats,
}

impl Default for BaselineExtractor {
    fn default() -> Self {
        Self::new()
    }
}

impl BaselineExtractor {
    pub fn new() -> Self {
        let header = Regex::new(
            r"^([A-Z][a-z][a-z]) +(\d{1,2}) (\d{2}):(\d{2}):(\d{2}) gpub(\d+) (.*)$",
        )
        // dr-lint: allow(panic-freedom): constant pattern, compile covered by tests
        .expect("header pattern compiles");
        let nvrm = Regex::new(NVRM_PATTERN)
            // dr-lint: allow(panic-freedom): constant pattern, compile covered by tests
            .expect("NVRM pattern compiles");
        let bodies = body_pattern_table()
            .into_iter()
            .map(|(xid, pat, unit, qualifier)| {
                (
                    xid,
                    BodyPattern {
                        // dr-lint: allow(panic-freedom): constant patterns, round-trip tested
                        re: Regex::new(pat).expect("body pattern compiles"),
                        unit,
                        qualifier,
                    },
                )
            })
            .collect();
        BaselineExtractor {
            header,
            year: 2022,
            last_month: 1,
            nvrm,
            bodies,
            stats: ExtractStats::default(),
        }
    }

    pub fn stats(&self) -> ExtractStats {
        self.stats
    }

    /// Original extraction logic, executed entirely on the baseline VM.
    pub fn extract_line(&mut self, line: &str) -> Option<ErrorRecord> {
        self.stats.lines += 1;
        if !line.contains(NVRM_NEEDLE) {
            if looks_like_syslog(line) {
                self.stats.syslog_lines += 1;
            }
            return None;
        }
        self.stats.prefilter_hits += 1;
        let parsed = self.parse_syslog(line)?;
        self.stats.syslog_lines += 1;

        let m = self.nvrm.find_bytes_at_baseline(parsed.body.as_bytes(), 0)?;
        self.stats.xid_lines += 1;

        let pci: PciAddr = m.group(parsed.body, 1)?.parse().ok()?;
        let code: u16 = m.group(parsed.body, 2)?.parse().ok()?;
        let Some(xid) = Xid::from_code(code) else {
            self.stats.unknown_xid += 1;
            return None;
        };
        let body = m.group(parsed.body, 4)?;

        let Some(detail) = self.extract_detail(xid, body) else {
            self.stats.malformed += 1;
            return None;
        };

        Some(ErrorRecord::new(
            parsed.at,
            GpuId::new(parsed.host, pci),
            xid,
            detail,
        ))
    }

    pub fn extract_all<'a, I>(&mut self, lines: I) -> Vec<ErrorRecord>
    where
        I: IntoIterator<Item = &'a str>,
    {
        lines
            .into_iter()
            .filter_map(|l| self.extract_line(l))
            .collect()
    }

    /// Original `SyslogScanner::parse`, on the baseline VM.
    fn parse_syslog<'l>(&mut self, line: &'l str) -> Option<SyslogLine<'l>> {
        let m = self.header.find_bytes_at_baseline(line.as_bytes(), 0)?;
        let month = dr_xid::time::month_from_abbrev(m.group(line, 1)?)?;
        let day: u8 = m.group(line, 2)?.parse().ok()?;
        let hour: u8 = m.group(line, 3)?.parse().ok()?;
        let minute: u8 = m.group(line, 4)?.parse().ok()?;
        let second: u8 = m.group(line, 5)?.parse().ok()?;
        let host: u32 = m.group(line, 6)?.parse().ok()?;
        if day == 0 || day > 31 || hour > 23 || minute > 59 || second > 59 {
            return None;
        }
        if month < self.last_month {
            self.year += 1;
        }
        self.last_month = month;
        let at = dr_xid::Timestamp::from_civil(self.year, month, day, hour, minute, second)?;
        let body_start = m.group_span(7)?.0;
        let body = line.get(body_start..)?;
        Some(SyslogLine {
            at,
            host: dr_xid::NodeId(host),
            body,
        })
    }

    fn extract_detail(&self, xid: Xid, body: &str) -> Option<ErrorDetail> {
        let (_, bp) = self.bodies.iter().find(|(x, _)| *x == xid)?;
        let m = bp.re.find_bytes_at_baseline(body.as_bytes(), 0)?;
        let get = |spec: FieldSpec| -> Option<u64> {
            match spec {
                None => Some(0),
                Some((group, radix)) => {
                    let text = m.group(body, group)?;
                    u64::from_str_radix(text, radix).ok()
                }
            }
        };
        Some(ErrorDetail::new(
            get(bp.unit)? as u16,
            get(bp.qualifier)? as u32,
        ))
    }
}

/// Month field of a line that advances [`SyslogScanner`] year-inference
/// state inside [`XidExtractor::extract_line`], or `None` for lines that
/// leave the state untouched. This is the exact state-evolution predicate
/// of the extraction loop (NVRM-prefiltered, structurally valid header,
/// time fields in range — timestamp resolution failures still advance
/// state), which is what chunked parallel extraction folds over to replay
/// scanner state at chunk boundaries.
pub fn scanner_update_month(line: &str) -> Option<u8> {
    if !line.contains(NVRM_NEEDLE) {
        return None;
    }
    let h = parse_header(line)?;
    h.time_fields_valid().then_some(h.month)
}

/// The old month-prefix heuristic, retained only for
/// [`BaselineExtractor`]'s legacy `syslog_lines` counting.
fn looks_like_syslog(line: &str) -> bool {
    line.len() > 4
        && line.is_char_boundary(3)
        && dr_xid::time::month_from_abbrev(&line[..3]).is_some()
        && line.as_bytes()[3] == b' '
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::syslog::{format_line, format_noise_line};
    use dr_xid::time::Duration;
    use dr_xid::{NodeId, Timestamp};

    fn sample_record(xid: Xid, unit: u16, qualifier: u32) -> ErrorRecord {
        ErrorRecord::new(
            Timestamp::EPOCH + Duration::from_hours(30),
            GpuId::at_slot(NodeId(17), 2),
            xid,
            ErrorDetail::new(unit, qualifier),
        )
    }

    /// Which detail fields each XID's message body actually encodes:
    /// fields the driver does not print cannot survive a text round trip.
    fn encoded_fields(xid: Xid) -> (bool, bool) {
        match xid {
            Xid::FallenOffBus => (false, false),
            Xid::ContainedEcc | Xid::ResetChannelVerifError | Xid::Xid136 => (true, false),
            Xid::PmuSpiError | Xid::GraphicsEngineException => (false, true),
            _ => (true, true),
        }
    }

    #[test]
    fn round_trips_every_studied_xid() {
        // Render a synthetic line for each XID, then re-extract it and
        // verify the structured record survives the text round trip.
        let mut ex = XidExtractor::new();
        for (i, &xid) in Xid::ALL.iter().enumerate() {
            let (has_unit, has_qual) = encoded_fields(xid);
            let rec = sample_record(
                xid,
                if has_unit { (i + 1) as u16 } else { 0 },
                if has_qual { (i * 7 + 3) as u32 } else { 0 },
            );
            let line = format_line(&rec, 1000 + i as u32);
            let got = ex
                .extract_line(&line)
                .unwrap_or_else(|| panic!("extraction failed for {xid}: {line}"));
            assert_eq!(got.xid, rec.xid, "{line}");
            assert_eq!(got.gpu, rec.gpu);
            assert_eq!(got.at, rec.at);
            assert_eq!(got.detail, rec.detail, "{line}");
        }
        assert_eq!(ex.stats().xid_lines, Xid::ALL.len() as u64);
        assert_eq!(ex.stats().malformed, 0);
        assert_eq!(ex.stats().unknown_xid, 0);
    }

    #[test]
    fn fields_without_detail_are_zero() {
        // FallenOffBus carries no unit/qualifier in its message.
        let mut ex = XidExtractor::new();
        let rec = sample_record(Xid::FallenOffBus, 9, 9);
        let line = format_line(&rec, 1);
        let got = ex.extract_line(&line).unwrap();
        assert_eq!(got.detail, ErrorDetail::NONE);
    }

    #[test]
    fn noise_lines_are_skipped_but_counted() {
        let mut ex = XidExtractor::new();
        for k in 0..5 {
            let line = format_noise_line(Timestamp::EPOCH, NodeId(3), k);
            assert!(ex.extract_line(&line).is_none());
        }
        assert!(ex.extract_line("complete garbage").is_none());
        let s = ex.stats();
        assert_eq!(s.lines, 6);
        assert_eq!(s.syslog_lines, 5);
        assert_eq!(s.xid_lines, 0);
    }

    #[test]
    fn syslog_lines_counts_structural_headers_uniformly() {
        let mut ex = XidExtractor::new();
        // Month-prefixed line from a non-GPU host: NOT a gpub header, so
        // it no longer counts (the old heuristic counted it).
        assert!(ex.extract_line("Jan  2 03:04:05 loginnode sshd: hi").is_none());
        assert_eq!(ex.stats().syslog_lines, 0);
        // Structurally valid gpub header with an impossible date counts,
        // whether or not the line mentions an XID.
        assert!(ex.extract_line("Feb 30 10:11:12 gpub900 kernel: routine noise").is_none());
        assert_eq!(ex.stats().syslog_lines, 1);
        assert!(ex
            .extract_line("Feb 30 10:11:12 gpub900 kernel: NVRM: Xid (PCI:0000:c1:00): 79, x")
            .is_none());
        assert_eq!(ex.stats().syslog_lines, 2);
        // Valid header + XID line: counted exactly once.
        assert!(ex
            .extract_line(
                "Mar  1 10:11:12 gpub900 kernel: NVRM: Xid (PCI:0000:c1:00): 79, \
                 pid=1, GPU has fallen off the bus."
            )
            .is_some());
        let s = ex.stats();
        assert_eq!(s.syslog_lines, 3);
        // Both NVRM lines matched the XID pattern; the Feb 30 one has a
        // garbage body, so it lands in `malformed` (day-range checking
        // accepts any day ≤ 31, matching the original scanner).
        assert_eq!(s.xid_lines, 2);
        assert_eq!(s.malformed, 1);
    }

    #[test]
    fn stats_merge_accumulates_all_fields() {
        let mut a = ExtractStats {
            lines: 10,
            syslog_lines: 8,
            prefilter_hits: 4,
            xid_lines: 3,
            unknown_xid: 1,
            malformed: 1,
        };
        let b = ExtractStats {
            lines: 5,
            syslog_lines: 4,
            prefilter_hits: 2,
            xid_lines: 2,
            unknown_xid: 0,
            malformed: 1,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ExtractStats {
                lines: 15,
                syslog_lines: 12,
                prefilter_hits: 6,
                xid_lines: 5,
                unknown_xid: 1,
                malformed: 2,
            }
        );
    }

    #[test]
    fn prefilter_hits_count_needle_lines_including_near_misses() {
        let mut ex = XidExtractor::new();
        // Clean miss: no needle, no hit.
        assert!(ex.extract_line("Jan  2 03:04:05 gpub042 kernel: eth0 up").is_none());
        // Near miss: needle present but no parseable syslog header.
        assert!(ex.extract_line("garbage NVRM: Xid garbage").is_none());
        // Full hit: needle, header, and report all parse.
        let ok = "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 79, \
                  pid=1, GPU has fallen off the bus.";
        assert!(ex.extract_line(ok).is_some());
        let s = ex.stats();
        assert_eq!(s.lines, 3);
        assert_eq!(s.prefilter_hits, 2);
        assert_eq!(s.xid_lines, 1);
    }

    #[test]
    fn unknown_xid_codes_are_counted() {
        let mut ex = XidExtractor::new();
        let line = "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 999, \
                    pid=5, something new";
        assert!(ex.extract_line(line).is_none());
        assert_eq!(ex.stats().unknown_xid, 1);
    }

    #[test]
    fn corrupted_body_is_malformed() {
        let mut ex = XidExtractor::new();
        let line = "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 74, \
                    pid=5, NVLink: truncated mess";
        assert!(ex.extract_line(line).is_none());
        assert_eq!(ex.stats().malformed, 1);
    }

    #[test]
    fn extract_all_filters_mixed_stream() {
        let mut ex = XidExtractor::new();
        let r1 = sample_record(Xid::GspRpcTimeout, 0, 76);
        let mut r2 = sample_record(Xid::NvlinkError, 3, 1);
        r2.at = r1.at + Duration::from_secs(5);
        let lines = vec![
            format_noise_line(Timestamp::EPOCH, NodeId(17), 0),
            format_line(&r1, 0),
            format_noise_line(Timestamp::EPOCH + Duration::from_hours(31), NodeId(17), 1),
            format_line(&r2, 42),
        ];
        let recs = ex.extract_all(lines.iter().map(|s| s.as_str()));
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].xid, Xid::GspRpcTimeout);
        assert_eq!(recs[1].xid, Xid::NvlinkError);
        assert_eq!(recs[1].detail.unit, 3);
    }

    #[test]
    fn year_inference_flows_through_extraction() {
        let mut ex = XidExtractor::new();
        let dec = "Dec 31 23:59:59 gpub001 kernel: NVRM: Xid (PCI:0000:07:00): 79, \
                   pid=1, GPU has fallen off the bus.";
        let jan = "Jan  1 00:00:30 gpub001 kernel: NVRM: Xid (PCI:0000:07:00): 79, \
                   pid=1, GPU has fallen off the bus.";
        let a = ex.extract_line(dec).unwrap();
        let b = ex.extract_line(jan).unwrap();
        assert!(b.at > a.at, "year must roll over");
        assert_eq!((b.at - a.at).as_secs_f64(), 31.0);
    }

    #[test]
    fn fast_and_baseline_extractors_agree_on_mixed_stream() {
        // A stream exercising every XID, rollovers, noise, garbage,
        // unknown codes and malformed bodies: records and the shared
        // counters must be bit-identical across the two engines.
        let mut lines: Vec<String> = Vec::new();
        let mut t = Timestamp::EPOCH + Duration::from_hours(1);
        for (i, &xid) in Xid::ALL.iter().enumerate() {
            let (has_unit, has_qual) = encoded_fields(xid);
            let rec = ErrorRecord::new(
                t,
                GpuId::at_slot(NodeId((i % 4) as u32), i % 8),
                xid,
                ErrorDetail::new(
                    if has_unit { i as u16 } else { 0 },
                    if has_qual { (i * 3 + 1) as u32 } else { 0 },
                ),
            );
            lines.push(format_line(&rec, i as u32 * 11));
            lines.push(format_noise_line(t, NodeId((i % 4) as u32), (i % 5) as u8));
            t = t + Duration::from_hours(500); // forces several rollovers
        }
        lines.push("not syslog at all".to_string());
        lines.push("Jan  2 03:04:05 loginnode sshd: hi".to_string());
        lines.push(
            "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 999, pid=5, new"
                .to_string(),
        );
        lines.push(
            "Jan  2 03:04:06 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 74, pid=5, NVLink: zap"
                .to_string(),
        );

        let mut fast = XidExtractor::new();
        let mut base = BaselineExtractor::new();
        let fast_recs = fast.extract_all(lines.iter().map(|s| s.as_str()));
        let base_recs = base.extract_all(lines.iter().map(|s| s.as_str()));
        assert_eq!(fast_recs, base_recs);
        let (fs, bs) = (fast.stats(), base.stats());
        assert_eq!(fs.lines, bs.lines);
        assert_eq!(fs.xid_lines, bs.xid_lines);
        assert_eq!(fs.unknown_xid, bs.unknown_xid);
        assert_eq!(fs.malformed, bs.malformed);
        // syslog_lines intentionally differs: the fast path uses the
        // unified structural definition, the baseline keeps the legacy
        // heuristic (which also counted the loginnode line).
        assert_eq!(bs.syslog_lines, fs.syslog_lines + 1);
    }
}
