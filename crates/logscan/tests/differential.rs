//! Differential tests pinning the optimized Stage I fast paths to their
//! original implementations:
//!
//! - the prefiltered, scratch-reusing regex engine vs the plain per-call
//!   Pike VM (`find_bytes_at_baseline`), over generated patterns ×
//!   syslog-ish inputs, comparing full matches (overall span plus every
//!   capture-group span) at every start offset;
//! - the byte-level syslog header decoder vs the regex oracle
//!   (`parse_header_oracle`), over well-formed headers, near-misses, and
//!   random mutations.
//!
//! Each property exists twice: a `proptest` version (shrinking, broader
//! exploration under `cargo test`) and a deterministic plain `#[test]`
//! version driven by an inline SplitMix64 generator, so the differential
//! coverage runs even in environments where proptest is unavailable.

use dr_logscan::regex::{MatchScratch, Regex};
use dr_logscan::syslog::{parse_header, parse_header_oracle};
use proptest::prelude::*;

/// Minimal deterministic PRNG (SplitMix64) so the plain tests need no
/// external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

/// Generate a random valid pattern from a small grammar covering the
/// constructs the XID pattern set uses: literals, escapes, classes,
/// anchors, alternation, groups, and greedy quantifiers (including
/// empty-match-capable ones like `a*`).
fn gen_pattern(rng: &mut Rng, depth: usize) -> String {
    let atoms = [
        "a", "b", "g", "p", "u", "1", "7", ":", " ", r"\d", r"\w", r"\s", r"\D",
        "[a-z]", "[0-9a-f]", "[^x]", r"\(", r"\.", ".",
    ];
    let mut out = String::new();
    let n = 1 + rng.below(4);
    for _ in 0..n {
        let mut piece = if depth > 0 && rng.below(5) == 0 {
            // Grouped subpattern, possibly an alternation.
            let inner = gen_pattern(rng, depth - 1);
            match rng.below(3) {
                0 => format!("({inner})"),
                1 => format!("(?:{inner})"),
                _ => {
                    let other = gen_pattern(rng, depth - 1);
                    format!("(?:{inner}|{other})")
                }
            }
        } else {
            (*rng.pick(&atoms)).to_string()
        };
        match rng.below(8) {
            0 => piece.push('*'),
            1 => piece.push('+'),
            2 => piece.push('?'),
            3 => piece.push_str("{1,3}"),
            _ => {}
        }
        out.push_str(&piece);
    }
    // Occasionally anchor one or both ends.
    if rng.below(4) == 0 {
        out.insert(0, '^');
    }
    if rng.below(4) == 0 {
        out.push('$');
    }
    out
}

/// Generate syslog-ish haystacks: fragments of real-looking log lines
/// glued with random separators, so literal prefilters sometimes hit,
/// sometimes near-miss.
fn gen_input(rng: &mut Rng) -> String {
    let frags = [
        "Jan  2 03:04:05 ",
        "gpub042 ",
        "kernel: NVRM: Xid (PCI:0000:c1:00): 79, ",
        "pid=1, ",
        "GPU has fallen off the bus.",
        "aaab",
        "ab",
        "",
        "7 gpub7",
        "0x1f",
        " ",
        "::",
        "xyzzy",
    ];
    let mut out = String::new();
    for _ in 0..rng.below(5) {
        out.push_str(*rng.pick(&frags));
    }
    out.truncate(64);
    out
}

/// Full-match equality (overall span plus every capture group) between
/// the optimized engine and the baseline VM, at one start offset.
fn assert_engines_agree(re: &Regex, pat: &str, input: &str, scratch: &mut MatchScratch) {
    let bytes = input.as_bytes();
    for start in 0..=bytes.len() {
        let fast = re.find_bytes_at_with(bytes, start, scratch);
        let base = re.find_bytes_at_baseline(bytes, start);
        match (&fast, &base) {
            (None, None) => {}
            (Some(f), Some(b)) => {
                assert_eq!(
                    f.span(),
                    b.span(),
                    "span divergence: pattern {pat:?} input {input:?} start {start}"
                );
                for g in 0..=re.group_count() as usize {
                    assert_eq!(
                        f.group_span(g),
                        b.group_span(g),
                        "group {g} divergence: pattern {pat:?} input {input:?} start {start}"
                    );
                }
            }
            _ => panic!(
                "match/no-match divergence: pattern {pat:?} input {input:?} start {start}: \
                 fast={fast:?} base={base:?}"
            ),
        }
        if start == 0 {
            assert_eq!(
                re.is_match(input),
                base.is_some(),
                "is_match divergence: pattern {pat:?} input {input:?}"
            );
        }
    }
}

#[test]
fn engine_matches_baseline_on_generated_patterns() {
    let mut rng = Rng(0x5eed_cafe);
    let mut scratch = MatchScratch::new();
    let mut compiled = 0;
    for _ in 0..300 {
        let pat = gen_pattern(&mut rng, 2);
        let Ok(re) = Regex::new(&pat) else { continue };
        compiled += 1;
        for _ in 0..8 {
            let input = gen_input(&mut rng);
            assert_engines_agree(&re, &pat, &input, &mut scratch);
        }
    }
    // The grammar builds valid patterns by construction; make sure the
    // test did not silently degenerate.
    assert!(compiled >= 250, "only {compiled} of 300 patterns compiled");
}

#[test]
fn engine_matches_baseline_on_stage1_patterns() {
    // The exact production patterns, against inputs that hit, near-miss,
    // and miss their required literals.
    let patterns = [
        r"kernel: NVRM: Xid \(PCI:([0-9a-f]{4}:[0-9a-f]{2}:[0-9a-f]{2})\): (\d+), (?:pid=('?<?\w+>?'?), )?(.*)$",
        r"^([A-Z][a-z][a-z]) +(\d{1,2}) (\d{2}):(\d{2}):(\d{2}) gpub(\d+) (.*)$",
        r"GPCCLIENT_T1_(\d+) faulted @ 0x7f_([0-9a-f]+)",
        r"\(DBE\) has been detected on bank (\d+) row 0x([0-9a-f]+)",
        r"NVLink: fatal error detected on link (\d+) \(0x([0-9a-f]+),",
        r"GPU has fallen off the bus",
        r"RPC response from GPU(\d+) GSP! Expected function (\d+)",
    ];
    let inputs = [
        "Jan  2 03:04:05 gpub042 kernel: NVRM: Xid (PCI:0000:c1:00): 79, pid=1, GPU has fallen off the bus.",
        "kernel: NVRM: Xid (PCI:0000:c1:00): 63, pid='<unknown>', Row Remapper: remapping row 0x1f in bank 2",
        "kernel: NVRM: Xid (PCI:zzzz:c1:00): 63, x",
        "NVLink: fatal error detected on link 3 (0x4a,",
        "RPC response from GPU7 GSP! Expected function 76",
        "GPU has fallen off the busGPU has fallen off the bus",
        "kernel: NVRM: Xid",
        "",
        "completely unrelated noise line without the literal",
    ];
    let mut scratch = MatchScratch::new();
    for pat in patterns {
        let re = Regex::new(pat).unwrap();
        for input in inputs {
            assert_engines_agree(&re, pat, input, &mut scratch);
        }
    }
}

/// A structurally valid header the mutation tests start from.
fn gen_headerish(rng: &mut Rng) -> String {
    let months = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct",
        "Nov", "Dec", "Jxn", "jan", "JAN", "Xyz",
    ];
    let hosts = ["gpub042", "gpub7", "gpub", "gpua042", "loginnode", "gpub99999999999"];
    let bodies = ["kernel: hello", "", "x", "body with\nnewline"];
    let day = rng.below(135); // 0..135: in-range, out-of-range, 3-digit
    let sep = if rng.below(3) == 0 { " " } else { "  " };
    format!(
        "{m}{sep}{day} {h:02}:{mi:02}:{s:02} {host} {body}",
        m = rng.pick(&months),
        h = rng.below(30),
        mi = rng.below(70),
        s = rng.below(70),
        host = rng.pick(&hosts),
        body = rng.pick(&bodies),
    )
}

#[test]
fn header_parser_matches_oracle_on_generated_headers() {
    let mut rng = Rng(0xfeed_f00d);
    let mut accepted = 0;
    for _ in 0..2000 {
        let mut line = gen_headerish(&mut rng);
        // Half the time, corrupt one byte to probe near-miss rejection.
        if rng.below(2) == 0 && !line.is_empty() {
            let i = rng.below(line.len());
            if line.is_char_boundary(i) && line.is_char_boundary(i + 1) {
                let b = b" 0:gxQ\n"[rng.below(7)];
                line.replace_range(i..i + 1, std::str::from_utf8(&[b]).unwrap());
            }
        }
        let fast = parse_header(&line);
        let oracle = parse_header_oracle(&line);
        assert_eq!(fast, oracle, "divergence on {line:?}");
        if fast.is_some() {
            accepted += 1;
        }
    }
    // Sanity: the generator must exercise both accept and reject paths.
    assert!(accepted > 100, "only {accepted} of 2000 headers accepted");
}

// ---------------------------------------------------------------------------
// proptest versions: broader exploration + shrinking under `cargo test`.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn prop_engine_matches_baseline(
        seed in any::<u64>(),
        input in "[ -~]{0,48}",
    ) {
        let mut rng = Rng(seed);
        let pat = gen_pattern(&mut rng, 2);
        if let Ok(re) = Regex::new(&pat) {
            let mut scratch = MatchScratch::new();
            assert_engines_agree(&re, &pat, &input, &mut scratch);
        }
    }

    #[test]
    fn prop_header_parser_matches_oracle(line in "[ -~\n]{0,64}") {
        prop_assert_eq!(parse_header(&line), parse_header_oracle(&line));
    }

    #[test]
    fn prop_header_parser_accepts_well_formed(
        day in 1u8..=28,
        hour in 0u8..=23,
        minute in 0u8..=59,
        second in 0u8..=59,
        host in 0u32..=9999,
        body in "[ -~]{0,32}",
    ) {
        let line = format!(
            "Mar {day:>2} {hour:02}:{minute:02}:{second:02} gpub{host} {body}"
        );
        let h = parse_header(&line);
        prop_assert_eq!(h, parse_header_oracle(&line));
        let h = h.expect("well-formed header must parse");
        prop_assert!(h.time_fields_valid());
        prop_assert_eq!(h.host, host);
    }
}
