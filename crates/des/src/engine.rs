//! The simulation loop.

use crate::queue::EventQueue;
use crate::SimTime;

/// Handle the engine hands to event handlers so they can schedule
/// follow-up events without borrowing the engine itself.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stopped: &'a mut bool,
}

impl<'a, E> Scheduler<'a, E> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.queue.push(self.now + delay, payload);
    }

    /// Schedule `payload` at an absolute time (clamped to now if in the past).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        self.queue.push(at.max(self.now), payload);
    }

    /// Stop the simulation after the current event completes.
    pub fn stop(&mut self) {
        *self.stopped = true;
    }
}

/// A discrete-event engine over event payloads of type `E`.
///
/// The engine owns the clock and the future-event list; domain state lives
/// in the caller's handler closure (or the struct it borrows), keeping the
/// engine reusable across the fault campaign and the scheduler simulation.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: 0,
            processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Seed an initial event before running.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        self.queue.push(at, payload);
    }

    /// Run until the queue empties, `horizon` is passed, or a handler calls
    /// [`Scheduler::stop`]. Events scheduled exactly at `horizon` still run;
    /// later ones remain queued. Returns the number of events processed by
    /// this call.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Scheduler<'_, E>, E),
    {
        let start_processed = self.processed;
        let mut stopped = false;
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= horizon => {}
                _ => break,
            }
            let Some((t, payload)) = self.queue.pop() else {
                break;
            };
            debug_assert!(t >= self.now, "time must not run backwards");
            self.now = t;
            let mut sched = Scheduler {
                now: self.now,
                queue: &mut self.queue,
                stopped: &mut stopped,
            };
            handler(&mut sched, payload);
            self.processed += 1;
            if stopped {
                break;
            }
        }
        // Advance the clock to the horizon even if the queue drained early,
        // so observation-window arithmetic uses the full window.
        if !stopped && self.now < horizon {
            self.now = horizon;
        }
        self.processed - start_processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_events_in_order_and_advances_clock() {
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule(10, "a");
        eng.schedule(5, "b");
        let mut seen = Vec::new();
        let n = eng.run_until(100, |s, e| seen.push((s.now(), e)));
        assert_eq!(n, 2);
        assert_eq!(seen, vec![(5, "b"), (10, "a")]);
        assert_eq!(eng.now(), 100);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(0, 0);
        let mut count = 0;
        eng.run_until(1_000, |s, depth| {
            count += 1;
            if depth < 9 {
                s.schedule_in(10, depth + 1);
            }
        });
        assert_eq!(count, 10);
        assert_eq!(eng.processed(), 10);
    }

    #[test]
    fn horizon_cuts_off_future_events() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule(50, ());
        eng.schedule(150, ());
        let n = eng.run_until(100, |_, _| {});
        assert_eq!(n, 1);
        assert_eq!(eng.pending(), 1);
        assert_eq!(eng.now(), 100);
    }

    #[test]
    fn event_at_horizon_still_runs() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule(100, ());
        let n = eng.run_until(100, |_, _| {});
        assert_eq!(n, 1);
    }

    #[test]
    fn stop_halts_immediately() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 0..10 {
            eng.schedule(i, i as u32);
        }
        let mut seen = 0;
        eng.run_until(100, |s, e| {
            seen += 1;
            if e == 3 {
                s.stop();
            }
        });
        assert_eq!(seen, 4);
        assert_eq!(eng.pending(), 6);
        assert_eq!(eng.now(), 3);
    }

    #[test]
    fn schedule_at_clamps_past_times() {
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule(10, "first");
        let mut order = Vec::new();
        eng.run_until(20, |s, e| {
            order.push((s.now(), e));
            if e == "first" {
                // Attempt to schedule in the past: clamped to now.
                s.schedule_at(3, "late");
            }
        });
        assert_eq!(order, vec![(10, "first"), (10, "late")]);
    }
}
