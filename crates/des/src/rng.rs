//! Deterministic per-entity RNG streams.
//!
//! A campaign has one master seed. Every entity (GPU, component, process)
//! derives its own independent `StdRng` by mixing the master seed with the
//! entity's stable identifier, so simulations are reproducible and adding
//! or removing one entity never shifts another entity's random sequence —
//! the property that makes counterfactual re-runs (Section 5.5) meaningful.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Factory for per-entity RNG streams.
#[derive(Clone, Copy, Debug)]
pub struct RngStreams {
    master: u64,
}

impl RngStreams {
    pub const fn new(master_seed: u64) -> Self {
        RngStreams {
            master: master_seed,
        }
    }

    /// RNG for the entity identified by `id`.
    pub fn stream(&self, id: u64) -> StdRng {
        StdRng::seed_from_u64(mix64(self.master ^ mix64(id)))
    }

    /// RNG for an entity identified by a two-level id (e.g. node, slot).
    pub fn stream2(&self, a: u64, b: u64) -> StdRng {
        self.stream(mix64(a).wrapping_add(b))
    }

    /// RNG for a named subsystem (hashes the name bytes FNV-style).
    pub fn named(&self, name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.stream(h)
    }

    pub fn master_seed(&self) -> u64 {
        self.master
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let s = RngStreams::new(42);
        let a: u64 = s.stream(7).gen();
        let b: u64 = s.stream(7).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn different_ids_differ() {
        let s = RngStreams::new(42);
        let a: u64 = s.stream(1).gen();
        let b: u64 = s.stream(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_masters_differ() {
        let a: u64 = RngStreams::new(1).stream(7).gen();
        let b: u64 = RngStreams::new(2).stream(7).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn two_level_and_named_streams() {
        let s = RngStreams::new(9);
        let a: u64 = s.stream2(3, 4).gen();
        let b: u64 = s.stream2(3, 5).gen();
        let c: u64 = s.stream2(4, 4).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
        let n1: u64 = s.named("gsp").gen();
        let n2: u64 = s.named("pmu").gen();
        assert_ne!(n1, n2);
        let n1b: u64 = s.named("gsp").gen();
        assert_eq!(n1, n1b);
    }

    #[test]
    fn mix64_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = mix64(0x1234_5678);
        let flipped = mix64(0x1234_5679);
        let differing = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&differing), "{differing} bits differ");
    }
}
