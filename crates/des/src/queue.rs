//! Future-event list with deterministic ordering.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry: min-ordered by `(time, seq)` where `seq` is the
/// insertion sequence number, guaranteeing FIFO order among equal-time
/// events — essential for bit-for-bit reproducible simulations.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    proptest! {
        /// Popped times are non-decreasing for arbitrary insertion orders.
        #[test]
        fn monotone_pop(times in prop::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut last = 0;
            let mut n = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                n += 1;
            }
            prop_assert_eq!(n, times.len());
        }
    }
}
