//! # dr-des — deterministic discrete-event simulation engine
//!
//! A small, allocation-conscious DES core used by the fault-injection
//! campaign (`dr-faults`) and the scheduler simulation (`dr-slurm`):
//!
//! - [`queue`]: a future-event list (binary heap) with deterministic FIFO
//!   tie-breaking so equal-time events replay identically across runs.
//! - [`engine`]: the simulation loop — a clock plus the event queue, driving
//!   a handler that may schedule further events.
//! - [`rng`]: deterministic per-entity RNG streams derived from a single
//!   campaign seed (SplitMix64 mixing), so adding an entity never perturbs
//!   the random sequence of another.
//!
//! Simulation time is `u64` **microseconds** since the campaign epoch,
//! matching `dr_xid::Timestamp`'s resolution so conversions are lossless.

pub mod engine;
pub mod queue;
pub mod rng;

pub use engine::{Engine, Scheduler};
pub use queue::EventQueue;
pub use rng::{mix64, RngStreams};

/// Simulation time: microseconds since the campaign epoch.
pub type SimTime = u64;

/// Microseconds per second, hour, day — simulation-time helpers.
pub const US_PER_SEC: u64 = 1_000_000;
pub const US_PER_HOUR: u64 = 3_600 * US_PER_SEC;
pub const US_PER_DAY: u64 = 24 * US_PER_HOUR;

/// Convert fractional seconds to simulation ticks (rounds to nearest µs,
/// saturating at zero for negative inputs).
#[inline]
pub fn secs_f64(s: f64) -> SimTime {
    (s.max(0.0) * US_PER_SEC as f64).round() as SimTime
}

/// Convert fractional hours to simulation ticks.
#[inline]
pub fn hours_f64(h: f64) -> SimTime {
    secs_f64(h * 3_600.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions() {
        assert_eq!(secs_f64(1.5), 1_500_000);
        assert_eq!(secs_f64(-3.0), 0);
        assert_eq!(hours_f64(2.0), 2 * US_PER_HOUR);
        assert_eq!(US_PER_DAY, 86_400 * US_PER_SEC);
    }
}
