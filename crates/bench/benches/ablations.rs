//! Ablation benches (experiment ids A1, A2, A3).
//!
//! * `ablation_coalesce_dt` — Δt ∈ {5, 10, 20} s: the Section 3.2
//!   robustness claim (results stable, cost comparable).
//! * `ablation_parallel_pipeline` — Stage I extraction with the
//!   dr-par parallel map vs a sequential scan.
//! * `ablation_propagation_window` — propagation-window sensitivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_bench::{meso_campaign, text_campaign};
use dr_logscan::XidExtractor;
use dr_xid::Duration;
use resilience_core::propagation::analyze;
use resilience_core::{coalesce, CoalesceConfig};
use std::hint::black_box;

fn ablation_coalesce_dt(c: &mut Criterion) {
    let out = meso_campaign();
    let mut g = c.benchmark_group("a1_coalesce_dt");
    g.sample_size(10);
    for secs in [5u64, 10, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(secs), &secs, |b, &secs| {
            b.iter(|| coalesce(black_box(&out.records), CoalesceConfig::with_window_secs(secs)))
        });
    }
    g.finish();
}

fn ablation_parallel_pipeline(c: &mut Criterion) {
    let out = text_campaign();
    let logs = &out.text_logs;
    let total_lines: usize = logs.iter().map(|(_, l)| l.len()).sum();
    let mut g = c.benchmark_group("a2_stage1");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(total_lines as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| {
            logs.iter()
                .map(|(_, lines)| {
                    let mut ex = XidExtractor::new();
                    ex.extract_all(lines.iter().map(|s| s.as_str())).len()
                })
                .sum::<usize>()
        })
    });
    g.bench_function("parallel_per_node", |b| {
        b.iter(|| {
            dr_par::par_map(logs, |(_, lines)| {
                let mut ex = XidExtractor::new();
                ex.extract_all(lines.iter().map(|s| s.as_str())).len()
            })
            .iter()
            .sum::<usize>()
        })
    });
    g.finish();
}

fn ablation_propagation_window(c: &mut Criterion) {
    let out = meso_campaign();
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    let mut g = c.benchmark_group("a3_propagation_window");
    g.sample_size(10);
    for secs in [30u64, 60, 120] {
        g.bench_with_input(BenchmarkId::from_parameter(secs), &secs, |b, &secs| {
            b.iter(|| analyze(black_box(&coalesced), Duration::from_secs(secs)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_coalesce_dt,
    ablation_parallel_pipeline,
    ablation_propagation_window
);
criterion_main!(benches);
