//! Projection benches (experiment ids S5.4, S5.5, S6).
//!
//! * `availability_sweep` — the Section 5.4 recovery-time sweep.
//! * `counterfactual` — the Section 5.5 offender/hardening what-if.
//! * `h100_campaign` — the full Section 6 H100 campaign, generation
//!   included (it is small).

use criterion::{criterion_group, criterion_main, Criterion};
use dr_availsim::{recovery_sweep, simulate, ProjectionConfig};
use dr_bench::meso_campaign;
use dr_faults::{Campaign, CampaignConfig};
use resilience_core::counterfactual::counterfactual;
use resilience_core::{coalesce, CoalesceConfig};
use std::hint::black_box;

fn availability_sweep(c: &mut Criterion) {
    let base = ProjectionConfig::paper_scenario(3);
    let mut g = c.benchmark_group("s5_4");
    g.bench_function("single_month_projection", |b| {
        b.iter(|| simulate(black_box(&base)))
    });
    g.sample_size(10);
    g.bench_function("recovery_sweep_6_points_x20", |b| {
        b.iter(|| recovery_sweep(&base, &[5.0, 10.0, 20.0, 30.0, 40.0, 60.0], 20))
    });
    g.finish();
}

fn counterfactual_bench(c: &mut Criterion) {
    let out = meso_campaign();
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    c.bench_function("s5_5/counterfactual", |b| {
        b.iter(|| counterfactual(black_box(&coalesced), out.observation_hours(), 206, 0.3))
    });
}

fn h100_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("s6");
    g.sample_size(10);
    g.bench_function("h100_full_campaign", |b| {
        b.iter(|| Campaign::run(CampaignConfig::h100_study(black_box(616))))
    });
    g.finish();
}

criterion_group!(benches, availability_sweep, counterfactual_bench, h100_campaign);
criterion_main!(benches);
