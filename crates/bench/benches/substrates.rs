//! Substrate micro-benches: the building blocks the study runs on.
//!
//! Not tied to a specific paper artifact, but they bound the cost of the
//! reproduction: regex matching throughput (Stage I scans 202 GB in the
//! real study), device fault injection, DES event dispatch, and the
//! campaign generator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use dr_des::Engine;
use dr_faults::{Campaign, CampaignConfig};
use dr_gpu::{Fault, Gpu, GpuArch, RasTuning};
use dr_logscan::Regex;
use dr_xid::syslog::format_line;
use dr_xid::{ErrorDetail, ErrorRecord, GpuId, NodeId, Timestamp, Xid};
use rand::prelude::*;
use std::hint::black_box;

fn regex_throughput(c: &mut Criterion) {
    let re = Regex::new(
        r"kernel: NVRM: Xid \(PCI:([0-9a-f]{4}:[0-9a-f]{2}:[0-9a-f]{2})\): (\d+), (.*)$",
    )
    .expect("compiles");
    let rec = ErrorRecord::new(
        Timestamp::from_secs(3_600),
        GpuId::at_slot(NodeId(42), 3),
        Xid::GspRpcTimeout,
        ErrorDetail::new(0, 76),
    );
    let hit = format_line(&rec, 0);
    let miss = "Jan  1 01:00:00 gpub042 systemd[1]: Started Session 4221 of user jdoe.";
    let mut g = c.benchmark_group("substrate_regex");
    g.throughput(criterion::Throughput::Bytes(hit.len() as u64));
    g.bench_function("nvrm_line_match", |b| b.iter(|| re.find(black_box(&hit))));
    g.bench_function("noise_line_reject", |b| b.iter(|| re.find(black_box(miss))));
    g.finish();
}

fn device_injection(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_device");
    g.bench_function("nvlink_crc_inject", |b| {
        let mut gpu = Gpu::new(
            GpuId::at_slot(NodeId(1), 0),
            GpuArch::A100,
            RasTuning::default(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let r = gpu.inject(Fault::NvlinkCrc { link: 3 }, &mut rng);
            if gpu.health().needs_reset() {
                gpu.reset();
            }
            r.emissions.len()
        })
    });
    g.bench_function("dbe_inject_with_remap", |b| {
        let mut gpu = Gpu::new(
            GpuId::at_slot(NodeId(1), 0),
            GpuArch::A100,
            RasTuning::default(),
        );
        let mut rng = StdRng::seed_from_u64(2);
        let mut row = 0u32;
        b.iter(|| {
            row = row.wrapping_add(1);
            let r = gpu.inject(
                Fault::MemoryDbe {
                    bank: (row % 64) as u16,
                    row,
                },
                &mut rng,
            );
            if gpu.health().needs_reset() {
                gpu.reset();
            }
            r.emissions.len()
        })
    });
    g.finish();
}

fn des_dispatch(c: &mut Criterion) {
    c.bench_function("substrate_des/100k_event_cascade", |b| {
        b.iter(|| {
            let mut eng: Engine<u32> = Engine::new();
            eng.schedule(0, 0);
            let mut count = 0u64;
            eng.run_until(1_000_000, |s, n| {
                count += 1;
                if n < 100_000 {
                    s.schedule_in(7, n + 1);
                }
            });
            count
        })
    });
}

fn campaign_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_campaign");
    g.sample_size(10);
    g.bench_function("tiny_fleet_30_days", |b| {
        b.iter(|| Campaign::run(CampaignConfig::tiny(black_box(3))).records.len())
    });
    g.finish();
}

criterion_group!(
    benches,
    regex_throughput,
    device_injection,
    des_dispatch,
    campaign_generation
);
criterion_main!(benches);
