//! Figure-regenerating benches (experiment ids F5, F6, F7, F9, S4.4).
//!
//! * `fig5_propagation` — full intra-/inter-GPU propagation analysis
//!   (Figure 5's hardware graph comes straight from its edge set).
//! * `fig6_nvlink` — NVLink multi-GPU involvement accounting.
//! * `fig7_memory_paths` — memory recovery-path edge extraction.
//! * `fig9_distributions` — elapsed-time/error-count distributions and
//!   downtime statistics.
//! * `persistence_tails` — lost-GPU-hours tail analysis (Section 4.3).

use criterion::{criterion_group, criterion_main, Criterion};
use dr_bench::{meso_campaign, meso_jobs};
use dr_xid::Duration;
use resilience_core::downtime::downtime_stats;
use resilience_core::job_impact::{analyze_jobs, JobImpactConfig};
use resilience_core::propagation::{analyze, nvlink_spread};
use resilience_core::{coalesce, lost_gpu_hours, CoalesceConfig};
use std::hint::black_box;

fn fig5_propagation(c: &mut Criterion) {
    let out = meso_campaign();
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    let mut g = c.benchmark_group("fig5");
    g.throughput(criterion::Throughput::Elements(coalesced.len() as u64));
    g.bench_function("propagation_analysis", |b| {
        b.iter(|| analyze(black_box(&coalesced), Duration::from_secs(60)))
    });
    g.finish();
}

fn fig6_nvlink(c: &mut Criterion) {
    let out = meso_campaign();
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    c.bench_function("fig6/nvlink_spread", |b| {
        b.iter(|| nvlink_spread(black_box(&coalesced), Duration::from_secs(10)))
    });
}

fn fig7_memory_paths(c: &mut Criterion) {
    let out = meso_campaign();
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    c.bench_function("fig7/memory_path_edges", |b| {
        b.iter(|| {
            let a = analyze(black_box(&coalesced), Duration::from_secs(60));
            // Extract the Figure 7 member edges, as the renderer does.
            a.intra
                .iter()
                .filter(|e| {
                    use dr_xid::Xid::*;
                    matches!(e.from, DoubleBitEcc | RowRemapEvent | RowRemapFailure)
                })
                .count()
        })
    });
}

fn fig9_distributions(c: &mut Criterion) {
    let out = meso_campaign();
    let jobs = meso_jobs();
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("elapsed_and_error_distributions", |b| {
        b.iter(|| {
            let a = analyze_jobs(black_box(jobs), &coalesced, JobImpactConfig::default());
            a.distributions.completed.count() + a.distributions.gpu_failed.count()
        })
    });
    g.bench_function("downtime_stats", |b| {
        b.iter(|| downtime_stats(black_box(&out.downtime)))
    });
    g.finish();
}

fn persistence_tails(c: &mut Criterion) {
    let out = meso_campaign();
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    c.bench_function("s4_3/lost_gpu_hours_tail", |b| {
        b.iter(|| lost_gpu_hours(black_box(&coalesced)))
    });
}

criterion_group!(
    benches,
    fig5_propagation,
    fig6_nvlink,
    fig7_memory_paths,
    fig9_distributions,
    persistence_tails
);
criterion_main!(benches);
