//! Table-regenerating benches (experiment ids T1, T2, T3).
//!
//! * `table1_pipeline` — coalescing + error statistics over the raw
//!   record stream (Table 1).
//! * `table2_job_impact` — the ±20 s error/job join and per-XID failure
//!   probabilities (Table 2).
//! * `table3_job_gen` — workload generation and placement (Table 3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dr_bench::{meso_campaign, meso_jobs};
use dr_slurm::{DrainWindows, JobLoadConfig, Scheduler};
use resilience_core::job_impact::{analyze_jobs, table3, JobImpactConfig};
use resilience_core::{coalesce, table1, CoalesceConfig};
use std::hint::black_box;

fn table1_pipeline(c: &mut Criterion) {
    let out = meso_campaign();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(out.records.len() as u64));
    g.bench_function("coalesce_raw_records", |b| {
        b.iter(|| coalesce(black_box(&out.records), CoalesceConfig::default()))
    });
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    g.bench_function("error_statistics", |b| {
        b.iter(|| table1(black_box(&coalesced), out.observation_hours(), 206))
    });
    g.finish();
}

fn table2_job_impact(c: &mut Criterion) {
    let out = meso_campaign();
    let jobs = meso_jobs();
    let coalesced = coalesce(&out.records, CoalesceConfig::default());
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(jobs.len() as u64));
    g.bench_function("job_error_join", |b| {
        b.iter(|| analyze_jobs(black_box(jobs), black_box(&coalesced), JobImpactConfig::default()))
    });
    g.finish();
}

fn table3_job_gen(c: &mut Criterion) {
    let out = meso_campaign();
    let jobs = meso_jobs();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("generate_and_place_20k_jobs", |b| {
        let cfg = JobLoadConfig {
            total_jobs: 20_000,
            duration_days: 60.0,
            ..JobLoadConfig::delta_study(5)
        };
        let sched = Scheduler::new(cfg);
        let drains = DrainWindows::default();
        b.iter_batched(
            || (),
            |_| sched.run(black_box(&out.fleet), &drains),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("bucket_statistics", |b| {
        b.iter(|| table3(black_box(jobs)))
    });
    g.finish();
}

criterion_group!(benches, table1_pipeline, table2_job_impact, table3_job_gen);
criterion_main!(benches);
