//! The tracked scenario-sweep benchmark behind `gpures bench`
//! (`BENCH_sweep.json`).
//!
//! `gpures sweep` fans a battery of `(scenario, seed)` runs across the
//! worker pool with `dr_par::par_map`; the whole point of the driver is
//! that a battery of N seeds costs roughly one seed of wall-clock on an
//! N-core box. This benchmark runs the same generated battery at one
//! worker and at the full pool and reports the parallel speedup and
//! efficiency, so a serialization regression in the sweep path (or in
//! the campaign/pipeline code it drives) shows up in the tracked
//! artifact. The battery itself is authored as `.scn` text and parsed
//! through the real `dr-scenario` front end — the bench exercises the
//! exact compile path the CLI uses.

use crate::json::Json;
use dr_obs::clock::Stopwatch;
use dr_report::sweep::{run_battery, SweepOptions};
use dr_scenario::Scenario;

/// A self-contained benchmark battery: one tiny-fleet scenario fanned
/// across `seeds` independent runs. Days are kept short — the bench
/// measures driver fan-out, not campaign depth.
fn battery(seeds: usize, days: f64) -> Vec<Scenario> {
    let list: Vec<String> = (1..=seeds as u64).map(|s| s.to_string()).collect();
    let src = format!(
        "scenario \"bench_sweep\"\n\
         description \"generated battery for BENCH_sweep.json\"\n\
         fleet tiny\n\
         duration_days = {days}\n\
         seeds = [{}]\n\
         rates ampere_delta\n",
        list.join(", ")
    );
    vec![Scenario::parse(&src).expect("generated bench scenario parses")]
}

/// Time one full `run_battery` pass at a pinned worker count. The
/// artifact tee options stay off: this times compute fan-out, not disk.
fn timed_run(scenarios: &[Scenario], workers: Option<usize>) -> Result<f64, String> {
    dr_par::set_worker_override(workers);
    let watch = Stopwatch::start();
    let r = run_battery(scenarios, &SweepOptions::default());
    let wall = watch.elapsed_s();
    dr_par::set_worker_override(None);
    r.map_err(|e| e.to_string())?;
    Ok(wall)
}

/// The `BENCH_sweep.json` document. `smoke` shrinks the battery to a
/// handful of short runs — the speedup number is then meaningless, but
/// the full parse → compile → campaign → pipeline → artifact path is
/// exercised.
pub fn sweep_report(smoke: bool) -> Result<Json, String> {
    let (seeds, days) = if smoke { (2, 10.0) } else { (8, 45.0) };
    let scenarios = battery(seeds, days);

    // Warm-up run so first-touch allocation noise lands outside the
    // measured passes, then serial vs full-pool.
    timed_run(&scenarios, Some(1))?;
    let serial_s = timed_run(&scenarios, Some(1))?;
    let pool = dr_par::max_workers();
    let parallel_s = timed_run(&scenarios, None)?;

    let speedup = if parallel_s > 0.0 {
        serial_s / parallel_s
    } else {
        0.0
    };
    let efficiency = if pool > 0 {
        speedup / (pool.min(seeds)) as f64
    } else {
        0.0
    };

    Ok(Json::obj(vec![
        ("schema", Json::Str("gpures-bench-sweep/v1".to_string())),
        ("smoke", Json::Bool(smoke)),
        ("scenarios", Json::Num(scenarios.len() as f64)),
        ("runs", Json::Num(seeds as f64)),
        ("duration_days", Json::Num(days)),
        ("worker_pool", Json::Num(pool as f64)),
        ("serial_s", Json::Num((serial_s * 1e6).round() / 1e6)),
        ("parallel_s", Json::Num((parallel_s * 1e6).round() / 1e6)),
        ("parallel_speedup", Json::Num((speedup * 1e3).round() / 1e3)),
        ("parallel_efficiency", Json::Num((efficiency * 1e3).round() / 1e3)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_battery_parses_and_fans_out() {
        let b = battery(3, 5.0);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].seeds, vec![1, 2, 3]);
        assert_eq!(b[0].name, "bench_sweep");
    }
}
