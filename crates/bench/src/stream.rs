//! The tracked streaming-ingestion benchmark behind `gpures bench`.
//!
//! Produces `BENCH_stream.json` at the repo root: the sharded
//! extract-and-coalesce front half fed from a fully materialized
//! in-memory corpus vs. streamed from disk through
//! [`resilience_core::source::DirSource`] at a fixed 64 KiB chunk
//! target — the disk path measured both synchronously and with the
//! wave-prefetch I/O thread (the A/B that shows how much of the
//! dir-vs-memory throughput gap the overlap recovers). For each path
//! the artifact records throughput and the `peak_resident_bytes`
//! high-water gauge the wave driver reports — the number that proves
//! the streaming path is bounded-memory (peak resident text ≪ corpus
//! size; ≤ 2 waves with prefetch) instead of merely claiming it.
//!
//! Workload generation reuses [`crate::stage1::noisy_workload`]
//! (arithmetic, not random), and the corpus written to disk round-trips
//! through the same `dr_report::files` writer the CLI uses. Coalesced
//! output is cross-checked identical between the two paths, so a
//! correctness regression cannot hide behind a fast number.

use crate::json::Json;
use crate::stage1::{measure, noisy_workload, Workload};
use dr_obs::MetricsSink;
use resilience_core::source::{DirSource, InMemorySource};
use resilience_core::{
    extract_and_coalesce_source_observed, extract_and_coalesce_source_prefetch_observed,
    CoalesceConfig,
};
use std::path::{Path, PathBuf};

/// Chunk pull target for the streamed path: small enough that peak
/// resident text is a tiny fraction of the corpus, large enough to keep
/// per-chunk overhead negligible.
pub const STREAM_CHUNK_BYTES: u64 = 64 * 1024;

/// Read the Stage I `peak_resident_bytes` gauge out of a recording
/// sink's export. `None` when the sink recorded no extract stage.
fn peak_resident_bytes(sink: &MetricsSink) -> Option<f64> {
    let doc = sink.export_json()?;
    let stages = doc.get("stages").and_then(Json::as_arr)?;
    stages
        .iter()
        .find(|s| s.get("stage").and_then(Json::as_str) == Some("extract"))
        .and_then(|s| s.get("gauges"))
        .and_then(|g| g.get("peak_resident_bytes"))
        .and_then(Json::as_f64)
}

/// One benchmark path. `pass` opens a fresh source, runs the pipeline
/// front half against the given sink, and returns the coalesced count.
/// The first pass records (for the gauge); timed passes run disabled.
fn run_path(
    name: &str,
    w: &Workload,
    min_wall_s: f64,
    chunk_bytes: Option<u64>,
    mut pass: impl FnMut(&MetricsSink) -> Result<usize, String>,
) -> Result<(usize, f64, Json), String> {
    let sink = MetricsSink::recording();
    let count = pass(&sink)?;
    let peak = peak_resident_bytes(&sink)
        .ok_or_else(|| format!("{name}: no peak_resident_bytes gauge recorded"))?;

    let disabled = MetricsSink::disabled();
    let mut pass_err = None;
    let m = measure(w, min_wall_s, || match pass(&disabled) {
        Ok(c) => c as u64,
        Err(e) => {
            pass_err = Some(e);
            0
        }
    });
    if let Some(e) = pass_err {
        return Err(format!("{name}: timed pass failed: {e}"));
    }

    let json = Json::obj(vec![
        ("path", Json::Str(name.to_string())),
        (
            "chunk_bytes",
            match chunk_bytes {
                Some(t) => Json::Num(t as f64),
                None => Json::Null,
            },
        ),
        ("coalesced", Json::Num(count as f64)),
        ("peak_resident_bytes", Json::Num(peak)),
        ("measurement", m.to_json()),
    ]);
    Ok((count, peak, json))
}

/// Scratch directory for the on-disk corpus; cleaned up on drop so a
/// failed benchmark cannot leak gigabytes into the temp dir.
pub(crate) struct ScratchDir(PathBuf);

impl ScratchDir {
    pub(crate) fn create(tag: &str) -> Result<ScratchDir, String> {
        let dir = std::env::temp_dir().join(format!("gpures-bench-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        Ok(ScratchDir(dir))
    }

    pub(crate) fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The `BENCH_stream.json` document (schema v2): in-memory vs.
/// `DirSource` streaming on the noisy workload — the streamed path run
/// twice, prefetch off (synchronous pulls) and prefetch on (the
/// [`resilience_core::source::Prefetcher`] I/O thread overlapping wave
/// *N+1* with extraction of wave *N*). Coalesced output is checked
/// identical across all three paths; the streamed paths' peak resident
/// bytes are checked *bounded* (≤ 1 wave synchronous, ≤ 2 waves
/// prefetched, never a fraction of the corpus) before any number is
/// reported. `prefetch_speedup` (dir-prefetch over dir-sync) and
/// `gap_close_pct` (how much of the dir-vs-memory throughput gap the
/// prefetch recovers) are the headline derived numbers. `smoke` shrinks
/// the corpus and timing floor for the tier-1 test.
pub fn stream_report(smoke: bool) -> Result<Json, String> {
    let (nodes, lines_per_node, min_wall_s) = if smoke {
        (3, 400, 0.0)
    } else {
        (8, 120_000, 0.4)
    };
    let w = noisy_workload(nodes, lines_per_node);

    let scratch = ScratchDir::create("stream")?;
    dr_report::files::write_node_logs(scratch.path(), &w.logs).map_err(|e| e.to_string())?;

    let (mem_count, mem_peak, mem_json) = run_path("in-memory", &w, min_wall_s, None, |sink| {
        let mut src = InMemorySource::new(&w.logs);
        extract_and_coalesce_source_observed(&mut src, CoalesceConfig::default(), None, sink)
            .map(|(c, _)| c.len())
            .map_err(|e| e.to_string())
    })?;
    let (dir_count, dir_peak, dir_json) = run_path(
        "dir-stream",
        &w,
        min_wall_s,
        Some(STREAM_CHUNK_BYTES),
        |sink| {
            let mut src = DirSource::open(scratch.path()).map_err(|e| e.to_string())?;
            extract_and_coalesce_source_observed(
                &mut src,
                CoalesceConfig::default(),
                Some(STREAM_CHUNK_BYTES),
                sink,
            )
            .map(|(c, _)| c.len())
            .map_err(|e| e.to_string())
        },
    )?;
    let (pf_count, pf_peak, pf_json) = run_path(
        "dir-stream-prefetch",
        &w,
        min_wall_s,
        Some(STREAM_CHUNK_BYTES),
        |sink| {
            let mut src = DirSource::open(scratch.path()).map_err(|e| e.to_string())?;
            extract_and_coalesce_source_prefetch_observed(
                &mut src,
                CoalesceConfig::default(),
                Some(STREAM_CHUNK_BYTES),
                sink,
            )
            .map(|(c, _)| c.len())
            .map_err(|e| e.to_string())
        },
    )?;

    if mem_count != dir_count || mem_count != pf_count {
        return Err(format!(
            "path divergence: in-memory coalesced {mem_count} errors, \
             dir-stream {dir_count}, dir-stream-prefetch {pf_count}"
        ));
    }
    // The bounded-memory claim, enforced: one wave of 64 KiB chunks
    // across the worker pool (two waves with prefetch), not the whole
    // corpus. (Skipped for smoke corpora small enough to fit in a
    // single wave.) The per-side slack covers chunk overshoot: a wave
    // closes on the first chunk that reaches the budget, and a chunk on
    // the first line that reaches the target.
    let wave = STREAM_CHUNK_BYTES * dr_par::max_workers() as u64;
    if w.bytes > 4 * wave {
        if dir_peak >= w.bytes as f64 / 2.0 {
            return Err(format!(
                "dir-stream peak resident bytes {dir_peak} is not bounded \
                 (corpus is {} bytes)",
                w.bytes
            ));
        }
        let slack = 2 * (STREAM_CHUNK_BYTES + 4096);
        if pf_peak > (2 * wave + slack) as f64 {
            return Err(format!(
                "dir-stream-prefetch peak resident bytes {pf_peak} exceeds the \
                 double-buffer bound of 2 waves ({} bytes + {slack} slack)",
                2 * wave
            ));
        }
    }

    let mem_mbps = mem_json
        .get("measurement")
        .and_then(|m| m.get("mb_per_s"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let dir_mbps = dir_json
        .get("measurement")
        .and_then(|m| m.get("mb_per_s"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let pf_mbps = pf_json
        .get("measurement")
        .and_then(|m| m.get("mb_per_s"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let prefetch_speedup = pf_mbps / dir_mbps.max(1e-12);
    // Of the throughput the synchronous dir path gives up vs. in-memory,
    // how much does prefetch win back? 100 = gap fully closed (or no gap).
    let gap = (mem_mbps - dir_mbps).max(0.0);
    let gap_close_pct = if gap <= 1e-12 {
        100.0
    } else {
        ((pf_mbps - dir_mbps) / gap * 100.0).clamp(0.0, 100.0)
    };

    let reduction = mem_peak / dir_peak.max(1.0);
    Ok(Json::obj(vec![
        ("schema", Json::Str("gpures-bench-stream/v2".to_string())),
        ("smoke", Json::Bool(smoke)),
        ("workload", Json::Str(w.name.to_string())),
        ("nodes", Json::Num(w.logs.len() as f64)),
        ("lines", Json::Num(w.lines as f64)),
        ("bytes", Json::Num(w.bytes as f64)),
        ("chunk_bytes", Json::Num(STREAM_CHUNK_BYTES as f64)),
        ("worker_pool", Json::Num(dr_par::max_workers() as f64)),
        ("paths", Json::Arr(vec![mem_json, dir_json, pf_json])),
        (
            "peak_reduction",
            Json::Num((reduction * 100.0).round() / 100.0),
        ),
        (
            "prefetch_speedup",
            Json::Num((prefetch_speedup * 100.0).round() / 100.0),
        ),
        (
            "gap_close_pct",
            Json::Num((gap_close_pct * 10.0).round() / 10.0),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_cross_checks_and_round_trips() {
        let doc = stream_report(true).expect("stream smoke succeeds");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("gpures-bench-stream/v2")
        );
        let paths = doc.get("paths").and_then(Json::as_arr).expect("paths");
        assert_eq!(paths.len(), 3);
        for p in paths {
            let peak = p
                .get("peak_resident_bytes")
                .and_then(Json::as_f64)
                .expect("peak gauge present");
            assert!(peak > 0.0, "gauge must record a positive high-water mark");
        }
        assert_eq!(Json::parse(&doc.render()).expect("parses"), doc);
    }
}
