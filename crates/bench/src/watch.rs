//! The tracked live-watch benchmark behind `gpures bench`
//! (`BENCH_watch.json`).
//!
//! `gpures watch` must keep up with a fleet's syslog volume from a
//! single polling thread, and its `snapshot()` must be cheap enough to
//! publish every poll. This bench drives a [`WatchSession`] over the
//! shared text campaign through the real live chain — extract →
//! event-time watermark → streaming coalesce → rolling-window fold —
//! and reports sustained ingest throughput plus the per-call snapshot
//! latency, so a regression in any live-path stage shows up in the
//! tracked artifact. Correctness is cross-checked: the drained
//! session's episode total must match the batch pipeline on the same
//! corpus (the same convergence the CLI relies on).

use crate::json::Json;
use dr_obs::clock::Stopwatch;
use dr_obs::MetricsSink;
use resilience_core::{GeneratorSource, StudyConfig, WatchConfig, WatchSession};

/// Watch configuration used by the bench: the tiny-fleet study window
/// with rolling-window defaults, so alert detectors and windowed
/// accumulators all do real work during the timed pass.
fn bench_config(nodes: u32, hours: f64) -> WatchConfig {
    WatchConfig {
        study: StudyConfig::ampere_study().with_window(hours, nodes),
        ..WatchConfig::default()
    }
}

/// One timed drain of the whole generated corpus through a fresh
/// session. Returns `(wall_s, session)` so callers can cross-check and
/// reuse the folded state for snapshot timing.
fn timed_drain(cfg: WatchConfig) -> Result<(f64, WatchSession), String> {
    let out = crate::text_campaign();
    let mut source = GeneratorSource::from_campaign(out);
    let mut session = WatchSession::new(cfg);
    let sink = MetricsSink::disabled();
    let watch = Stopwatch::start();
    session
        .run_observed(&mut source, &sink)
        .map_err(|e| e.to_string())?;
    Ok((watch.elapsed_s(), session))
}

/// The `BENCH_watch.json` document. `smoke` shrinks the snapshot-latency
/// sampling — the throughput number is then noisy but the full live
/// path is exercised.
pub fn watch_report(smoke: bool) -> Result<Json, String> {
    let out = crate::text_campaign();
    let nodes = out.fleet.node_count() as u32;
    let hours = out.observation_hours();
    let snap_iters: u32 = if smoke { 200 } else { 5_000 };

    // Warm-up drain (first-touch allocation, lazy regex compilation),
    // then the measured pass.
    timed_drain(bench_config(nodes, hours))?;
    let (ingest_s, session) = timed_drain(bench_config(nodes, hours))?;
    let stats = session.stats();
    let lines_per_s = if ingest_s > 0.0 {
        stats.lines as f64 / ingest_s
    } else {
        0.0
    };

    // Snapshot latency over the fully-folded state: the worst case a
    // follow-mode poll will pay.
    let watch = Stopwatch::start();
    let mut checksum = 0.0f64;
    for _ in 0..snap_iters {
        let s = session.snapshot();
        checksum += s.windowed_mtbe.count as f64 + s.offenders.len() as f64;
    }
    let snapshot_us = watch.elapsed_s() / snap_iters as f64 * 1e6;

    // Cross-check: the drained live session must agree with the batch
    // pipeline on the same corpus.
    let alerts = session.alerts().len() as u64;
    let live = session.finish_observed(&MetricsSink::disabled());
    let live_episodes = live.coalesced.len() as u64;
    let (batch, _) = resilience_core::PipelineBuilder::new(
        StudyConfig::ampere_study().with_window(hours, nodes),
    )
    .run_source(&mut GeneratorSource::from_campaign(out))
    .map_err(|e| e.to_string())?;
    if live_episodes != batch.coalesced.len() as u64 {
        return Err(format!(
            "watch bench diverged from batch: {live_episodes} live episodes vs {} batch",
            batch.coalesced.len()
        ));
    }

    Ok(Json::obj(vec![
        ("schema", Json::Str("gpures-bench-watch/v1".to_string())),
        ("smoke", Json::Bool(smoke)),
        ("nodes", Json::Num(nodes as f64)),
        ("lines", Json::Num(stats.lines as f64)),
        ("records", Json::Num(stats.records as f64)),
        ("episodes", Json::Num(live_episodes as f64)),
        ("alerts", Json::Num(alerts as f64)),
        ("late_dropped", Json::Num(stats.late_dropped as f64)),
        ("ingest_s", Json::Num((ingest_s * 1e6).round() / 1e6)),
        ("ingest_lines_per_s", Json::Num(lines_per_s.round())),
        ("snapshot_iters", Json::Num(snap_iters as f64)),
        ("snapshot_latency_us", Json::Num((snapshot_us * 1e3).round() / 1e3)),
        // Defeat dead-code elimination of the snapshot loop; also a
        // cheap determinism witness across runs of the same corpus.
        ("snapshot_checksum", Json::Num(checksum)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_builds_and_cross_checks() {
        let doc = watch_report(true).expect("smoke watch bench");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("gpures-bench-watch/v1")
        );
        assert!(doc.get("lines").and_then(Json::as_u64).expect("lines") > 0);
        assert!(doc.get("episodes").and_then(Json::as_u64).expect("episodes") > 0);
        assert_eq!(doc.get("late_dropped").and_then(Json::as_u64), Some(0));
    }
}
