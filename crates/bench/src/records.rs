//! The tracked record-store replay benchmark behind `gpures bench`.
//!
//! Produces `BENCH_records.json` at the repo root: the cost of teeing
//! extracted `ErrorRecord`s into the columnar store during Stage I
//! (`write_overhead_pct`), the store's size relative to the text corpus
//! (`compression_ratio`), and — the headline — how much faster a suite
//! of re-analyses runs when it replays the store through
//! [`resilience_core::store::StoreRecordSource`] instead of re-parsing
//! the syslog text (`replay_speedup`, ratcheted ≥ 20× in non-smoke
//! runs).
//!
//! The replay suite is the kind of parameter sweep the paper's
//! sensitivity analysis performs: re-coalescing at three Δt values and
//! a propagation-window ablation, five configurations total. Every
//! variant first runs both paths untimed and asserts the full
//! [`resilience_core::pipeline::StudyResults`] are identical (via their
//! `Debug` rendering — every analysis table at once), so a correctness
//! regression cannot hide behind a fast number. Workload generation
//! reuses [`crate::stage1::noisy_workload`] (arithmetic, not random).

use crate::json::Json;
use crate::stage1::{measure, noisy_workload, Measurement, Workload};
use crate::stream::ScratchDir;
use dr_obs::MetricsSink;
use dr_xid::Duration;
use resilience_core::source::DirSource;
use resilience_core::{
    extract_source_observed, extract_to_store, CoalesceConfig, PipelineBuilder, RecordStore,
    StudyConfig,
};

/// The replay sweep: re-coalesce at three Δt values, then ablate the
/// propagation window at the default Δt. `(name, coalesce Δt seconds,
/// propagation window seconds)`.
pub const REPLAY_VARIANTS: [(&str, u64, u64); 5] = [
    ("dt1", 1, 60),
    ("dt5", 5, 60),
    ("dt60", 60, 60),
    ("w30", 5, 30),
    ("w120", 5, 120),
];

/// Study configuration for one sweep point.
fn variant_config(dt_s: u64, window_s: u64, nodes: u32) -> StudyConfig {
    let mut cfg = StudyConfig::ampere_study().with_window(30.0 * 24.0, nodes);
    cfg.coalesce = CoalesceConfig {
        window: Duration::from_secs(dt_s),
        ..CoalesceConfig::default()
    };
    cfg.propagation_window = Duration::from_secs(window_s);
    cfg
}

/// Run `measure` over a fallible pass, surfacing the first error
/// instead of folding it into a bogus throughput number.
fn time_pass(
    w: &Workload,
    min_wall_s: f64,
    mut pass: impl FnMut() -> Result<u64, String>,
) -> Result<Measurement, String> {
    let mut pass_err = None;
    let m = measure(w, min_wall_s, || match pass() {
        Ok(n) => n,
        Err(e) => {
            pass_err = Some(e);
            0
        }
    });
    match pass_err {
        Some(e) => Err(e),
        None => Ok(m),
    }
}

/// The `BENCH_records.json` document (schema v1). `smoke` shrinks the
/// corpus and timing floor so the tier-1 test exercises the full path —
/// including every cross-check — in well under a second; the ≥ 20×
/// replay ratchet is only enforced on non-smoke runs, where the corpus
/// is large enough for the ratio to be meaningful.
pub fn records_report(smoke: bool) -> Result<Json, String> {
    let (nodes, lines_per_node, min_wall_s) = if smoke {
        (3, 400, 0.0)
    } else {
        (6, 100_000, 0.3)
    };
    let w = noisy_workload(nodes, lines_per_node);

    let scratch = ScratchDir::create("records")?;
    dr_report::files::write_node_logs(scratch.path(), &w.logs).map_err(|e| e.to_string())?;
    let store_path = scratch.path().join("records.grcs");

    // --- Write-path overhead: extract only vs. extract + store tee. ---
    let sink = MetricsSink::disabled();
    let extract_only = time_pass(&w, min_wall_s, || {
        let mut src = DirSource::open(scratch.path()).map_err(|e| e.to_string())?;
        extract_source_observed(&mut src, None, &sink)
            .map(|(per_node, _)| per_node.iter().map(|n| n.len() as u64).sum())
            .map_err(|e| e.to_string())
    })?;
    let extract_store = time_pass(&w, min_wall_s, || {
        let mut src = DirSource::open(scratch.path()).map_err(|e| e.to_string())?;
        extract_to_store(&mut src, None, &store_path)
            .map(|(summary, _)| summary.records)
            .map_err(|e| e.to_string())
    })?;
    if extract_only.records != extract_store.records {
        return Err(format!(
            "record count drifted between extract ({}) and extract-to-store ({})",
            extract_only.records, extract_store.records
        ));
    }
    let write_overhead_pct =
        (extract_store.wall_s - extract_only.wall_s) / extract_only.wall_s.max(1e-12) * 100.0;

    // The store the replay suite reads: the artifact of the last timed
    // write pass, re-validated through the full `open` path.
    let store = RecordStore::open(&store_path).map_err(|e| e.to_string())?;
    let store_bytes = std::fs::metadata(&store_path)
        .map_err(|e| format!("{}: {e}", store_path.display()))?
        .len();
    let compression_ratio = w.bytes as f64 / store_bytes.max(1) as f64;

    // --- Replay sweep: text re-parse vs. record-store replay. ---
    let mut variants = Vec::new();
    let mut text_wall = 0.0f64;
    let mut record_wall = 0.0f64;
    for &(name, dt_s, window_s) in &REPLAY_VARIANTS {
        let builder = PipelineBuilder::new(variant_config(dt_s, window_s, nodes));

        // Cross-check first: both paths must produce the same study,
        // table for table, before either is timed.
        let mut src = DirSource::open(scratch.path()).map_err(|e| e.to_string())?;
        let (text_results, _) = builder.run_source(&mut src).map_err(|e| e.to_string())?;
        let mut reader = store.reader(&store_path).map_err(|e| e.to_string())?;
        let record_results = builder
            .run_record_source(&mut reader)
            .map_err(|e| e.to_string())?;
        if format!("{text_results:?}") != format!("{record_results:?}") {
            return Err(format!(
                "variant `{name}`: record-store replay diverged from the text path \
                 ({} vs {} coalesced errors)",
                record_results.coalesced.len(),
                text_results.coalesced.len()
            ));
        }

        let text = time_pass(&w, min_wall_s, || {
            let mut src = DirSource::open(scratch.path()).map_err(|e| e.to_string())?;
            builder
                .run_source(&mut src)
                .map(|(r, _)| r.coalesced.len() as u64)
                .map_err(|e| e.to_string())
        })?;
        let records = time_pass(&w, min_wall_s, || {
            let mut reader = store.reader(&store_path).map_err(|e| e.to_string())?;
            builder
                .run_record_source(&mut reader)
                .map(|r| r.coalesced.len() as u64)
                .map_err(|e| e.to_string())
        })?;
        if text.records != records.records {
            return Err(format!(
                "variant `{name}`: coalesced count drifted between timed passes \
                 ({} vs {})",
                text.records, records.records
            ));
        }
        let speedup = text.wall_s / records.wall_s.max(1e-12);
        text_wall += text.wall_s;
        record_wall += records.wall_s;
        variants.push(Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("coalesce_dt_s", Json::Num(dt_s as f64)),
            ("propagation_window_s", Json::Num(window_s as f64)),
            ("coalesced", Json::Num(text.records as f64)),
            ("text", text.to_json()),
            ("records", records.to_json()),
            ("speedup", Json::Num((speedup * 100.0).round() / 100.0)),
        ]));
    }
    let replay_speedup = text_wall / record_wall.max(1e-12);
    if !smoke && replay_speedup < 20.0 {
        return Err(format!(
            "replay speedup {replay_speedup:.1}x is below the 20x ratchet \
             (text {text_wall:.3}s vs records {record_wall:.3}s across the sweep)"
        ));
    }

    Ok(Json::obj(vec![
        ("schema", Json::Str("gpures-bench-records/v1".to_string())),
        ("smoke", Json::Bool(smoke)),
        ("workload", Json::Str(w.name.to_string())),
        ("nodes", Json::Num(w.logs.len() as f64)),
        ("lines", Json::Num(w.lines as f64)),
        ("bytes", Json::Num(w.bytes as f64)),
        (
            "store",
            Json::obj(vec![
                ("bytes", Json::Num(store_bytes as f64)),
                ("blocks", Json::Num(store.blocks().len() as f64)),
                ("records", Json::Num(store.record_count() as f64)),
                ("gpus", Json::Num(store.gpu_count() as f64)),
            ]),
        ),
        (
            "compression_ratio",
            Json::Num((compression_ratio * 100.0).round() / 100.0),
        ),
        (
            "write",
            Json::obj(vec![
                ("extract", extract_only.to_json()),
                ("extract_and_store", extract_store.to_json()),
                (
                    "write_overhead_pct",
                    Json::Num((write_overhead_pct * 10.0).round() / 10.0),
                ),
            ]),
        ),
        ("variants", Json::Arr(variants)),
        (
            "replay_speedup",
            Json::Num((replay_speedup * 100.0).round() / 100.0),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_cross_checks_and_round_trips() {
        let doc = records_report(true).expect("records smoke succeeds");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("gpures-bench-records/v1")
        );
        let variants = doc.get("variants").and_then(Json::as_arr).expect("variants");
        assert_eq!(variants.len(), REPLAY_VARIANTS.len());
        for v in variants {
            let speedup = v.get("speedup").and_then(Json::as_f64).expect("speedup");
            assert!(speedup > 0.0);
            let coalesced = v.get("coalesced").and_then(Json::as_u64).expect("count");
            assert!(coalesced > 0, "variant coalesced nothing");
        }
        let store = doc.get("store").expect("store section");
        let records = store.get("records").and_then(Json::as_u64).expect("records");
        assert!(records > 0, "store captured no records");
        assert_eq!(Json::parse(&doc.render()).expect("parses"), doc);
    }
}
