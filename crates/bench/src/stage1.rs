//! The tracked Stage I throughput benchmark behind `gpures bench`.
//!
//! Two artifacts are produced at the repo root:
//!
//! * `BENCH_stage1.json` — single-thread extraction throughput of the
//!   optimized engine ([`dr_logscan::XidExtractor`]: prefiltered,
//!   allocation-free regex execution plus the byte-level header fast
//!   path) against the pre-optimization engine kept verbatim as
//!   [`dr_logscan::BaselineExtractor`], on a dense XID-heavy workload
//!   and a noisy realistic mix. The dense speedup is the ratcheted
//!   headline number (target ≥3×).
//! * `BENCH_pipeline.json` — end-to-end Stage I+II front half
//!   ([`resilience_core::shard::extract_and_coalesce`]: byte-balanced
//!   shards, replayed scanner state, k-way merge into the streaming
//!   coalescer) at one worker vs. the full `dr-par` pool.
//!
//! Workload generation is **arithmetic, not random**: the build runs in
//! environments where the `rand` crate may be stubbed, and the artifact's
//! workload section must not depend on which one is linked. Timings go
//! through `dr_obs::clock` — the workspace's one sanctioned wall-clock
//! module (that *is* the measurement). Every measured run cross-checks
//! record counts between engines and across worker counts, so a
//! correctness regression cannot hide behind a fast number.

use crate::json::Json;
use dr_logscan::{BaselineExtractor, XidExtractor};
use dr_obs::clock::Stopwatch;
use dr_xid::syslog::{format_line, format_noise_line};
use dr_xid::{Duration, ErrorDetail, ErrorRecord, GpuId, NodeId, Timestamp, Xid};
use resilience_core::{extract_and_coalesce, CoalesceConfig};

/// A generated multi-node syslog corpus with its exact size.
pub struct Workload {
    pub name: &'static str,
    pub logs: Vec<(NodeId, Vec<String>)>,
    pub lines: u64,
    pub bytes: u64,
}

impl Workload {
    fn from_logs(name: &'static str, logs: Vec<(NodeId, Vec<String>)>) -> Workload {
        let lines = logs.iter().map(|(_, l)| l.len() as u64).sum();
        let bytes = logs
            .iter()
            .flat_map(|(_, l)| l.iter())
            .map(|l| l.len() as u64 + 1)
            .sum();
        Workload {
            name,
            logs,
            lines,
            bytes,
        }
    }
}

/// Push one node's deterministic line mix. `xid_period` controls density:
/// every `xid_period`-th slot is an NVRM XID line, the rest alternate
/// syslog noise and header-less garbage. The timestamp stride forces
/// periodic year rollovers so the scanner's serial state is exercised.
fn fill_node(lines: &mut Vec<String>, node: NodeId, slots: u64, xid_period: u64, seed: u64) {
    let mut t = Timestamp::EPOCH + Duration::from_hours(seed % 240);
    for k in 0..slots {
        let mix = k.wrapping_mul(0x9e37_79b9).wrapping_add(seed);
        if k % xid_period == 0 {
            let xid = Xid::ALL[(mix % Xid::ALL.len() as u64) as usize];
            let rec = ErrorRecord::new(
                t,
                GpuId::at_slot(node, (mix % 8) as usize),
                xid,
                ErrorDetail::new((mix % 5) as u16, (mix % 11) as u32),
            );
            lines.push(format_line(&rec, (mix % 40_000) as u32));
        } else if k % 13 == 5 {
            lines.push("stray line without a syslog header".to_string());
        } else {
            lines.push(format_noise_line(t, node, (mix % 5) as u8));
        }
        // ~100 days every 61st slot: several rollovers per node.
        t = t + Duration::from_hours(if k % 61 == 0 { 2_400 } else { 1 });
    }
}

/// XID-heavy corpus: every line carries the `NVRM: Xid` needle, so the
/// regex engines — not the prefilter — dominate. This is the workload the
/// ≥3× single-thread ratchet is measured on.
pub fn dense_workload(nodes: u32, lines_per_node: u64) -> Workload {
    let logs = (0..nodes)
        .map(|n| {
            let mut lines = Vec::with_capacity(lines_per_node as usize);
            fill_node(&mut lines, NodeId(n), lines_per_node, 1, n as u64 * 7 + 1);
            (NodeId(n), lines)
        })
        .collect();
    Workload::from_logs("dense-xid", logs)
}

/// Realistic mix: one XID line in sixteen, the rest syslog noise and
/// garbage — the 202-GB-scale shape where the literal prefilter and the
/// byte header parser carry the load.
pub fn noisy_workload(nodes: u32, lines_per_node: u64) -> Workload {
    let logs = (0..nodes)
        .map(|n| {
            let mut lines = Vec::with_capacity(lines_per_node as usize);
            fill_node(&mut lines, NodeId(n), lines_per_node, 16, n as u64 * 11 + 3);
            (NodeId(n), lines)
        })
        .collect();
    Workload::from_logs("noisy-mix", logs)
}

/// One timed configuration: wall time plus derived throughput.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    pub wall_s: f64,
    pub reps: u32,
    pub records: u64,
    pub lines_per_s: f64,
    pub mb_per_s: f64,
}

impl Measurement {
    pub(crate) fn to_json(self) -> Json {
        Json::obj(vec![
            ("wall_s", Json::Num(self.wall_s)),
            ("reps", Json::Num(self.reps as f64)),
            ("records", Json::Num(self.records as f64)),
            ("lines_per_s", Json::Num(self.lines_per_s.round())),
            ("mb_per_s", Json::Num((self.mb_per_s * 100.0).round() / 100.0)),
        ])
    }
}

/// Repeat `f` until at least `min_wall_s` of cumulative wall time (always
/// at least once), then derive per-rep throughput. `f` returns the record
/// count of one full pass over the workload.
pub(crate) fn measure(w: &Workload, min_wall_s: f64, mut f: impl FnMut() -> u64) -> Measurement {
    let mut total = 0.0f64;
    let mut reps = 0u32;
    let mut records = 0u64;
    while total < min_wall_s || reps == 0 {
        let watch = Stopwatch::start();
        records = f();
        total += watch.elapsed_s();
        reps += 1;
    }
    let per_rep = total / reps as f64;
    Measurement {
        wall_s: per_rep,
        reps,
        records,
        lines_per_s: w.lines as f64 / per_rep.max(1e-12),
        mb_per_s: w.bytes as f64 / (1024.0 * 1024.0) / per_rep.max(1e-12),
    }
}

/// Single-thread Stage I: optimized engine vs. the pre-optimization
/// baseline on one workload. Record streams are cross-checked; a
/// divergence fails the benchmark rather than reporting a wrong speedup.
pub fn compare_engines(w: &Workload, min_wall_s: f64) -> Result<Json, String> {
    let run_baseline = || -> u64 {
        let mut n = 0u64;
        for (_, lines) in &w.logs {
            let mut ex = BaselineExtractor::new();
            n += ex.extract_all(lines.iter().map(|s| s.as_str())).len() as u64;
        }
        n
    };
    let run_optimized = || -> u64 {
        let mut n = 0u64;
        for (_, lines) in &w.logs {
            let mut ex = XidExtractor::new();
            n += ex.extract_all(lines.iter().map(|s| s.as_str())).len() as u64;
        }
        n
    };

    // Correctness gate before any timing: identical record streams.
    let reference: Vec<Vec<ErrorRecord>> = w
        .logs
        .iter()
        .map(|(_, lines)| {
            let mut ex = BaselineExtractor::new();
            ex.extract_all(lines.iter().map(|s| s.as_str()))
        })
        .collect();
    for ((_, lines), expect) in w.logs.iter().zip(&reference) {
        let mut ex = XidExtractor::new();
        let got = ex.extract_all(lines.iter().map(|s| s.as_str()));
        if got != *expect {
            return Err(format!(
                "engine divergence on workload `{}`: optimized produced {} records, \
                 baseline {}",
                w.name,
                got.len(),
                expect.len()
            ));
        }
    }

    let baseline = measure(w, min_wall_s, run_baseline);
    let optimized = measure(w, min_wall_s, run_optimized);
    if baseline.records != optimized.records {
        return Err(format!(
            "record count drifted between timed passes on `{}`",
            w.name
        ));
    }
    let speedup = optimized.lines_per_s / baseline.lines_per_s.max(1e-12);
    Ok(Json::obj(vec![
        ("name", Json::Str(w.name.to_string())),
        ("nodes", Json::Num(w.logs.len() as f64)),
        ("lines", Json::Num(w.lines as f64)),
        ("bytes", Json::Num(w.bytes as f64)),
        ("records", Json::Num(baseline.records as f64)),
        ("baseline", baseline.to_json()),
        ("optimized", optimized.to_json()),
        ("speedup", Json::Num((speedup * 100.0).round() / 100.0)),
    ]))
}

/// The `BENCH_stage1.json` document: both workloads, single thread.
/// `smoke` shrinks the corpus and the timing floor so the tier-1 test can
/// exercise the full path in well under a second.
pub fn stage1_report(smoke: bool) -> Result<Json, String> {
    let (nodes, lines_per_node, min_wall_s) = if smoke {
        (2, 400, 0.0)
    } else {
        (4, 40_000, 0.4)
    };
    let workloads = [
        dense_workload(nodes, lines_per_node),
        noisy_workload(nodes, lines_per_node),
    ];
    let mut rows = Vec::new();
    for w in &workloads {
        rows.push(compare_engines(w, min_wall_s)?);
    }
    Ok(Json::obj(vec![
        ("schema", Json::Str("gpures-bench-stage1/v1".to_string())),
        ("smoke", Json::Bool(smoke)),
        ("threads", Json::Num(1.0)),
        ("workloads", Json::Arr(rows)),
    ]))
}

/// The worker matrix every `BENCH_pipeline.json` run sweeps. Fixed —
/// not machine-derived — so artifacts from different hosts are
/// comparable row for row.
pub const WORKER_MATRIX: [usize; 4] = [1, 2, 4, 8];

/// Scaling efficiency of a run: measured speedup over the 1-worker row,
/// normalized by the parallelism that was actually available —
/// `min(requested workers, machine pool)` — so a 4-worker row on a
/// 2-core host is judged against 2×, not 4×.
fn scaling_efficiency(lps: f64, lps_one: f64, requested: usize, pool: usize) -> f64 {
    let effective = requested.min(pool).max(1);
    (lps / lps_one.max(1e-12)) / effective as f64
}

/// The `BENCH_pipeline.json` document (schema v2): sharded
/// extract-and-coalesce on the noisy workload swept across the
/// [`WORKER_MATRIX`], with coalesced output checked identical at every
/// worker count. Each run carries its `scaling_efficiency` (speedup over
/// the 1-worker row per *effective* worker); the top-level `scaling` and
/// `scaling_efficiency` are derived from the matrix endpoints. A
/// non-smoke report with fewer than two runs is an error — the scaling
/// number would be vacuous. The artifact records the host's
/// `available_parallelism` alongside the `dr-par` pool size so scaling
/// rows from different machines can be judged fairly.
pub fn pipeline_report(smoke: bool) -> Result<Json, String> {
    let (nodes, lines_per_node, min_wall_s) = if smoke {
        (3, 400, 0.0)
    } else {
        (6, 60_000, 0.4)
    };
    let w = noisy_workload(nodes, lines_per_node);
    // Machine parallelism, snapshotted before any override is in force.
    let pool = dr_par::max_workers();

    let mut runs = Vec::new();
    let mut reference: Option<(usize, u64)> = None;
    let mut lines_per_s: Vec<f64> = Vec::new();
    for &n in &WORKER_MATRIX {
        dr_par::set_worker_override(Some(n));
        let (coalesced, stats) = extract_and_coalesce(&w.logs, CoalesceConfig::default(), None);
        let count = coalesced.len();
        let m = measure(&w, min_wall_s, || {
            let (c, _) = extract_and_coalesce(&w.logs, CoalesceConfig::default(), None);
            c.len() as u64
        });
        dr_par::set_worker_override(None);
        match reference {
            None => reference = Some((count, stats.xid_lines)),
            Some(expect) if expect != (count, stats.xid_lines) => {
                return Err(format!(
                    "worker-count divergence: {n} workers coalesced {count} errors, \
                     1 worker coalesced {}",
                    expect.0
                ));
            }
            Some(_) => {}
        }
        let lps_one = *lines_per_s.first().unwrap_or(&m.lines_per_s);
        let eff = scaling_efficiency(m.lines_per_s, lps_one, n, pool);
        lines_per_s.push(m.lines_per_s);
        runs.push(Json::obj(vec![
            ("workers", Json::Num(n as f64)),
            ("effective_workers", Json::Num(n.min(pool).max(1) as f64)),
            ("coalesced", Json::Num(count as f64)),
            (
                "scaling_efficiency",
                Json::Num((eff * 1000.0).round() / 1000.0),
            ),
            ("measurement", m.to_json()),
        ]));
    }
    if !smoke && runs.len() < 2 {
        return Err(format!(
            "pipeline report needs a worker matrix (got {} run(s)); \
             the scaling number would be vacuous",
            runs.len()
        ));
    }
    let (scaling, efficiency) = match (lines_per_s.first(), lines_per_s.last()) {
        (Some(&one), Some(&full)) => {
            let top = *WORKER_MATRIX.last().unwrap_or(&1);
            (
                full / one.max(1e-12),
                scaling_efficiency(full, one, top, pool),
            )
        }
        _ => (1.0, 1.0),
    };
    Ok(Json::obj(vec![
        ("schema", Json::Str("gpures-bench-pipeline/v2".to_string())),
        ("smoke", Json::Bool(smoke)),
        ("workload", Json::Str(w.name.to_string())),
        ("nodes", Json::Num(w.logs.len() as f64)),
        ("lines", Json::Num(w.lines as f64)),
        ("bytes", Json::Num(w.bytes as f64)),
        ("worker_pool", Json::Num(pool as f64)),
        (
            "available_parallelism",
            Json::Num(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1) as f64,
            ),
        ),
        (
            "worker_matrix",
            Json::Arr(WORKER_MATRIX.iter().map(|&n| Json::Num(n as f64)).collect()),
        ),
        ("runs", Json::Arr(runs)),
        ("scaling", Json::Num((scaling * 100.0).round() / 100.0)),
        (
            "scaling_efficiency",
            Json::Num((efficiency * 1000.0).round() / 1000.0),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_and_sized() {
        let a = dense_workload(2, 100);
        let b = dense_workload(2, 100);
        assert_eq!(a.logs, b.logs, "generation must be reproducible");
        assert_eq!(a.lines, 200);
        assert!(a.bytes > 0);
        // Dense means every line carries the needle.
        assert!(a
            .logs
            .iter()
            .flat_map(|(_, l)| l.iter())
            .all(|l| l.contains("NVRM: Xid")));
        let n = noisy_workload(2, 160);
        let xid = n
            .logs
            .iter()
            .flat_map(|(_, l)| l.iter())
            .filter(|l| l.contains("NVRM: Xid"))
            .count();
        assert_eq!(xid, 20, "1 in 16 lines is an XID line");
    }

    #[test]
    fn smoke_reports_pass_their_cross_checks() {
        let s1 = stage1_report(true).expect("stage1 smoke succeeds");
        let rows = s1.get("workloads").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        for row in rows {
            let speedup = row.get("speedup").and_then(Json::as_f64).expect("speedup");
            assert!(speedup > 0.0);
            let records = row.get("records").and_then(Json::as_u64).expect("records");
            assert!(records > 0, "workload produced no records");
        }
        let pipe = pipeline_report(true).expect("pipeline smoke succeeds");
        assert_eq!(
            pipe.get("schema").and_then(Json::as_str),
            Some("gpures-bench-pipeline/v2")
        );
        let runs = pipe.get("runs").and_then(Json::as_arr).expect("runs");
        assert_eq!(runs.len(), WORKER_MATRIX.len(), "one run per matrix entry");
        for run in runs {
            let eff = run
                .get("scaling_efficiency")
                .and_then(Json::as_f64)
                .expect("per-run efficiency");
            assert!(eff > 0.0);
        }
        // Round-trip: the artifact the CLI writes must re-parse.
        assert_eq!(Json::parse(&pipe.render()).expect("parses"), pipe);
    }
}
