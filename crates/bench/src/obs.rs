//! The tracked observability-overhead benchmark behind `gpures bench`
//! (`BENCH_obs.json`).
//!
//! The dr-obs contract is that instrumentation is cheap enough to leave
//! on: counters are relaxed atomics, spans are recorded at chunk
//! granularity, and the per-line hot loop is untouched. This benchmark
//! enforces the "steady-state overhead below 5 %" budget the design
//! documents: it runs the sharded Stage I+II front half
//! ([`resilience_core::extract_and_coalesce_observed`]) on the noisy
//! workload twice — once with a disabled sink (the legacy path) and once
//! with a recording sink — cross-checks that the coalesced output is
//! identical (the write-only invariant), and reports the throughput
//! delta as `overhead_pct`.

use crate::json::Json;
use crate::stage1::{measure, noisy_workload};
use dr_obs::MetricsSink;
use resilience_core::{extract_and_coalesce_observed, CoalesceConfig};

/// The `BENCH_obs.json` document. `smoke` shrinks the corpus and drops
/// the timing floor so the tier-1 test exercises the full path quickly;
/// smoke numbers are meaningless but the schema and the output
/// cross-check are real.
pub fn obs_report(smoke: bool) -> Result<Json, String> {
    let (nodes, lines_per_node, min_wall_s) = if smoke {
        (3, 400, 0.0)
    } else {
        (6, 60_000, 0.6)
    };
    let w = noisy_workload(nodes, lines_per_node);

    let run = |sink: &MetricsSink| {
        let (coalesced, stats) =
            extract_and_coalesce_observed(&w.logs, CoalesceConfig::default(), None, sink);
        (coalesced.len() as u64, stats.xid_lines)
    };

    // Correctness gate before any timing: attaching a recording sink must
    // not change the output at all.
    let off_out = run(&MetricsSink::disabled());
    let on_out = run(&MetricsSink::recording());
    if off_out != on_out {
        return Err(format!(
            "observability changed results on `{}`: disabled {:?}, recording {:?}",
            w.name, off_out, on_out
        ));
    }

    let disabled = measure(&w, min_wall_s, || run(&MetricsSink::disabled()).0);
    // A fresh recording sink per rep, like a real `--metrics` run.
    let recording = measure(&w, min_wall_s, || run(&MetricsSink::recording()).0);
    let overhead_pct =
        (disabled.lines_per_s / recording.lines_per_s.max(1e-12) - 1.0) * 100.0;

    Ok(Json::obj(vec![
        ("schema", Json::Str("gpures-bench-obs/v1".to_string())),
        ("smoke", Json::Bool(smoke)),
        ("workload", Json::Str(w.name.to_string())),
        ("nodes", Json::Num(w.logs.len() as f64)),
        ("lines", Json::Num(w.lines as f64)),
        ("bytes", Json::Num(w.bytes as f64)),
        ("coalesced", Json::Num(off_out.0 as f64)),
        ("disabled", disabled.to_json()),
        ("recording", recording.to_json()),
        (
            "overhead_pct",
            Json::Num((overhead_pct * 100.0).round() / 100.0),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_cross_checks_and_round_trips() {
        let doc = obs_report(true).expect("obs smoke succeeds");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("gpures-bench-obs/v1")
        );
        assert!(doc.get("coalesced").and_then(Json::as_u64).expect("count") > 0);
        assert!(doc.get("overhead_pct").and_then(Json::as_f64).is_some());
        assert_eq!(Json::parse(&doc.render()).expect("parses"), doc);
    }
}
