//! # dr-bench — shared fixtures for the benchmark suite
//!
//! Every bench regenerates one of the paper's tables or figures (see
//! DESIGN.md's experiment index). Campaign generation is *not* what we
//! want to time in the analysis benches, so fixtures are built once per
//! process and shared via `OnceLock`.
//!
//! [`stage1`] is different: it is the tracked Stage I throughput
//! benchmark behind `gpures bench`, producing the committed
//! `BENCH_stage1.json` / `BENCH_pipeline.json` artifacts via the tiny
//! dependency-free [`json`] emitter (now hosted by `dr-obs` and
//! re-exported here so existing `dr_bench::json` paths keep working).
//! [`obs`] measures the observability layer itself, producing
//! `BENCH_obs.json` with the metrics-on vs metrics-off overhead.
//! [`stream`] measures bounded-memory streaming ingestion, producing
//! `BENCH_stream.json` with in-memory vs `DirSource` throughput and
//! peak resident chunk bytes.
//! [`records`] measures the columnar `ErrorRecord` store, producing
//! `BENCH_records.json` with the write-tee overhead and the replay
//! speedup of re-analyzing from records instead of re-parsing text.
//! [`lint`] times the dr-lint symbol-graph analysis itself, producing
//! `BENCH_lint.json` with the graph scale and findings-by-pass counts.
//! [`sweep`] times the scenario-battery driver behind `gpures sweep`,
//! producing `BENCH_sweep.json` with the serial vs full-pool speedup.
//! [`watch`] times the live-tail path behind `gpures watch`, producing
//! `BENCH_watch.json` with sustained ingest throughput and per-call
//! snapshot latency.

pub mod lint;
pub mod obs;
pub mod records;
pub mod stage1;
pub mod stream;
pub mod sweep;
pub mod watch;

pub use dr_obs::json;

use dr_cluster::DeltaShape;
use dr_faults::{Campaign, CampaignConfig, CampaignOutput};
use dr_slurm::{apply_errors, DrainWindows, JobLoadConfig, JobRecord, MaskingModel, Scheduler};
use dr_xid::Duration;
use rand::prelude::*;
use std::sync::OnceLock;

/// A benchmark-sized study: the full Ampere fleet over 60 days (~4.5 k
/// coalesced errors, ~700 k raw records) — big enough for meaningful
/// throughput numbers, small enough for Criterion's sampling.
pub fn meso_campaign() -> &'static CampaignOutput {
    static OUT: OnceLock<CampaignOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        let cfg = CampaignConfig {
            duration_days: 60.0,
            ..CampaignConfig::ampere_study(7)
        };
        Campaign::run(cfg)
    })
}

/// A text-bearing small campaign for Stage I extraction benches.
pub fn text_campaign() -> &'static CampaignOutput {
    static OUT: OnceLock<CampaignOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        let mut cfg = CampaignConfig {
            shape: DeltaShape::tiny(),
            duration_days: 120.0,
            ..CampaignConfig::tiny(11)
        };
        cfg.text.nodes = 6;
        cfg.text.noise_per_node_hour = 4.0;
        Campaign::run(cfg)
    })
}

/// The matching workload with error impact applied (for Table 2 / Fig 9).
pub fn meso_jobs() -> &'static Vec<JobRecord> {
    static JOBS: OnceLock<Vec<JobRecord>> = OnceLock::new();
    JOBS.get_or_init(|| {
        let out = meso_campaign();
        let drains = DrainWindows::from_events(
            out.events.iter().map(|e| (e.gpu.node, e.at)),
            Duration::from_hours(24),
        );
        let cfg = JobLoadConfig {
            total_jobs: 100_000,
            duration_days: 60.0,
            ..JobLoadConfig::delta_study(13)
        };
        let mut schedule = Scheduler::new(cfg).run(&out.fleet, &drains);
        let mut rng = StdRng::seed_from_u64(17);
        apply_errors(&mut schedule.jobs, &out.events, &MaskingModel::default(), &mut rng);
        schedule.jobs
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert!(!meso_campaign().records.is_empty());
        assert!(!text_campaign().text_logs.is_empty());
        assert!(!meso_jobs().is_empty());
    }
}
