//! The tracked static-analysis benchmark behind `gpures bench`
//! (`BENCH_lint.json`).
//!
//! dr-lint v2 lexes the whole workspace, parses items, builds the
//! symbol graph, and runs three interprocedural passes on every
//! `cargo test` — that only stays viable while the full analysis
//! remains decisively sub-second. This benchmark times the complete
//! `run_on` pipeline over the real tree against the committed baseline
//! and reports the graph scale (files, symbols, call edges) plus a
//! findings-by-pass breakdown, so a blowup in any layer shows up in
//! the tracked artifact rather than as a mysteriously slow test suite.

use crate::json::Json;
use dr_lint::{load_workspace, passes, run_on, Baseline};
use dr_obs::clock::Stopwatch;
use std::path::Path;

/// The `BENCH_lint.json` document. `smoke` drops the timing floor to a
/// single rep; the analysis itself is identical, so graph scale and
/// findings are real even in smoke mode.
pub fn lint_report(smoke: bool, root: &Path) -> Result<Json, String> {
    let min_wall_s = if smoke { 0.0 } else { 0.5 };

    let watch = Stopwatch::start();
    let ws = load_workspace(root)?;
    let load_s = watch.elapsed_s();
    if ws.files.is_empty() {
        return Err(format!(
            "no .rs files under {} — wrong root for the lint bench?",
            root.display()
        ));
    }

    let baseline_path = root.join("dr-lint.baseline");
    let baseline = if baseline_path.is_file() {
        Baseline::load(&baseline_path)?
    } else {
        Baseline::default()
    };

    let mut total = 0.0f64;
    let mut reps = 0u32;
    let report = loop {
        let watch = Stopwatch::start();
        let report = run_on(&ws, &baseline);
        total += watch.elapsed_s();
        reps += 1;
        if total >= min_wall_s {
            break report;
        }
    };
    let wall_s = total / reps as f64;

    // Findings per pass, before baseline suppression, zero-filled so
    // the artifact names every registered pass.
    let by_pass: Vec<(&'static str, Json)> = passes::all()
        .iter()
        .map(|p| {
            let id = p.id();
            let n: usize = report
                .groups
                .iter()
                .filter(|((lint, _), _)| lint == id)
                .map(|(_, c)| *c)
                .sum();
            (id, Json::Num(n as f64))
        })
        .collect();

    Ok(Json::obj(vec![
        ("schema", Json::Str("gpures-bench-lint/v1".to_string())),
        ("smoke", Json::Bool(smoke)),
        ("files", Json::Num(report.files as f64)),
        ("symbols", Json::Num(report.symbols as f64)),
        ("call_edges", Json::Num(report.call_edges as f64)),
        ("load_s", Json::Num((load_s * 1e6).round() / 1e6)),
        ("wall_s", Json::Num((wall_s * 1e6).round() / 1e6)),
        ("reps", Json::Num(reps as f64)),
        ("active_findings", Json::Num(report.active.len() as f64)),
        ("findings_by_pass", Json::obj(by_pass)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_root_is_an_error_not_a_panic() {
        let r = lint_report(true, Path::new("/nonexistent/lint-bench-root"));
        assert!(r.is_err());
    }
}
