//! HBM/ECC memory RAS state machine (Figure 3 / Figure 7).
//!
//! The flow for an uncorrectable (double-bit) error:
//!
//! 1. **Row remapping** — if the bank has a spare row left, the faulty row
//!    is remapped (XID 63, RRE) and the GPU stays operable (the remap takes
//!    effect on the next reset). Ampere also remaps after two corrected
//!    SBEs at the same address.
//! 2. **Row-remapping failure** — spares exhausted (XID 64, RRF).
//! 3. After an RRF, A100/H100 attempt **error containment**: on success the
//!    affected processes are terminated and the page is dynamically
//!    offlined (XID 94); if containment is not triggered the GPU enters an
//!    inoperable error state. A40 has neither mechanism — an RRF fails the
//!    GPU outright.
//!
//! Uncontained memory errors (XID 95) are modeled separately at the device
//! level: the paper observed they arise from multiple SBEs rather than the
//! DBE path (Section 4.4.3) and appear without preceding or succeeding
//! errors.

use crate::arch::GpuArch;
// dr-lint: allow(determinism): per-address SBE counter; entry-only hot path
use std::collections::HashMap;

/// Result of pushing one double-bit error through the RAS flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DbeOutcome {
    /// Spare row consumed; RRE logged; GPU operable (reset pending).
    Remapped,
    /// Spares exhausted and containment succeeded: RRF + contained error;
    /// affected processes killed; page offlined; GPU operable.
    ContainedAfterRrf,
    /// Spares exhausted and containment was not triggered: RRF logged and
    /// the GPU is in an inoperable error state.
    FailedAfterRrf,
    /// Spares exhausted but neither containment nor failure manifested
    /// (the ~11 % residue in Figure 7): RRF logged, GPU nominally operable.
    LatentAfterRrf,
}

/// Per-GPU memory RAS state.
#[derive(Clone, Debug)]
pub struct MemoryRas {
    arch: GpuArch,
    /// Remaining spare rows per bank.
    spares: Vec<u16>,
    /// Corrected-SBE counts per (bank, row); two at the same address
    /// trigger a remap on Ampere/Hopper. Entry-only access on the SBE
    /// hot path — iteration order is never observed.
    // dr-lint: allow(determinism): keyed entry() only, never iterated
    sbe_counts: HashMap<(u16, u32), u32>,
    /// Rows remapped so far (RRE count).
    remap_events: u64,
    /// Remap failures so far (RRF count).
    remap_failures: u64,
    /// Dynamically offlined pages.
    offlined: Vec<(u16, u32)>,
    /// Total corrected single-bit errors (not logged as XIDs).
    sbe_corrected: u64,
}

impl MemoryRas {
    /// Fresh memory with the architecture's full spare inventory.
    pub fn new(arch: GpuArch) -> Self {
        let caps = arch.caps();
        MemoryRas {
            arch,
            spares: vec![caps.spare_rows_per_bank; caps.banks as usize],
            // dr-lint: allow(determinism): keyed entry() only, never iterated
            sbe_counts: HashMap::new(),
            remap_events: 0,
            remap_failures: 0,
            offlined: Vec::new(),
            sbe_corrected: 0,
        }
    }

    /// Memory with a reduced spare inventory — models a defective part
    /// whose factory spares are (nearly) used up, the population that
    /// produces the RRF cases in the field data.
    pub fn with_spares(arch: GpuArch, spares_per_bank: u16) -> Self {
        let caps = arch.caps();
        MemoryRas {
            spares: vec![spares_per_bank; caps.banks as usize],
            ..MemoryRas::new(arch)
        }
    }

    pub fn arch(&self) -> GpuArch {
        self.arch
    }
    pub fn remap_events(&self) -> u64 {
        self.remap_events
    }
    pub fn remap_failures(&self) -> u64 {
        self.remap_failures
    }
    pub fn offlined_pages(&self) -> &[(u16, u32)] {
        &self.offlined
    }
    pub fn sbe_corrected(&self) -> u64 {
        self.sbe_corrected
    }

    /// Remaining spares in `bank` (None if the bank index is out of range).
    pub fn spares_left(&self, bank: u16) -> Option<u16> {
        self.spares.get(bank as usize).copied()
    }

    /// Handle a corrected single-bit error. Returns `true` if this was the
    /// second SBE at the same address and triggered a row remap attempt
    /// (the caller then records the RRE/RRF like for a DBE).
    pub fn correct_sbe(&mut self, bank: u16, row: u32) -> bool {
        self.sbe_corrected += 1;
        let count = self.sbe_counts.entry((bank, row)).or_insert(0);
        *count += 1;
        if *count == 2 && self.arch.caps().dynamic_page_offlining {
            // Two corrected errors at one address: proactive remap.
            *count = 0;
            true
        } else {
            false
        }
    }

    /// Attempt a row remap for `bank`/`row`: consumes a spare on success.
    fn try_remap(&mut self, bank: u16) -> bool {
        match self.spares.get_mut(bank as usize) {
            Some(s) if *s > 0 => {
                *s -= 1;
                self.remap_events += 1;
                true
            }
            _ => {
                self.remap_failures += 1;
                false
            }
        }
    }

    /// Push a double-bit error through the recovery flow (Figure 7).
    ///
    /// `containment_roll` is a pre-drawn uniform [0,1) sample deciding the
    /// post-RRF branch (containment vs error state vs latent); probability
    /// knobs live in [`crate::device::RasTuning`] and are applied by the
    /// caller so this state machine stays deterministic.
    pub fn handle_dbe(
        &mut self,
        bank: u16,
        row: u32,
        containment_roll: f64,
        p_contained: f64,
        p_error_state: f64,
    ) -> DbeOutcome {
        if self.try_remap(bank) {
            return DbeOutcome::Remapped;
        }
        // Spares exhausted: RRF path.
        if !self.arch.caps().error_containment {
            // A40: no containment — RRF means the GPU failed.
            return DbeOutcome::FailedAfterRrf;
        }
        if containment_roll < p_contained {
            if self.arch.caps().dynamic_page_offlining {
                self.offlined.push((bank, row));
            }
            DbeOutcome::ContainedAfterRrf
        } else if containment_roll < p_contained + p_error_state {
            DbeOutcome::FailedAfterRrf
        } else {
            DbeOutcome::LatentAfterRrf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn remap_consumes_spares_then_fails() {
        let mut m = MemoryRas::with_spares(GpuArch::A100, 2);
        assert_eq!(m.spares_left(0), Some(2));
        assert_eq!(m.handle_dbe(0, 1, 0.0, 0.43, 0.46), DbeOutcome::Remapped);
        assert_eq!(m.handle_dbe(0, 2, 0.0, 0.43, 0.46), DbeOutcome::Remapped);
        assert_eq!(m.spares_left(0), Some(0));
        // Third DBE in the same bank: RRF, containment roll 0.0 -> contained.
        assert_eq!(
            m.handle_dbe(0, 3, 0.0, 0.43, 0.46),
            DbeOutcome::ContainedAfterRrf
        );
        assert_eq!(m.remap_events(), 2);
        assert_eq!(m.remap_failures(), 1);
        assert_eq!(m.offlined_pages(), &[(0, 3)]);
    }

    #[test]
    fn rrf_branches_follow_roll() {
        let mut m = MemoryRas::with_spares(GpuArch::A100, 0);
        assert_eq!(
            m.handle_dbe(0, 1, 0.42, 0.43, 0.46),
            DbeOutcome::ContainedAfterRrf
        );
        assert_eq!(
            m.handle_dbe(0, 2, 0.60, 0.43, 0.46),
            DbeOutcome::FailedAfterRrf
        );
        assert_eq!(
            m.handle_dbe(0, 3, 0.95, 0.43, 0.46),
            DbeOutcome::LatentAfterRrf
        );
        assert_eq!(m.remap_failures(), 3);
    }

    #[test]
    fn a40_rrf_fails_the_gpu() {
        let mut m = MemoryRas::with_spares(GpuArch::A40, 0);
        // Even a roll that would contain on A100 fails on A40.
        assert_eq!(
            m.handle_dbe(0, 1, 0.0, 0.43, 0.46),
            DbeOutcome::FailedAfterRrf
        );
        assert!(m.offlined_pages().is_empty());
    }

    #[test]
    fn banks_have_independent_spares() {
        let mut m = MemoryRas::with_spares(GpuArch::A100, 1);
        assert_eq!(m.handle_dbe(0, 1, 0.9, 0.43, 0.46), DbeOutcome::Remapped);
        assert_eq!(m.handle_dbe(1, 1, 0.9, 0.43, 0.46), DbeOutcome::Remapped);
        assert_eq!(
            m.handle_dbe(0, 2, 0.99, 0.43, 0.46),
            DbeOutcome::LatentAfterRrf
        );
    }

    #[test]
    fn out_of_range_bank_is_rrf() {
        let mut m = MemoryRas::new(GpuArch::A100);
        let banks = GpuArch::A100.caps().banks;
        assert_ne!(
            m.handle_dbe(banks + 5, 0, 0.0, 0.43, 0.46),
            DbeOutcome::Remapped
        );
    }

    #[test]
    fn double_sbe_triggers_remap_on_ampere_hbm() {
        let mut m = MemoryRas::new(GpuArch::A100);
        assert!(!m.correct_sbe(3, 77));
        assert!(m.correct_sbe(3, 77));
        assert_eq!(m.sbe_corrected(), 2);
        // Different addresses never trigger.
        assert!(!m.correct_sbe(3, 78));
        assert!(!m.correct_sbe(4, 77));
    }

    #[test]
    fn a40_does_not_proactively_remap_on_sbe() {
        let mut m = MemoryRas::new(GpuArch::A40);
        assert!(!m.correct_sbe(0, 1));
        assert!(!m.correct_sbe(0, 1));
    }

    proptest! {
        /// RRE + RRF counts always equal the number of DBEs handled, and
        /// spares never go negative (u16 underflow would panic).
        #[test]
        fn conservation(dbes in prop::collection::vec((0u16..24, 0u32..100, 0.0f64..1.0), 0..200),
                        spares in 0u16..4) {
            let mut m = MemoryRas::with_spares(GpuArch::A100, spares);
            for &(bank, row, roll) in &dbes {
                m.handle_dbe(bank, row, roll, 0.43, 0.46);
            }
            prop_assert_eq!(m.remap_events() + m.remap_failures(), dbes.len() as u64);
        }
    }
}
