//! MMU (Memory Management Unit) model.
//!
//! MMU faults (XID 31) are the second most frequent error in the study.
//! They have two distinct causes that the job-impact analysis must keep
//! apart (Section 5.3): **application-induced** faults (illegal accesses by
//! buggy user code, maskable by framework-level exception handlers) and
//! **hardware-induced** faults (e.g. downstream of a PMU SPI failure that
//! broke MMU power management), which kill jobs far more reliably.

/// Why an MMU fault fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MmuFaultCause {
    /// Illegal memory access by user code.
    Application,
    /// Propagated from GPU hardware (PMU/SPI power-management failure,
    /// driver bugs, ...).
    Hardware,
}

/// Per-GPU MMU counters.
#[derive(Clone, Debug, Default)]
pub struct Mmu {
    app_faults: u64,
    hw_faults: u64,
    /// Engine id round-robin used to vary the fault message detail.
    next_engine: u16,
}

impl Mmu {
    pub fn new() -> Self {
        Mmu::default()
    }

    pub fn app_faults(&self) -> u64 {
        self.app_faults
    }
    pub fn hw_faults(&self) -> u64 {
        self.hw_faults
    }
    pub fn total_faults(&self) -> u64 {
        self.app_faults + self.hw_faults
    }

    /// Record a fault; returns the GPC client engine id to put in the log
    /// message (cycles through the graphics-pipe clients like real logs).
    pub fn fault(&mut self, cause: MmuFaultCause) -> u16 {
        match cause {
            MmuFaultCause::Application => self.app_faults += 1,
            MmuFaultCause::Hardware => self.hw_faults += 1,
        }
        let engine = self.next_engine;
        self.next_engine = (self.next_engine + 1) % 8;
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_cause() {
        let mut m = Mmu::new();
        m.fault(MmuFaultCause::Application);
        m.fault(MmuFaultCause::Application);
        m.fault(MmuFaultCause::Hardware);
        assert_eq!(m.app_faults(), 2);
        assert_eq!(m.hw_faults(), 1);
        assert_eq!(m.total_faults(), 3);
    }

    #[test]
    fn engine_ids_cycle() {
        let mut m = Mmu::new();
        let ids: Vec<u16> = (0..10).map(|_| m.fault(MmuFaultCause::Application)).collect();
        assert_eq!(ids[..8], (0..8).collect::<Vec<u16>>()[..]);
        assert_eq!(ids[8], 0);
    }
}
