//! The composite GPU device: components + health + fault response.
//!
//! [`Gpu::inject`] is the single entry point the fault campaign drives:
//! given a primary fault, the device walks its component state machines,
//! returns the XID emissions (with intra-GPU propagation delays — the edge
//! weights of Figures 5 and 7) and the consequence for GPU health and for
//! the jobs running on it.

use crate::arch::GpuArch;
use crate::gsp::Gsp;
use crate::memory::{DbeOutcome, MemoryRas};
use crate::mmu::{Mmu, MmuFaultCause};
use crate::nvlink::NvLinkSet;
use crate::pmu::Pmu;
use dr_xid::{Duration, ErrorDetail, GpuId, Xid};
use rand::Rng;

/// Probability and timing knobs for the RAS machinery, calibrated from the
/// paper's propagation graphs (Figures 5–7). All probabilities are
/// conditional branch weights of the corresponding state machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RasTuning {
    /// P(containment succeeds | RRF) — Figure 7: 0.43.
    pub p_contained_after_rrf: f64,
    /// P(GPU error state | RRF) — Figure 7: 0.46. Remainder is latent.
    pub p_error_state_after_rrf: f64,
    /// P(GSP timeout cascades into a PMU SPI error) — Figure 5: 0.01
    /// (the other 0.99 leaves the GPU inoperable / repeats).
    pub p_gsp_cascade_pmu: f64,
    /// P(PMU SPI error propagates to an MMU error) — Figure 5: 0.82.
    pub p_pmu_to_mmu: f64,
    /// P(an NVLink error leaves this GPU in an error state) — Fig. 6: 0.20.
    pub p_nvlink_error_state: f64,
    /// P(an NVLink error spreads to peer GPUs on the node) — Fig. 6: 0.14.
    pub p_nvlink_spread: f64,
    /// Mean intra-GPU propagation delays in seconds (Exp-distributed).
    pub dbe_to_remap_s: f64,
    pub rrf_to_containment_s: f64,
    pub gsp_to_pmu_s: f64,
    pub pmu_to_mmu_s: f64,
    /// CRC errors one NVLink link tolerates before going down.
    pub nvlink_down_threshold: u32,
}

impl Default for RasTuning {
    fn default() -> Self {
        RasTuning {
            p_contained_after_rrf: 0.43,
            p_error_state_after_rrf: 0.46,
            p_gsp_cascade_pmu: 0.01,
            p_pmu_to_mmu: 0.82,
            p_nvlink_error_state: 0.20,
            p_nvlink_spread: 0.14,
            dbe_to_remap_s: 0.12,
            rrf_to_containment_s: 0.15,
            gsp_to_pmu_s: 2.4,
            pmu_to_mmu_s: 0.9,
            nvlink_down_threshold: 100,
        }
    }
}

/// A primary fault delivered to the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Uncorrectable double-bit memory error at (bank, row).
    MemoryDbe { bank: u16, row: u32 },
    /// Corrected single-bit error at (bank, row) — not logged, but two at
    /// one address trigger a proactive remap on A100/H100.
    MemorySbe { bank: u16, row: u32 },
    /// Failure of the uncorrectable-error containment machinery itself
    /// (multiple SBEs overwhelming it): manifests as an uncontained
    /// memory error (XID 95) with no preceding DBE.
    UncontainedEcc { partition: u16, slice: u32 },
    /// CRC error on NVLink `link`.
    NvlinkCrc { link: u8 },
    /// GSP stops answering RPC `function`.
    GspHang { function: u32 },
    /// SPI read from the PMU fails at `addr`.
    PmuSpi { addr: u32 },
    /// An MMU fault (hardware- or application-induced).
    MmuFault { app_induced: bool },
    /// GPU drops off the PCI-E/SXM bus.
    BusDrop,
}

/// What the fault did to this GPU / its jobs, beyond the logged errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Consequence {
    /// Nothing beyond the log entries (error masked or latent).
    Masked,
    /// Processes touching the faulty resource were terminated
    /// (successful error containment).
    KilledAffectedProcesses,
    /// The GPU is in an error state: jobs on it fail; reset required.
    GpuErrorState,
    /// The GPU is gone (bus drop / GSP hang): node-level recovery needed.
    GpuLost,
    /// Like `Masked`, but peers on the node should receive a propagated
    /// NVLink fault (inter-GPU spread, Figure 6).
    SpreadToPeers,
}

/// One XID the device wants logged, `delay` after the primary fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Emission {
    pub delay: Duration,
    pub xid: Xid,
    pub detail: ErrorDetail,
}

/// Result of injecting one fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectResult {
    pub emissions: Vec<Emission>,
    pub consequence: Consequence,
}

/// GPU health.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Fully operational.
    Ok,
    /// In an error state caused by `cause`; jobs fail; reset pending.
    ErrorState { cause: Xid },
    /// Unreachable (off the bus or control plane hung); node action needed.
    Lost { cause: Xid },
}

impl Health {
    pub fn is_ok(self) -> bool {
        matches!(self, Health::Ok)
    }
    pub fn needs_reset(self) -> bool {
        !self.is_ok()
    }
}

/// The composite device.
#[derive(Clone, Debug)]
pub struct Gpu {
    id: GpuId,
    arch: GpuArch,
    tuning: RasTuning,
    health: Health,
    pub memory: MemoryRas,
    pub nvlink: NvLinkSet,
    pub gsp: Gsp,
    pub pmu: Pmu,
    pub mmu: Mmu,
    resets: u64,
}

impl Gpu {
    /// A healthy GPU with full spare inventory.
    pub fn new(id: GpuId, arch: GpuArch, tuning: RasTuning) -> Self {
        let caps = arch.caps();
        Gpu {
            id,
            arch,
            tuning,
            health: Health::Ok,
            memory: MemoryRas::new(arch),
            nvlink: NvLinkSet::new(caps.nvlink_links, tuning.nvlink_down_threshold),
            gsp: Gsp::new(),
            pmu: Pmu::new(),
            mmu: Mmu::new(),
            resets: 0,
        }
    }

    /// A defective GPU whose memory spares are (nearly) exhausted — the
    /// small population that dominates DBE/RRF counts in the field data.
    pub fn defective(id: GpuId, arch: GpuArch, tuning: RasTuning, spares_per_bank: u16) -> Self {
        Gpu {
            memory: MemoryRas::with_spares(arch, spares_per_bank),
            ..Gpu::new(id, arch, tuning)
        }
    }

    pub fn id(&self) -> GpuId {
        self.id
    }
    pub fn arch(&self) -> GpuArch {
        self.arch
    }
    pub fn health(&self) -> Health {
        self.health
    }
    pub fn resets(&self) -> u64 {
        self.resets
    }
    pub fn tuning(&self) -> &RasTuning {
        &self.tuning
    }

    /// Reset the GPU (or reboot the node it is in): clears health, retrains
    /// NVLinks, reloads GSP firmware, re-inits the PMU link. Consumed
    /// memory spares and offlined pages persist — damage is physical.
    pub fn reset(&mut self) {
        self.health = Health::Ok;
        self.nvlink.reset();
        self.gsp.reset();
        self.pmu.reset();
        self.resets += 1;
    }

    fn exp_delay<R: Rng + ?Sized>(rng: &mut R, mean_s: f64) -> Duration {
        let u: f64 = rng.gen();
        Duration::from_secs_f64(-(1.0 - u).ln() * mean_s)
    }

    fn degrade(&mut self, to: Health) {
        // Lost dominates ErrorState; never upgrade health via a fault.
        let rank = |h: Health| match h {
            Health::Ok => 0,
            Health::ErrorState { .. } => 1,
            Health::Lost { .. } => 2,
        };
        if rank(to) > rank(self.health) {
            self.health = to;
        }
    }

    /// Deliver a primary fault. Returns the XIDs to log and the
    /// consequence; updates component state and GPU health.
    pub fn inject<R: Rng + ?Sized>(&mut self, fault: Fault, rng: &mut R) -> InjectResult {
        match fault {
            Fault::MemorySbe { bank, row } => self.inject_sbe(bank, row, rng),
            Fault::MemoryDbe { bank, row } => self.inject_dbe(bank, row, rng),
            Fault::UncontainedEcc { partition, slice } => {
                self.degrade(Health::ErrorState {
                    cause: Xid::UncontainedEcc,
                });
                InjectResult {
                    emissions: vec![Emission {
                        delay: Duration::ZERO,
                        xid: Xid::UncontainedEcc,
                        detail: ErrorDetail::new(partition, slice),
                    }],
                    consequence: Consequence::GpuErrorState,
                }
            }
            Fault::NvlinkCrc { link } => self.inject_nvlink(link, rng),
            Fault::GspHang { function } => self.inject_gsp(function, rng),
            Fault::PmuSpi { addr } => self.inject_pmu(addr, rng),
            Fault::MmuFault { app_induced } => {
                let cause = if app_induced {
                    MmuFaultCause::Application
                } else {
                    MmuFaultCause::Hardware
                };
                let engine = self.mmu.fault(cause);
                InjectResult {
                    emissions: vec![Emission {
                        delay: Duration::ZERO,
                        xid: Xid::MmuError,
                        detail: ErrorDetail::new(engine, rng.gen::<u32>() >> 8),
                    }],
                    consequence: Consequence::Masked,
                }
            }
            Fault::BusDrop => {
                self.degrade(Health::Lost {
                    cause: Xid::FallenOffBus,
                });
                InjectResult {
                    emissions: vec![Emission {
                        delay: Duration::ZERO,
                        xid: Xid::FallenOffBus,
                        detail: ErrorDetail::NONE,
                    }],
                    consequence: Consequence::GpuLost,
                }
            }
        }
    }

    fn inject_sbe<R: Rng + ?Sized>(&mut self, bank: u16, row: u32, rng: &mut R) -> InjectResult {
        if self.memory.correct_sbe(bank, row) {
            // Second SBE at the same address: proactive remap attempt.
            let mut res = self.inject_dbe(bank, row, rng);
            // The proactive path logs only the remap result, not a DBE.
            res.emissions.retain(|e| e.xid != Xid::DoubleBitEcc);
            res
        } else {
            InjectResult {
                emissions: Vec::new(),
                consequence: Consequence::Masked,
            }
        }
    }

    fn inject_dbe<R: Rng + ?Sized>(&mut self, bank: u16, row: u32, rng: &mut R) -> InjectResult {
        let t = self.tuning;
        let mut emissions = vec![Emission {
            delay: Duration::ZERO,
            xid: Xid::DoubleBitEcc,
            detail: ErrorDetail::new(bank, row),
        }];
        let roll: f64 = rng.gen();
        let outcome = self.memory.handle_dbe(
            bank,
            row,
            roll,
            t.p_contained_after_rrf,
            t.p_error_state_after_rrf,
        );
        let remap_delay = Self::exp_delay(rng, t.dbe_to_remap_s);
        match outcome {
            DbeOutcome::Remapped => {
                emissions.push(Emission {
                    delay: remap_delay,
                    xid: Xid::RowRemapEvent,
                    detail: ErrorDetail::new(bank, row),
                });
                InjectResult {
                    emissions,
                    consequence: Consequence::Masked,
                }
            }
            DbeOutcome::ContainedAfterRrf => {
                emissions.push(Emission {
                    delay: remap_delay,
                    xid: Xid::RowRemapFailure,
                    detail: ErrorDetail::new(bank, row),
                });
                emissions.push(Emission {
                    delay: remap_delay + Self::exp_delay(rng, t.rrf_to_containment_s),
                    xid: Xid::ContainedEcc,
                    detail: ErrorDetail::new(bank, 0),
                });
                InjectResult {
                    emissions,
                    consequence: Consequence::KilledAffectedProcesses,
                }
            }
            DbeOutcome::FailedAfterRrf => {
                emissions.push(Emission {
                    delay: remap_delay,
                    xid: Xid::RowRemapFailure,
                    detail: ErrorDetail::new(bank, row),
                });
                self.degrade(Health::ErrorState {
                    cause: Xid::RowRemapFailure,
                });
                InjectResult {
                    emissions,
                    consequence: Consequence::GpuErrorState,
                }
            }
            DbeOutcome::LatentAfterRrf => {
                emissions.push(Emission {
                    delay: remap_delay,
                    xid: Xid::RowRemapFailure,
                    detail: ErrorDetail::new(bank, row),
                });
                InjectResult {
                    emissions,
                    consequence: Consequence::Masked,
                }
            }
        }
    }

    fn inject_nvlink<R: Rng + ?Sized>(&mut self, link: u8, rng: &mut R) -> InjectResult {
        let t = self.tuning;
        let masked = self.nvlink.crc_error(link);
        let emissions = vec![Emission {
            delay: Duration::ZERO,
            xid: Xid::NvlinkError,
            detail: ErrorDetail::new(link as u16, 0x10000 + link as u32),
        }];
        // Figure 6 branch weights: error state 0.20, spread 0.14, else the
        // replay masked it (possibly repeating — repetition is scheduled by
        // the campaign as a follow-up fault).
        let roll: f64 = rng.gen();
        let consequence = if !masked || roll < t.p_nvlink_error_state {
            self.degrade(Health::ErrorState {
                cause: Xid::NvlinkError,
            });
            Consequence::GpuErrorState
        } else if roll < t.p_nvlink_error_state + t.p_nvlink_spread {
            Consequence::SpreadToPeers
        } else {
            Consequence::Masked
        };
        InjectResult {
            emissions,
            consequence,
        }
    }

    fn inject_gsp<R: Rng + ?Sized>(&mut self, function: u32, rng: &mut R) -> InjectResult {
        let t = self.tuning;
        self.gsp.rpc_timeout(function);
        let mut emissions = vec![Emission {
            delay: Duration::ZERO,
            xid: Xid::GspRpcTimeout,
            detail: ErrorDetail::new(0, function),
        }];
        // 0.99: control plane stalls, GPU lost. 0.01: cascades into the
        // PMU SPI path first (Figure 1 / Figure 5).
        if rng.gen::<f64>() < t.p_gsp_cascade_pmu {
            let spi_delay = Self::exp_delay(rng, t.gsp_to_pmu_s);
            let addr: u32 = rng.gen::<u32>() & 0xffff;
            self.pmu.spi_failure();
            emissions.push(Emission {
                delay: spi_delay,
                xid: Xid::PmuSpiError,
                detail: ErrorDetail::new(0, addr),
            });
            if rng.gen::<f64>() < t.p_pmu_to_mmu {
                let engine = self.mmu.fault(MmuFaultCause::Hardware);
                emissions.push(Emission {
                    delay: spi_delay + Self::exp_delay(rng, t.pmu_to_mmu_s),
                    xid: Xid::MmuError,
                    detail: ErrorDetail::new(engine, rng.gen::<u32>() >> 8),
                });
            }
        }
        self.degrade(Health::Lost {
            cause: Xid::GspRpcTimeout,
        });
        InjectResult {
            emissions,
            consequence: Consequence::GpuLost,
        }
    }

    fn inject_pmu<R: Rng + ?Sized>(&mut self, addr: u32, rng: &mut R) -> InjectResult {
        let t = self.tuning;
        self.pmu.spi_failure();
        let mut emissions = vec![Emission {
            delay: Duration::ZERO,
            xid: Xid::PmuSpiError,
            detail: ErrorDetail::new(0, addr),
        }];
        // Figure 5: PMU SPI -> MMU with p = 0.82 (job-killing); the other
        // 0.18 repeats as another SPI failure in close succession.
        if rng.gen::<f64>() < t.p_pmu_to_mmu {
            let engine = self.mmu.fault(MmuFaultCause::Hardware);
            emissions.push(Emission {
                delay: Self::exp_delay(rng, t.pmu_to_mmu_s),
                xid: Xid::MmuError,
                detail: ErrorDetail::new(engine, rng.gen::<u32>() >> 8),
            });
            InjectResult {
                emissions,
                consequence: Consequence::GpuErrorState,
            }
        } else {
            // Figure 5's 0.18 self-edge: the SPI failure repeats as a new,
            // separately-logged error shortly after. The campaign models
            // the repeat as a follow-up fault so every occurrence rolls
            // the 0.82 MMU branch independently.
            InjectResult {
                emissions,
                consequence: Consequence::Masked,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::NodeId;
    use rand::prelude::*;
    

    fn gpu(arch: GpuArch) -> Gpu {
        Gpu::new(GpuId::at_slot(NodeId(1), 0), arch, RasTuning::default())
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn bus_drop_loses_gpu() {
        let mut g = gpu(GpuArch::A100);
        let r = g.inject(Fault::BusDrop, &mut rng());
        assert_eq!(r.consequence, Consequence::GpuLost);
        assert_eq!(r.emissions.len(), 1);
        assert_eq!(r.emissions[0].xid, Xid::FallenOffBus);
        assert!(g.health().needs_reset());
        g.reset();
        assert!(g.health().is_ok());
        assert_eq!(g.resets(), 1);
    }

    #[test]
    fn gsp_hang_always_loses_gpu_and_sometimes_cascades() {
        let mut r = rng();
        let mut cascades = 0;
        let mut total_mmu = 0;
        for _ in 0..2_000 {
            let mut g = gpu(GpuArch::A100);
            let res = g.inject(Fault::GspHang { function: 76 }, &mut r);
            assert_eq!(res.consequence, Consequence::GpuLost);
            assert_eq!(res.emissions[0].xid, Xid::GspRpcTimeout);
            assert_eq!(g.health(), Health::Lost { cause: Xid::GspRpcTimeout });
            if res.emissions.iter().any(|e| e.xid == Xid::PmuSpiError) {
                cascades += 1;
            }
            total_mmu += res.emissions.iter().filter(|e| e.xid == Xid::MmuError).count();
        }
        // ~1% cascade rate.
        assert!((5..=60).contains(&cascades), "cascades {cascades}");
        assert!(total_mmu <= cascades);
    }

    #[test]
    fn pmu_mostly_propagates_to_mmu() {
        let mut r = rng();
        let mut to_mmu = 0;
        for _ in 0..2_000 {
            let mut g = gpu(GpuArch::A100);
            let res = g.inject(Fault::PmuSpi { addr: 0x40 }, &mut r);
            assert_eq!(res.emissions[0].xid, Xid::PmuSpiError);
            let has_mmu = res.emissions.iter().any(|e| e.xid == Xid::MmuError);
            if has_mmu {
                to_mmu += 1;
                assert_eq!(res.consequence, Consequence::GpuErrorState);
                // MMU emission comes after the SPI error.
                assert!(res.emissions.last().unwrap().delay >= Duration::ZERO);
            } else {
                // No MMU: the repeat is scheduled by the campaign as a
                // follow-up fault, so only the SPI line itself is emitted.
                assert_eq!(res.emissions.len(), 1);
                assert_eq!(res.consequence, Consequence::Masked);
            }
        }
        let frac = to_mmu as f64 / 2_000.0;
        assert!((frac - 0.82).abs() < 0.04, "PMU->MMU fraction {frac}");
    }

    #[test]
    fn dbe_remaps_while_spares_last() {
        let mut g = gpu(GpuArch::A100);
        let res = g.inject(Fault::MemoryDbe { bank: 0, row: 7 }, &mut rng());
        assert_eq!(res.consequence, Consequence::Masked);
        let xids: Vec<Xid> = res.emissions.iter().map(|e| e.xid).collect();
        assert_eq!(xids, vec![Xid::DoubleBitEcc, Xid::RowRemapEvent]);
        assert!(g.health().is_ok());
        assert_eq!(g.memory.remap_events(), 1);
    }

    #[test]
    fn exhausted_spares_branch_per_figure7() {
        let mut r = rng();
        let (mut contained, mut failed, mut latent) = (0, 0, 0);
        for _ in 0..3_000 {
            let mut g = Gpu::defective(
                GpuId::at_slot(NodeId(2), 1),
                GpuArch::A100,
                RasTuning::default(),
                0,
            );
            let res = g.inject(Fault::MemoryDbe { bank: 1, row: 3 }, &mut r);
            let xids: Vec<Xid> = res.emissions.iter().map(|e| e.xid).collect();
            assert!(xids.contains(&Xid::RowRemapFailure));
            match res.consequence {
                Consequence::KilledAffectedProcesses => {
                    contained += 1;
                    assert!(xids.contains(&Xid::ContainedEcc));
                    assert!(g.health().is_ok());
                }
                Consequence::GpuErrorState => {
                    failed += 1;
                    assert!(g.health().needs_reset());
                }
                Consequence::Masked => latent += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        let n = 3_000.0;
        assert!((contained as f64 / n - 0.43).abs() < 0.04);
        assert!((failed as f64 / n - 0.46).abs() < 0.04);
        assert!((latent as f64 / n - 0.11).abs() < 0.03);
    }

    #[test]
    fn a40_dbe_with_no_spares_fails_gpu() {
        let mut g = Gpu::defective(
            GpuId::at_slot(NodeId(3), 0),
            GpuArch::A40,
            RasTuning::default(),
            0,
        );
        let res = g.inject(Fault::MemoryDbe { bank: 0, row: 1 }, &mut rng());
        assert_eq!(res.consequence, Consequence::GpuErrorState);
        assert!(!res.emissions.iter().any(|e| e.xid == Xid::ContainedEcc));
    }

    #[test]
    fn nvlink_branches_match_figure6() {
        let mut r = rng();
        let (mut masked, mut spread, mut error_state) = (0, 0, 0);
        for _ in 0..5_000 {
            let mut g = gpu(GpuArch::A100);
            let res = g.inject(Fault::NvlinkCrc { link: 3 }, &mut r);
            assert_eq!(res.emissions[0].xid, Xid::NvlinkError);
            match res.consequence {
                Consequence::Masked => masked += 1,
                Consequence::SpreadToPeers => spread += 1,
                Consequence::GpuErrorState => error_state += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        let n = 5_000.0;
        assert!((error_state as f64 / n - 0.20).abs() < 0.02);
        assert!((spread as f64 / n - 0.14).abs() < 0.02);
        assert!((masked as f64 / n - 0.66).abs() < 0.03);
    }

    #[test]
    fn nvlink_threshold_forces_error_state() {
        let mut g = gpu(GpuArch::A100);
        let mut r = rng();
        // Hammer one link past its threshold: must end in error state.
        for _ in 0..=g.tuning().nvlink_down_threshold {
            g.inject(Fault::NvlinkCrc { link: 0 }, &mut r);
        }
        assert!(g.nvlink.any_down());
        assert!(g.health().needs_reset());
    }

    #[test]
    fn sbe_is_silent_until_second_hit() {
        let mut g = gpu(GpuArch::A100);
        let mut r = rng();
        let res = g.inject(Fault::MemorySbe { bank: 2, row: 9 }, &mut r);
        assert!(res.emissions.is_empty());
        let res = g.inject(Fault::MemorySbe { bank: 2, row: 9 }, &mut r);
        // Proactive remap: RRE logged, no DBE line.
        let xids: Vec<Xid> = res.emissions.iter().map(|e| e.xid).collect();
        assert_eq!(xids, vec![Xid::RowRemapEvent]);
    }

    #[test]
    fn uncontained_ecc_is_error_state() {
        let mut g = gpu(GpuArch::A100);
        let res = g.inject(
            Fault::UncontainedEcc {
                partition: 2,
                slice: 0,
            },
            &mut rng(),
        );
        assert_eq!(res.consequence, Consequence::GpuErrorState);
        assert_eq!(res.emissions[0].xid, Xid::UncontainedEcc);
        assert_eq!(g.health(), Health::ErrorState { cause: Xid::UncontainedEcc });
    }

    #[test]
    fn health_never_upgrades_from_fault() {
        let mut g = gpu(GpuArch::A100);
        let mut r = rng();
        g.inject(Fault::GspHang { function: 1 }, &mut r);
        let lost = g.health();
        // A subsequent lesser fault must not improve health.
        g.inject(
            Fault::UncontainedEcc {
                partition: 0,
                slice: 0,
            },
            &mut r,
        );
        assert_eq!(g.health(), lost);
    }

    #[test]
    fn reset_preserves_memory_damage() {
        let mut g = Gpu::defective(
            GpuId::at_slot(NodeId(4), 0),
            GpuArch::A100,
            RasTuning::default(),
            1,
        );
        let mut r = rng();
        g.inject(Fault::MemoryDbe { bank: 0, row: 1 }, &mut r);
        assert_eq!(g.memory.spares_left(0), Some(0));
        g.reset();
        // Spares stay consumed after reset: physical damage persists.
        assert_eq!(g.memory.spares_left(0), Some(0));
    }

    #[test]
    fn emission_delays_are_ordered_for_chains() {
        let mut r = rng();
        // Find a cascading GSP injection and check delay monotonicity.
        for _ in 0..5_000 {
            let mut g = gpu(GpuArch::A100);
            let res = g.inject(Fault::GspHang { function: 9 }, &mut r);
            if res.emissions.len() == 3 {
                assert!(res.emissions[0].delay <= res.emissions[1].delay);
                assert!(res.emissions[1].delay <= res.emissions[2].delay);
                return;
            }
        }
        panic!("no full GSP->PMU->MMU cascade in 5000 draws");
    }
}
