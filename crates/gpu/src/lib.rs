//! # dr-gpu — mechanistic GPU device model
//!
//! The paper's "system under study" is the RAS (reliability, availability,
//! serviceability) machinery of NVIDIA Ampere/Hopper GPUs: ECC with row
//! remapping and error containment in HBM (Figure 3), CRC-with-replay on
//! NVLink, the GSP co-processor, the PMU and its SPI link, the MMU, and the
//! host bus. Since that machinery is closed hardware, this crate implements
//! it as explicit state machines so the fault campaign can exercise the
//! exact recovery paths Figures 5–7 measure.
//!
//! Layering contract: this crate decides *state transitions and which XIDs
//! fire* in response to a primary fault; the stochastic scheduling of
//! primary faults, log-line bursts, and cross-GPU spread lives in
//! `dr-faults`.

pub mod arch;
pub mod device;
pub mod gsp;
pub mod memory;
pub mod mmu;
pub mod nvlink;
pub mod pmu;

pub use arch::{ArchCaps, GpuArch};
pub use device::{Emission, Fault, Gpu, Health, RasTuning};
pub use memory::{DbeOutcome, MemoryRas};
pub use nvlink::{LinkState, NvLinkSet};
