//! GSP (GPU System Processor) model.
//!
//! The GSP is a RISC-V co-processor that runs much of the driver on-die
//! for latency. The paper identifies it as the single most vulnerable GPU
//! hardware component: an RPC timeout (XID 119) stalls GPU control
//! functions, over 99 % of occurrences leave the GPU in an error state,
//! and recovery requires a full node reboot (Figure 1: 23 node-hours).

/// GSP responsiveness state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GspState {
    /// Servicing driver RPCs normally.
    Responsive,
    /// Stopped responding to RPCs: GPU control plane is stalled.
    Hung,
}

/// Per-GPU GSP state and counters.
#[derive(Clone, Debug)]
pub struct Gsp {
    state: GspState,
    /// RPC timeouts observed (XID 119 count).
    timeouts: u64,
    /// RPC function id most recently timed out (appears in the log line).
    last_function: u32,
}

impl Default for Gsp {
    fn default() -> Self {
        Self::new()
    }
}

impl Gsp {
    pub fn new() -> Self {
        Gsp {
            state: GspState::Responsive,
            timeouts: 0,
            last_function: 0,
        }
    }

    pub fn state(&self) -> GspState {
        self.state
    }
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }
    pub fn last_function(&self) -> u32 {
        self.last_function
    }

    /// Record an RPC timeout for driver function `function`. The GSP hangs:
    /// control functions stall until the node is rebooted.
    pub fn rpc_timeout(&mut self, function: u32) {
        self.timeouts += 1;
        self.last_function = function;
        self.state = GspState::Hung;
    }

    /// Node reboot / GPU reset reloads the GSP firmware.
    pub fn reset(&mut self) {
        self.state = GspState::Responsive;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_hangs_until_reset() {
        let mut g = Gsp::new();
        assert_eq!(g.state(), GspState::Responsive);
        g.rpc_timeout(76);
        assert_eq!(g.state(), GspState::Hung);
        assert_eq!(g.timeouts(), 1);
        assert_eq!(g.last_function(), 76);
        g.reset();
        assert_eq!(g.state(), GspState::Responsive);
        // Counter survives the reset (lifetime statistic).
        assert_eq!(g.timeouts(), 1);
    }

    #[test]
    fn repeated_timeouts_accumulate() {
        let mut g = Gsp::new();
        for f in [76, 76, 103] {
            g.rpc_timeout(f);
        }
        assert_eq!(g.timeouts(), 3);
        assert_eq!(g.last_function(), 103);
    }
}
