//! PMU (Power Management Unit) and its SPI communication channel.
//!
//! The PMU regulates GPU frequency, voltage and power. The driver reaches
//! it over a Serial Peripheral Interface; a failed SPI RPC read (XID 122)
//! means power-management commands (e.g. core/memory clock changes) are
//! lost. The paper found this error propagates to MMU errors with
//! probability 0.82 and then to job failure ~97 % of the time — a weak
//! link NVIDIA's manual does not highlight.

/// Per-GPU PMU state and counters.
#[derive(Clone, Debug, Default)]
pub struct Pmu {
    /// SPI RPC read failures observed (XID 122 count).
    spi_failures: u64,
    /// Whether the last SPI transaction failed — while true, clock/power
    /// changes are not taking effect.
    comm_degraded: bool,
    /// Clock-change requests dropped while degraded.
    dropped_requests: u64,
}

impl Pmu {
    pub fn new() -> Self {
        Pmu::default()
    }

    pub fn spi_failures(&self) -> u64 {
        self.spi_failures
    }
    pub fn is_degraded(&self) -> bool {
        self.comm_degraded
    }
    pub fn dropped_requests(&self) -> u64 {
        self.dropped_requests
    }

    /// Record an SPI RPC read failure.
    pub fn spi_failure(&mut self) {
        self.spi_failures += 1;
        self.comm_degraded = true;
    }

    /// The driver asks for a clock/power change. Returns `true` if the
    /// request went through (communication healthy).
    pub fn request_clock_change(&mut self) -> bool {
        if self.comm_degraded {
            self.dropped_requests += 1;
            false
        } else {
            true
        }
    }

    /// A successful SPI transaction clears the degraded flag.
    pub fn spi_success(&mut self) {
        self.comm_degraded = false;
    }

    /// GPU reset re-initializes the PMU interface.
    pub fn reset(&mut self) {
        self.comm_degraded = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spi_failure_blocks_clock_changes() {
        let mut p = Pmu::new();
        assert!(p.request_clock_change());
        p.spi_failure();
        assert!(p.is_degraded());
        assert!(!p.request_clock_change());
        assert!(!p.request_clock_change());
        assert_eq!(p.dropped_requests(), 2);
    }

    #[test]
    fn success_or_reset_recovers() {
        let mut p = Pmu::new();
        p.spi_failure();
        p.spi_success();
        assert!(p.request_clock_change());
        p.spi_failure();
        p.reset();
        assert!(p.request_clock_change());
        assert_eq!(p.spi_failures(), 2);
    }
}
