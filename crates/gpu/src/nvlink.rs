//! NVLink link-set model with CRC detection and replay.
//!
//! NVLink protects flits with CRCs; on a checksum error the link replays
//! from the last known-good packet (Section 2.3.1). A CRC error is always
//! *logged* (XID 74), but the replay usually masks it from applications —
//! the mechanism behind the paper's observation that only 66 % of NVLink
//! errors led to job failure. Repeated errors degrade and eventually down
//! a link, requiring a GPU reset.

/// State of one NVLink link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkState {
    /// Healthy.
    Up,
    /// Seen CRC errors but still replaying successfully.
    Degraded { crc_errors: u32 },
    /// Too many errors: link is down until the GPU is reset.
    Down,
}

/// All NVLink links of one GPU.
#[derive(Clone, Debug)]
pub struct NvLinkSet {
    links: Vec<LinkState>,
    /// CRC errors that crossed the "link down" threshold.
    down_events: u64,
    /// Total CRC errors observed (logged as XID 74).
    crc_total: u64,
    /// Successful replays (errors masked from the application).
    replays: u64,
    /// CRC errors a single link tolerates before going down.
    down_threshold: u32,
}

impl NvLinkSet {
    /// A link set with `n` links and the given error tolerance per link.
    pub fn new(n: u8, down_threshold: u32) -> Self {
        assert!(down_threshold > 0);
        NvLinkSet {
            links: vec![LinkState::Up; n as usize],
            down_events: 0,
            crc_total: 0,
            replays: 0,
            down_threshold,
        }
    }

    pub fn link_count(&self) -> usize {
        self.links.len()
    }
    pub fn crc_total(&self) -> u64 {
        self.crc_total
    }
    pub fn replays(&self) -> u64 {
        self.replays
    }
    pub fn down_events(&self) -> u64 {
        self.down_events
    }

    pub fn state(&self, link: u8) -> Option<LinkState> {
        self.links.get(link as usize).copied()
    }

    /// Whether any link is down (the GPU needs a reset to clear it).
    pub fn any_down(&self) -> bool {
        self.links.iter().any(|l| matches!(l, LinkState::Down))
    }

    /// Record a CRC error on `link`. Returns `true` if the replay masked
    /// the error (link still usable), `false` if the link went down.
    ///
    /// Out-of-range link indices are clamped to the last link (defensive:
    /// fault processes address links modulo the architecture's link count).
    pub fn crc_error(&mut self, link: u8) -> bool {
        self.crc_total += 1;
        let idx = (link as usize).min(self.links.len().saturating_sub(1));
        let Some(slot) = self.links.get_mut(idx) else {
            return false;
        };
        match *slot {
            LinkState::Up => {
                if self.down_threshold <= 1 {
                    *slot = LinkState::Down;
                    self.down_events += 1;
                    false
                } else {
                    *slot = LinkState::Degraded { crc_errors: 1 };
                    self.replays += 1;
                    true
                }
            }
            LinkState::Degraded { crc_errors } => {
                let next = crc_errors + 1;
                if next >= self.down_threshold {
                    *slot = LinkState::Down;
                    self.down_events += 1;
                    false
                } else {
                    *slot = LinkState::Degraded { crc_errors: next };
                    self.replays += 1;
                    true
                }
            }
            LinkState::Down => {
                // Errors on a dead link are not maskable.
                false
            }
        }
    }

    /// GPU reset: all links retrain to Up.
    pub fn reset(&mut self) {
        for l in &mut self.links {
            *l = LinkState::Up;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_masks_until_threshold() {
        let mut s = NvLinkSet::new(12, 3);
        assert!(s.crc_error(4));
        assert!(s.crc_error(4));
        assert_eq!(s.state(4), Some(LinkState::Degraded { crc_errors: 2 }));
        // Third error crosses the threshold: link down.
        assert!(!s.crc_error(4));
        assert_eq!(s.state(4), Some(LinkState::Down));
        assert!(s.any_down());
        assert_eq!(s.replays(), 2);
        assert_eq!(s.crc_total(), 3);
        assert_eq!(s.down_events(), 1);
    }

    #[test]
    fn links_are_independent() {
        let mut s = NvLinkSet::new(2, 2);
        assert!(s.crc_error(0));
        assert!(s.crc_error(1));
        assert_eq!(s.state(0), Some(LinkState::Degraded { crc_errors: 1 }));
        assert_eq!(s.state(1), Some(LinkState::Degraded { crc_errors: 1 }));
        assert!(!s.any_down());
    }

    #[test]
    fn errors_on_down_link_stay_visible() {
        let mut s = NvLinkSet::new(1, 1);
        assert!(!s.crc_error(0));
        assert!(!s.crc_error(0));
        assert_eq!(s.down_events(), 1);
        assert_eq!(s.crc_total(), 2);
    }

    #[test]
    fn reset_retrains_links() {
        let mut s = NvLinkSet::new(3, 1);
        s.crc_error(2);
        assert!(s.any_down());
        s.reset();
        assert!(!s.any_down());
        assert_eq!(s.state(2), Some(LinkState::Up));
        // History counters survive the reset.
        assert_eq!(s.crc_total(), 1);
    }

    #[test]
    fn out_of_range_link_clamps() {
        let mut s = NvLinkSet::new(2, 5);
        assert!(s.crc_error(200));
        assert_eq!(s.state(1), Some(LinkState::Degraded { crc_errors: 1 }));
    }
}
