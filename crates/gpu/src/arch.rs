//! GPU architectures deployed in Delta and their RAS capabilities.

use core::fmt;

/// The GPU models in the study (Section 2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GpuArch {
    /// NVIDIA A40 (Ampere, GDDR6): row remapping but **no** error
    /// containment or dynamic page offlining.
    A40,
    /// NVIDIA A100 (Ampere, HBM2e): full Ampere RAS feature set.
    A100,
    /// NVIDIA H100 (Hopper, HBM3, in GH200 superchips): full feature set.
    H100,
}

/// Static capability table per architecture (Section 2.3, Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArchCaps {
    /// Marketing name.
    pub name: &'static str,
    /// Uncorrectable-error containment (terminate affected processes
    /// instead of failing the GPU). A100/H100 only.
    pub error_containment: bool,
    /// Dynamic page offlining without a GPU reset. A100/H100 only.
    pub dynamic_page_offlining: bool,
    /// Row remappings available per memory bank (Ampere/Hopper support up
    /// to 512 device-wide; pre-Ampere parts supported 64 page retirements).
    pub spare_rows_per_bank: u16,
    /// Number of HBM/DRAM banks modeled.
    pub banks: u16,
    /// NVLink links per GPU (0 = only bridge pairs / PCIe).
    pub nvlink_links: u8,
    /// Whether the driver runs on the GSP co-processor (all three do in
    /// the deployed driver generation).
    pub has_gsp: bool,
}

impl GpuArch {
    pub const ALL: [GpuArch; 3] = [GpuArch::A40, GpuArch::A100, GpuArch::H100];

    /// Capability table lookup.
    pub const fn caps(self) -> ArchCaps {
        match self {
            GpuArch::A40 => ArchCaps {
                name: "A40",
                error_containment: false,
                dynamic_page_offlining: false,
                spare_rows_per_bank: 8,
                banks: 24,
                nvlink_links: 1,
                has_gsp: true,
            },
            GpuArch::A100 => ArchCaps {
                name: "A100",
                error_containment: true,
                dynamic_page_offlining: true,
                spare_rows_per_bank: 8,
                banks: 64,
                nvlink_links: 12,
                has_gsp: true,
            },
            GpuArch::H100 => ArchCaps {
                name: "H100",
                error_containment: true,
                dynamic_page_offlining: true,
                spare_rows_per_bank: 8,
                banks: 80,
                nvlink_links: 18,
                has_gsp: true,
            },
        }
    }

    /// Whether this is an Ampere-generation part (the Table 1 population).
    pub const fn is_ampere(self) -> bool {
        matches!(self, GpuArch::A40 | GpuArch::A100)
    }
}

impl fmt::Display for GpuArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.caps().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a40_lacks_containment_and_offlining() {
        let caps = GpuArch::A40.caps();
        assert!(!caps.error_containment);
        assert!(!caps.dynamic_page_offlining);
    }

    #[test]
    fn a100_h100_have_full_ras() {
        for arch in [GpuArch::A100, GpuArch::H100] {
            let caps = arch.caps();
            assert!(caps.error_containment, "{arch}");
            assert!(caps.dynamic_page_offlining, "{arch}");
            assert!(caps.spare_rows_per_bank > 0);
        }
    }

    #[test]
    fn ampere_classification() {
        assert!(GpuArch::A40.is_ampere());
        assert!(GpuArch::A100.is_ampere());
        assert!(!GpuArch::H100.is_ampere());
    }

    #[test]
    fn hopper_has_more_links() {
        assert!(GpuArch::H100.caps().nvlink_links > GpuArch::A100.caps().nvlink_links);
    }
}
