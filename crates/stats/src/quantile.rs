//! Quantiles: exact (over collected samples) and streaming (P² estimator).

/// Linear-interpolation quantile over an **already sorted** slice
/// (type-7 / the default used by R and NumPy). `q` in `[0, 1]`.
///
/// Returns `None` for an empty slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Sort a copy of `samples` and extract several quantiles at once.
pub fn quantiles(samples: &[f64], qs: &[f64]) -> Vec<Option<f64>> {
    let mut v = samples.to_vec();
    v.sort_by(f64::total_cmp);
    qs.iter().map(|&q| quantile_sorted(&v, q)).collect()
}

/// The (mean, P50, P95) triple reported for error persistence in Table 1.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SummaryStats {
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
}

impl SummaryStats {
    /// Compute from raw samples. Empty input yields an all-zero summary.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return SummaryStats::default();
        }
        let mut v = samples.to_vec();
        v.sort_by(f64::total_cmp);
        let sum: f64 = v.iter().sum();
        SummaryStats {
            count: v.len() as u64,
            mean: sum / v.len() as f64,
            p50: quantile_sorted(&v, 0.50).unwrap_or(0.0),
            p95: quantile_sorted(&v, 0.95).unwrap_or(0.0),
        }
    }
}

/// Streaming quantile estimation with the P² algorithm (Jain & Chlamtac,
/// CACM 1985): five markers track the target quantile without storing the
/// sample set. Used when the pipeline runs in constant-memory mode over
/// very large log streams.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based as in the paper).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    n: u64,
    /// First five observations, collected before the estimator activates.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Create an estimator for quantile `q` (e.g. 0.95).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(0.0, 1.0);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            n: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Incorporate one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        if self.warmup.len() < 5 {
            self.warmup.push(x);
            if self.warmup.len() == 5 {
                self.warmup.sort_by(f64::total_cmp);
                for (h, w) in self.heights.iter_mut().zip(&self.warmup) {
                    *h = *w;
                }
            }
            return;
        }

        // Find the cell k containing x, adjusting extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust interior markers with the parabolic (or linear) formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
    }

    /// The `(i-1, i, i+1)` neighborhood of a marker array. `push` only
    /// adjusts interior markers (`i` in `1..4`), so the clamped reads
    /// never actually fall back.
    fn window(a: &[f64; 5], i: usize) -> (f64, f64, f64) {
        let at = |k: usize| a.get(k).copied().unwrap_or(f64::NAN);
        (at(i.saturating_sub(1)), at(i), at(i + 1))
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (pl, pc, pr) = Self::window(&self.positions, i);
        let (hl, hc, hr) = Self::window(&self.heights, i);
        hc + d / (pr - pl)
            * ((pc - pl + d) * (hr - hc) / (pr - pc) + (pr - pc - d) * (hc - hl) / (pc - pl))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let (hl, hc, hr) = Self::window(&self.heights, i);
        let (pl, pc, pr) = Self::window(&self.positions, i);
        let (hj, pj) = if d > 0.0 { (hr, pr) } else { (hl, pl) };
        hc + d * (hj - hc) / (pj - pc)
    }

    /// Current estimate; `None` before any observation.
    pub fn estimate(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        if self.warmup.len() < 5 || self.n <= 5 {
            // Fall back to exact quantile over the (tiny) warm-up set.
            let mut v = self.warmup.clone();
            v.sort_by(f64::total_cmp);
            return quantile_sorted(&v, self.q);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    #[allow(unused_imports)]
    use rand::Rng;

    #[test]
    fn exact_quantile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&v, 0.0), Some(1.0));
        assert_eq!(quantile_sorted(&v, 1.0), Some(4.0));
        assert_eq!(quantile_sorted(&v, 0.5), Some(2.5));
        assert_eq!(quantile_sorted(&[], 0.5), None);
        assert_eq!(quantile_sorted(&[7.0], 0.9), Some(7.0));
    }

    #[test]
    fn summary_stats_match_hand_computation() {
        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 22.0).abs() < 1e-12);
        assert_eq!(s.p50, 3.0);
        // p95 interpolates between 4.0 and 100.0 at pos 3.8.
        assert!((s.p95 - (4.0 * 0.2 + 100.0 * 0.8)).abs() < 1e-9);
    }

    #[test]
    fn summary_stats_empty() {
        assert_eq!(SummaryStats::from_samples(&[]), SummaryStats::default());
    }

    #[test]
    fn p2_tracks_uniform_median() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut est = P2Quantile::new(0.5);
        for _ in 0..50_000 {
            est.push(rng.gen::<f64>());
        }
        let e = est.estimate().unwrap();
        assert!((e - 0.5).abs() < 0.01, "estimate {e}");
    }

    #[test]
    fn p2_tracks_exponential_p95() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut est = P2Quantile::new(0.95);
        for _ in 0..100_000 {
            let u: f64 = rng.gen();
            est.push(-(1.0f64 - u).ln()); // Exp(1)
        }
        let truth = -(0.05f64).ln(); // ~2.9957
        let e = est.estimate().unwrap();
        assert!((e - truth).abs() / truth < 0.05, "estimate {e} truth {truth}");
    }

    #[test]
    fn p2_small_inputs_fall_back_to_exact() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        for x in [3.0, 1.0, 2.0] {
            est.push(x);
        }
        assert_eq!(est.estimate(), Some(2.0));
    }

    proptest! {
        /// The exact quantile is monotone in q and bounded by min/max.
        #[test]
        fn quantile_monotone(mut xs in prop::collection::vec(-1e6f64..1e6, 1..50),
                             q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = (q1.min(q2), q1.max(q2));
            let a = quantile_sorted(&xs, lo).unwrap();
            let b = quantile_sorted(&xs, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
            prop_assert!(a >= xs[0] - 1e-9 && b <= xs[xs.len() - 1] + 1e-9);
        }

        /// P² estimate always lies within the observed range.
        #[test]
        fn p2_within_range(xs in prop::collection::vec(0.0f64..1e3, 6..300),
                           q in 0.05f64..0.95) {
            let mut est = P2Quantile::new(q);
            for &x in &xs { est.push(x); }
            let e = est.estimate().unwrap();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(e >= min - 1e-9 && e <= max + 1e-9);
        }
    }
}
