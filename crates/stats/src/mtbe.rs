//! Mean Time Between Errors (MTBE), the paper's headline reliability metric.
//!
//! Two normalizations are used (Section 3.2 and Table 1):
//!
//! * **system MTBE** — observation hours divided by error count: how often
//!   the *whole system* sees this error;
//! * **per-node MTBE** — system MTBE multiplied by the number of GPU nodes:
//!   how long a *single node* runs before seeing this error.

/// MTBE computation over a fixed observation window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mtbe {
    /// Total observation period in hours (855 days for the Ampere study).
    pub observation_hours: f64,
    /// Number of nodes sharing the error stream (206 Ampere GPU nodes).
    pub node_count: u32,
}

impl Mtbe {
    /// # Panics
    /// If the window is non-positive or there are no nodes.
    pub fn new(observation_hours: f64, node_count: u32) -> Self {
        assert!(observation_hours > 0.0, "observation window must be positive");
        assert!(node_count > 0, "need at least one node");
        Mtbe {
            observation_hours,
            node_count,
        }
    }

    /// The Ampere study window: 855 days across 206 GPU nodes.
    pub fn ampere_study() -> Self {
        Mtbe::new(855.0 * 24.0, 206)
    }

    /// System-wide MTBE in hours; `None` when no errors occurred.
    pub fn system_hours(&self, error_count: u64) -> Option<f64> {
        (error_count > 0).then(|| self.observation_hours / error_count as f64)
    }

    /// Per-node MTBE in node-hours; `None` when no errors occurred.
    ///
    /// Per Table 1's footnote: derived by multiplying the system MTBE by
    /// the node count.
    pub fn per_node_hours(&self, error_count: u64) -> Option<f64> {
        self.system_hours(error_count)
            .map(|h| h * self.node_count as f64)
    }

    /// Availability from MTTF and MTTR: `MTTF / (MTTF + MTTR)` (Section 5.4).
    pub fn availability(mttf_hours: f64, mttr_hours: f64) -> f64 {
        assert!(mttf_hours > 0.0 && mttr_hours >= 0.0);
        mttf_hours / (mttf_hours + mttr_hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_window_matches_table1() {
        // 18,876 MMU errors over 855 days -> 1.09 system hours,
        // 223.94 per-node hours (Table 1 row 1).
        let m = Mtbe::ampere_study();
        let sys = m.system_hours(18_876).unwrap();
        assert!((sys - 1.087).abs() < 0.01, "sys {sys}");
        let node = m.per_node_hours(18_876).unwrap();
        assert!((node - 223.9).abs() < 0.5, "node {node}");
    }

    #[test]
    fn nvlink_row_matches_table1() {
        // 2,987 NVLink errors -> 6.87 system hours, 1415.2 node hours.
        let m = Mtbe::ampere_study();
        assert!((m.system_hours(2_987).unwrap() - 6.87).abs() < 0.01);
        assert!((m.per_node_hours(2_987).unwrap() - 1415.2).abs() < 2.0);
    }

    #[test]
    fn zero_errors_is_none() {
        let m = Mtbe::ampere_study();
        assert_eq!(m.system_hours(0), None);
        assert_eq!(m.per_node_hours(0), None);
    }

    #[test]
    fn availability_formula() {
        // MTTF 67 h, MTTR 0.3 h -> 99.5 % (Section 5.4).
        let a = Mtbe::availability(67.0, 0.3);
        assert!((a - 0.9955).abs() < 0.001, "availability {a}");
        // MTTF 223 h -> 99.9 % (Section 5.5).
        let a = Mtbe::availability(223.0, 0.3);
        assert!((a - 0.9987).abs() < 0.001, "availability {a}");
    }
}
