//! Two-sample Kolmogorov–Smirnov test.
//!
//! Used by the validation suite to compare *whole distributions* — e.g.
//! the persistence durations the pipeline recovers against the calibrated
//! generator, or two campaign seeds against each other — rather than just
//! their summary quantiles.

/// Result of a two-sample KS test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsResult {
    /// The KS statistic: the supremum distance between the two ECDFs.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution approximation; good
    /// for sample sizes in the dozens and beyond).
    pub p_value: f64,
}

impl KsResult {
    /// Whether the two samples are distinguishable at significance `alpha`.
    pub fn rejects_same_distribution(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample KS test. Returns `None` if either sample is empty. NaN
/// samples sort to the top under `total_cmp` and inflate the statistic
/// rather than panicking.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Option<KsResult> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);

    let (n, m) = (xs.len(), ys.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let x = xs[i];
        let y = ys[j];
        let v = x.min(y);
        while i < n && xs[i] <= v {
            i += 1;
        }
        while j < m && ys[j] <= v {
            j += 1;
        }
        let fa = i as f64 / n as f64;
        let fb = j as f64 / m as f64;
        d = d.max((fa - fb).abs());
    }

    // Asymptotic p-value: Q_KS(sqrt(ne) * D) with the effective size.
    let ne = (n as f64 * m as f64) / (n as f64 + m as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    let p_value = kolmogorov_q(lambda);
    Some(KsResult {
        statistic: d,
        p_value,
    })
}

/// Kolmogorov survival function Q(λ) = 2 Σ (−1)^{k−1} e^{−2 k² λ²}.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Sampler;
    use crate::{Exp, LogNormal};
    use rand::prelude::*;

    fn draws<S: Sampler>(d: &S, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn same_distribution_is_not_rejected() {
        let d = LogNormal::new(1.0, 0.8);
        let a = draws(&d, 3_000, 1);
        let b = draws(&d, 3_000, 2);
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(!r.rejects_same_distribution(0.01), "p {}", r.p_value);
        assert!(r.statistic < 0.05);
    }

    #[test]
    fn different_distributions_are_rejected() {
        let a = draws(&Exp::with_mean(1.0), 2_000, 3);
        let b = draws(&Exp::with_mean(2.0), 2_000, 4);
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.rejects_same_distribution(0.01), "p {}", r.p_value);
        assert!(r.statistic > 0.1);
    }

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = vec![1.0, 2.0, 3.0];
        let r = ks_two_sample(&a, &a).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = vec![1.0, 2.0];
        let b = vec![10.0, 20.0];
        let r = ks_two_sample(&a, &b).unwrap();
        assert_eq!(r.statistic, 1.0);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[1.0], &[]).is_none());
    }

    #[test]
    fn kolmogorov_q_known_values() {
        // Q(0.5) ≈ 0.9639, Q(1.0) ≈ 0.2700, Q(1.5) ≈ 0.0222.
        assert!((kolmogorov_q(0.5) - 0.9639).abs() < 0.01);
        assert!((kolmogorov_q(1.0) - 0.2700).abs() < 0.005);
        assert!((kolmogorov_q(1.5) - 0.0222).abs() < 0.002);
    }
}
