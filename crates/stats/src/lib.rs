//! # dr-stats — statistics substrate for the resilience study
//!
//! Everything the characterization pipeline and the fault generator need:
//!
//! - [`online`]: streaming count/mean/variance/min/max (Welford).
//! - [`quantile`]: exact quantiles over samples and the streaming P² estimator.
//! - [`histogram`]: linear and log-scale histograms, empirical CDFs.
//! - [`dist`]: distribution samplers (Exp, LogNormal, Weibull, Pareto,
//!   Categorical) and moment/quantile-based fitters. Implemented from
//!   first principles (inverse transform / Box–Muller) on top of `rand`'s
//!   uniform source, since `rand_distr` is outside the allowed crate set.
//! - [`mtbe`]: mean-time-between-errors helpers matching the paper's
//!   definitions (system-wide and per-node normalization).

pub mod dist;
pub mod histogram;
pub mod kstest;
pub mod mtbe;
pub mod online;
pub mod quantile;

pub use dist::{Categorical, Exp, LogNormal, Pareto, Sampler, Weibull};
pub use histogram::{Ecdf, Histogram, LogHistogram};
pub use kstest::{ks_two_sample, KsResult};
pub use mtbe::Mtbe;
pub use online::OnlineStats;
pub use quantile::{quantile_sorted, quantiles, P2Quantile, SummaryStats};
